// E6 — Lemma 4.1 and Remark 1: early behaviour of the 1-D load-balancing
// process.  Starting from a good node, the deviation ||Q y(0) − y(t)||
// stays below 2·sqrt(t(1−λ_k))·||Q y(0)|| (+o(1)) for t ≈ T, and the
// deviation *grows* again for t ≫ T as the walk converges to the global
// uniform distribution.  We print the trajectory, the Lemma 4.1 bound,
// and the distance to the cluster indicator χ_{S_j} (Lemma 4.3's target).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/rounds.hpp"
#include "core/spectral_structure.hpp"
#include "linalg/vector_ops.hpp"
#include "matching/process.hpp"
#include "util/stats.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 800));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 8));
  cli.reject_unknown();

  bench::banner("E6", "Lemma 4.1: E||Q y0 - y(t)|| <= 2 sqrt(t(1-lambda_k)) ||Q y0|| + o(1); "
                      "Remark 1: error grows again for t >> T",
                "k=2 planted clusters; 1-D process from a good seed; trajectory");

  const auto planted = bench::make_clustered(2, size, 16, 0.01, 5);
  const auto st = core::analyze_structure(planted);
  const auto est = core::recommended_rounds(planted.graph, 2, 1.0);
  const std::size_t n = planted.graph.num_nodes();

  // Best good node as seed.
  graph::NodeId seed_node = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (st.alpha[v] < st.alpha[seed_node]) seed_node = v;
  }
  const auto members = planted.cluster(planted.membership[seed_node]);
  std::vector<double> chi_s(n, 0.0);
  for (const auto v : members) chi_s[v] = 1.0 / static_cast<double>(members.size());

  std::vector<double> qy0(n, 0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    linalg::axpy(st.eigenvectors[i][seed_node], st.eigenvectors[i], qy0);
  }
  const double qnorm = linalg::norm(qy0);

  const std::size_t horizon = est.rounds * 24;
  // Probe at t = T/4, T/2, T, 2T, 4T, 8T, 16T, 24T.
  const std::vector<std::size_t> probes{est.rounds / 4, est.rounds / 2, est.rounds,
                                        2 * est.rounds, 4 * est.rounds, 8 * est.rounds,
                                        16 * est.rounds, horizon};

  util::Table table("trajectory of the 1-D process (mean over trials)",
                    {"t", "t/T", "E||Qy0-y(t)||", "lemma4.1_bound", "E||y(t)-chi_S||",
                     "||chi_S||"});

  std::vector<util::RunningStats> dev(probes.size());
  std::vector<util::RunningStats> dist_chi(probes.size());
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::vector<double> y0(n, 0.0);
    y0[seed_node] = 1.0;
    matching::MatchingGenerator generator(planted.graph, 900 + trial);
    const auto snapshots = matching::trajectory_1d(generator, y0, horizon);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      dev[p].add(linalg::norm_diff(qy0, snapshots[probes[p]]));
      dist_chi[p].add(linalg::norm_diff(snapshots[probes[p]], chi_s));
    }
  }

  const double chi_norm = 1.0 / std::sqrt(static_cast<double>(members.size()));
  for (std::size_t p = 0; p < probes.size(); ++p) {
    const double t = static_cast<double>(probes[p]);
    const double bound = 2.0 * std::sqrt(t * (1.0 - st.lambda_k)) * qnorm;
    table.row({static_cast<std::int64_t>(probes[p]),
               t / static_cast<double>(est.rounds), dev[p].mean(), bound,
               dist_chi[p].mean(), chi_norm});
  }
  table.print(std::cout);
  std::cout << "# n=" << n << "  T=" << est.rounds << "  lambda_k=" << st.lambda_k
            << "  lambda_k+1=" << st.lambda_k1 << "  Upsilon=" << st.upsilon << "\n";
  std::cout << "# PASS criteria: deviation below the Lemma 4.1 bound around t=T; the\n"
               "# deviation and ||y(t)-chi_S|| shrink until ~T then grow for t>>T\n"
               "# (Remark 1) as y(t) -> uniform.\n";
  return 0;
}
