// E17 — ingestion throughput: fast parsers, binary format, GraphBuilder.
//
// The paper's protocol targets massive real-world graphs, so getting a
// graph *into* the engines must not dwarf the clustering itself.  This
// bench gates the ingestion overhaul against faithful re-creations of
// the pre-overhaul code paths, kept verbatim in this file:
//   (1) text parsing — the iostream/istringstream edge-list and METIS
//       readers vs the std::from_chars parsers (graph/io.hpp);
//   (2) reload — binary .dgcg save/load (bulk reads + CSR validation)
//       vs re-parsing text, the only option before;
//   (3) construction — the legacy sort-unique Graph::from_edges loop vs
//       GraphBuilder's two-pass counting-sort placement (serial and
//       thread-pool parallel).
//
// PASS criteria: every path reproduces the source CSR bit for bit, and
// at m >= 10^6 the best load path (fast text or binary file) is >= 2x
// the iostream baseline.  Results land in BENCH_E17.json.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace dgc;

namespace {

using Edge = std::pair<graph::NodeId, graph::NodeId>;
using graph::NodeId;

// ---------------------------------------------------------------------------
// The seed repository's readers and builder, verbatim, so the baseline
// stays fixed even as the shipped ingestion keeps improving.

struct LegacyCsr {
  std::vector<std::uint64_t> offsets;
  std::vector<NodeId> adjacency;
};

LegacyCsr legacy_from_edges(NodeId n, std::vector<Edge> edges) {
  for (auto& [u, v] : edges) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  LegacyCsr g;
  g.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets[u + 1];
    ++g.offsets[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets.size(); ++i) g.offsets[i] += g.offsets[i - 1];

  g.adjacency.resize(edges.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency[cursor[u]++] = v;
    g.adjacency[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < n; ++v) {
    auto begin = g.adjacency.begin() + static_cast<std::ptrdiff_t>(g.offsets[v]);
    auto end = g.adjacency.begin() + static_cast<std::ptrdiff_t>(g.offsets[v + 1]);
    std::sort(begin, end);
  }
  return g;
}

LegacyCsr legacy_read_edge_list(std::istream& is) {
  std::vector<Edge> edges;
  NodeId n = 0;
  bool have_n = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string word;
      header >> word;
      if (word == "nodes") {
        header >> n;
        have_n = true;
      }
      continue;
    }
    std::istringstream row(line);
    NodeId u = 0;
    NodeId v = 0;
    row >> u >> v;
    edges.emplace_back(u, v);
    if (!have_n) n = std::max({n, u + 1, v + 1});
  }
  return legacy_from_edges(n, std::move(edges));
}

LegacyCsr legacy_read_metis(std::istream& is) {
  std::string line;
  std::getline(is, line);
  std::istringstream header(line);
  NodeId n = 0;
  std::size_t m = 0;
  header >> n >> m;
  std::vector<Edge> edges;
  edges.reserve(m);
  for (NodeId v = 0; v < n; ++v) {
    std::getline(is, line);
    std::istringstream row(line);
    NodeId u = 0;
    while (row >> u) {
      if (u - 1 > v) edges.emplace_back(v, u - 1);
    }
  }
  return legacy_from_edges(n, std::move(edges));
}

// ---------------------------------------------------------------------------

bool csr_equal(std::span<const std::uint64_t> offsets, std::span<const NodeId> adjacency,
               const graph::Graph& g) {
  return std::equal(offsets.begin(), offsets.end(), g.offsets().begin(),
                    g.offsets().end()) &&
         std::equal(adjacency.begin(), adjacency.end(), g.adjacency().begin(),
                    g.adjacency().end());
}

/// Best-of-`repeats` wall time of fn() (fn returns whether the result
/// matched the source graph; the conjunction lands in *ok).
template <typename Fn>
double best_seconds(std::size_t repeats, bool* ok, Fn&& fn) {
  double best = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Timer timer;
    const bool good = fn();
    const double s = timer.seconds();
    if (ok != nullptr) *ok = *ok && good;
    if (r == 0 || s < best) best = s;
  }
  return best;
}

double mb(std::size_t bytes) { return static_cast<double>(bytes) / 1.0e6; }

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 16));
  const double phi = cli.get_double("phi", 0.02);
  const auto min_log2 = static_cast<int>(cli.get_int("min_log2", 15));
  const auto max_log2 = static_cast<int>(cli.get_int("max_log2", 17));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  const auto pool_threads = static_cast<std::size_t>(cli.get_int("pool_threads", 4));
  const std::string json_path = cli.get("json", "BENCH_E17.json");
  cli.reject_unknown();

  bench::banner(
      "E17",
      "ingestion is not the bottleneck: from_chars text parsing and the binary "
      ".dgcg format load real graphs >= 2x faster than the iostream baseline, "
      "and GraphBuilder reproduces from_edges bit for bit without the global sort",
      "clustered_regular instances, k=" + std::to_string(k) + ", d=" +
          std::to_string(degree) + ", n = 2^" + std::to_string(min_log2) + " .. 2^" +
          std::to_string(max_log2));

  util::Table text_table("text parse (seconds, best of " + std::to_string(repeats) + ")",
                         {"n", "m", "format", "MB", "iostream_s", "fast_s", "speedup",
                          "MB_per_s", "identical"});
  util::Table binary_table("binary .dgcg vs re-parsing text",
                           {"n", "m", "MB", "save_stream_s", "save_mmap_s", "stream_s",
                            "mmap_s", "vs_iostream_text", "vs_fast_text",
                            "mmap_vs_stream", "identical"});
  util::Table build_table("CSR construction from a buffered edge list",
                          {"n", "m", "legacy_sort_s", "builder_s", "builder_pool_s",
                           "speedup", "identical"});

  const auto tmp_dir = std::filesystem::temp_directory_path();
  double headline_speedup = 0.0;
  std::size_t headline_m = 0;
  bool all_identical = true;

  for (int log2 = min_log2; log2 <= max_log2; ++log2) {
    const auto n = static_cast<NodeId>(1u << log2);
    const auto planted = bench::make_clustered(k, n / k, degree, phi, /*seed=*/17);
    const graph::Graph& g = planted.graph;
    const auto m = g.num_edges();
    const auto m64 = static_cast<std::int64_t>(m);

    // --- text formats ------------------------------------------------------
    std::string edge_text;
    {
      std::ostringstream os;
      graph::write_edge_list(os, g);
      edge_text = std::move(os).str();
    }
    std::string metis_text;
    {
      std::ostringstream os;
      graph::write_metis(os, g);
      metis_text = std::move(os).str();
    }

    bool ok = true;
    const double edges_iostream = best_seconds(repeats, &ok, [&] {
      std::istringstream is(edge_text);
      const LegacyCsr csr = legacy_read_edge_list(is);
      return csr_equal(csr.offsets, csr.adjacency, g);
    });
    const double edges_fast = best_seconds(repeats, &ok, [&] {
      const graph::Graph loaded = graph::parse_edge_list(edge_text);
      return csr_equal(loaded.offsets(), loaded.adjacency(), g);
    });
    text_table.row({static_cast<std::int64_t>(n), m64, "edges", mb(edge_text.size()),
                    edges_iostream, edges_fast, edges_iostream / edges_fast,
                    mb(edge_text.size()) / edges_fast, ok ? "yes" : "NO"});
    all_identical = all_identical && ok;

    ok = true;
    const double metis_iostream = best_seconds(repeats, &ok, [&] {
      std::istringstream is(metis_text);
      const LegacyCsr csr = legacy_read_metis(is);
      return csr_equal(csr.offsets, csr.adjacency, g);
    });
    const double metis_fast = best_seconds(repeats, &ok, [&] {
      const graph::Graph loaded = graph::parse_metis(metis_text);
      return csr_equal(loaded.offsets(), loaded.adjacency(), g);
    });
    text_table.row({static_cast<std::int64_t>(n), m64, "metis", mb(metis_text.size()),
                    metis_iostream, metis_fast, metis_iostream / metis_fast,
                    mb(metis_text.size()) / metis_fast, ok ? "yes" : "NO"});
    all_identical = all_identical && ok;

    // --- binary file -------------------------------------------------------
    const auto binary_path =
        (tmp_dir / ("dgc_e17_" + std::to_string(n) + ".dgcg")).string();
    ok = true;
    // Stream save: the pre-mmap write path (buffered ofstream through
    // write_binary).  mmap save: save_binary's shared zero-copy writer
    // (util/binary_file.hpp, the same path .dgcc checkpoints use).  The
    // two must produce byte-identical files.
    const auto stream_path =
        (tmp_dir / ("dgc_e17_stream_" + std::to_string(n) + ".dgcg")).string();
    const double save_stream_s = best_seconds(repeats, nullptr, [&] {
      std::ofstream os(stream_path, std::ios::binary | std::ios::trunc);
      graph::write_binary(os, g);
      return true;
    });
    const double save_mmap_s = best_seconds(repeats, nullptr, [&] {
      graph::save_binary(binary_path, g);
      return true;
    });
    {
      std::ifstream a(stream_path, std::ios::binary);
      std::ifstream b(binary_path, std::ios::binary);
      const std::string bytes_a{std::istreambuf_iterator<char>(a),
                                std::istreambuf_iterator<char>()};
      const std::string bytes_b{std::istreambuf_iterator<char>(b),
                                std::istreambuf_iterator<char>()};
      ok = ok && bytes_a == bytes_b;
    }
    std::filesystem::remove(stream_path);
    // Stream path: bulk ifstream reads into fresh vectors (the pre-mmap
    // loader); mmap path: load_binary adopts zero-copy views of the
    // mapped file (validation only, no array copies).
    const double stream_s = best_seconds(repeats, &ok, [&] {
      std::ifstream is(binary_path, std::ios::binary);
      const graph::Graph loaded = graph::read_binary(is);
      return csr_equal(loaded.offsets(), loaded.adjacency(), g);
    });
    const double mmap_s = best_seconds(repeats, &ok, [&] {
      const graph::Graph loaded = graph::load_binary(binary_path);
      return csr_equal(loaded.offsets(), loaded.adjacency(), g);
    });
    const auto binary_bytes = std::filesystem::file_size(binary_path);
    std::filesystem::remove(binary_path);
    binary_table.row({static_cast<std::int64_t>(n), m64, mb(binary_bytes),
                      save_stream_s, save_mmap_s, stream_s, mmap_s,
                      edges_iostream / mmap_s, edges_fast / mmap_s,
                      stream_s / mmap_s, ok ? "yes" : "NO"});
    all_identical = all_identical && ok;

    if (m >= 1000000) {
      headline_m = m;
      headline_speedup =
          std::max({headline_speedup, edges_iostream / edges_fast, edges_iostream / mmap_s});
    }

    // --- construction ------------------------------------------------------
    std::vector<Edge> edges;
    edges.reserve(m);
    g.for_each_edge([&](NodeId u, NodeId v) { edges.emplace_back(u, v); });

    ok = true;
    const double legacy_s = best_seconds(repeats, &ok, [&] {
      const LegacyCsr csr = legacy_from_edges(n, edges);
      return csr_equal(csr.offsets, csr.adjacency, g);
    });
    const double builder_s = best_seconds(repeats, &ok, [&] {
      graph::GraphBuilder builder(n);
      builder.reserve_edges(edges.size());
      for (const auto& [u, v] : edges) builder.add_edge(u, v);
      const graph::Graph built = builder.build();
      return csr_equal(built.offsets(), built.adjacency(), g);
    });
    util::ThreadPool pool(pool_threads);
    const double builder_pool_s = best_seconds(repeats, &ok, [&] {
      graph::GraphBuilder builder(n);
      builder.reserve_edges(edges.size());
      for (const auto& [u, v] : edges) builder.add_edge(u, v);
      const graph::Graph built = builder.build(&pool);
      return csr_equal(built.offsets(), built.adjacency(), g);
    });
    build_table.row({static_cast<std::int64_t>(n), m64, legacy_s, builder_s,
                     builder_pool_s, legacy_s / builder_s, ok ? "yes" : "NO"});
    all_identical = all_identical && ok;
  }

  text_table.print(std::cout);
  std::cout << '\n';
  binary_table.print(std::cout);
  std::cout << '\n';
  build_table.print(std::cout);
  std::cout << '\n';

  bench::write_bench_json(json_path, "E17", {&text_table, &binary_table, &build_table});

  if (headline_m > 0) {
    std::printf("\nheadline: best load speedup %.2fx vs iostream at m=%zu (gate >= 2x)\n",
                headline_speedup, headline_m);
    std::printf("RESULT: %s\n",
                all_identical && headline_speedup >= 2.0 ? "PASS" : "FAIL");
    return all_identical && headline_speedup >= 2.0 ? 0 : 1;
  }
  std::printf("\n(no n with m >= 10^6 in this sweep; speedup gate not evaluated)\n");
  std::printf("RESULT: %s\n", all_identical ? "PASS" : "FAIL");
  return all_identical ? 0 : 1;
}
