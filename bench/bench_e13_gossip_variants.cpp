// E13 (extension) — the paper's abstract: the early-behaviour analysis
// "can be further applied to analyse other gossip processes, such as
// rumour spreading and averaging processes".  Three gossip processes on
// the same clustered instance:
//
//  * synchronous random matching (the paper's model);
//  * asynchronous pairwise gossip (Boyd et al.), n ticks == one round;
//  * push–pull rumour spreading (informed-set process).
//
// For the two averaging processes we track the within-cluster mixing
// time vs the global mixing time of a unit load (the early/late split
// the clustering algorithm exploits).  For rumour spreading we track
// cluster saturation vs graph saturation.  A discrete-token run shows
// what indivisibility costs (discrepancy stalls at O(1)).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/rounds.hpp"
#include "linalg/vector_ops.hpp"
#include "matching/discrete.hpp"
#include "matching/gossip.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"

using namespace dgc;

namespace {

/// Rounds until the load vector is eps-close (L2) to `target`, probing
/// every `stride` rounds; advance() runs one round.
template <typename Advance>
std::size_t rounds_until(matching::MultiLoadState& state,
                         const std::vector<double>& target, double eps,
                         std::size_t max_rounds, const Advance& advance) {
  for (std::size_t t = 1; t <= max_rounds; ++t) {
    advance(state);
    double acc = 0.0;
    for (std::size_t v = 0; v < target.size(); ++v) {
      const double d = state.at(static_cast<graph::NodeId>(v), 0) - target[v];
      acc += d * d;
    }
    if (std::sqrt(acc) <= eps) return t;
  }
  return max_rounds;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 600));
  cli.reject_unknown();

  bench::banner("E13 (extension)",
                "Abstract: the early-behaviour tool applies to other gossip "
                "processes (averaging, rumour spreading)",
                "k=2 planted clusters; matching vs async gossip vs push-pull rumour");

  const auto planted = bench::make_clustered(2, size, 16, 0.01, 5);
  const auto& g = planted.graph;
  const std::size_t n = g.num_nodes();
  const auto home = planted.cluster(0);
  const graph::NodeId source = home.front();

  // Targets: within-cluster indicator and global uniform.
  std::vector<double> chi_s(n, 0.0);
  for (const auto v : home) chi_s[v] = 1.0 / static_cast<double>(home.size());
  const std::vector<double> uniform(n, 1.0 / static_cast<double>(n));
  const double eps_local = 0.25 / std::sqrt(static_cast<double>(home.size()));
  const double eps_global = 0.25 / std::sqrt(static_cast<double>(n));
  const std::size_t cap = 40000;

  util::Table avg_table("averaging processes: local vs global mixing (rounds; 1 async "
                        "round = n ticks)",
                        {"process", "rounds_to_cluster_mix", "rounds_to_global_mix",
                         "separation", "exchanges/round"});

  {
    matching::MatchingGenerator generator(g, 31);
    matching::MultiLoadState state(n, 1);
    state.set(source, 0, 1.0);
    const auto local = rounds_until(state, chi_s, eps_local, cap, [&](auto& s) {
      s.apply(generator.next());
    });
    matching::MatchingGenerator generator2(g, 31);
    matching::MultiLoadState state2(n, 1);
    state2.set(source, 0, 1.0);
    const auto global = rounds_until(state2, uniform, eps_global, cap, [&](auto& s) {
      s.apply(generator2.next());
    });
    avg_table.row({std::string("sync matching (paper)"),
                   static_cast<std::int64_t>(local), static_cast<std::int64_t>(global),
                   static_cast<double>(global) / static_cast<double>(local),
                   static_cast<double>(n) * 0.155});  // ~ n dbar/4
  }
  {
    matching::AsyncGossip gossip(g, 37);
    matching::MultiLoadState state(n, 1);
    state.set(source, 0, 1.0);
    const auto local = rounds_until(state, chi_s, eps_local, cap, [&](auto& s) {
      for (std::size_t i = 0; i < n; ++i) gossip.tick(s);
    });
    matching::AsyncGossip gossip2(g, 37);
    matching::MultiLoadState state2(n, 1);
    state2.set(source, 0, 1.0);
    const auto global = rounds_until(state2, uniform, eps_global, cap, [&](auto& s) {
      for (std::size_t i = 0; i < n; ++i) gossip2.tick(s);
    });
    avg_table.row({std::string("async gossip (1 round = n ticks)"),
                   static_cast<std::int64_t>(local), static_cast<std::int64_t>(global),
                   static_cast<double>(global) / static_cast<double>(local),
                   static_cast<double>(n)});
  }
  avg_table.print(std::cout);

  // Rumour spreading: cluster saturation vs graph saturation.
  util::Table rumor_table("push-pull rumour spreading from a cluster-0 source "
                          "(mean over 10 runs)",
                          {"rounds_to_90pct_cluster", "away_informed_then",
                           "rounds_to_full_graph"});
  double to_cluster = 0.0;
  double away_then = 0.0;
  double to_graph = 0.0;
  const auto away = planted.cluster(1);
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    matching::RumorSpreading rumor(g, 41 + trial);
    rumor.start(source);
    std::size_t t = 0;
    while (rumor.informed_within(home) < home.size() * 9 / 10 && t < 10000) {
      rumor.round();
      ++t;
    }
    to_cluster += static_cast<double>(t) / 10.0;
    away_then +=
        static_cast<double>(rumor.informed_within(away)) / 10.0;
    while (rumor.informed_count() < n && t < 10000) {
      rumor.round();
      ++t;
    }
    to_graph += static_cast<double>(t) / 10.0;
  }
  rumor_table.row({to_cluster, away_then, to_graph});
  rumor_table.print(std::cout);

  // Discrete tokens: discrepancy stalls at O(1).
  util::Table token_table("discrete tokens (randomized rounding), n tokens/node avg",
                          {"rounds", "discrepancy"});
  matching::MatchingGenerator generator(g, 53);
  matching::DiscreteLoadState tokens(n, 59);
  tokens.set(source, static_cast<std::int64_t>(n) * 10);
  std::size_t t = 0;
  for (const std::size_t checkpoint : {50ULL, 200ULL, 800ULL, 3200ULL}) {
    while (t < checkpoint) {
      tokens.apply(generator.next());
      ++t;
    }
    token_table.row({static_cast<std::int64_t>(t),
                     static_cast<std::int64_t>(tokens.discrepancy())});
  }
  token_table.print(std::cout);

  std::cout << "# PASS criteria: for both averaging processes local mixing precedes\n"
               "# global mixing by a wide separation factor (that window is what the\n"
               "# query procedure reads); rumour saturates the source cluster while\n"
               "# the other cluster is mostly uninformed; token discrepancy stalls at\n"
               "# O(1) instead of vanishing.\n";
  return 0;
}
