// E12 — design ablations around the query procedure and the round
// constant:
//  (a) threshold scale: the AAM's τ typography is ambiguous; we derived
//      τ = 1/(sqrt(2β)·n) from the misclassification condition in the
//      proof of Theorem 1.1.  Sweep the scale to show the
//      plateau around 1 and the failure modes on both sides.
//  (b) paper min-ID rule vs the argmax variant.
//  (c) rounds multiplier: accuracy saturates once T reaches the paper's
//      Θ(log n / (1−λ_{k+1})) with the 4/d̄ laziness constant.
#include <iostream>

#include "common.hpp"
#include "core/clusterer.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 750));
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  cli.reject_unknown();

  bench::banner("E12", "Ablations: query threshold reading, min-ID vs argmax, rounds "
                       "multiplier",
                "k=4 planted clusters, fixed instance, one knob at a time");

  const auto planted = bench::make_clustered(k, size, 16, 0.02, 21);

  util::Table threshold_table("(a) threshold scale sweep (paper rule)",
                              {"scale", "err", "unclustered_frac"});
  for (const double scale : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0}) {
    core::ClusterConfig config;
    config.beta = 1.0 / static_cast<double>(k);
    config.k_hint = k;
    config.rounds_multiplier = 2.0;
    config.threshold_scale = scale;
    config.seed = 33;
    const auto result = core::Clusterer(planted.graph, config).run();
    threshold_table.row(
        {scale, bench::error_rate(planted, result.labels),
         static_cast<double>(bench::unclustered_count(result.labels)) /
             static_cast<double>(planted.graph.num_nodes())});
  }
  threshold_table.print(std::cout);

  util::Table rule_table("(b) query rule head-to-head", {"rule", "err", "unclustered"});
  for (const auto rule : {core::QueryRule::kPaperMinId, core::QueryRule::kArgmax}) {
    core::ClusterConfig config;
    config.beta = 1.0 / static_cast<double>(k);
    config.k_hint = k;
    config.rounds_multiplier = 2.0;
    config.query_rule = rule;
    config.seed = 33;
    const auto result = core::Clusterer(planted.graph, config).run();
    rule_table.row({std::string(rule == core::QueryRule::kPaperMinId ? "paper_min_id"
                                                                     : "argmax"),
                    bench::error_rate(planted, result.labels),
                    static_cast<std::int64_t>(bench::unclustered_count(result.labels))});
  }
  rule_table.print(std::cout);

  util::Table rounds_table("(c) rounds multiplier sweep (paper rule)",
                           {"multiplier", "T", "err", "unclustered_frac"});
  for (const double mult : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}) {
    core::ClusterConfig config;
    config.beta = 1.0 / static_cast<double>(k);
    config.k_hint = k;
    config.rounds_multiplier = mult;
    config.seed = 33;
    const auto result = core::Clusterer(planted.graph, config).run();
    rounds_table.row({mult, static_cast<std::int64_t>(result.rounds),
                      bench::error_rate(planted, result.labels),
                      static_cast<double>(bench::unclustered_count(result.labels)) /
                          static_cast<double>(planted.graph.num_nodes())});
  }
  rounds_table.print(std::cout);
  std::cout << "# PASS criteria: (a) plateau around scale 1, unclustered mass for large\n"
               "# scales, wrong-label mass for tiny scales; (b) argmax matches or beats\n"
               "# the paper rule; (c) accuracy saturates near multiplier 1.\n";
  return 0;
}
