// E1 — Lemma 2.1: the random matching protocol satisfies
//   E[M(t)] = (1 − d̄/4) I + (d̄/4) P,   d̄ = (1 − 1/(2d))^{d−1},
// and every sampled M(t) is a projection.
//
// Monte-Carlo estimate of E[M] on random d-regular graphs, compared
// entrywise against the closed form; plus the per-round matched-edge
// count against its expectation n·d̄/4 and the ⌊n/2⌋ hard cap.
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "graph/generators.hpp"
#include "matching/load_state.hpp"
#include "matching/protocol.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 64));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 40000));
  cli.reject_unknown();

  bench::banner("E1",
                "Lemma 2.1: E[M] = (1 - dbar/4) I + (dbar/4) P; M is a projection",
                "random d-regular graphs, Monte-Carlo over matchings");

  util::Table table("lemma 2.1 expectation check (abs deviation of empirical E[M])",
                    {"d", "dbar", "max_dev_offdiag", "max_dev_diag", "edges/round",
                     "expected_edges", "cap_n_over_2", "projection_ok"});

  for (const std::size_t d : {8ULL, 16ULL, 32ULL}) {
    util::Rng rng(100 + d);
    const auto g = graph::random_regular(n, d, rng);
    matching::MatchingGenerator generator(g, 7 * d + 1);
    const double d_bar = std::pow(1.0 - 1.0 / (2.0 * static_cast<double>(d)),
                                  static_cast<double>(d) - 1.0);

    // Accumulate empirical E[M].
    std::vector<double> diag(n, 0.0);
    std::vector<double> offdiag(static_cast<std::size_t>(n) * n, 0.0);
    double total_edges = 0.0;
    std::size_t max_edges = 0;
    bool projection_ok = true;
    for (std::size_t t = 0; t < rounds; ++t) {
      const auto m = generator.next();
      total_edges += static_cast<double>(m.edges.size());
      max_edges = std::max(max_edges, m.edges.size());
      for (graph::NodeId v = 0; v < n; ++v) {
        diag[v] += m.is_matched(v) ? 0.5 : 1.0;
      }
      for (const auto& [u, v] : m.edges) {
        offdiag[static_cast<std::size_t>(u) * n + v] += 0.5;
        offdiag[static_cast<std::size_t>(v) * n + u] += 0.5;
      }
      // Projection: applying the matching twice must equal once.
      if (t < 50) {
        matching::MultiLoadState once(n, 1);
        for (graph::NodeId v = 0; v < n; ++v) once.set(v, 0, 0.37 * v);
        matching::MultiLoadState twice = once;
        once.apply(m);
        twice.apply(m);
        twice.apply(m);
        for (graph::NodeId v = 0; v < n; ++v) {
          projection_ok = projection_ok && once.at(v, 0) == twice.at(v, 0);
        }
      }
    }

    const double expected_diag = 1.0 - d_bar / 4.0;
    const double expected_off = d_bar / (4.0 * static_cast<double>(d));
    double max_dev_diag = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      max_dev_diag = std::max(max_dev_diag,
                              std::abs(diag[v] / static_cast<double>(rounds) - expected_diag));
    }
    double max_dev_off = 0.0;
    for (graph::NodeId u = 0; u < n; ++u) {
      for (graph::NodeId v = 0; v < n; ++v) {
        if (u == v) continue;
        const double expected = g.has_edge(u, v) ? expected_off : 0.0;
        max_dev_off = std::max(
            max_dev_off,
            std::abs(offdiag[static_cast<std::size_t>(u) * n + v] /
                         static_cast<double>(rounds) -
                     expected));
      }
    }

    table.row({static_cast<std::int64_t>(d), d_bar, max_dev_off, max_dev_diag,
               total_edges / static_cast<double>(rounds),
               static_cast<double>(n) * d_bar / 4.0,
               static_cast<std::int64_t>(max_edges <= n / 2 ? 1 : 0),
               static_cast<std::int64_t>(projection_ok ? 1 : 0)});
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: deviations O(1/sqrt(rounds)); edges/round ~ n*dbar/4;\n"
               "# cap and projection flags = 1.\n";
  return 0;
}
