// E10 — §1.2: for k = Θ(1) clusters of expanders the algorithm finishes
// in O(log n) rounds with message complexity O(n log n); the
// non-distributed implementation runs in ~O(n log n) time.  We time the
// in-memory engine (excluding instance generation) over an n sweep and
// report seconds, ns per node-round-dimension (should be flat), and the
// estimated total words (from the closed form validated in E4).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/clusterer.hpp"
#include "util/timer.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto max_log2 = static_cast<int>(cli.get_int("max_log2", 17));
  cli.reject_unknown();

  bench::banner("E10", "Section 1.2: O(log n) rounds, O(n log n) messages for k = Theta(1); "
                       "near-linear sequential time",
                "k=4 planted expander clusters; n sweep; in-memory engine timing");

  util::Table table("wall-clock scaling of the in-memory engine",
                    {"n", "T", "s_dims", "run_seconds", "ns/(n*T*s)", "err_argmax",
                     "T/ln(n)"});

  for (int log2n = 12; log2n <= max_log2; ++log2n) {
    const auto n = static_cast<graph::NodeId>(1) << log2n;
    const auto planted = bench::make_clustered(k, n / k, 16, 0.02, 2000 + static_cast<std::uint64_t>(log2n));

    core::ClusterConfig config;
    config.beta = 1.0 / static_cast<double>(k);
    config.k_hint = k;
    config.rounds_multiplier = 1.5;
    config.query_rule = core::QueryRule::kArgmax;
    config.seed = 5;

    // Exclude the spectral T estimate from the timed region by fixing
    // rounds first (the paper assumes T is known).
    const core::Clusterer probe(planted.graph, config);
    const auto pilot = probe.run();
    config.rounds = pilot.rounds;

    util::Timer timer;
    const auto result = core::Clusterer(planted.graph, config).run();
    const double seconds = timer.seconds();
    const double s = static_cast<double>(result.seeds.size());
    const double work = static_cast<double>(n) * static_cast<double>(result.rounds) * s;

    table.row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(result.rounds),
               static_cast<std::int64_t>(result.seeds.size()), seconds,
               seconds * 1e9 / work, bench::error_rate(planted, result.labels),
               static_cast<double>(result.rounds) / std::log(static_cast<double>(n))});
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: ns/(n*T*s) roughly flat (near-linear engine);\n"
               "# T/ln(n) roughly flat (O(log n) rounds at fixed gap).\n";
  return 0;
}
