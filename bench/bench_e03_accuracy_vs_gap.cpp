// E3 — Theorem 1.1 accuracy: on well-clustered graphs (gap condition (2)
// on ϒ = (1−λ_{k+1})/ρ(k)) the number of misclassified nodes is o(n).
// We sweep the planted conductance, which sweeps ϒ across ~2 orders of
// magnitude, and record the misclassified fraction under both query
// rules.  The claim predicts errors vanishing as ϒ grows and degrading
// gracefully as the instance leaves the well-clustered regime.
#include <iostream>

#include "common.hpp"
#include "core/clusterer.hpp"
#include "core/spectral_structure.hpp"
#include "util/timer.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 1000));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 16));
  cli.reject_unknown();

  bench::banner("E3", "Theorem 1.1: misclassified nodes = o(n) under the gap condition",
                "k=4 planted clusters, conductance sweep -> Upsilon sweep");

  util::Table table("misclassification vs cluster strength",
                    {"phi_target", "rho(k)", "1-lambda_k1", "Upsilon", "err_paper",
                     "unclustered", "err_argmax", "T"});

  for (const double phi : {0.005, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.20}) {
    const auto planted = bench::make_clustered(k, size, degree, phi, 42);
    const auto st = core::analyze_structure(planted);

    core::ClusterConfig config;
    config.beta = 1.0 / static_cast<double>(k);
    config.k_hint = k;
    config.rounds_multiplier = 2.0;
    config.seed = 9;
    const auto paper = core::Clusterer(planted.graph, config).run();
    config.query_rule = core::QueryRule::kArgmax;
    const auto argmax = core::Clusterer(planted.graph, config).run();

    table.row({phi, st.rho_k, 1.0 - st.lambda_k1, st.upsilon,
               bench::error_rate(planted, paper.labels),
               static_cast<std::int64_t>(bench::unclustered_count(paper.labels)),
               bench::error_rate(planted, argmax.labels),
               static_cast<std::int64_t>(paper.rounds)});
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: err -> 0 as Upsilon grows; smooth degradation as the\n"
               "# gap condition fails (small Upsilon).\n";
  return 0;
}
