// E5 — §1 motivation: a *simple, distributed* algorithm should match the
// clustering quality of centralised spectral methods on well-clustered
// graphs.  Head-to-head on the paper-faithful planted family and on SBM
// instances: dgc (paper rule and argmax), spectral clustering, label
// propagation, Becchetti-style averaging dynamics, power-iteration
// clustering — misclassification and wall-clock per method.
#include <iostream>

#include "baselines/averaging_dynamics.hpp"
#include "baselines/label_propagation.hpp"
#include "baselines/louvain.hpp"
#include "baselines/power_iteration.hpp"
#include "baselines/spectral.hpp"
#include "common.hpp"
#include "core/clusterer.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace dgc;

namespace {

double rate32(const graph::PlantedGraph& planted, const std::vector<std::uint32_t>& labels,
              std::uint32_t num_labels) {
  return metrics::misclassification_rate(planted.membership, planted.num_clusters, labels,
                                         std::max(1u, num_labels));
}

void run_family(const std::string& family, const graph::PlantedGraph& planted,
                std::uint32_t k, util::Table& table) {
  // dgc, paper rule — averaged over run seeds because the guarantee is
  // "with constant probability" (a cluster can miss all seeding trials).
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k);
  config.k_hint = k;
  config.rounds_multiplier = 2.0;
  if (!planted.graph.is_regular()) {
    config.query_rule = core::QueryRule::kArgmax;  // threshold rule assumes regular
  }
  util::Timer timer;
  std::vector<double> dgc_errs;
  const std::uint64_t kRunSeeds[] = {3, 5, 7, 9, 11};
  for (const auto seed : kRunSeeds) {
    config.seed = seed;
    const auto dgc_result = core::Clusterer(planted.graph, config).run();
    dgc_errs.push_back(bench::error_rate(planted, dgc_result.labels));
  }
  const double dgc_seconds = timer.seconds() / 5.0;
  // Median run: Theorem 1.1 only promises success with constant
  // probability (e.g. the seeding can draw too few seeds), so the median
  // is the representative statistic; E11 quantifies the failure modes.
  const double dgc_err = util::median(dgc_errs);

  timer.reset();
  baselines::SpectralOptions spectral_options;
  spectral_options.clusters = k;
  const auto spectral = baselines::spectral_clustering(planted.graph, spectral_options);
  const double spectral_seconds = timer.seconds();

  timer.reset();
  const auto lp = baselines::label_propagation(planted.graph, {});
  const double lp_seconds = timer.seconds();

  timer.reset();
  baselines::AveragingOptions avg_options;
  avg_options.clusters = k;
  const auto avg = baselines::averaging_dynamics(planted.graph, avg_options);
  const double avg_seconds = timer.seconds();

  timer.reset();
  baselines::PicOptions pic_options;
  pic_options.clusters = k;
  const auto pic = baselines::power_iteration_clustering(planted.graph, pic_options);
  const double pic_seconds = timer.seconds();

  timer.reset();
  const auto lou = baselines::louvain(planted.graph, {});
  const double lou_seconds = timer.seconds();

  table.row({family, static_cast<std::int64_t>(planted.graph.num_nodes()),
             static_cast<std::int64_t>(k), dgc_err, dgc_seconds,
             rate32(planted, spectral.labels, k), spectral_seconds,
             rate32(planted, lp.labels, lp.num_labels), lp_seconds,
             rate32(planted, avg.labels, k), avg_seconds,
             rate32(planted, pic.labels, k), pic_seconds,
             rate32(planted, lou.labels, lou.num_communities), lou_seconds});
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 1000));
  cli.reject_unknown();

  bench::banner("E5", "Simple distributed load balancing matches centralised spectral "
                      "quality on well-clustered graphs",
                "planted regular clusters and SBM; 5 algorithms head-to-head");

  util::Table table("misclassification rate / seconds per method",
                    {"family", "n", "k", "dgc", "s", "spectral", "s", "labelprop", "s",
                     "averaging", "s", "powiter", "s", "louvain", "s"});

  for (const std::uint32_t k : {2u, 4u}) {
    const auto planted = bench::make_clustered(k, size, 16, 0.02, 11 * k);
    run_family("regular-phi0.02", planted, k, table);
    const auto hard = bench::make_clustered(k, size, 16, 0.08, 13 * k);
    run_family("regular-phi0.08", hard, k, table);
  }
  {
    graph::SbmSpec spec;
    spec.nodes_per_cluster = size;
    spec.clusters = 2;
    spec.p_in = 0.03;
    spec.p_out = 0.001;
    util::Rng rng(17);
    const auto planted = graph::stochastic_block_model(spec, rng);
    run_family("sbm-strong", planted, 2, table);
  }
  {
    graph::SbmSpec spec;
    spec.nodes_per_cluster = size;
    spec.clusters = 4;
    spec.p_in = 0.03;
    spec.p_out = 0.002;
    util::Rng rng(19);
    const auto planted = graph::stochastic_block_model(spec, rng);
    run_family("sbm-4way", planted, 4, table);
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: dgc within a few percent of spectral on well-clustered\n"
               "# families; both degrade together on the hard family.\n";
  return 0;
}
