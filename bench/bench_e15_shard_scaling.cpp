// E15 — shard scaling of the sharded parallel engine.
//
// The protocol is embarrassingly parallel within a round: matched pairs
// average disjoint load-vector rows, so P shards can apply their
// intra-shard pairs concurrently and only cross-shard pairs cost
// inter-shard traffic.  We sweep P ∈ {1,2,4,8} (and P = hardware) over
// an n sweep and report wall-clock seconds, speedup vs. the dense
// single-threaded engine, cross-shard words, and the partition edge cut
// — plus a bit-equality check against the dense labels, since sharding
// must not change a single label.
#include <cmath>
#include <iostream>
#include <thread>

#include "common.hpp"
#include "core/clusterer.hpp"
#include "core/rounds.hpp"
#include "core/sharded_clusterer.hpp"
#include "util/timer.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto min_log2 = static_cast<int>(cli.get_int("min_log2", 13));
  const auto max_log2 = static_cast<int>(cli.get_int("max_log2", 16));
  const bool bfs = cli.get_bool("bfs", false);
  const std::string json_path = cli.get("json", "BENCH_E15.json");
  cli.reject_unknown();
  const auto mode = bfs ? graph::PartitionMode::kBfs : graph::PartitionMode::kRange;

  bench::banner("E15",
                "Intra-round parallelism: matched pairs average disjoint rows, so "
                "sharded apply is bit-identical to the dense engine and scales with P",
                "k=4 planted expander clusters; n sweep x P in {1,2,4,8,hw}; "
                "range partition (pass --bfs for BFS-grown shards)");

  const auto hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::uint32_t> shard_counts{1, 2, 4, 8};
  if (hw > 8) shard_counts.push_back(hw);

  util::Table table("sharded engine vs dense engine",
                    {"n", "P", "mode", "T", "s_dims", "dense_s", "sharded_s", "speedup",
                     "cross_words", "cut_frac", "labels_eq"});

  for (int log2n = min_log2; log2n <= max_log2; ++log2n) {
    const auto n = static_cast<graph::NodeId>(1) << log2n;
    const auto planted =
        bench::make_clustered(k, n / k, 16, 0.02, 1500 + static_cast<std::uint64_t>(log2n));

    core::ClusterConfig config;
    config.beta = 1.0 / static_cast<double>(k);
    config.k_hint = k;
    config.rounds_multiplier = 1.5;
    config.query_rule = core::QueryRule::kArgmax;
    config.seed = 5;

    // Fix T up front (the paper assumes T is known) so the timed region is
    // pure averaging + query for every engine.
    config.rounds =
        core::recommended_rounds(planted.graph, k, config.rounds_multiplier, config.seed)
            .rounds;

    util::Timer dense_timer;
    const auto dense = core::Clusterer(planted.graph, config).run();
    const double dense_seconds = dense_timer.seconds();

    for (const auto P : shard_counts) {
      core::ShardOptions options;
      options.shards = P;
      options.mode = mode;
      const core::ShardedClusterer engine(planted.graph, config, options);
      util::Timer timer;
      const auto report = engine.run();
      const double seconds = timer.seconds();

      const double m = static_cast<double>(planted.graph.num_edges());
      table.row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(P),
                 std::string(graph::partition_mode_name(mode)),
                 static_cast<std::int64_t>(report.result.rounds),
                 static_cast<std::int64_t>(report.result.seeds.size()), dense_seconds,
                 seconds, dense_seconds / seconds,
                 static_cast<std::int64_t>(report.traffic.words),
                 static_cast<double>(report.partition_edge_cut) / m,
                 std::string(report.result.labels == dense.labels ? "yes" : "NO")});
    }
  }
  table.print(std::cout);
  bench::write_bench_json(json_path, "E15", {&table});
  std::cout << "# PASS criteria: labels_eq = yes everywhere (sharding never changes a\n"
               "# label); speedup > 1 for P > 1 on multi-core hardware, growing with n;\n"
               "# cross_words tracks the partition cut (P=1 => 0 cross words).\n";
  return 0;
}
