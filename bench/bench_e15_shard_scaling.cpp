// E15 — shard scaling and partition quality of the sharded engine.
//
// The protocol is embarrassingly parallel within a round: matched pairs
// average disjoint load-vector rows, so P shards can apply their
// intra-shard pairs concurrently and only cross-shard pairs cost
// inter-shard traffic.  Cross-shard words therefore track the partition
// edge cut, which makes the partitioner a traffic knob: this harness
// sweeps P and the partition mode (range | bfs | refined multilevel)
// over two instances and *gates* on the results (exit 1 on regression,
// like E16):
//
//   * flat      — k planted expander clusters (the paper's §1.2
//     instance).  Expander clusters have no internal sub-structure, so
//     any balanced P-way split of a cluster pays Θ(cluster volume / P)
//     cut; no partitioner can beat that bound by much, and the gate only
//     requires refined ≤ min(range, bfs) cut in every cell.
//   * hierarchical — sub-expanders nested in parent clusters (two-tier
//     clustered_regular: sibling tier at phi_sub, parent tier at
//     phi_inter).  Here a cut-minimising partitioner can place whole
//     sub-clusters per shard while BFS growth straddles them, and the
//     gate requires words(bfs) / words(refined) >= --min_words_ratio
//     (default 5) at the largest P and n benched.
//
// Both tables also gate the invariants: labels bit-identical to the
// dense engine in every cell, and zero cross words at P = 1.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <thread>

#include "common.hpp"
#include "core/clusterer.hpp"
#include "core/rounds.hpp"
#include "core/sharded_clusterer.hpp"
#include "util/timer.hpp"

using namespace dgc;

namespace {

constexpr graph::PartitionMode kModes[] = {
    graph::PartitionMode::kRange, graph::PartitionMode::kBfs,
    graph::PartitionMode::kRefined};

core::ClusterConfig base_config(std::uint32_t k) {
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k);
  config.k_hint = k;
  config.rounds_multiplier = 1.5;
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = 5;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto min_log2 = static_cast<int>(cli.get_int("min_log2", 13));
  const auto max_log2 = static_cast<int>(cli.get_int("max_log2", 16));
  const double min_words_ratio = cli.get_double("min_words_ratio", 5.0);
  const std::string json_path = cli.get("json", "BENCH_E15.json");
  cli.reject_unknown();

  bench::banner("E15",
                "Cross-shard words track the partition cut: the refined multilevel "
                "partitioner never loses to range/bfs, and cuts traffic by >= "
                "min_words_ratio on hierarchical instances — at bit-identical labels",
                "flat: k planted expander clusters; hierarchical: 2k sub-expanders "
                "in k parent groups; n sweep x P in {1,2,4,8,hw} x partition mode");

  const auto hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::uint32_t> flat_shards{1, 2, 4, 8};
  if (hw > 8) flat_shards.push_back(hw);
  const std::vector<std::uint32_t> hier_shards{2, 4, 8};

  std::vector<std::string> gate_failures;
  const auto check = [&](bool ok, const std::string& what) {
    if (!ok) gate_failures.push_back(what);
  };

  // ---- Flat instance: refined must never lose to range or bfs --------
  util::Table flat("flat planted instance: sharded vs dense",
                   {"n", "P", "mode", "T", "s_dims", "dense_s", "sharded_s",
                    "speedup", "cut", "cross_words", "labels_eq"});
  for (int log2n = min_log2; log2n <= max_log2; ++log2n) {
    const auto n = static_cast<graph::NodeId>(1) << log2n;
    const auto planted =
        bench::make_clustered(k, n / k, 16, 0.02, 1500 + static_cast<std::uint64_t>(log2n));

    core::ClusterConfig config = base_config(k);
    // Fix T up front (the paper assumes T is known) so the timed region is
    // pure averaging + query for every engine.
    config.rounds =
        core::recommended_rounds(planted.graph, k, config.rounds_multiplier, config.seed)
            .rounds;

    util::Timer dense_timer;
    const auto dense = core::Clusterer(planted.graph, config).run();
    const double dense_seconds = dense_timer.seconds();

    for (const auto P : flat_shards) {
      std::map<graph::PartitionMode, std::uint64_t> cut_of;
      for (const auto mode : kModes) {
        core::ShardOptions options;
        options.shards = P;
        options.mode = mode;
        const core::ShardedClusterer engine(planted.graph, config, options);
        util::Timer timer;
        const auto report = engine.run();
        const double seconds = timer.seconds();
        cut_of[mode] = report.partition_edge_cut;

        const bool labels_eq = report.result.labels == dense.labels;
        const std::string cell = "flat n=" + std::to_string(n) +
                                 " P=" + std::to_string(P) + " mode=" +
                                 std::string(graph::partition_mode_name(mode));
        check(labels_eq, cell + ": labels differ from the dense engine");
        if (P == 1) check(report.traffic.words == 0, cell + ": cross words at P=1");

        flat.row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(P),
                  std::string(graph::partition_mode_name(mode)),
                  static_cast<std::int64_t>(report.result.rounds),
                  static_cast<std::int64_t>(report.result.seeds.size()), dense_seconds,
                  seconds, dense_seconds / seconds,
                  static_cast<std::int64_t>(report.partition_edge_cut),
                  static_cast<std::int64_t>(report.traffic.words),
                  std::string(labels_eq ? "yes" : "NO")});
      }
      const std::uint64_t best_baseline =
          std::min(cut_of[graph::PartitionMode::kRange], cut_of[graph::PartitionMode::kBfs]);
      check(cut_of[graph::PartitionMode::kRefined] <= best_baseline,
            "flat n=" + std::to_string(n) + " P=" + std::to_string(P) +
                ": refined cut " + std::to_string(cut_of[graph::PartitionMode::kRefined]) +
                " > best baseline " + std::to_string(best_baseline));
    }
  }
  flat.print(std::cout);

  // ---- Hierarchical instance: refined must beat bfs on words ---------
  // 2k sub-expanders of n/(2k) nodes, paired into k parent groups:
  // sibling tier (within a group) rewired to phi_sub, parent tier
  // (across groups) to phi_inter.  BFS growth from one seed straddles
  // sub-cluster boundaries; the multilevel partitioner recovers them.
  util::Table hier("hierarchical instance: cross-shard words by partition mode",
                   {"n", "P", "mode", "T", "cut", "cross_words", "words_vs_refined",
                    "labels_eq"});
  const std::uint32_t k2 = 2 * k;
  double gate_ratio = 0.0;  // words(bfs)/words(refined) at max n, max P
  for (int log2n = min_log2; log2n <= max_log2; ++log2n) {
    const auto n = static_cast<graph::NodeId>(1) << log2n;
    graph::ClusteredRegularSpec spec;
    spec.cluster_sizes.assign(k2, n / k2);
    spec.degree = 16;
    spec.sibling_group_size = 2;
    spec.sibling_swaps = graph::swaps_for_conductance(spec, 0.04);
    spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.015);
    util::Rng rng(2500 + static_cast<std::uint64_t>(log2n));
    const auto planted = graph::clustered_regular(spec, rng);

    core::ClusterConfig config = base_config(k2);
    config.rounds =
        core::recommended_rounds(planted.graph, k2, config.rounds_multiplier, config.seed)
            .rounds;
    const auto dense = core::Clusterer(planted.graph, config).run();

    for (const auto P : hier_shards) {
      std::map<graph::PartitionMode, std::uint64_t> words_of;
      std::map<graph::PartitionMode, core::ShardedReport> report_of;
      for (const auto mode : kModes) {
        core::ShardOptions options;
        options.shards = P;
        options.mode = mode;
        const core::ShardedClusterer engine(planted.graph, config, options);
        report_of[mode] = engine.run();
        words_of[mode] = report_of[mode].traffic.words;
        const std::string cell = "hier n=" + std::to_string(n) +
                                 " P=" + std::to_string(P) + " mode=" +
                                 std::string(graph::partition_mode_name(mode));
        check(report_of[mode].result.labels == dense.labels,
              cell + ": labels differ from the dense engine");
      }
      const double refined_words =
          static_cast<double>(std::max<std::uint64_t>(1, words_of[graph::PartitionMode::kRefined]));
      for (const auto mode : kModes) {
        const auto& report = report_of[mode];
        hier.row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(P),
                  std::string(graph::partition_mode_name(mode)),
                  static_cast<std::int64_t>(report.result.rounds),
                  static_cast<std::int64_t>(report.partition_edge_cut),
                  static_cast<std::int64_t>(report.traffic.words),
                  static_cast<double>(report.traffic.words) / refined_words,
                  std::string(report.result.labels == dense.labels ? "yes" : "NO")});
      }
      if (log2n == max_log2 && P == hier_shards.back()) {
        gate_ratio =
            static_cast<double>(words_of[graph::PartitionMode::kBfs]) / refined_words;
      }
    }
  }
  hier.print(std::cout);
  check(gate_ratio >= min_words_ratio,
        "hierarchical words(bfs)/words(refined) = " + std::to_string(gate_ratio) +
            " < required " + std::to_string(min_words_ratio) + " at P=" +
            std::to_string(hier_shards.back()) + ", n=2^" + std::to_string(max_log2));

  bench::write_bench_json(json_path, "E15", {&flat, &hier});

  if (!gate_failures.empty()) {
    for (const auto& f : gate_failures) std::cout << "# FAIL: " << f << "\n";
    return 1;
  }
  std::cout << "# PASS: labels bit-identical to dense in every cell; P=1 => 0 cross\n"
               "# words; refined cut <= min(range, bfs) on every flat cell; and\n"
               "# hierarchical words(bfs)/words(refined) = "
            << gate_ratio << " >= " << min_words_ratio << ".\n";
  return 0;
}
