// E2 — Theorem 1.1 round complexity: T = Θ(log n / (1 − λ_{k+1})) rounds
// suffice.  Fixed per-cluster structure (k = 4 equal d-regular expander
// clusters, conductance ≈ phi) while n doubles; we measure the first
// round at which misclassification drops to ≤ 2% and compare its growth
// against log n (the gap 1 − λ_{k+1} is n-independent here, so the claim
// predicts rounds_to_2pct / ln n ≈ constant).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/clusterer.hpp"
#include "core/rounds.hpp"
#include "core/seeding.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"
#include "matching/protocol.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/timer.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 16));
  const double phi = cli.get_double("phi", 0.02);
  const auto max_log2 = static_cast<int>(cli.get_int("max_log2", 16));
  cli.reject_unknown();

  bench::banner("E2", "Theorem 1.1: T = Theta(log n / (1 - lambda_{k+1})) rounds suffice",
                "k=4 regular expander clusters, fixed conductance, n sweep");

  util::Table table("rounds until <=2% misclassification vs n",
                    {"n", "gap(1-l_k1)", "T_estimate", "rounds_to_2pct",
                     "rounds/ln(n)", "err_at_T", "seconds"});

  for (int log2n = 12; log2n <= max_log2; ++log2n) {
    const auto n = static_cast<graph::NodeId>(1) << log2n;
    const auto planted = bench::make_clustered(k, n / k, degree, phi, 1000 + static_cast<std::uint64_t>(log2n));
    util::Timer timer;

    const auto est = core::recommended_rounds(planted.graph, k, 1.0);
    const double beta = 1.0 / static_cast<double>(k);

    // Run the averaging procedure manually so we can probe the query
    // every few rounds.
    const std::size_t trials = core::default_seeding_trials(beta);
    const std::uint64_t seed = 555 + static_cast<std::uint64_t>(log2n);
    const auto node_ids = core::assign_node_ids(n, seed);
    const auto seeds = core::run_seeding(n, trials, seed);
    const std::size_t s = seeds.size();
    std::vector<std::uint64_t> seed_ids(s);
    for (std::size_t i = 0; i < s; ++i) seed_ids[i] = node_ids[seeds[i]];

    matching::MultiLoadState state(n, s);
    for (std::size_t i = 0; i < s; ++i) state.set(seeds[i], i, 1.0);
    matching::MatchingGenerator generator(
        planted.graph, core::derive_seed(seed, core::Stream::kMatching));
    const double tau = core::query_threshold(1.0, beta, n);

    auto measure_error = [&]() {
      std::vector<std::uint64_t> labels(n);
      for (graph::NodeId v = 0; v < n; ++v) {
        labels[v] = core::query_label(state.row(v), seed_ids, tau,
                                                 core::QueryRule::kPaperMinId);
      }
      return bench::error_rate(planted, labels);
    };

    const std::size_t probe_every = 5;
    const std::size_t max_rounds = est.rounds * 4;
    std::size_t rounds_to_target = 0;
    double err_at_T = -1.0;
    for (std::size_t t = 0; t < max_rounds; t += probe_every) {
      matching::run_process(generator, state, probe_every);
      const double err = measure_error();
      if (t + probe_every >= est.rounds && err_at_T < 0.0) err_at_T = err;
      if (err <= 0.02) {
        rounds_to_target = t + probe_every;
        break;
      }
    }
    if (err_at_T < 0.0) err_at_T = measure_error();

    table.row({static_cast<std::int64_t>(n), est.spectral_gap,
               static_cast<std::int64_t>(est.rounds),
               static_cast<std::int64_t>(rounds_to_target),
               static_cast<double>(rounds_to_target) / std::log(static_cast<double>(n)),
               err_at_T, timer.seconds()});
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: rounds/ln(n) roughly constant (the paper's Theta(log n)\n"
               "# scaling at fixed gap); err_at_T below 2% at the T estimate.\n";
  return 0;
}
