#include "common.hpp"

#include <iostream>

#include "util/rng.hpp"

namespace dgc::bench {

void banner(const std::string& experiment_id, const std::string& claim,
            const std::string& workload) {
  std::cout << "######################################################################\n"
            << "# Experiment " << experiment_id << "\n"
            << "# Claim:    " << claim << "\n"
            << "# Workload: " << workload << "\n"
            << "######################################################################\n\n";
}

graph::PlantedGraph make_clustered(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                   double phi, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

double error_rate(const graph::PlantedGraph& planted,
                  const std::vector<std::uint64_t>& labels) {
  return metrics::misclassification_rate(planted.membership, planted.num_clusters, labels);
}

std::size_t unclustered_count(const std::vector<std::uint64_t>& labels) {
  std::size_t count = 0;
  for (const auto label : labels) count += label == metrics::kUnclustered;
  return count;
}

}  // namespace dgc::bench
