#include "common.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <variant>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dgc::bench {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_cell(std::string& out, const util::Table::Cell& cell) {
  if (std::holds_alternative<std::string>(cell)) {
    append_json_string(out, std::get<std::string>(cell));
  } else if (std::holds_alternative<std::int64_t>(cell)) {
    out += std::to_string(std::get<std::int64_t>(cell));
  } else {
    const double v = std::get<double>(cell);
    if (!std::isfinite(v)) {
      out += "null";
    } else {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      out += buf;
    }
  }
}

}  // namespace

void banner(const std::string& experiment_id, const std::string& claim,
            const std::string& workload) {
  std::cout << "######################################################################\n"
            << "# Experiment " << experiment_id << "\n"
            << "# Claim:    " << claim << "\n"
            << "# Workload: " << workload << "\n"
            << "######################################################################\n\n";
}

graph::PlantedGraph make_clustered(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                   double phi, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

double error_rate(const graph::PlantedGraph& planted,
                  const std::vector<std::uint64_t>& labels) {
  return metrics::misclassification_rate(planted.membership, planted.num_clusters, labels);
}

std::size_t unclustered_count(const std::vector<std::uint64_t>& labels) {
  std::size_t count = 0;
  for (const auto label : labels) count += label == metrics::kUnclustered;
  return count;
}

void write_bench_json(const std::string& path, const std::string& experiment_id,
                      const std::vector<const util::Table*>& tables) {
  std::string out;
  out += "{\n  \"experiment\": ";
  append_json_string(out, experiment_id);
  out += ",\n  \"tables\": [";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const util::Table& table = *tables[t];
    out += t == 0 ? "\n" : ",\n";
    out += "    {\n      \"title\": ";
    append_json_string(out, table.title());
    out += ",\n      \"columns\": [";
    const auto& columns = table.columns();
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) out += ", ";
      append_json_string(out, columns[c]);
    }
    out += "],\n      \"rows\": [";
    const auto& rows = table.cell_rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      out += r == 0 ? "\n" : ",\n";
      out += "        [";
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        if (c != 0) out += ", ";
        append_json_cell(out, rows[r][c]);
      }
      out += ']';
    }
    out += rows.empty() ? "]\n    }" : "\n      ]\n    }";
  }
  out += tables.empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::ofstream file(path, std::ios::trunc);
  DGC_REQUIRE(file.good(), "cannot open bench JSON output file");
  file << out;
  DGC_REQUIRE(file.good(), "failed to write bench JSON output file");
  std::cout << "# wrote " << path << "\n";
}

}  // namespace dgc::bench
