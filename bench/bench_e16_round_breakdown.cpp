// E16 — round-loop hot-path breakdown and the skip-zeros/reuse speedup.
//
// The protocol's entire runtime is the round loop: T rounds, each
// flipping n coins, resolving a matching, and averaging matched rows.
// This bench (1) times the three phases per run with the in-place APIs,
// (2) compares the shipped dense engine against a faithful re-creation
// of the pre-overhaul loop — by-value coins/matching with fresh
// allocations every round, a per-round edge sort, and dense averaging
// with no active-support skipping — and (3) plots the active-support
// growth that makes early-round skipping pay (§3.2: only seed rows start
// nonzero and support at most doubles per round).  Thread scaling of the
// coin phase is reported but not gated (CI may be 1-core).
//
// PASS criteria (enforced by exit code): labels_eq = yes everywhere
// (the hot path is pure scheduling) and speedup >= 2.5 at n >= 65536
// from skip-zeros + buffer reuse + sparse-active storage + the SIMD
// coin/averaging kernels + the schedule-ahead windowed apply (the timed
// engine runs with parallel_coins off).  Results also land in
// BENCH_E16.json via bench::write_bench_json.
#include <algorithm>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/clusterer.hpp"
#include "core/engine.hpp"
#include "core/rounds.hpp"
#include "core/seeding.hpp"
#include "matching/load_state.hpp"
#include "matching/protocol.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace dgc;

namespace {

struct BaselineRun {
  double seconds = 0.0;
  std::vector<std::uint64_t> labels;
};

/// The seed repository's resolve, verbatim: fresh probe-count and prober
/// arrays every round, two scatter/sweep passes over separate arrays,
/// and a final sort of the edge list.  Kept here (not in the library) so
/// the baseline measures the pre-overhaul round loop even as the shipped
/// resolve keeps improving.
matching::Matching legacy_resolve(const graph::Graph& g,
                                  const matching::MatchingGenerator::Coins& coins) {
  const graph::NodeId n = g.num_nodes();
  std::vector<std::uint32_t> probes_received(n, 0);
  std::vector<graph::NodeId> prober(n, graph::kInvalidNode);
  for (graph::NodeId v = 0; v < n; ++v) {
    const graph::NodeId target = coins.probe[v];
    if (target == graph::kInvalidNode) continue;
    ++probes_received[target];
    prober[target] = v;
  }
  matching::Matching m;
  m.partner.assign(n, graph::kInvalidNode);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (coins.active[v] || probes_received[v] != 1) continue;
    const graph::NodeId u = prober[v];
    m.partner[v] = u;
    m.partner[u] = v;
    m.edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(m.edges.begin(), m.edges.end());
  return m;
}

/// The pre-overhaul dense hot loop, reproduced faithfully: every round
/// allocates fresh Coins / Matching / resolve scratch, sorts the edge
/// list, and averages every matched pair densely.
BaselineRun run_baseline(const graph::Graph& g, const core::ClusterConfig& config) {
  BaselineRun out;
  util::Timer timer;
  const graph::NodeId n = g.num_nodes();
  const auto ids = core::assign_node_ids(n, config.seed);
  const std::size_t trials = core::default_seeding_trials(config.beta);
  const auto seeds = core::run_seeding(n, trials, config.seed);
  const double tau = core::query_threshold(config.threshold_scale, config.beta, n);
  const std::size_t s = seeds.size();
  std::vector<std::uint64_t> seed_ids(s);
  for (std::size_t i = 0; i < s; ++i) seed_ids[i] = ids[seeds[i]];

  // Pin every post-overhaul lever off: dense storage (kOff), no zero-row
  // skipping, scalar averaging kernels, scalar coin advance.  The library
  // defaults keep improving; the baseline must keep measuring the
  // pre-overhaul loop.
  matching::MultiLoadState state(n, s, matching::SparseMode::kOff);
  state.set_skip_zeros(false);
  state.set_simd(false);
  for (std::size_t i = 0; i < s; ++i) state.set(seeds[i], i, 1.0);
  matching::MatchingGenerator generator(
      g, core::derive_seed(config.seed, core::Stream::kMatching), config.protocol);
  generator.use_simd(false);
  for (std::size_t t = 1; t <= config.rounds; ++t) {
    const auto coins = generator.flip_round_coins();
    const auto m = legacy_resolve(g, coins);
    state.apply(m);
  }
  out.labels.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    out.labels[v] = core::query_label(std::as_const(state).row(v), seed_ids, tau,
                                      config.query_rule);
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto min_log2 = static_cast<int>(cli.get_int("min_log2", 13));
  const auto max_log2 = static_cast<int>(cli.get_int("max_log2", 16));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  const bool scaling = cli.get_bool("thread_scaling", true);
  const auto schedule_window = static_cast<std::size_t>(cli.get_int("schedule_window", 0));
  const auto tile_cols = static_cast<std::size_t>(cli.get_int("tile_cols", 0));
  const std::string json_path = cli.get("json", "BENCH_E16.json");
  cli.reject_unknown();

  bench::banner(
      "E16",
      "The round loop dominates runtime; skip-zeros, buffer reuse, sparse-active "
      "storage, SIMD kernels and the schedule-ahead windowed apply speed the "
      "dense engine >= 2.5x at n >= 65536, with labels bit-identical",
      "k=4 planted expander clusters; n sweep; phases timed with the unfused "
      "in-place flip/resolve/apply APIs (the engine's serial path fuses flip + "
      "probe scatter, so optimized_s < flip_s + resolve_s + apply_s); baseline = "
      "per-round allocations + edge sort + dense averaging");

  util::Table breakdown("per-phase seconds and dense-engine speedup",
                        {"n", "T", "s_dims", "flip_s", "resolve_s", "apply_s", "query_s",
                         "baseline_s", "optimized_s", "speedup", "sparse_mode", "simd",
                         "window", "tile_cols", "active_final", "labels_eq"});
  util::Table support("active-support growth (largest n): rows touched by skip-zeros",
                      {"round", "active_rows", "active_frac", "support_bound"});
  util::Table threads_table("coin flip+resolve thread scaling (reported, not gated)",
                            {"n", "threads", "hw_threads", "rounds", "seconds",
                             "speedup_vs_1"});
  std::vector<std::string> gate_failures;

  for (int log2n = min_log2; log2n <= max_log2; ++log2n) {
    const auto n = static_cast<graph::NodeId>(1) << log2n;
    const auto planted =
        bench::make_clustered(k, n / k, 16, 0.02, 1600 + static_cast<std::uint64_t>(log2n));
    const graph::Graph& g = planted.graph;

    core::ClusterConfig config;
    config.beta = 1.0 / static_cast<double>(k);
    config.k_hint = k;
    // The default multiplier (1.0): T = ceil(ln n / (1 − λ_{k+1})), the
    // theorem's round count.  E15 pads T by 1.5 for accuracy margin; E16
    // times the round loop itself, and labels_eq is the gated check.
    config.rounds_multiplier = 1.0;
    config.query_rule = core::QueryRule::kArgmax;
    config.seed = 5;
    // Fix T up front (the paper assumes T is known) so the timed region is
    // pure averaging + query.
    config.rounds =
        core::recommended_rounds(g, k, config.rounds_multiplier, config.seed).rounds;
    // The headline isolates skip-zeros + allocation reuse: no coin pool.
    config.hot_path.parallel_coins = false;
    config.hot_path.skip_zero_rows = true;
    config.hot_path.schedule_window = schedule_window;
    config.hot_path.tile_cols = tile_cols;

    // --- Optimized engine vs pre-overhaul baseline, end to end --------
    // Wall-clock min over `repeats` runs: this box is shared, and a
    // scheduler hiccup inflating one run must not read as a regression.
    core::ClusterResult optimized;
    double optimized_s = 0.0;
    BaselineRun baseline;
    for (std::size_t r = 0; r < repeats; ++r) {
      util::Timer opt_timer;
      auto attempt = core::Clusterer(g, config).run();
      const double seconds = opt_timer.seconds();
      if (r == 0 || seconds < optimized_s) {
        optimized_s = seconds;
        optimized = std::move(attempt);
      }
      auto base_attempt = run_baseline(g, config);
      if (r == 0 || base_attempt.seconds < baseline.seconds) {
        baseline = std::move(base_attempt);
      }
    }

    // --- Phase breakdown (separate instrumented run, same coins) ------
    const std::size_t s = optimized.seeds.size();
    matching::MultiLoadState state(n, s);
    for (std::size_t i = 0; i < s; ++i) state.set(optimized.seeds[i], i, 1.0);
    matching::MatchingGenerator generator(
        g, core::derive_seed(config.seed, core::Stream::kMatching), config.protocol);
    matching::MatchingGenerator::Coins coins;
    matching::Matching m;
    double flip_s = 0.0;
    double resolve_s = 0.0;
    double apply_s = 0.0;
    const bool plot_support = log2n == max_log2;
    for (std::size_t t = 1; t <= config.rounds; ++t) {
      util::Timer phase;
      generator.flip_round_coins(coins);
      flip_s += phase.seconds();
      phase.reset();
      generator.resolve(coins, m);
      resolve_s += phase.seconds();
      phase.reset();
      state.apply(m);
      apply_s += phase.seconds();
      if (plot_support) {
        const auto active = static_cast<double>(state.active_rows());
        const double bound = static_cast<double>(s) *
                             static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(t, 63));
        support.row({static_cast<std::int64_t>(t),
                     static_cast<std::int64_t>(state.active_rows()),
                     active / static_cast<double>(n),
                     std::min(bound, static_cast<double>(n))});
      }
    }
    util::Timer query_timer;
    std::vector<std::uint64_t> seed_ids(s);
    for (std::size_t i = 0; i < s; ++i) {
      seed_ids[i] = optimized.node_ids[optimized.seeds[i]];
    }
    std::vector<std::uint64_t> labels(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      labels[v] = core::query_label(std::as_const(state).row(v), seed_ids,
                                    optimized.threshold, config.query_rule);
    }
    const double query_s = query_timer.seconds();

    const bool equal =
        optimized.labels == baseline.labels && optimized.labels == labels;
    const double speedup = baseline.seconds / optimized_s;
    breakdown.row({static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(optimized.rounds),
                   static_cast<std::int64_t>(s), flip_s, resolve_s, apply_s, query_s,
                   baseline.seconds, optimized_s, speedup,
                   std::string(config.hot_path.sparse_mode == matching::SparseMode::kAuto
                                   ? "auto"
                                   : config.hot_path.sparse_mode == matching::SparseMode::kOn
                                         ? "on"
                                         : "off"),
                   std::string(matching::simd::kernel_name(config.hot_path.simd)),
                   static_cast<std::int64_t>(
                       core::resolve_schedule_window(config.hot_path, config.checkpoint)),
                   static_cast<std::int64_t>(
                       core::resolve_tile_cols(config.hot_path, n, s)),
                   static_cast<std::int64_t>(state.active_rows()),
                   std::string(equal ? "yes" : "NO")});
    if (!equal) gate_failures.emplace_back("labels diverge at n=" + std::to_string(n));
    if (n >= 65536 && speedup < 2.5) {
      gate_failures.emplace_back("speedup " + std::to_string(speedup) +
                                 " < 2.5 at n=" + std::to_string(n));
    }

    // --- Coin-phase thread scaling at the largest n -------------------
    if (scaling && plot_support) {
      const auto hw = std::max(1u, std::thread::hardware_concurrency());
      const std::size_t scaling_rounds = 20;
      double serial_seconds = 0.0;
      std::vector<std::size_t> thread_counts{1, 2, 4, hw};
      std::sort(thread_counts.begin(), thread_counts.end());
      thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                          thread_counts.end());
      for (const std::size_t threads : thread_counts) {
        matching::MatchingGenerator scaled(
            g, core::derive_seed(config.seed, core::Stream::kMatching), config.protocol);
        util::ThreadPool pool(threads);
        if (threads > 1) scaled.use_thread_pool(&pool);
        util::Timer timer;
        for (std::size_t t = 0; t < scaling_rounds; ++t) {
          scaled.flip_round_coins(coins);
          scaled.resolve(coins, m);
        }
        const double seconds = timer.seconds();
        if (threads == 1) serial_seconds = seconds;
        threads_table.row({static_cast<std::int64_t>(n),
                           static_cast<std::int64_t>(threads),
                           static_cast<std::int64_t>(hw),
                           static_cast<std::int64_t>(scaling_rounds), seconds,
                           serial_seconds / seconds});
      }
    }
  }

  breakdown.print(std::cout);
  support.print(std::cout);
  if (threads_table.rows() > 0) threads_table.print(std::cout);
  bench::write_bench_json(json_path, "E16", {&breakdown, &support, &threads_table});
  std::cout << "# PASS criteria (gated): labels_eq = yes everywhere; speedup >= 2.5 at\n"
               "# n >= 65536 (skip-zeros, buffer reuse, sparse storage, SIMD kernels and\n"
               "# the schedule-ahead windowed apply — parallel coins are off in the timed\n"
               "# runs); active_rows tracks min(s*2^t, n) from below.\n";
  if (!gate_failures.empty()) {
    for (const auto& failure : gate_failures) std::cout << "# FAIL: " << failure << "\n";
    return 1;
  }
  std::cout << "# PASS\n";
  return 0;
}
