// E9 — §4.5: the algorithm extends to almost-regular graphs
// (max/min degree ratio bounded) by viewing G as a D-regular graph G*
// padded with self-loops.  Three protocol variants on instances with
// increasing irregularity (random edge deletions):
//   plain      — each node probes among its own deg(v) slots;
//   padded     — D slots, self-loop slots are failed probes (our default
//                reading of §4.5);
//   padded+bias — the literal §4.5 activation 1/2 + (D−deg)/(2D).
#include <iostream>

#include "common.hpp"
#include "core/clusterer.hpp"
#include "util/rng.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 1000));
  cli.reject_unknown();

  bench::banner("E9", "Section 4.5: the algorithm works on almost-regular graphs via "
                      "self-loop padding to degree D",
                "planted clusters with iid edge deletions; 3 protocol variants");

  util::Table table("misclassification on almost-regular instances (argmax query)",
                    {"drop_prob", "max_deg", "min_deg", "ratio", "plain", "padded",
                     "padded_bias", "T"});

  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    graph::ClusteredRegularSpec spec;
    spec.cluster_sizes.assign(2, size);
    spec.degree = 20;
    spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.01);
    util::Rng rng(400 + static_cast<std::uint64_t>(drop * 100));
    const auto planted = drop == 0.0 ? graph::clustered_regular(spec, rng)
                                     : graph::almost_regular_clusters(spec, drop, rng);

    core::ClusterConfig config;
    config.beta = 0.5;
    config.k_hint = 2;
    config.rounds_multiplier = 2.0;
    config.query_rule = core::QueryRule::kArgmax;
    config.seed = 77;

    const auto plain = core::Clusterer(planted.graph, config).run();

    config.protocol.virtual_degree = planted.graph.max_degree();
    const auto padded = core::Clusterer(planted.graph, config).run();

    config.protocol.degree_biased_activation = true;
    const auto biased = core::Clusterer(planted.graph, config).run();

    table.row({drop, static_cast<std::int64_t>(planted.graph.max_degree()),
               static_cast<std::int64_t>(planted.graph.min_degree()),
               static_cast<double>(planted.graph.max_degree()) /
                   static_cast<double>(planted.graph.min_degree()),
               bench::error_rate(planted, plain.labels),
               bench::error_rate(planted, padded.labels),
               bench::error_rate(planted, biased.labels),
               static_cast<std::int64_t>(plain.rounds)});
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: all variants stay accurate while max/min degree ratio\n"
               "# is bounded (Section 4.5's regime); padding costs a constant factor in\n"
               "# matched edges but not accuracy.\n";
  return 0;
}
