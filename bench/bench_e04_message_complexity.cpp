// E4 — Theorem 1.1 message complexity: O(T · n · k log k) words total,
// with at most ⌊n/2⌋ edges used per round.  Contrast: Becchetti et al.'s
// averaging dynamics and label propagation exchange Θ(m) messages per
// round (every node talks to all neighbours).
//
// The distributed engine meters every word (1 header + 2 per (id,value)
// entry).  We sweep n and k and report measured words against the
// closed-form per-round bound n + 2·(n/2)·(2s+1), and the per-round
// message cost of the Θ(m) baselines on the same graphs.
#include <cmath>
#include <iostream>

#include "baselines/averaging_dynamics.hpp"
#include "baselines/label_propagation.hpp"
#include "common.hpp"
#include "core/distributed_clusterer.hpp"
#include "util/timer.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 16));
  const double phi = cli.get_double("phi", 0.02);
  cli.reject_unknown();

  bench::banner("E4", "Theorem 1.1: message complexity O(T n k log k) words; <= n/2 "
                      "matched edges per round (vs Theta(m)/round baselines)",
                "planted clusters; n and k sweep; distributed engine with metering");

  util::Table table("measured traffic vs bound",
                    {"n", "k", "s", "T", "words", "bound_Tn(2s+3)", "ratio",
                     "words/(T*n*klogk)", "avg_edges_used/round", "cap_n/2"});
  util::Table baseline_table("per-round message cost: matching model vs Theta(m) baselines",
                             {"n", "k", "m", "dgc_msgs/round", "averaging_msgs/round",
                              "labelprop_msgs/round"});

  for (const std::uint32_t k : {2u, 4u, 8u}) {
    for (const graph::NodeId size : {250u, 500u, 1000u}) {
      const graph::NodeId n = size * k;
      const auto planted = bench::make_clustered(k, size, degree, phi, 7 * k + size);
      core::ClusterConfig config;
      config.beta = 1.0 / static_cast<double>(k);
      config.k_hint = k;
      config.rounds_multiplier = 1.5;
      config.seed = 17;
      const auto report = core::DistributedClusterer(planted.graph, config).run();
      const double t = static_cast<double>(report.result.rounds);
      const double s = static_cast<double>(report.result.seeds.size());
      const double words = static_cast<double>(report.traffic.words);
      // Per round: n probe words + 2 state-bearing messages per matched
      // pair (<= n/2 pairs), each <= 2s+1 words.
      const double bound = t * (static_cast<double>(n) +
                                static_cast<double>(n) * (2.0 * s + 1.0));
      const double klogk = static_cast<double>(k) *
                           std::max(1.0, std::log2(static_cast<double>(k)));
      const double avg_edges =
          static_cast<double>(report.result.process.total_matched_edges);

      // The dense result inside the report does not track per-round
      // matched edges; recompute from words_per_round message counts is
      // overkill — use messages/3 phases as the matched-pair proxy.
      const double rounds_d = t;
      table.row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(k),
                 static_cast<std::int64_t>(report.result.seeds.size()),
                 static_cast<std::int64_t>(report.result.rounds), words, bound,
                 words / bound, words / (t * n * klogk),
                 avg_edges > 0 ? avg_edges / rounds_d : 0.0,
                 static_cast<double>(n) / 2.0});

      baselines::AveragingOptions avg_options;
      avg_options.clusters = k;
      const auto avg = baselines::averaging_dynamics(planted.graph, avg_options);
      baselines::LabelPropagationOptions lp_options;
      const auto lp = baselines::label_propagation(planted.graph, lp_options);
      const double dgc_msgs =
          static_cast<double>(report.traffic.messages) / rounds_d;
      baseline_table.row(
          {static_cast<std::int64_t>(n), static_cast<std::int64_t>(k),
           static_cast<std::int64_t>(planted.graph.num_edges()), dgc_msgs,
           static_cast<double>(avg.messages) / static_cast<double>(avg.rounds),
           static_cast<double>(lp.messages) / static_cast<double>(lp.rounds)});
    }
  }
  table.print(std::cout);
  baseline_table.print(std::cout);
  std::cout << "# PASS criteria: ratio <= 1 (bound holds); words/(T n klogk) roughly flat\n"
               "# in n and k; dgc msgs/round ~ 2n < Theta(m) baselines for d = 16.\n";
  return 0;
}
