// E8 — good nodes (eq. 4, Lemma 4.3, and the counting step in the proof
// of Theorem 1.1): the number of bad nodes is at most
// βn / (C·k·log n·log(1/β)), and the 1-D process started at a *good*
// node converges to the cluster indicator while a bad start may not.
//
// Reports: the α_v histogram, the good fraction for several constants C,
// the bad-node bound, and a head-to-head of E||y(T)−χ_S|| from the best
// vs the worst seeds.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "core/rounds.hpp"
#include "core/spectral_structure.hpp"
#include "linalg/vector_ops.hpp"
#include "matching/process.hpp"
#include "util/stats.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 1000));
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  cli.reject_unknown();

  bench::banner("E8", "Good-node counting: #bad <= beta n / (C k log n log 1/beta); "
                      "Lemma 4.3: good seeds converge to chi_S",
                "k=4 planted clusters; alpha_v distribution + seeded trajectories");

  const auto planted = bench::make_clustered(k, size, 16, 0.01, 3);
  const auto st = core::analyze_structure(planted);
  const std::size_t n = planted.graph.num_nodes();
  const double beta = planted.beta();

  // --- alpha distribution --------------------------------------------
  double max_alpha = 0.0;
  for (const double a : st.alpha) max_alpha = std::max(max_alpha, a);
  util::Histogram hist(0.0, max_alpha + 1e-12, 10);
  for (const double a : st.alpha) hist.add(a);
  util::Table hist_table("alpha_v distribution (eq. 4)", {"bin_lo", "bin_hi", "count"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    hist_table.row({hist.bin_lo(b), hist.bin_hi(b),
                    static_cast<std::int64_t>(hist.count(b))});
  }
  hist_table.print(std::cout);

  // --- good fraction vs constant C -----------------------------------
  util::Table good_table("good nodes vs constant C",
                         {"C", "threshold", "good_frac", "bad_count", "bad_bound"});
  const double log_term = std::log(static_cast<double>(n)) * std::log(1.0 / beta);
  for (const double c : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    const double threshold = static_cast<double>(k) * st.error_bound *
                             std::sqrt(c * log_term / (beta * static_cast<double>(n)));
    std::size_t good = 0;
    for (const double a : st.alpha) good += a <= threshold;
    const double bad_bound = beta * static_cast<double>(n) /
                             (c * static_cast<double>(k) * log_term);
    good_table.row({c, threshold, static_cast<double>(good) / static_cast<double>(n),
                    static_cast<std::int64_t>(n - good), bad_bound});
  }
  good_table.print(std::cout);

  // --- Lemma 4.3: good vs bad seeds -----------------------------------
  const auto est = core::recommended_rounds(planted.graph, k, 1.0);
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) { return st.alpha[a] < st.alpha[b]; });

  auto mean_distance = [&](const std::vector<graph::NodeId>& seeds, std::uint64_t seed) {
    util::RunningStats stats;
    for (const auto v : seeds) {
      const auto members = planted.cluster(planted.membership[v]);
      std::vector<double> chi_s(n, 0.0);
      for (const auto u : members) chi_s[u] = 1.0 / static_cast<double>(members.size());
      std::vector<double> y0(n, 0.0);
      y0[v] = 1.0;
      matching::MatchingGenerator generator(planted.graph, seed + v);
      const auto snapshots = matching::trajectory_1d(generator, y0, est.rounds);
      stats.add(linalg::norm_diff(snapshots.back(), chi_s));
    }
    return stats.mean();
  };

  const std::size_t probe = 12;
  std::vector<graph::NodeId> best(order.begin(), order.begin() + probe);
  std::vector<graph::NodeId> worst(order.end() - probe, order.end());
  util::Table seed_table("E||y(T) - chi_S|| by seed quality (12 seeds each)",
                         {"seed_class", "mean_alpha", "E||y(T)-chi_S||", "||chi_S||"});
  double best_alpha = 0.0;
  double worst_alpha = 0.0;
  for (const auto v : best) best_alpha += st.alpha[v] / probe;
  for (const auto v : worst) worst_alpha += st.alpha[v] / probe;
  const double chi_norm = 1.0 / std::sqrt(static_cast<double>(size));
  seed_table.row({std::string("good(best alpha)"), best_alpha, mean_distance(best, 71),
                  chi_norm});
  seed_table.row({std::string("bad(worst alpha)"), worst_alpha, mean_distance(worst, 171),
                  chi_norm});
  seed_table.print(std::cout);

  std::cout << "# n=" << n << "  T=" << est.rounds << "  Upsilon=" << st.upsilon
            << "  beta=" << beta << "\n";
  std::cout << "# PASS criteria: overwhelming majority good for moderate C; good seeds'\n"
               "# E||y(T)-chi_S|| well below ||chi_S||; bad seeds measurably worse.\n";
  return 0;
}
