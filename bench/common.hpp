// Shared helpers for the experiment harness binaries (bench_eNN_*).
//
// Every binary prints a self-describing header (experiment id, the paper
// claim being reproduced, workload) followed by util::Table blocks, so
// `for b in build/bench/*; do $b; done` regenerates the full evaluation
// recorded in EXPERIMENTS.md.  All parameters are overridable with
// --flag=value (see util/cli.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dgc::bench {

/// Prints the standard experiment banner.
void banner(const std::string& experiment_id, const std::string& claim,
            const std::string& workload);

/// Paper-faithful planted instance: k equal clusters of `size` nodes,
/// exactly `degree`-regular, per-cluster conductance ≈ phi.
[[nodiscard]] graph::PlantedGraph make_clustered(std::uint32_t k, graph::NodeId size,
                                                 std::size_t degree, double phi,
                                                 std::uint64_t seed);

/// Misclassified-fraction of raw labels against the planted partition.
[[nodiscard]] double error_rate(const graph::PlantedGraph& planted,
                                const std::vector<std::uint64_t>& labels);

/// Number of kUnclustered labels.
[[nodiscard]] std::size_t unclustered_count(const std::vector<std::uint64_t>& labels);

/// Writes the tables of one experiment to a machine-readable JSON file
/// ({"experiment", "tables": [{"title", "columns", "rows"}, …]}) so the
/// perf trajectory is tracked across PRs (BENCH_E15.json, BENCH_E16.json,
/// …) instead of living only in commit messages.  Numbers stay typed:
/// int64 cells are emitted as integers, double cells with round-trip
/// precision (non-finite doubles become null).
void write_bench_json(const std::string& path, const std::string& experiment_id,
                      const std::vector<const util::Table*>& tables);

}  // namespace dgc::bench
