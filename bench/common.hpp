// Shared helpers for the experiment harness binaries (bench_eNN_*).
//
// Every binary prints a self-describing header (experiment id, the paper
// claim being reproduced, workload) followed by util::Table blocks, so
// `for b in build/bench/*; do $b; done` regenerates the full evaluation
// recorded in EXPERIMENTS.md.  All parameters are overridable with
// --flag=value (see util/cli.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dgc::bench {

/// Prints the standard experiment banner.
void banner(const std::string& experiment_id, const std::string& claim,
            const std::string& workload);

/// Paper-faithful planted instance: k equal clusters of `size` nodes,
/// exactly `degree`-regular, per-cluster conductance ≈ phi.
[[nodiscard]] graph::PlantedGraph make_clustered(std::uint32_t k, graph::NodeId size,
                                                 std::size_t degree, double phi,
                                                 std::uint64_t seed);

/// Misclassified-fraction of raw labels against the planted partition.
[[nodiscard]] double error_rate(const graph::PlantedGraph& planted,
                                const std::vector<std::uint64_t>& labels);

/// Number of kUnclustered labels.
[[nodiscard]] std::size_t unclustered_count(const std::vector<std::uint64_t>& labels);

}  // namespace dgc::bench
