// E11 — the seeding analysis inside the proof of Theorem 1.1:
//  (i)   with s̄ = (3/β)·ln(1/β) trials, every cluster receives at least
//        one seed with probability ≥ 1 − k·e^{-3·(βk)} (≥ 1 − k·e^{-3}
//        for balanced clusters);
//  (ii)  E[s] = s̄ and s = O(s̄) w.h.p.;
//  (iii) with constant probability all active seeds are good nodes.
// Monte-Carlo over many seeding runs per (k, beta).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/seeding.hpp"
#include "core/spectral_structure.hpp"
#include "util/stats.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 4096));
  const auto runs = static_cast<std::size_t>(cli.get_int("runs", 2000));
  cli.reject_unknown();

  bench::banner("E11", "Seeding: every cluster hit w.p. >= 1 - k e^{-3}; E[s] = sbar; "
                       "all seeds good w.c.p.",
                "Monte-Carlo over seeding runs; k in {2,4,8} balanced clusters");

  util::Table table("seeding procedure statistics",
                    {"k", "beta", "sbar", "E[s]", "max_s", "P[all clusters hit]",
                     "paper_lower_bound"});

  for (const std::uint32_t k : {2u, 4u, 8u}) {
    const double beta = 1.0 / static_cast<double>(k);
    const std::size_t trials = core::default_seeding_trials(beta);
    const graph::NodeId cluster_size = n / k;
    util::RunningStats s_stats;
    std::size_t all_hit = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto seeds = core::run_seeding(n, trials, 10000 + run);
      s_stats.add(static_cast<double>(seeds.size()));
      std::vector<char> hit(k, 0);
      for (const auto v : seeds) hit[v / cluster_size] = 1;
      bool all = true;
      for (const char h : hit) all = all && h;
      all_hit += all;
    }
    // Proof of Thm 1.1: miss probability per cluster <= e^{-sbar*beta};
    // with sbar = (3/beta) ln(1/beta) that is beta^{3/beta... } — we use
    // the e^{-3 ln(1/beta)} = beta^3 form: P[all hit] >= 1 - k beta^3.
    const double bound = 1.0 - static_cast<double>(k) * std::pow(beta, 3.0);
    table.row({static_cast<std::int64_t>(k), beta, static_cast<std::int64_t>(trials),
               s_stats.mean(), s_stats.max(),
               static_cast<double>(all_hit) / static_cast<double>(runs), bound});
  }
  table.print(std::cout);

  // (iii) all-seeds-good probability on a concrete instance.
  const auto planted = bench::make_clustered(4, n / 4, 16, 0.01, 9);
  const auto st = core::analyze_structure(planted);
  const std::size_t trials = core::default_seeding_trials(0.25);
  std::size_t all_good = 0;
  const std::size_t good_runs = 500;
  for (std::size_t run = 0; run < good_runs; ++run) {
    const auto seeds = core::run_seeding(planted.graph.num_nodes(), trials, 777 + run);
    bool good = true;
    for (const auto v : seeds) good = good && st.good[v] != 0;
    all_good += good;
  }
  util::Table good_table("all active seeds are good nodes (k=4 instance, C=0.5)",
                         {"good_node_frac", "P[all seeds good]"});
  good_table.row({static_cast<double>(st.num_good()) /
                      static_cast<double>(planted.graph.num_nodes()),
                  static_cast<double>(all_good) / static_cast<double>(good_runs)});
  good_table.print(std::cout);
  std::cout << "# PASS criteria: P[all clusters hit] above the paper bound; E[s] ~ sbar;\n"
               "# P[all seeds good] a constant bounded away from 0.\n";
  return 0;
}
