// Micro-benchmarks (google-benchmark): per-component throughput of the
// hot paths — matching generation, load averaging, walk matvec, Lanczos,
// generators, k-means, Hungarian.  These are regression guards, not
// paper claims.
//
// The binary also counts global allocations (operator new overridden
// below) so BM_RoundLoopSteadyState can report allocs_per_round — the
// zero-allocation-rounds guarantee: after round 1 the in-place
// next(Matching&) + apply() loop performs no heap allocation at all.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>

#include "baselines/spectral.hpp"
#include "graph/generators.hpp"
#include "linalg/hungarian.hpp"
#include "linalg/kmeans.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/walk_matrix.hpp"
#include "matching/load_state.hpp"
#include "matching/protocol.hpp"
#include "matching/schedule.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs these replacement operators against each other and warns
// about the malloc/free plumbing inside them; that is exactly how a
// counting allocator is written, so scope the warning out.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace dgc;

const graph::Graph& shared_graph(graph::NodeId n) {
  static std::map<graph::NodeId, graph::Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    util::Rng rng(7 + n);
    it = cache.emplace(n, graph::random_regular(n, 16, rng)).first;
  }
  return it->second;
}

void BM_MatchingRound(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MatchingRound)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_MultiLoadApply(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 5);
  const auto m = generator.next();
  matching::MultiLoadState loads(n, s);
  for (std::size_t i = 0; i < s; ++i) loads.set(static_cast<graph::NodeId>(i), i, 1.0);
  for (auto _ : state) {
    loads.apply(m);
    benchmark::DoNotOptimize(loads.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m.edges.size() * s));
}
BENCHMARK(BM_MultiLoadApply)->Args({1 << 14, 8})->Args({1 << 14, 32})->Args({1 << 16, 16});

void BM_RoundLoopSteadyState(benchmark::State& state) {
  // One full protocol round (in-place coin flip + resolve + skip-zeros
  // apply) with reused buffers.  allocs_per_round must read 0: after the
  // warm-up round every buffer has reached its steady capacity.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 3);
  matching::Matching m;
  matching::MultiLoadState loads(n, 16);
  for (std::size_t i = 0; i < 16; ++i) loads.set(static_cast<graph::NodeId>(i), i, 1.0);
  generator.next(m);  // round 1: buffers reach steady capacity
  loads.apply(m);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  std::int64_t rounds = 0;
  for (auto _ : state) {
    generator.next(m);
    loads.apply(m);
    ++rounds;
  }
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_round"] =
      static_cast<double>(allocs) / static_cast<double>(rounds);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RoundLoopSteadyState)->Arg(1 << 14)->Arg(1 << 16);

void BM_AveragePair(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  matching::MultiLoadState loads(2, s);
  loads.set(0, 0, 1.0);
  for (auto _ : state) {
    loads.average_pair(0, 1);
    benchmark::DoNotOptimize(loads.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(s));
}
BENCHMARK(BM_AveragePair)->Arg(8)->Arg(19)->Arg(64);

void BM_AveragePairSimd(benchmark::State& state) {
  // The runtime-dispatched averaging kernel: range(1) == 1 uses the AVX2
  // path (when the CPU has it), 0 forces the scalar fallback.  The two
  // are bit-identical (simd_kernels_test asserts it); this measures the
  // speed gap per dimension count, including the s=19 remainder tail.
  const auto s = static_cast<std::size_t>(state.range(0));
  const bool simd = state.range(1) != 0;
  matching::MultiLoadState loads(2, s);
  loads.set_simd(simd);
  loads.set(0, 0, 1.0);
  for (auto _ : state) {
    loads.average_pair(0, 1);
    benchmark::DoNotOptimize(loads.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(s));
}
BENCHMARK(BM_AveragePairSimd)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({19, 0})
    ->Args({19, 1})
    ->Args({64, 0})
    ->Args({64, 1});

matching::MultiLoadState make_seeded_state(graph::NodeId n, std::size_t s,
                                           std::size_t active, matching::SparseMode mode) {
  matching::MultiLoadState loads(n, s, mode);
  const std::size_t stride = active ? static_cast<std::size_t>(n) / active : 1;
  for (std::size_t i = 0; i < active; ++i) {
    loads.set(static_cast<graph::NodeId>(i * stride), i % s, 1.0);
  }
  return loads;
}

void BM_ColumnSparse(benchmark::State& state) {
  // column() on low support: sparse storage walks only the packed slots
  // (then sorts nothing — output order is node-id), dense strides the
  // whole n×s matrix.  range(1): 0 = dense, 1 = sparse packed.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const std::size_t s = 16;
  const auto mode = state.range(1) != 0 ? matching::SparseMode::kOn
                                        : matching::SparseMode::kOff;
  const auto loads = make_seeded_state(n, s, 16, mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loads.column(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ColumnSparse)->Args({1 << 14, 0})->Args({1 << 14, 1})
    ->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_TotalSparse(benchmark::State& state) {
  // total() accumulates in node-id order in both modes (bit-identical
  // float sum); sparse mode still wins by touching only active slots.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const std::size_t s = 16;
  const auto mode = state.range(1) != 0 ? matching::SparseMode::kOn
                                        : matching::SparseMode::kOff;
  const auto loads = make_seeded_state(n, s, 16, mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loads.total(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TotalSparse)->Args({1 << 14, 0})->Args({1 << 14, 1})
    ->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_ApplyPairsSparse(benchmark::State& state) {
  // Sparse initial support (16 seed rows in n): with skip-zeros on
  // (range(2) == 1) almost every pair of the fixed matching is skipped,
  // so items/s measures the active-support win over the dense sweep.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const bool skip = state.range(2) != 0;
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 5);
  const auto m = generator.next();
  matching::MultiLoadState loads(n, s);
  loads.set_skip_zeros(skip);
  for (std::size_t i = 0; i < 16; ++i) {
    loads.set(static_cast<graph::NodeId>(i * (n / 16)), i % s, 1.0);
  }
  for (auto _ : state) {
    loads.apply(m);
    benchmark::DoNotOptimize(loads.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m.edges.size() * s));
}
BENCHMARK(BM_ApplyPairsSparse)
    ->Args({1 << 16, 16, 0})
    ->Args({1 << 16, 16, 1})
    ->Args({1 << 14, 32, 0})
    ->Args({1 << 14, 32, 1});

void BM_ScheduleBuild(benchmark::State& state) {
  // Materialising a window: W generator rounds packed into the CSR
  // schedule (matching draws + the flat pair append; edges-only mode, so
  // no partner-array upkeep).  items/s is node-rounds per second —
  // directly comparable to BM_MatchingRound's per-round rate.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 3);
  matching::ScheduleBuilder builder;
  matching::RoundSchedule sched;
  std::size_t round = 0;
  for (auto _ : state) {
    builder.build(generator, round, window, nullptr, sched);
    round += window;
    benchmark::DoNotOptimize(sched.pairs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * window));
}
BENCHMARK(BM_ScheduleBuild)
    ->Args({1 << 14, 8})
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 32});

void BM_ApplyTiled(benchmark::State& state) {
  // The windowed striped replay on a saturated state (every row active,
  // so prepare_window takes its identity fast path and the timing is the
  // stripe loop itself).  range: {n, s, window, tile_cols}; tile 0 means
  // full width (one stripe).  items/s counts pair-dimension updates, the
  // same unit as BM_MultiLoadApply.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const auto window = static_cast<std::size_t>(state.range(2));
  const std::size_t tile =
      state.range(3) == 0 ? s : static_cast<std::size_t>(state.range(3));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 5);
  matching::ScheduleBuilder builder;
  matching::RoundSchedule sched;
  builder.build(generator, 0, window, nullptr, sched);
  auto loads = make_seeded_state(n, s, n, matching::SparseMode::kOff);
  loads.prepare_window(sched);
  for (auto _ : state) {
    for (std::size_t d0 = 0; d0 < s; d0 += tile) {
      loads.apply_window_stripe(sched, d0, std::min(s, d0 + tile));
    }
    benchmark::DoNotOptimize(loads.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sched.pair_count() * s));
}
BENCHMARK(BM_ApplyTiled)
    ->Args({1 << 16, 19, 8, 0})
    ->Args({1 << 16, 19, 8, 8})
    ->Args({1 << 16, 64, 8, 0})
    ->Args({1 << 16, 64, 8, 16})
    ->Args({1 << 14, 64, 8, 0})
    ->Args({1 << 14, 64, 8, 16});

void BM_FlipRoundCoins(benchmark::State& state) {
  // 1 thread = the serial path; > 1 = block-parallel on a pool.  The
  // coins are bit-identical either way (protocol tests assert it).
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 7);
  util::ThreadPool pool(threads);
  if (threads > 1) generator.use_thread_pool(&pool);
  matching::MatchingGenerator::Coins coins;
  for (auto _ : state) {
    generator.flip_round_coins(coins);
    benchmark::DoNotOptimize(coins.active.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FlipRoundCoins)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 2})
    ->Args({1 << 16, 4})
    ->Args({1 << 16, 8});

void BM_WalkMatvec(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto& g = shared_graph(n);
  const linalg::WalkOperator op(g);
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply_walk(x, y);
    benchmark::DoNotOptimize(y[0]);
    x.swap(y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.num_edges() * 2));
}
BENCHMARK(BM_WalkMatvec)->Arg(1 << 14)->Arg(1 << 16);

void BM_LanczosTop5(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto& g = shared_graph(n);
  const linalg::WalkOperator op(g);
  for (auto _ : state) {
    linalg::LanczosOptions options;
    options.num_eigenpairs = 5;
    const auto pairs = linalg::lanczos_top_eigenpairs(
        n,
        [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
        options);
    benchmark::DoNotOptimize(pairs.values[0]);
  }
}
BENCHMARK(BM_LanczosTop5)->Arg(1 << 12)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

void BM_GenerateClusteredRegular(benchmark::State& state) {
  const auto size = static_cast<graph::NodeId>(state.range(0));
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(4, size);
  spec.degree = 16;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.02);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    benchmark::DoNotOptimize(graph::clustered_regular(spec, rng));
  }
  state.SetItemsProcessed(state.iterations() * size * 4);
}
BENCHMARK(BM_GenerateClusteredRegular)->Arg(1 << 10)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_GenerateSbm(benchmark::State& state) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = static_cast<graph::NodeId>(state.range(0));
  spec.clusters = 4;
  spec.p_in = 0.02;
  spec.p_out = 0.001;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    benchmark::DoNotOptimize(graph::stochastic_block_model(spec, rng));
  }
  state.SetItemsProcessed(state.iterations() * spec.nodes_per_cluster * 4);
}
BENCHMARK(BM_GenerateSbm)->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  const std::size_t n = 4096;
  const std::size_t dim = 4;
  util::Rng rng(11);
  std::vector<double> points(n * dim);
  for (auto& p : points) p = rng.next_double();
  linalg::KMeansOptions options;
  options.clusters = 4;
  options.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kmeans(points, n, dim, options));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KMeans)->Unit(benchmark::kMillisecond);

void BM_Hungarian(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  util::Rng rng(13);
  std::vector<double> cost(k * k);
  for (auto& c : cost) c = rng.next_double();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::hungarian_min_cost(cost, k, k));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------------
// Dense-vs-sparse crossover sweep.  Not a google-benchmark case: it
// prints one self-describing table after the registered benchmarks run,
// timing a full apply() of one fixed matching (n = 2^16, s = 16) from a
// freshly seeded state at each active fraction, in both storage modes.
// The fraction where dense first wins is the empirical basis for the
// SparseMode::kAuto switch rule, active_rows·2 > n (fraction 0.5).

void run_crossover_sweep() {
  using clock = std::chrono::steady_clock;
  const graph::NodeId n = 1 << 16;
  const std::size_t s = 16;
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 9);
  const auto m = generator.next();

  std::printf("\n# dense-vs-sparse apply() crossover (n=%u, s=%zu, one matching)\n",
              static_cast<unsigned>(n), s);
  std::printf("%-10s %-12s %-14s %-14s %s\n", "fraction", "active_rows", "dense_ms",
              "sparse_ms", "faster");
  double crossover = 1.0;
  bool found = false;
  for (const double frac : {1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 8, 1.0 / 4,
                            3.0 / 8, 1.0 / 2, 3.0 / 4, 1.0}) {
    const auto active = static_cast<std::size_t>(frac * static_cast<double>(n));
    double best_ms[2] = {0.0, 0.0};
    for (const int sparse : {0, 1}) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 5; ++rep) {
        auto loads = make_seeded_state(
            n, s, active, sparse ? matching::SparseMode::kOn : matching::SparseMode::kOff);
        const auto t0 = clock::now();
        loads.apply(m);
        const auto t1 = clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      best_ms[sparse] = best;
    }
    const bool dense_wins = best_ms[0] <= best_ms[1];
    std::printf("%-10.4f %-12zu %-14.4f %-14.4f %s\n", frac, active, best_ms[0],
                best_ms[1], dense_wins ? "dense" : "sparse");
    if (!found && dense_wins) {
      crossover = frac;
      found = true;
    }
  }
  if (found) {
    std::printf("# dense first wins at fraction %.4f; kAuto switches at active_rows*2 > n "
                "(fraction 0.5000)\n", crossover);
  } else {
    std::printf("# sparse won at every swept fraction; kAuto's 0.5 switch is conservative "
                "on this machine\n");
  }
}

// ---------------------------------------------------------------------------
// Per-round vs windowed-tiled apply crossover.  Same style as the sweep
// above: one self-describing table, printed after the registered
// benchmarks.  For each (s, W, tile_cols) it applies the same W
// matchings to a saturated dense state (n = 2^16) two ways — the classic
// per-round apply() loop and the schedule replay striped at tile_cols —
// and reports which wins.  This is the empirical basis for the
// resolve_tile_cols auto rule: while the matrix is LLC-resident every
// stripe narrower than the full width loses, so auto stripes only once
// the matrix outgrows the last-level cache (and then no narrower than 8
// columns).

void run_tile_sweep() {
  using clock = std::chrono::steady_clock;
  const graph::NodeId n = 1 << 16;
  const std::size_t window = 8;
  std::printf("\n# per-round vs windowed-tiled apply (n=%u, W=%zu, saturated state)\n",
              static_cast<unsigned>(n), window);
  std::printf("%-6s %-10s %-12s %-12s %s\n", "s", "tile_cols", "per_round_ms",
              "tiled_ms", "faster");
  const auto& g = shared_graph(n);
  for (const std::size_t s : {std::size_t{16}, std::size_t{19}, std::size_t{64}}) {
    matching::MatchingGenerator generator(g, 9);
    std::vector<matching::Matching> rounds(window);
    for (auto& m : rounds) generator.next(m);
    matching::MatchingGenerator sched_gen(g, 9);  // same seed: same draws
    matching::ScheduleBuilder builder;
    matching::RoundSchedule sched;
    builder.build(sched_gen, 0, window, nullptr, sched);

    double per_round_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
      auto loads = make_seeded_state(n, s, n, matching::SparseMode::kOff);
      const auto t0 = clock::now();
      for (const auto& m : rounds) loads.apply(m);
      per_round_ms = std::min(
          per_round_ms,
          std::chrono::duration<double, std::milli>(clock::now() - t0).count());
    }
    for (const std::size_t tile : {std::size_t{2}, std::size_t{8}, s}) {
      if (tile > s) continue;
      double tiled_ms = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 5; ++rep) {
        auto loads = make_seeded_state(n, s, n, matching::SparseMode::kOff);
        matching::RoundSchedule window_sched = sched;  // prepare rewrites in place
        const auto t0 = clock::now();
        loads.prepare_window(window_sched);
        for (std::size_t d0 = 0; d0 < s; d0 += tile) {
          loads.apply_window_stripe(window_sched, d0, std::min(s, d0 + tile));
        }
        tiled_ms = std::min(
            tiled_ms,
            std::chrono::duration<double, std::milli>(clock::now() - t0).count());
      }
      std::printf("%-6zu %-10zu %-12.4f %-12.4f %s\n", s, tile, per_round_ms,
                  tiled_ms, tiled_ms <= per_round_ms ? "tiled" : "per-round");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_crossover_sweep();
  run_tile_sweep();
  return 0;
}
