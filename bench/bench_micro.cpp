// Micro-benchmarks (google-benchmark): per-component throughput of the
// hot paths — matching generation, load averaging, walk matvec, Lanczos,
// generators, k-means, Hungarian.  These are regression guards, not
// paper claims.
#include <benchmark/benchmark.h>

#include "baselines/spectral.hpp"
#include "graph/generators.hpp"
#include "linalg/hungarian.hpp"
#include "linalg/kmeans.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/walk_matrix.hpp"
#include "matching/load_state.hpp"
#include "matching/protocol.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

const graph::Graph& shared_graph(graph::NodeId n) {
  static std::map<graph::NodeId, graph::Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    util::Rng rng(7 + n);
    it = cache.emplace(n, graph::random_regular(n, 16, rng)).first;
  }
  return it->second;
}

void BM_MatchingRound(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MatchingRound)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_MultiLoadApply(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto s = static_cast<std::size_t>(state.range(1));
  const auto& g = shared_graph(n);
  matching::MatchingGenerator generator(g, 5);
  const auto m = generator.next();
  matching::MultiLoadState loads(n, s);
  for (std::size_t i = 0; i < s; ++i) loads.set(static_cast<graph::NodeId>(i), i, 1.0);
  for (auto _ : state) {
    loads.apply(m);
    benchmark::DoNotOptimize(loads.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m.edges.size() * s));
}
BENCHMARK(BM_MultiLoadApply)->Args({1 << 14, 8})->Args({1 << 14, 32})->Args({1 << 16, 16});

void BM_WalkMatvec(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto& g = shared_graph(n);
  const linalg::WalkOperator op(g);
  std::vector<double> x(n, 1.0);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply_walk(x, y);
    benchmark::DoNotOptimize(y[0]);
    x.swap(y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.num_edges() * 2));
}
BENCHMARK(BM_WalkMatvec)->Arg(1 << 14)->Arg(1 << 16);

void BM_LanczosTop5(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto& g = shared_graph(n);
  const linalg::WalkOperator op(g);
  for (auto _ : state) {
    linalg::LanczosOptions options;
    options.num_eigenpairs = 5;
    const auto pairs = linalg::lanczos_top_eigenpairs(
        n,
        [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
        options);
    benchmark::DoNotOptimize(pairs.values[0]);
  }
}
BENCHMARK(BM_LanczosTop5)->Arg(1 << 12)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

void BM_GenerateClusteredRegular(benchmark::State& state) {
  const auto size = static_cast<graph::NodeId>(state.range(0));
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(4, size);
  spec.degree = 16;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.02);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    benchmark::DoNotOptimize(graph::clustered_regular(spec, rng));
  }
  state.SetItemsProcessed(state.iterations() * size * 4);
}
BENCHMARK(BM_GenerateClusteredRegular)->Arg(1 << 10)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_GenerateSbm(benchmark::State& state) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = static_cast<graph::NodeId>(state.range(0));
  spec.clusters = 4;
  spec.p_in = 0.02;
  spec.p_out = 0.001;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    benchmark::DoNotOptimize(graph::stochastic_block_model(spec, rng));
  }
  state.SetItemsProcessed(state.iterations() * spec.nodes_per_cluster * 4);
}
BENCHMARK(BM_GenerateSbm)->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  const std::size_t n = 4096;
  const std::size_t dim = 4;
  util::Rng rng(11);
  std::vector<double> points(n * dim);
  for (auto& p : points) p = rng.next_double();
  linalg::KMeansOptions options;
  options.clusters = 4;
  options.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kmeans(points, n, dim, options));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KMeans)->Unit(benchmark::kMillisecond);

void BM_Hungarian(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  util::Rng rng(13);
  std::vector<double> cost(k * k);
  for (auto& c : cost) c = rng.next_double();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::hungarian_min_cost(cost, k, k));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
