// E14 (extension) — the §1.2 sub-linear observation as a pair primitive:
// "the techniques presented in our paper might be of interest for
// designing … local algorithms, and algorithms for property testing."
//
// same_cluster_query seeds unit loads at just the two queried nodes and
// answers from the cross-mass after T rounds.  We measure its accuracy
// over random same-/cross-cluster pairs as the cluster strength varies,
// and the work ratio vs a full clustering run (2 load dimensions vs s).
#include <iostream>

#include "common.hpp"
#include "core/local_query.hpp"
#include "core/rounds.hpp"
#include "core/seeding.hpp"
#include "util/rng.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 600));
  const auto pairs = static_cast<std::size_t>(cli.get_int("pairs", 40));
  cli.reject_unknown();

  bench::banner("E14 (extension)",
                "Section 1.2: local/property-testing use — same-cluster pair queries "
                "without global clustering",
                "k=2 planted clusters; random same/cross pairs; conductance sweep");

  util::Table table("pair-query accuracy",
                    {"phi_target", "Upsilon_proxy(gap/phi)", "same_acc", "cross_acc",
                     "mean_sim_same", "mean_sim_cross", "T", "work_vs_full(s/2)"});

  for (const double phi : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    const auto planted = bench::make_clustered(2, size, 16, phi, 31);
    const auto est = core::recommended_rounds(planted.graph, 2, 1.5);
    core::LocalQueryConfig config;
    config.beta = 0.5;
    config.rounds = est.rounds;

    util::Rng rng(71);
    std::size_t same_ok = 0;
    std::size_t cross_ok = 0;
    double sim_same = 0.0;
    double sim_cross = 0.0;
    for (std::size_t p = 0; p < pairs; ++p) {
      config.seed = 1000 + p;
      // Same-cluster pair (both from cluster 0).
      const auto u1 = static_cast<graph::NodeId>(rng.next_below(size));
      auto v1 = static_cast<graph::NodeId>(rng.next_below(size));
      if (v1 == u1) v1 = (v1 + 1) % size;
      const auto same = core::same_cluster_query(planted.graph, u1, v1, config);
      same_ok += same.same_cluster;
      sim_same += same.profile_similarity / static_cast<double>(pairs);
      // Cross-cluster pair.
      const auto u2 = static_cast<graph::NodeId>(rng.next_below(size));
      const auto v2 = static_cast<graph::NodeId>(size + rng.next_below(size));
      const auto cross = core::same_cluster_query(planted.graph, u2, v2, config);
      cross_ok += !cross.same_cluster;
      sim_cross += cross.profile_similarity / static_cast<double>(pairs);
    }

    const double s_full = static_cast<double>(core::default_seeding_trials(0.5));
    table.row({phi, est.spectral_gap / std::max(phi, 1e-9),
               static_cast<double>(same_ok) / static_cast<double>(pairs),
               static_cast<double>(cross_ok) / static_cast<double>(pairs), sim_same,
               sim_cross, static_cast<std::int64_t>(est.rounds), s_full / 2.0});
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: both accuracies near 1 for small phi; similarity gap\n"
               "# (same vs cross) collapses as the cluster structure dissolves; the\n"
               "# query runs 2 load dimensions instead of the full run's s ~ sbar.\n";
  return 0;
}
