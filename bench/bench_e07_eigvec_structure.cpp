// E7 — Lemma 4.2: there is an orthonormal set {χ̂_i} in span{χ_{S_j}}
// with ||χ̂_i − f_i|| ≤ E = Θ(k·sqrt(k/ϒ)).  We sweep ϒ (via the planted
// conductance) and report the measured max_i ||χ̂_i − f_i|| against the
// bound, for k = 2 and k = 4.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "core/spectral_structure.hpp"

using namespace dgc;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 1000));
  cli.reject_unknown();

  bench::banner("E7", "Lemma 4.2: ||chi_hat_i - f_i|| <= Theta(k sqrt(k/Upsilon))",
                "planted clusters; conductance sweep -> Upsilon sweep; k in {2,4}");

  util::Table table("eigenvector / indicator alignment",
                    {"k", "phi_target", "Upsilon", "max||chi-f||", "bound_E",
                     "measured/bound", "sum_alpha_sq"});

  for (const std::uint32_t k : {2u, 4u}) {
    for (const double phi : {0.005, 0.01, 0.02, 0.04, 0.08, 0.16}) {
      const auto planted = bench::make_clustered(k, size, 16, phi, 100 * k + 1);
      const auto st = core::analyze_structure(planted);
      double worst = 0.0;
      for (const double e : st.chi_hat_errors) worst = std::max(worst, e);
      double alpha_sq = 0.0;
      for (const double a : st.alpha) alpha_sq += a * a;
      table.row({static_cast<std::int64_t>(k), phi, st.upsilon, worst, st.error_bound,
                 st.error_bound > 0 ? worst / st.error_bound : 0.0, alpha_sq});
    }
  }
  table.print(std::cout);
  std::cout << "# PASS criteria: measured/bound <= 1 and decreasing alignment error as\n"
               "# Upsilon grows (bound E = k sqrt(k/Upsilon) is loose by design).\n";
  return 0;
}
