// Streaming graph construction: the ingestion path behind every Graph.
//
// Graph::from_edges wants the whole edge list materialised up front and
// pays an O(m log m) global sort plus a full copy.  GraphBuilder instead
// accepts edges one at a time (`add_edge`) — the shape a file parser or
// generator naturally produces — and assembles the CSR with two-pass
// counting-sort placement:
//
//   pass 1  count both endpoints of every buffered edge  -> provisional
//           offsets (duplicates still included);
//   pass 2  scatter each edge into its two per-node buckets;
//   then    sort + unique every bucket (O(m log d_max) total, cache
//           local) and compact to the final CSR.
//
// There is no global edge sort, and the edge buffer is released before
// the compaction pass, so peak memory stays near the final CSR size.
// With a util::ThreadPool the count/scatter passes run edge-block
// parallel (per-block histograms, disjoint cursor ranges — the classic
// parallel counting sort) and the per-node sort/unique and compaction
// run node-block parallel.  Bucket contents end up in the same order as
// a serial build, and every bucket is sorted afterwards anyway, so the
// resulting Graph is bit-identical for every thread count and identical
// to Graph::from_edges on the same multiset of edges (tested).
//
// Weighted builds: `add_edge(u, v, w)` buffers a weight alongside the
// edge; a builder is all-weighted or all-unweighted (mixing throws).
// Duplicate weighted edges *sum* their weights.  The dedup pass uses a
// stable sort keyed on the neighbour only, so duplicates keep their
// serial arrival order and the left-to-right summation adds the same
// doubles in the same order for every thread count — weighted builds
// are bit-identical across thread counts too (tested).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace dgc::graph {

class GraphBuilder {
 public:
  /// Auto-growing builder: n = max endpoint + 1 (or ensure_nodes).
  GraphBuilder() = default;

  /// Fixed-size builder on nodes `0 … num_nodes-1`: add_edge rejects
  /// endpoints out of range (the Graph::from_edges contract).
  explicit GraphBuilder(NodeId num_nodes) : nodes_(num_nodes), fixed_(true) {}

  /// Pre-sizes the edge buffer (optional; builders grow as needed).
  void reserve_edges(std::size_t m) {
    edges_.reserve(m);
    if (weighted_) weights_.reserve(m);
  }

  /// Raises the node count to at least n (for isolated trailing nodes).
  void ensure_nodes(NodeId n);

  /// Buffers one undirected edge.  Self-loops are a contract violation;
  /// duplicates (in either orientation) are collapsed at build time.
  void add_edge(NodeId u, NodeId v);

  /// Buffers one weighted undirected edge (weight positive and finite);
  /// duplicates sum their weights at build time.  A builder must be fed
  /// consistently: all edges weighted, or none.
  void add_edge(NodeId u, NodeId v, double weight);

  [[nodiscard]] std::size_t edges_added() const noexcept { return edges_.size(); }
  [[nodiscard]] NodeId num_nodes() const noexcept { return nodes_; }
  [[nodiscard]] bool weighted() const noexcept { return weighted_; }

  /// Assembles the Graph and releases the edge buffer, leaving the
  /// builder ready for a new graph (a fixed-size builder keeps its node
  /// count; an auto-growing one resets to zero nodes).  `pool`
  /// parallelises the placement and dedup passes; output is identical
  /// with and without.
  [[nodiscard]] Graph build(util::ThreadPool* pool = nullptr);

 private:
  void check_endpoints(NodeId& u, NodeId& v);

  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<double> weights_;  // parallel to edges_ when weighted_
  NodeId nodes_ = 0;
  bool fixed_ = false;
  bool weighted_ = false;
};

}  // namespace dgc::graph
