// Graph serialisation: the ingestion formats real datasets ship in,
// plus the repository's own binary format for O(1)-parse reloads.
//
//  * Edge list — one `u v` (or `u v w` when weighted) line per line,
//    `#` comments, optional `# nodes N` header (SNAP-style); weighted
//    files written by this repo carry a `# weighted` header so loads
//    round-trip without flags (WeightMode::kAuto).
//  * METIS .graph — header `n m [fmt [ncon]]`, then one 1-indexed
//    adjacency line per node; `%` comment lines allowed anywhere (per
//    the spec).  fmt 0 (unweighted), 1 (edge weights), 10 (vertex
//    weights), and 11 (both) are supported; vertex weights are
//    validated and discarded (the engines have no node-weight notion),
//    edge weights must be positive and symmetric and malformed lines
//    are reported with their line number.
//  * Binary .dgcg — versioned header (magic, endianness marker,
//    version, flags) followed by the raw CSR arrays and, for weighted
//    graphs (version 2, flag bit 0), the parallel weight array.
//    Loading is zero-copy via mmap when possible (the Graph views the
//    mapped file directly), falling back to bulk ifstream reads; either
//    way every invariant is re-validated.  Version-1 files (the
//    pre-weights format) still load.
//
// Text parsing uses std::from_chars over a slurped buffer — an order of
// magnitude faster than the iostream readers it replaced (bench E17).
// `save_graph` / `load_graph` dispatch on GraphFormat, inferring it from
// the file extension and, for loads, sniffing the file head when the
// extension is unknown.
//
// Gzip: a .gz suffix on a text input (.edges.gz, .metis.gz, …) makes
// load_graph decompress transparently before parsing when the build has
// zlib (gzip_supported()); without zlib the load raises a clear error.
// Binary .dgcg files load via mmap and are not wrapped — decompress
// them externally.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace dgc::graph {

enum class GraphFormat : std::uint8_t {
  kAuto = 0,      ///< infer from extension / file head
  kEdgeList = 1,  ///< `u v` per line (.edges, .el, .edgelist, .txt)
  kMetis = 2,     ///< METIS .graph (.graph, .metis)
  kBinary = 3,    ///< versioned binary CSR (.dgcg)
};

/// How the edge-list reader treats a third numeric column.  METIS and
/// binary files are self-describing and ignore this.
enum class WeightMode : std::uint8_t {
  kAuto = 0,  ///< weighted iff a `# weighted` header precedes the edges
  kYes = 1,   ///< every edge line must carry a weight column
  kNo = 2,    ///< extra columns are ignored (weights, timestamps, …)
};

/// Canonical lowercase name ("auto", "edges", "metis", "binary").
[[nodiscard]] std::string_view to_string(GraphFormat format) noexcept;

/// Inverse of to_string; throws contract_error on unknown names.
[[nodiscard]] GraphFormat parse_format(std::string_view name);

/// Parses "auto" | "yes" | "no"; throws contract_error otherwise.
[[nodiscard]] WeightMode parse_weight_mode(std::string_view name);

/// True when this build carries zlib: .gz inputs decompress
/// transparently in load_graph.  Compiled in at configure time
/// (find_package(ZLIB)), not probed at runtime.
[[nodiscard]] bool gzip_supported() noexcept;

/// Infers the format from the file extension; kAuto when unknown.  A
/// trailing .gz is stripped first, so "web.edges.gz" infers kEdgeList.
[[nodiscard]] GraphFormat format_from_path(const std::string& file_path) noexcept;

/// Infers the format from the first bytes of the file: the binary magic,
/// a `%` comment (METIS), or a `#` comment (edge list); an ambiguous
/// numeric head defaults to kEdgeList.  Throws on unreadable files.
[[nodiscard]] GraphFormat sniff_format(const std::string& file_path);

/// Writes `# nodes N` (plus `# weighted` for weighted graphs) then one
/// `u v [w]` line per undirected edge.  Weights render in shortest
/// round-trip form, so re-parsing restores their exact bits.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the format written by write_edge_list.  Without a `# nodes`
/// header, n = max endpoint + 1.  `mode` governs the weight column (see
/// WeightMode); a `# weighted` header must precede the first edge.
[[nodiscard]] Graph parse_edge_list(std::string_view text,
                                    WeightMode mode = WeightMode::kAuto);

/// Reads the remainder of the stream, then parse_edge_list.
[[nodiscard]] Graph read_edge_list(std::istream& is, WeightMode mode = WeightMode::kAuto);

/// METIS .graph: first line `n m [fmt]`, then line i (1-based) lists the
/// neighbours of node i (1-based), with per-edge weights when fmt ends
/// in 1.  Weights render in shortest round-trip form: integral weights
/// (the METIS-native case) produce spec-conforming integer files;
/// non-integral weights are written as decimals — a dgc extension the
/// standard gpmetis toolchain will not read (our parser accepts both).
void write_metis(std::ostream& os, const Graph& g);

/// Parses METIS text; `%` comment lines are skipped, the header's fmt
/// field may be 0/1/10/11 (vertex sizes, fmt 1xx, are rejected), and the
/// declared edge count is validated against the neighbour entries
/// actually read (2m of them) as well as the deduplicated result.  Edge
/// weights must be positive, finite, and listed identically from both
/// endpoints; vertex weights must be non-negative integers.  Errors name
/// the offending line number.
[[nodiscard]] Graph parse_metis(std::string_view text);

/// Reads the remainder of the stream, then parse_metis.
[[nodiscard]] Graph read_metis(std::istream& is);

/// Binary .dgcg: header + raw CSR (+ weights).  Written in native byte
/// order with an endianness marker; read_binary rejects foreign-endian
/// files and unknown versions, and re-validates every Graph invariant.
void write_binary(std::ostream& os, const Graph& g);
[[nodiscard]] Graph read_binary(std::istream& is);

/// File-path conveniences (throw contract_error on IO failure).
void save_edge_list(const std::string& file_path, const Graph& g);
[[nodiscard]] Graph load_edge_list(const std::string& file_path,
                                   WeightMode mode = WeightMode::kAuto);
void save_metis(const std::string& file_path, const Graph& g);
[[nodiscard]] Graph load_metis(const std::string& file_path);
void save_binary(const std::string& file_path, const Graph& g);

/// Loads a .dgcg file.  On POSIX systems the file is mmap'd and the
/// Graph adopts zero-copy views of the mapping (validated in place, no
/// array copies); when mmap is unavailable or fails the ifstream bulk
/// read path is used instead.  Both paths reject the same corruptions.
[[nodiscard]] Graph load_binary(const std::string& file_path);

/// Format-dispatching save: kAuto infers from the extension and throws
/// when it is unknown (saving cannot sniff).
void save_graph(const std::string& file_path, const Graph& g,
                GraphFormat format = GraphFormat::kAuto);

/// Format-dispatching load: kAuto infers from the extension, falling
/// back to sniffing the file head.  `weights` only affects edge lists.
/// A .gz suffix decompresses transparently first (text formats only;
/// requires a zlib build — see gzip_supported).
[[nodiscard]] Graph load_graph(const std::string& file_path,
                               GraphFormat format = GraphFormat::kAuto,
                               WeightMode weights = WeightMode::kAuto);

}  // namespace dgc::graph
