// Graph serialisation: whitespace edge lists (one `u v` pair per line,
// `#` comments, with an optional `# nodes N` header) and the METIS .graph
// format (header `n m`, then one 1-indexed adjacency line per node).
// These are the two formats real-world graph datasets usually ship in.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dgc::graph {

/// Writes `# nodes N` then one `u v` line per undirected edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Reads the format written by write_edge_list.  Without a `# nodes`
/// header, n = max endpoint + 1.
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// METIS .graph: first line `n m`, then line i (1-based) lists the
/// neighbours of node i (1-based).
void write_metis(std::ostream& os, const Graph& g);
[[nodiscard]] Graph read_metis(std::istream& is);

/// File-path conveniences (throw contract_error on IO failure).
void save_edge_list(const std::string& file_path, const Graph& g);
[[nodiscard]] Graph load_edge_list(const std::string& file_path);

}  // namespace dgc::graph
