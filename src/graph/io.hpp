// Graph serialisation: the ingestion formats real datasets ship in,
// plus the repository's own binary format for O(1)-parse reloads.
//
//  * Edge list — one `u v` pair per line, `#` comments, optional
//    `# nodes N` header (SNAP-style).
//  * METIS .graph — header `n m [fmt]`, then one 1-indexed adjacency
//    line per node; `%` comment lines allowed anywhere (per the spec);
//    only unweighted graphs (fmt 0) are supported.
//  * Binary .dgcg — versioned header (magic, endianness marker,
//    version) followed by the raw CSR arrays.  Loading is a handful of
//    bulk reads plus invariant validation (Graph::from_csr), no
//    per-byte parsing.
//
// Text parsing uses std::from_chars over a slurped buffer — an order of
// magnitude faster than the iostream readers it replaced (bench E17).
// `save_graph` / `load_graph` dispatch on GraphFormat, inferring it from
// the file extension and, for loads, sniffing the file head when the
// extension is unknown.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.hpp"

namespace dgc::graph {

enum class GraphFormat : std::uint8_t {
  kAuto = 0,      ///< infer from extension / file head
  kEdgeList = 1,  ///< `u v` per line (.edges, .el, .edgelist, .txt)
  kMetis = 2,     ///< METIS .graph (.graph, .metis)
  kBinary = 3,    ///< versioned binary CSR (.dgcg)
};

/// Canonical lowercase name ("auto", "edges", "metis", "binary").
[[nodiscard]] std::string_view to_string(GraphFormat format) noexcept;

/// Inverse of to_string; throws contract_error on unknown names.
[[nodiscard]] GraphFormat parse_format(std::string_view name);

/// Infers the format from the file extension; kAuto when unknown.
[[nodiscard]] GraphFormat format_from_path(const std::string& file_path) noexcept;

/// Infers the format from the first bytes of the file: the binary magic,
/// a `%` comment (METIS), or a `#` comment (edge list); an ambiguous
/// numeric head defaults to kEdgeList.  Throws on unreadable files.
[[nodiscard]] GraphFormat sniff_format(const std::string& file_path);

/// Writes `# nodes N` then one `u v` line per undirected edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the format written by write_edge_list.  Without a `# nodes`
/// header, n = max endpoint + 1.
[[nodiscard]] Graph parse_edge_list(std::string_view text);

/// Reads the remainder of the stream, then parse_edge_list.
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// METIS .graph: first line `n m`, then line i (1-based) lists the
/// neighbours of node i (1-based).
void write_metis(std::ostream& os, const Graph& g);

/// Parses METIS text; `%` comment lines are skipped, a third `fmt`
/// header field must be 0 (unweighted), and the declared edge count is
/// validated against the neighbour entries actually read (2m of them)
/// as well as the deduplicated result.
[[nodiscard]] Graph parse_metis(std::string_view text);

/// Reads the remainder of the stream, then parse_metis.
[[nodiscard]] Graph read_metis(std::istream& is);

/// Binary .dgcg: header + raw CSR.  Written in native byte order with
/// an endianness marker; read_binary rejects foreign-endian files and
/// unknown versions, and re-validates every Graph invariant.
void write_binary(std::ostream& os, const Graph& g);
[[nodiscard]] Graph read_binary(std::istream& is);

/// File-path conveniences (throw contract_error on IO failure).
void save_edge_list(const std::string& file_path, const Graph& g);
[[nodiscard]] Graph load_edge_list(const std::string& file_path);
void save_metis(const std::string& file_path, const Graph& g);
[[nodiscard]] Graph load_metis(const std::string& file_path);
void save_binary(const std::string& file_path, const Graph& g);
[[nodiscard]] Graph load_binary(const std::string& file_path);

/// Format-dispatching save: kAuto infers from the extension and throws
/// when it is unknown (saving cannot sniff).
void save_graph(const std::string& file_path, const Graph& g,
                GraphFormat format = GraphFormat::kAuto);

/// Format-dispatching load: kAuto infers from the extension, falling
/// back to sniffing the file head.
[[nodiscard]] Graph load_graph(const std::string& file_path,
                               GraphFormat format = GraphFormat::kAuto);

}  // namespace dgc::graph
