// Immutable undirected graph in compressed-sparse-row form.
//
// This is the substrate everything else runs on: the matching protocol
// walks adjacency lists, the spectral tooling multiplies by the random
// walk matrix P = A/d, and the generators in generators.hpp produce the
// planted-cluster instances used throughout the evaluation.
//
// Conventions
//  * Nodes are dense ids `0 … n-1` (NodeId = uint32_t).
//  * Self-loops and parallel edges are rejected at construction: the
//    paper's model is a simple graph.  (The D-regular "padded" view of
//    §4.5 is handled virtually by the matching protocol, not by
//    materialised self-loops.)
//  * `num_edges()` counts undirected edges; adjacency stores both
//    directions and is sorted, so `has_edge` is O(log d).
//  * Edge weights are optional: `weights()` is a per-arc array parallel
//    to `adjacency()` (absent ⇒ unweighted; every weight is positive and
//    finite, and symmetric across the two directions of an edge).  The
//    unweighted representation carries no weight storage at all, so the
//    existing hot paths pay nothing for the extension.
//
// Storage is an immutable, shared backing block (vectors from a builder,
// or an mmap'd file for zero-copy binary loads — io.hpp) viewed through
// spans; copying a Graph shares the backing instead of deep-copying it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace dgc::graph {

using NodeId = std::uint32_t;

/// Sentinel for "no node" (used by matching / BFS internals).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// One undirected edge with a weight (the streaming input unit of the
/// weighted Graph::from_edges / GraphBuilder paths).
struct WeightedEdge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;
};

class Graph {
 public:
  /// Empty graph on zero nodes.
  Graph() = default;

  /// Builds from an undirected edge list on nodes `0 … n-1`.
  /// Duplicate edges (in either orientation) are collapsed; self-loops
  /// are a contract violation.  Thin wrapper over graph::GraphBuilder
  /// (builder.hpp), which is the streaming / parallel construction path.
  static Graph from_edges(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges);

  /// Weighted variant: duplicate edges (in either orientation) *sum*
  /// their weights; every weight must be positive and finite.  (Named,
  /// not overloaded: brace-initialised edge lists would be ambiguous.)
  static Graph from_weighted_edges(NodeId n, std::vector<WeightedEdge> edges);

  /// Adopts a ready-made CSR after validating every class invariant:
  /// offsets has size n+1, starts at 0, is non-decreasing and ends at
  /// adjacency.size(); every adjacency run is strictly increasing (sorted,
  /// no duplicates), in range, self-loop free, and symmetric.  `weights`
  /// is either empty (unweighted) or parallel to `adjacency` with every
  /// entry positive, finite, and equal across the two directions of an
  /// edge.  This is the trust boundary for the binary graph loader
  /// (io.hpp).
  static Graph from_csr(std::vector<std::uint64_t> offsets, std::vector<NodeId> adjacency,
                        std::vector<double> weights = {});

  /// Zero-copy variant of from_csr: adopts views into caller-owned
  /// memory (e.g. an mmap'd .dgcg file) after the same validation.
  /// `backing` keeps the viewed memory alive for the lifetime of the
  /// Graph and of every copy of it.
  static Graph from_csr_views(std::shared_ptr<const void> backing,
                              std::span<const std::uint64_t> offsets,
                              std::span<const NodeId> adjacency,
                              std::span<const double> weights = {});

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  [[nodiscard]] std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const;

  [[nodiscard]] std::size_t degree(NodeId v) const;

  [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }
  [[nodiscard]] std::size_t min_degree() const noexcept { return min_degree_; }

  /// True iff every node has the same degree (and the graph is non-empty).
  [[nodiscard]] bool is_regular() const noexcept {
    return num_nodes() > 0 && max_degree_ == min_degree_;
  }

  /// True iff the graph carries an edge-weight array.  An unweighted
  /// graph behaves exactly like the all-ones weighting everywhere a
  /// weight is consumed (edge_weight, strength, total_weight, …).
  [[nodiscard]] bool is_weighted() const noexcept { return !weights_.empty(); }

  /// Per-arc weights parallel to adjacency(); empty when unweighted.
  [[nodiscard]] std::span<const double> weights() const noexcept { return weights_; }

  /// Node v's weight run, parallel to neighbors(v); empty when unweighted.
  [[nodiscard]] std::span<const double> weights(NodeId v) const;

  /// Weight of the edge {u, v} (1.0 on unweighted graphs).  The edge
  /// must exist; O(log d) lookup.
  [[nodiscard]] double edge_weight(NodeId u, NodeId v) const;

  /// Largest edge weight (1.0 on unweighted graphs — the all-ones view;
  /// 0.0 on edgeless weighted graphs).  Normalises the weighted
  /// averaging step (matching/load_state.hpp).
  [[nodiscard]] double max_weight() const noexcept {
    return is_weighted() ? max_weight_ : 1.0;
  }

  /// Sum of edge weights over undirected edges (= num_edges() when
  /// unweighted).
  [[nodiscard]] double total_weight() const noexcept {
    return is_weighted() ? total_weight_ : static_cast<double>(num_edges());
  }

  /// Weighted degree sum_u w(v,u) (= degree(v) when unweighted).
  [[nodiscard]] double strength(NodeId v) const;

  /// O(log d) membership test; adjacency lists are sorted.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Sum of degrees over `set` (the standard volume; see analysis.hpp for
  /// the paper's edge-counting variant).
  [[nodiscard]] std::uint64_t volume(std::span<const NodeId> set) const;

  /// Sum of strengths over `set` (= volume(set) when unweighted).
  [[nodiscard]] double weighted_volume(std::span<const NodeId> set) const;

  /// Calls fn(u, v) once per undirected edge with u < v.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    const NodeId n = num_nodes();
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : neighbors(u)) {
        if (u < v) fn(u, v);
      }
    }
  }

  /// Calls fn(u, v, w) once per undirected edge with u < v; w is 1.0 on
  /// unweighted graphs.
  template <typename Fn>
  void for_each_weighted_edge(Fn&& fn) const {
    const NodeId n = num_nodes();
    const bool weighted = is_weighted();
    for (NodeId u = 0; u < n; ++u) {
      for (std::uint64_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
        const NodeId v = adjacency_[i];
        if (u < v) fn(u, v, weighted ? weights_[i] : 1.0);
      }
    }
  }

  /// Raw CSR views for serialisation (io.hpp) and bit-identity tests.
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const NodeId> adjacency() const noexcept { return adjacency_; }

 private:
  friend class GraphBuilder;

  /// The owned-vector backing used by the builder / from_csr paths.
  struct VectorStorage {
    std::vector<std::uint64_t> offsets;
    std::vector<NodeId> adjacency;
    std::vector<double> weights;
  };

  /// Adopts already-validated vectors (the GraphBuilder exit; invariants
  /// hold by construction there).
  static Graph adopt(VectorStorage storage);

  /// Validates every CSR invariant on raw views (throws contract_error).
  static void validate_views(std::span<const std::uint64_t> offsets,
                             std::span<const NodeId> adjacency,
                             std::span<const double> weights);

  /// Recomputes min/max degree and the weight aggregates from the views.
  void finalize_stats();

  /// Keeps the viewed memory alive: a VectorStorage or an mmap holder.
  std::shared_ptr<const void> backing_;
  std::span<const std::uint64_t> offsets_;  // size n+1
  std::span<const NodeId> adjacency_;       // size 2m, sorted within each node
  std::span<const double> weights_;         // size 2m or empty
  std::size_t max_degree_ = 0;
  std::size_t min_degree_ = 0;
  double max_weight_ = 0.0;
  double total_weight_ = 0.0;
};

/// A generated graph together with its planted ground-truth partition.
struct PlantedGraph {
  Graph graph;
  std::vector<std::uint32_t> membership;  ///< membership[v] in [0, k)
  std::uint32_t num_clusters = 0;

  /// Nodes of cluster c, in increasing order.
  [[nodiscard]] std::vector<NodeId> cluster(std::uint32_t c) const;
  /// Sizes of all clusters.
  [[nodiscard]] std::vector<std::size_t> cluster_sizes() const;
  /// min_i |S_i| / n — the balance parameter beta of the paper.
  [[nodiscard]] double beta() const;
};

}  // namespace dgc::graph
