// Immutable undirected graph in compressed-sparse-row form.
//
// This is the substrate everything else runs on: the matching protocol
// walks adjacency lists, the spectral tooling multiplies by the random
// walk matrix P = A/d, and the generators in generators.hpp produce the
// planted-cluster instances used throughout the evaluation.
//
// Conventions
//  * Nodes are dense ids `0 … n-1` (NodeId = uint32_t).
//  * Self-loops and parallel edges are rejected at construction: the
//    paper's model is a simple graph.  (The D-regular "padded" view of
//    §4.5 is handled virtually by the matching protocol, not by
//    materialised self-loops.)
//  * `num_edges()` counts undirected edges; adjacency stores both
//    directions and is sorted, so `has_edge` is O(log d).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace dgc::graph {

using NodeId = std::uint32_t;

/// Sentinel for "no node" (used by matching / BFS internals).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

class Graph {
 public:
  /// Empty graph on zero nodes.
  Graph() = default;

  /// Builds from an undirected edge list on nodes `0 … n-1`.
  /// Duplicate edges (in either orientation) are collapsed; self-loops
  /// are a contract violation.  Thin wrapper over graph::GraphBuilder
  /// (builder.hpp), which is the streaming / parallel construction path.
  static Graph from_edges(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges);

  /// Adopts a ready-made CSR after validating every class invariant:
  /// offsets has size n+1, starts at 0, is non-decreasing and ends at
  /// adjacency.size(); every adjacency run is strictly increasing (sorted,
  /// no duplicates), in range, self-loop free, and symmetric.  This is the
  /// trust boundary for the binary graph loader (io.hpp).
  static Graph from_csr(std::vector<std::uint64_t> offsets, std::vector<NodeId> adjacency);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  [[nodiscard]] std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const;

  [[nodiscard]] std::size_t degree(NodeId v) const;

  [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }
  [[nodiscard]] std::size_t min_degree() const noexcept { return min_degree_; }

  /// True iff every node has the same degree (and the graph is non-empty).
  [[nodiscard]] bool is_regular() const noexcept {
    return num_nodes() > 0 && max_degree_ == min_degree_;
  }

  /// O(log d) membership test; adjacency lists are sorted.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Sum of degrees over `set` (the standard volume; see analysis.hpp for
  /// the paper's edge-counting variant).
  [[nodiscard]] std::uint64_t volume(std::span<const NodeId> set) const;

  /// Calls fn(u, v) once per undirected edge with u < v.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    const NodeId n = num_nodes();
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : neighbors(u)) {
        if (u < v) fn(u, v);
      }
    }
  }

  /// Raw CSR views for serialisation (io.hpp) and bit-identity tests.
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const NodeId> adjacency() const noexcept { return adjacency_; }

 private:
  friend class GraphBuilder;

  /// Recomputes min/max degree from the CSR arrays.
  void finalize_degrees();

  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2m, sorted within each node
  std::size_t max_degree_ = 0;
  std::size_t min_degree_ = 0;
};

/// A generated graph together with its planted ground-truth partition.
struct PlantedGraph {
  Graph graph;
  std::vector<std::uint32_t> membership;  ///< membership[v] in [0, k)
  std::uint32_t num_clusters = 0;

  /// Nodes of cluster c, in increasing order.
  [[nodiscard]] std::vector<NodeId> cluster(std::uint32_t c) const;
  /// Sizes of all clusters.
  [[nodiscard]] std::vector<std::size_t> cluster_sizes() const;
  /// min_i |S_i| / n — the balance parameter beta of the paper.
  [[nodiscard]] double beta() const;
};

}  // namespace dgc::graph
