#include "graph/builder.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace dgc::graph {

namespace {

/// Edges per block for the parallel count/scatter passes.
constexpr std::size_t kEdgeGrain = std::size_t{1} << 15;
/// Nodes per block for the parallel sort/unique and compaction passes.
constexpr std::size_t kNodeGrain = std::size_t{1} << 14;

}  // namespace

void GraphBuilder::ensure_nodes(NodeId n) { nodes_ = std::max(nodes_, n); }

void GraphBuilder::check_endpoints(NodeId& u, NodeId& v) {
  DGC_REQUIRE(u != v, "self-loops are not allowed");
  if (fixed_) {
    DGC_REQUIRE(u < nodes_ && v < nodes_, "edge endpoint out of range");
  } else {
    DGC_REQUIRE(std::max(u, v) < kInvalidNode, "edge endpoint exceeds the NodeId range");
    nodes_ = std::max(nodes_, std::max(u, v) + 1);
  }
  if (u > v) std::swap(u, v);
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  DGC_REQUIRE(!weighted_, "cannot mix unweighted edges into a weighted builder");
  check_endpoints(u, v);
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_edge(NodeId u, NodeId v, double weight) {
  DGC_REQUIRE(weighted_ || edges_.empty(),
              "cannot mix weighted edges into an unweighted builder");
  DGC_REQUIRE(std::isfinite(weight) && weight > 0.0,
              "edge weight must be positive and finite");
  check_endpoints(u, v);
  if (!weighted_) {
    weighted_ = true;
    // Catch up with any reserve_edges() issued before the builder knew
    // it was weighted, so weights_ grows in step with edges_.
    weights_.reserve(edges_.capacity());
  }
  edges_.emplace_back(u, v);
  weights_.push_back(weight);
}

Graph GraphBuilder::build(util::ThreadPool* pool) {
  const std::size_t n = nodes_;
  const bool weighted = weighted_;
  // The parallel count/scatter passes keep one n-sized histogram per
  // edge block; raise the grain so that scratch stays within ~one raw
  // adjacency array (blocks <= m/n, i.e. <= d_avg/2 histograms).  Very
  // sparse graphs degrade to a serial placement, which is memory-bound
  // anyway; dedup/compaction stay node-parallel regardless.
  std::size_t edge_grain = kEdgeGrain;
  if (n > 0) {
    const std::size_t max_blocks = std::max<std::size_t>(1, edges_.size() / n);
    edge_grain = std::max(edge_grain, edges_.size() / max_blocks + 1);
  }
  const std::size_t edge_blocks =
      pool != nullptr ? pool->blocks_for(edges_.size(), edge_grain) : 1;
  const bool parallel = pool != nullptr && edge_blocks > 1;

  // Pass 1: count both endpoints of every buffered edge (duplicates
  // included) into raw_offsets[v + 1].  Parallel mode keeps one
  // histogram per edge block so pass 2 can hand every block a disjoint
  // cursor range and still lay buckets out in serial edge order.
  std::vector<std::uint64_t> raw_offsets(n + 1, 0);
  std::vector<std::vector<std::uint64_t>> block_counts;
  if (parallel) {
    block_counts.assign(edge_blocks, {});
    pool->parallel_blocks(edges_.size(), edge_grain,
                          [&](std::size_t block, std::size_t begin, std::size_t end) {
                            auto& counts = block_counts[block];
                            counts.assign(n, 0);
                            for (std::size_t i = begin; i < end; ++i) {
                              ++counts[edges_[i].first];
                              ++counts[edges_[i].second];
                            }
                          });
    // Turn per-block counts into per-block starting cursors in place:
    // block b's bucket segment for node v follows the segments of every
    // earlier block, so concatenation reproduces serial edge order.
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t total = 0;
      for (auto& counts : block_counts) {
        const std::uint64_t c = counts[v];
        counts[v] = total;
        total += c;
      }
      raw_offsets[v + 1] = total;
    }
  } else {
    for (const auto& [u, v] : edges_) {
      ++raw_offsets[u + 1];
      ++raw_offsets[v + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) raw_offsets[v + 1] += raw_offsets[v];

  // Pass 2: scatter both directions into the per-node buckets (weights,
  // when present, travel on the same cursors).
  std::vector<NodeId> raw_adjacency(edges_.size() * 2);
  std::vector<double> raw_weights(weighted ? edges_.size() * 2 : 0);
  if (parallel) {
    pool->parallel_blocks(
        edges_.size(), edge_grain,
        [&](std::size_t block, std::size_t begin, std::size_t end) {
          auto& cursor = block_counts[block];
          for (std::size_t i = begin; i < end; ++i) {
            const auto [u, v] = edges_[i];
            const std::uint64_t pu = raw_offsets[u] + cursor[u]++;
            const std::uint64_t pv = raw_offsets[v] + cursor[v]++;
            raw_adjacency[pu] = v;
            raw_adjacency[pv] = u;
            if (weighted) {
              raw_weights[pu] = weights_[i];
              raw_weights[pv] = weights_[i];
            }
          }
        });
    block_counts.clear();
    block_counts.shrink_to_fit();
  } else {
    std::vector<std::uint64_t> cursor(raw_offsets.begin(), raw_offsets.end() - 1);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      const auto [u, v] = edges_[i];
      const std::uint64_t pu = cursor[u]++;
      const std::uint64_t pv = cursor[v]++;
      raw_adjacency[pu] = v;
      raw_adjacency[pv] = u;
      if (weighted) {
        raw_weights[pu] = weights_[i];
        raw_weights[pv] = weights_[i];
      }
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();
  weights_.clear();
  weights_.shrink_to_fit();

  // Sort + unique every bucket; unique_degree feeds the final offsets.
  // Weighted buckets stable-sort (neighbour, weight) pairs keyed on the
  // neighbour only and sum duplicate runs left to right: bucket contents
  // are in serial edge order for every thread count, so the sums add the
  // same doubles in the same order — bit-identical output.
  std::vector<std::uint64_t> unique_degree(n, 0);
  const auto dedup_nodes = [&](std::size_t begin, std::size_t end) {
    std::vector<std::pair<NodeId, double>> scratch;
    for (std::size_t v = begin; v < end; ++v) {
      const auto first = raw_offsets[v];
      const auto last = raw_offsets[v + 1];
      if (!weighted) {
        const auto sort_first =
            raw_adjacency.begin() + static_cast<std::ptrdiff_t>(first);
        const auto sort_last = raw_adjacency.begin() + static_cast<std::ptrdiff_t>(last);
        std::sort(sort_first, sort_last);
        unique_degree[v] =
            static_cast<std::uint64_t>(std::unique(sort_first, sort_last) - sort_first);
        continue;
      }
      scratch.clear();
      scratch.reserve(static_cast<std::size_t>(last - first));
      for (std::uint64_t i = first; i < last; ++i) {
        scratch.emplace_back(raw_adjacency[i], raw_weights[i]);
      }
      std::stable_sort(scratch.begin(), scratch.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      std::uint64_t out = first;
      for (std::size_t i = 0; i < scratch.size();) {
        const NodeId nbr = scratch[i].first;
        double w = scratch[i].second;
        for (++i; i < scratch.size() && scratch[i].first == nbr; ++i) {
          w += scratch[i].second;
        }
        raw_adjacency[out] = nbr;
        raw_weights[out] = w;
        ++out;
      }
      unique_degree[v] = out - first;
    }
  };
  if (pool != nullptr && pool->blocks_for(n, kNodeGrain) > 1) {
    pool->parallel_blocks(n, kNodeGrain,
                          [&](std::size_t, std::size_t begin, std::size_t end) {
                            dedup_nodes(begin, end);
                          });
  } else {
    dedup_nodes(0, n);
  }

  Graph::VectorStorage storage;
  storage.offsets.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    storage.offsets[v + 1] = storage.offsets[v] + unique_degree[v];
  }

  // Compact the deduplicated runs into the final CSR.
  storage.adjacency.resize(storage.offsets[n]);
  if (weighted) storage.weights.resize(storage.offsets[n]);
  const auto compact_nodes = [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::copy_n(raw_adjacency.begin() + static_cast<std::ptrdiff_t>(raw_offsets[v]),
                  unique_degree[v],
                  storage.adjacency.begin() + static_cast<std::ptrdiff_t>(storage.offsets[v]));
      if (weighted) {
        std::copy_n(raw_weights.begin() + static_cast<std::ptrdiff_t>(raw_offsets[v]),
                    unique_degree[v],
                    storage.weights.begin() + static_cast<std::ptrdiff_t>(storage.offsets[v]));
      }
    }
  };
  if (pool != nullptr && pool->blocks_for(n, kNodeGrain) > 1) {
    pool->parallel_blocks(n, kNodeGrain,
                          [&](std::size_t, std::size_t begin, std::size_t end) {
                            compact_nodes(begin, end);
                          });
  } else {
    compact_nodes(0, n);
  }

  // Leave the builder ready for a fresh graph: a fixed-size builder
  // keeps its node count (that is its contract), an auto-growing one
  // starts over from zero.
  if (!fixed_) nodes_ = 0;
  weighted_ = false;
  return Graph::adopt(std::move(storage));
}

}  // namespace dgc::graph
