// Synthetic graph generators.
//
// The paper evaluates nothing empirically, but its motivating instance
// (§1.2) is explicit: k = Θ(1) clusters of balanced size, each cluster a
// spectral expander, with outer conductance O(1/polylog n).  No public
// datasets are referenced, so the harness generates exactly that family:
//
//  * `random_regular`          — configuration model with swap repair;
//                                whp an expander for d ≥ 3.
//  * `clustered_regular`       — k disjoint random d-regular expanders
//                                joined by *degree-preserving* edge swaps,
//                                giving an exactly d-regular graph whose
//                                inter-cluster edge count (hence rho(k))
//                                is controlled exactly.  This is the
//                                paper-faithful instance.
//  * `stochastic_block_model`  — planted partition (only almost regular;
//                                used for baseline comparisons, and the
//                                instance family of Becchetti et al.).
//  * `ring_of_cliques`, deterministic `path/cycle/complete/star`
//                              — worst cases and unit-test fixtures.
//  * `almost_regular_clusters` — random edge deletions on top of
//                                clustered_regular, exercising the §4.5
//                                extension (max/min degree ratio bounded).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dgc::graph {

/// Uniform-ish random d-regular simple graph on n nodes (configuration
/// model with conflict repair).  Requires n*d even, 0 < d < n.
[[nodiscard]] Graph random_regular(NodeId n, std::size_t degree, util::Rng& rng);

/// Specification for the paper-faithful planted instance.
struct ClusteredRegularSpec {
  /// Size of every cluster (all ≥ degree+1; size*degree must be even).
  std::vector<NodeId> cluster_sizes;
  /// Common degree d of the final graph (exactly d-regular).
  std::size_t degree = 16;
  /// Number of degree-preserving swaps; each swap converts two
  /// intra-cluster edges into two inter-cluster edges, so the final graph
  /// has exactly 2*inter_cluster_swaps inter-cluster edges.
  std::size_t inter_cluster_swaps = 0;
  /// Which cluster pairs may receive swapped edges.
  enum class Topology : std::uint8_t {
    kComplete,  ///< any pair of distinct clusters (default)
    kRing,      ///< only consecutive clusters i, i+1 (mod k)
  };
  Topology topology = Topology::kComplete;
  /// Hierarchical (two-tier) variant: consecutive runs of
  /// sibling_group_size clusters form a parent group (must divide the
  /// cluster count; kComplete topology only).  sibling_swaps rewire
  /// between clusters of the *same* group — the tight tier — while
  /// inter_cluster_swaps then only join clusters of *different* groups,
  /// so the planted structure has sub-clusters nested inside parent
  /// clusters (membership stays per-sub-cluster; the parent of cluster c
  /// is c / sibling_group_size).  At group size 1 both knobs reduce to
  /// the flat instance, bit-identically.  swaps_for_conductance applies
  /// to either tier (the per-cluster cut formula only depends on k, d
  /// and the cluster size).
  std::uint32_t sibling_group_size = 1;
  std::size_t sibling_swaps = 0;
  /// Weighted variant: intra-cluster edges carry intra_weight and
  /// inter-cluster edges inter_weight (the in/out weight-ratio knob).
  /// The adjacency structure is identical to the unweighted instance
  /// with the same spec and Rng stream — only the weight array differs,
  /// so intra_weight = inter_weight = 1 yields the all-ones weighting of
  /// the unweighted graph.
  bool weighted = false;
  double intra_weight = 1.0;
  double inter_weight = 1.0;
};

/// Builds the planted instance; ground truth is the generating partition.
[[nodiscard]] PlantedGraph clustered_regular(const ClusteredRegularSpec& spec,
                                             util::Rng& rng);

/// Number of swaps that yields (approximately) per-cluster paper
/// conductance `phi` for equal cluster sizes: each cluster of size s has
/// about d*s/2 internal edges, and swaps spread uniformly, so
/// cut_i ≈ 2*swaps*(2/k) and phi_i ≈ cut_i / (d*s/2).
[[nodiscard]] std::size_t swaps_for_conductance(const ClusteredRegularSpec& spec,
                                                double phi);

/// Planted-partition stochastic block model with equal-size blocks.
struct SbmSpec {
  NodeId nodes_per_cluster = 0;
  std::uint32_t clusters = 0;
  double p_in = 0.0;   ///< intra-block edge probability
  double p_out = 0.0;  ///< inter-block edge probability
  /// Weighted variant (same structure and Rng stream as unweighted):
  /// intra-block edges carry intra_weight, inter-block edges inter_weight.
  bool weighted = false;
  double intra_weight = 1.0;
  double inter_weight = 1.0;
};

/// O(m)-time SBM sampler (geometric skipping, no n^2 pass).
[[nodiscard]] PlantedGraph stochastic_block_model(const SbmSpec& spec, util::Rng& rng);

/// k cliques of size s arranged in a ring, one bridge edge between
/// consecutive cliques.  Requires k ≥ 2 (k = 2 uses two disjoint
/// bridges), s ≥ 3.
[[nodiscard]] PlantedGraph ring_of_cliques(std::uint32_t k, NodeId clique_size);

/// clustered_regular followed by independent edge deletions with
/// probability drop_prob — an almost-regular instance for §4.5.
[[nodiscard]] PlantedGraph almost_regular_clusters(const ClusteredRegularSpec& spec,
                                                   double drop_prob, util::Rng& rng);

/// Deterministic fixtures.
[[nodiscard]] Graph path(NodeId n);
[[nodiscard]] Graph cycle(NodeId n);
[[nodiscard]] Graph complete(NodeId n);
[[nodiscard]] Graph star(NodeId n);

}  // namespace dgc::graph
