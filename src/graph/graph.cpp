#include "graph/graph.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "util/require.hpp"

namespace dgc::graph {

Graph Graph::from_edges(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges) {
  GraphBuilder builder(n);
  builder.reserve_edges(edges.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  edges.clear();
  return builder.build();
}

Graph Graph::from_csr(std::vector<std::uint64_t> offsets, std::vector<NodeId> adjacency) {
  DGC_REQUIRE(!offsets.empty(), "CSR offsets must have size n+1 >= 1");
  DGC_REQUIRE(offsets.front() == 0, "CSR offsets must start at 0");
  DGC_REQUIRE(offsets.back() == adjacency.size(),
              "CSR offsets must end at the adjacency length");
  DGC_REQUIRE(adjacency.size() % 2 == 0, "undirected CSR needs an even adjacency length");
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  // Validate every offset before touching adjacency: a single decreasing
  // pair further down must not let an earlier node's run read past the
  // adjacency array.
  for (NodeId v = 0; v < n; ++v) {
    DGC_REQUIRE(offsets[v] <= offsets[v + 1], "CSR offsets must be non-decreasing");
  }
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const NodeId u = adjacency[i];
      DGC_REQUIRE(u < n, "CSR neighbour out of range");
      DGC_REQUIRE(u != v, "CSR contains a self-loop");
      DGC_REQUIRE(i == offsets[v] || adjacency[i - 1] < u,
                  "CSR adjacency must be strictly increasing per node");
    }
  }
  // Symmetry in O(m): arcs (v, u) arrive in increasing v for every u, so
  // walking each node's run with a monotone cursor must consume it slot
  // by slot — any mismatch, and any cursor not ending exactly at its
  // run's end, means a one-sided arc.
  {
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        const NodeId u = adjacency[i];
        DGC_REQUIRE(cursor[u] < offsets[u + 1] && adjacency[cursor[u]] == v,
                    "CSR adjacency is not symmetric");
        ++cursor[u];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      DGC_REQUIRE(cursor[v] == offsets[v + 1], "CSR adjacency is not symmetric");
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.finalize_degrees();
  return g;
}

void Graph::finalize_degrees() {
  const NodeId n = num_nodes();
  max_degree_ = 0;
  min_degree_ = n > 0 ? adjacency_.size() : 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d = degree(v);
    max_degree_ = std::max(max_degree_, d);
    min_degree_ = std::min(min_degree_, d);
  }
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  DGC_REQUIRE(v < num_nodes(), "node out of range");
  const auto begin = offsets_[v];
  const auto end = offsets_[v + 1];
  return {adjacency_.data() + begin, adjacency_.data() + end};
}

std::size_t Graph::degree(NodeId v) const {
  DGC_REQUIRE(v < num_nodes(), "node out of range");
  return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint64_t Graph::volume(std::span<const NodeId> set) const {
  std::uint64_t total = 0;
  for (const NodeId v : set) total += degree(v);
  return total;
}

std::vector<NodeId> PlantedGraph::cluster(std::uint32_t c) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < membership.size(); ++v) {
    if (membership[v] == c) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> PlantedGraph::cluster_sizes() const {
  std::vector<std::size_t> sizes(num_clusters, 0);
  for (const auto c : membership) {
    DGC_REQUIRE(c < num_clusters, "membership label out of range");
    ++sizes[c];
  }
  return sizes;
}

double PlantedGraph::beta() const {
  const auto sizes = cluster_sizes();
  std::size_t min_size = membership.size();
  for (const auto s : sizes) min_size = std::min(min_size, s);
  return membership.empty() ? 0.0
                            : static_cast<double>(min_size) /
                                  static_cast<double>(membership.size());
}

}  // namespace dgc::graph
