#include "graph/graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dgc::graph {

Graph Graph::from_edges(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges) {
  for (auto& [u, v] : edges) {
    DGC_REQUIRE(u < n && v < n, "edge endpoint out of range");
    DGC_REQUIRE(u != v, "self-loops are not allowed");
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(edges.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < n; ++v) {
    auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
  }

  g.max_degree_ = 0;
  g.min_degree_ = n > 0 ? g.adjacency_.size() : 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    g.max_degree_ = std::max(g.max_degree_, d);
    g.min_degree_ = std::min(g.min_degree_, d);
  }
  return g;
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  DGC_REQUIRE(v < num_nodes(), "node out of range");
  const auto begin = offsets_[v];
  const auto end = offsets_[v + 1];
  return {adjacency_.data() + begin, adjacency_.data() + end};
}

std::size_t Graph::degree(NodeId v) const {
  DGC_REQUIRE(v < num_nodes(), "node out of range");
  return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint64_t Graph::volume(std::span<const NodeId> set) const {
  std::uint64_t total = 0;
  for (const NodeId v : set) total += degree(v);
  return total;
}

std::vector<NodeId> PlantedGraph::cluster(std::uint32_t c) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < membership.size(); ++v) {
    if (membership[v] == c) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> PlantedGraph::cluster_sizes() const {
  std::vector<std::size_t> sizes(num_clusters, 0);
  for (const auto c : membership) {
    DGC_REQUIRE(c < num_clusters, "membership label out of range");
    ++sizes[c];
  }
  return sizes;
}

double PlantedGraph::beta() const {
  const auto sizes = cluster_sizes();
  std::size_t min_size = membership.size();
  for (const auto s : sizes) min_size = std::min(min_size, s);
  return membership.empty() ? 0.0
                            : static_cast<double>(min_size) /
                                  static_cast<double>(membership.size());
}

}  // namespace dgc::graph
