#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "util/require.hpp"

namespace dgc::graph {

Graph Graph::from_edges(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges) {
  GraphBuilder builder(n);
  builder.reserve_edges(edges.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  edges.clear();
  return builder.build();
}

Graph Graph::from_weighted_edges(NodeId n, std::vector<WeightedEdge> edges) {
  GraphBuilder builder(n);
  builder.reserve_edges(edges.size());
  for (const auto& e : edges) builder.add_edge(e.u, e.v, e.weight);
  edges.clear();
  return builder.build();
}

void Graph::validate_views(std::span<const std::uint64_t> offsets,
                           std::span<const NodeId> adjacency,
                           std::span<const double> weights) {
  DGC_REQUIRE(!offsets.empty(), "CSR offsets must have size n+1 >= 1");
  DGC_REQUIRE(offsets.front() == 0, "CSR offsets must start at 0");
  DGC_REQUIRE(offsets.back() == adjacency.size(),
              "CSR offsets must end at the adjacency length");
  DGC_REQUIRE(adjacency.size() % 2 == 0, "undirected CSR needs an even adjacency length");
  DGC_REQUIRE(weights.empty() || weights.size() == adjacency.size(),
              "CSR weights must be empty or parallel to adjacency");
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  // Validate every offset before touching adjacency: a single decreasing
  // pair further down must not let an earlier node's run read past the
  // adjacency array.
  for (NodeId v = 0; v < n; ++v) {
    DGC_REQUIRE(offsets[v] <= offsets[v + 1], "CSR offsets must be non-decreasing");
  }
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const NodeId u = adjacency[i];
      DGC_REQUIRE(u < n, "CSR neighbour out of range");
      DGC_REQUIRE(u != v, "CSR contains a self-loop");
      DGC_REQUIRE(i == offsets[v] || adjacency[i - 1] < u,
                  "CSR adjacency must be strictly increasing per node");
    }
  }
  if (!weights.empty()) {
    for (const double w : weights) {
      DGC_REQUIRE(std::isfinite(w) && w > 0.0,
                  "CSR edge weights must be positive and finite");
    }
  }
  // Symmetry in O(m): arcs (v, u) arrive in increasing v for every u, so
  // walking each node's run with a monotone cursor must consume it slot
  // by slot — any mismatch, and any cursor not ending exactly at its
  // run's end, means a one-sided arc.  The same walk pairs the two
  // directions of every edge, so it also checks weight symmetry.
  {
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        const NodeId u = adjacency[i];
        DGC_REQUIRE(cursor[u] < offsets[u + 1] && adjacency[cursor[u]] == v,
                    "CSR adjacency is not symmetric");
        if (!weights.empty()) {
          DGC_REQUIRE(weights[cursor[u]] == weights[i],
                      "CSR edge weights are not symmetric");
        }
        ++cursor[u];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      DGC_REQUIRE(cursor[v] == offsets[v + 1], "CSR adjacency is not symmetric");
    }
  }
}

Graph Graph::adopt(VectorStorage storage) {
  auto holder = std::make_shared<const VectorStorage>(std::move(storage));
  Graph g;
  g.offsets_ = holder->offsets;
  g.adjacency_ = holder->adjacency;
  g.weights_ = holder->weights;
  g.backing_ = std::move(holder);
  g.finalize_stats();
  return g;
}

Graph Graph::from_csr(std::vector<std::uint64_t> offsets, std::vector<NodeId> adjacency,
                      std::vector<double> weights) {
  validate_views(offsets, adjacency, weights);
  return adopt({std::move(offsets), std::move(adjacency), std::move(weights)});
}

Graph Graph::from_csr_views(std::shared_ptr<const void> backing,
                            std::span<const std::uint64_t> offsets,
                            std::span<const NodeId> adjacency,
                            std::span<const double> weights) {
  validate_views(offsets, adjacency, weights);
  Graph g;
  g.backing_ = std::move(backing);
  g.offsets_ = offsets;
  g.adjacency_ = adjacency;
  g.weights_ = weights;
  g.finalize_stats();
  return g;
}

void Graph::finalize_stats() {
  const NodeId n = num_nodes();
  max_degree_ = 0;
  min_degree_ = n > 0 ? adjacency_.size() : 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d = degree(v);
    max_degree_ = std::max(max_degree_, d);
    min_degree_ = std::min(min_degree_, d);
  }
  max_weight_ = 0.0;
  total_weight_ = 0.0;
  if (!weights_.empty()) {
    for (const double w : weights_) max_weight_ = std::max(max_weight_, w);
    // Sum each undirected edge once, in u < v CSR order (deterministic).
    for (NodeId u = 0; u < n; ++u) {
      for (std::uint64_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
        if (adjacency_[i] > u) total_weight_ += weights_[i];
      }
    }
  }
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  DGC_REQUIRE(v < num_nodes(), "node out of range");
  const auto begin = offsets_[v];
  const auto end = offsets_[v + 1];
  return {adjacency_.data() + begin, adjacency_.data() + end};
}

std::span<const double> Graph::weights(NodeId v) const {
  DGC_REQUIRE(v < num_nodes(), "node out of range");
  if (weights_.empty()) return {};
  return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
}

std::size_t Graph::degree(NodeId v) const {
  DGC_REQUIRE(v < num_nodes(), "node out of range");
  return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
}

double Graph::strength(NodeId v) const {
  if (weights_.empty()) return static_cast<double>(degree(v));
  double total = 0.0;
  for (const double w : weights(v)) total += w;
  return total;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::edge_weight(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  DGC_REQUIRE(it != nbrs.end() && *it == v, "edge_weight of a non-edge");
  if (weights_.empty()) return 1.0;
  return weights_[offsets_[u] + static_cast<std::uint64_t>(it - nbrs.begin())];
}

std::uint64_t Graph::volume(std::span<const NodeId> set) const {
  std::uint64_t total = 0;
  for (const NodeId v : set) total += degree(v);
  return total;
}

double Graph::weighted_volume(std::span<const NodeId> set) const {
  double total = 0.0;
  for (const NodeId v : set) total += strength(v);
  return total;
}

std::vector<NodeId> PlantedGraph::cluster(std::uint32_t c) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < membership.size(); ++v) {
    if (membership[v] == c) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> PlantedGraph::cluster_sizes() const {
  std::vector<std::size_t> sizes(num_clusters, 0);
  for (const auto c : membership) {
    DGC_REQUIRE(c < num_clusters, "membership label out of range");
    ++sizes[c];
  }
  return sizes;
}

double PlantedGraph::beta() const {
  const auto sizes = cluster_sizes();
  std::size_t min_size = membership.size();
  for (const auto s : sizes) min_size = std::min(min_size, s);
  return membership.empty() ? 0.0
                            : static_cast<double>(min_size) /
                                  static_cast<double>(membership.size());
}

}  // namespace dgc::graph
