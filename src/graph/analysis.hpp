// Structural graph quantities used by the paper: cuts, conductance, the
// k-way expansion of a partition, and connectivity.
//
// The paper defines, for a set S,
//     phi_G(S) = |E(S, V\S)| / vol(S)
// where vol(S) is *the number of edges with at least one endpoint in S*
// (so vol(S) = |E(S,S)| + |E(S, V\S)|).  `conductance()` implements this
// definition; `conductance_degree_volume()` is the more common
// sum-of-degrees variant (they agree within a factor of 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::graph {

/// |E(S, V\S)| for S given as a sorted-or-not node list.
[[nodiscard]] std::uint64_t cut_size(const Graph& g, std::span<const NodeId> set);

/// |E(S, V\S)| for every cluster of a membership labelling, in one pass.
[[nodiscard]] std::vector<std::uint64_t> cut_sizes(const Graph& g,
                                                   std::span<const std::uint32_t> membership,
                                                   std::uint32_t num_clusters);

/// Paper's conductance phi_G(S) = cut / (#edges touching S).  Returns 0
/// for empty or edgeless S by convention.
[[nodiscard]] double conductance(const Graph& g, std::span<const NodeId> set);

/// Sum-of-degrees conductance cut / sum_{v in S} deg(v).
[[nodiscard]] double conductance_degree_volume(const Graph& g, std::span<const NodeId> set);

/// Per-cluster paper-conductance of a partition.
[[nodiscard]] std::vector<double> partition_conductances(
    const Graph& g, std::span<const std::uint32_t> membership, std::uint32_t num_clusters);

/// rho(k) of a given partition = max_i phi_G(S_i).  (The paper's rho(k) is
/// the minimum over partitions; for planted instances the planted
/// partition is the natural witness and upper-bounds the true rho(k).)
[[nodiscard]] double rho(const Graph& g, std::span<const std::uint32_t> membership,
                         std::uint32_t num_clusters);

// --- Weighted variants (our extension; the paper is unweighted) ----------
// Edge counts become weight sums; on unweighted graphs every variant
// reduces exactly to its counting counterpart (weights read as 1.0).

/// Total weight of the cut arcs leaving S (= cut_size when unweighted).
[[nodiscard]] double cut_weight(const Graph& g, std::span<const NodeId> set);

/// Weighted paper conductance: cut weight / (weight of edges touching S).
[[nodiscard]] double weighted_conductance(const Graph& g, std::span<const NodeId> set);

/// Per-cluster weighted paper-conductance of a partition.
[[nodiscard]] std::vector<double> weighted_partition_conductances(
    const Graph& g, std::span<const std::uint32_t> membership, std::uint32_t num_clusters);

/// max_i of weighted_partition_conductances.
[[nodiscard]] double weighted_rho(const Graph& g,
                                  std::span<const std::uint32_t> membership,
                                  std::uint32_t num_clusters);

/// A graph with its degree-0 nodes removed and the survivors relabelled
/// densely (`dgc cluster --drop-isolated`): original_of[new_id] = old id.
/// Weights and adjacency order are preserved.
struct CompactedGraph {
  Graph graph;
  std::vector<NodeId> original_of;
};

/// Strips isolated nodes (the matching protocol needs degree >= 1
/// everywhere); returns the compacted graph plus the id mapping back.
[[nodiscard]] CompactedGraph drop_isolated(const Graph& g);

/// BFS connectivity.
[[nodiscard]] bool is_connected(const Graph& g);

/// Number of connected components.
[[nodiscard]] std::size_t num_components(const Graph& g);

}  // namespace dgc::graph
