// Balanced node partitions for the sharded engine.
//
// The sharded engine (core/sharded_clusterer.hpp) assigns nodes to P
// shards that simulate machines; a good assignment keeps the shards the
// same size (parallel work is balanced) and the edge cut small (matched
// pairs rarely cross shards, so little inter-shard traffic — E15 shows
// cross-shard mailbox words track the cut exactly).  Three deterministic
// modes:
//   * kRange   — contiguous node-id blocks.  Ignores edges entirely, but
//     planted generators number clusters contiguously, so on those
//     instances range cuts are already near-minimal.
//   * kBfs     — shards grown by breadth-first search: the next shard
//     keeps absorbing the frontier until it reaches its target size, so
//     shards hug connected regions.  When the frontier empties
//     (disconnected graphs, isolated nodes) growth restarts from the
//     lowest-id unassigned node, so the result is deterministic on every
//     input.  The classic linear-time heuristic.
//   * kRefined — multilevel cut minimisation (refine_partition below):
//     coarsen by repeated heavy-edge matching, seed the coarsest level
//     from the BFS grower (optionally smoothed by a projected-gradient
//     sweep on the fractional assignment, after the multi-dimensional
//     balanced-partitioning formulation of arXiv:1902.03522), then
//     uncoarsen with gain-driven boundary refinement.  Our extension,
//     not the paper's.
// All modes are balanced within ±1 node (property-tested).  Cut quality
// is measured by metrics::edge_cut / metrics::partition_imbalance.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::graph {

enum class PartitionMode : std::uint8_t {
  kRange = 0,
  kBfs = 1,
  kRefined = 2,
};

[[nodiscard]] std::string_view partition_mode_name(PartitionMode mode);

/// Parses "range" | "bfs" | "refined" (throws contract_error otherwise).
[[nodiscard]] PartitionMode parse_partition_mode(std::string_view name);

struct Partition {
  /// shard_of[v] in [0, num_shards) for every node v.
  std::vector<std::uint32_t> shard_of;
  std::uint32_t num_shards = 0;

  [[nodiscard]] std::vector<std::size_t> shard_sizes() const;
  /// Nodes of each shard, in increasing node order.
  [[nodiscard]] std::vector<std::vector<NodeId>> members() const;
};

/// Throws contract_error unless `p` is a valid assignment for a graph of
/// `num_nodes` nodes: one entry per node, 1 ≤ num_shards ≤ num_nodes,
/// every entry in range.  Balance is NOT required — the engines stay
/// bit-correct under any assignment; only performance suffers.  This is
/// the trust boundary for externally supplied partitions (files, custom
/// partitioners) handed to the engines.
void validate_partition(const Partition& p, NodeId num_nodes);

/// Deterministically partitions g's nodes into `shards` parts of size
/// ⌊n/P⌋ or ⌈n/P⌉.  Requires 1 ≤ shards ≤ n.  kRefined uses
/// refine_partition with default options.
[[nodiscard]] Partition partition_graph(const Graph& g, std::uint32_t shards,
                                        PartitionMode mode);

/// What the multilevel refiner keeps balanced while it minimises cut.
enum class BalanceObjective : std::uint8_t {
  /// Shard node counts within ±1 — partition_graph's contract, and the
  /// sharded engine's parallel-work balance.
  kNodes = 0,
  /// Shard weighted volumes (sums of node strengths) within
  /// RefineOptions::volume_tolerance, measured by
  /// metrics::partition_imbalance_volume.  Node counts are then only
  /// best-effort; use when per-edge work dominates per-node work.
  kVolume = 1,
};

struct RefineOptions {
  BalanceObjective objective = BalanceObjective::kNodes;
  /// kVolume only: admissible partition_imbalance_volume (≥ 1.0).
  double volume_tolerance = 1.05;
  /// Coarsening stops once a level has at most this many nodes
  /// (0 = max(64, 16·shards)).
  std::size_t coarsen_min_nodes = 0;
  /// Gain-driven refinement passes per level (each pass moves every
  /// node at most once and commits the best balanced prefix).
  std::size_t max_fm_passes = 8;
  /// Smooth the coarsest-level fractional assignment with a projected-
  /// gradient sweep before rounding (arXiv:1902.03522-style); purely a
  /// quality knob, deterministic either way.
  bool projected_gradient = true;
  std::size_t pg_iterations = 24;
  double pg_step = 0.9;
};

/// Cut-minimising multilevel partitioner (deterministic, serial):
///   1. coarsen — repeated heavy-edge matching over the CSR views
///      (weight-aware; contracted node weights carry original node
///      counts) until coarsen_min_nodes;
///   2. initial — BFS grower on the coarsest level (weight-aware
///      targets), optionally followed by the projected-gradient sweep;
///   3. uncoarsen — project each level back and refine with FM-style
///      best-gain boundary moves under the balance objective.
/// A best-of portfolio guarantees the result never cuts more weight
/// than the range or BFS partitions of the same graph (kNodes mode).
/// With kNodes the result honours the ±1 node contract exactly.
[[nodiscard]] Partition refine_partition(const Graph& g, std::uint32_t shards,
                                         const RefineOptions& options = {});

}  // namespace dgc::graph
