// Balanced node partitions for the sharded engine.
//
// The sharded engine (core/sharded_clusterer.hpp) assigns nodes to P
// shards that simulate machines; a good assignment keeps the shards the
// same size (parallel work is balanced) and the edge cut small (matched
// pairs rarely cross shards, so little inter-shard traffic).  Two
// deterministic modes:
//   * kRange — contiguous node-id blocks.  Ignores edges entirely, but
//     planted generators number clusters contiguously, so on those
//     instances range cuts are already near-minimal.
//   * kBfs   — shards grown by breadth-first search: the next shard keeps
//     absorbing the frontier until it reaches its target size, so shards
//     hug connected regions.  The classic linear-time heuristic behind
//     multi-dimensional balanced partitioners (see PAPERS.md).
// Both modes are balanced within ±1 node (property-tested).  Cut quality
// is measured by metrics::edge_cut / metrics::partition_imbalance.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::graph {

enum class PartitionMode : std::uint8_t {
  kRange = 0,
  kBfs = 1,
};

[[nodiscard]] std::string_view partition_mode_name(PartitionMode mode);

struct Partition {
  /// shard_of[v] in [0, num_shards) for every node v.
  std::vector<std::uint32_t> shard_of;
  std::uint32_t num_shards = 0;

  [[nodiscard]] std::vector<std::size_t> shard_sizes() const;
  /// Nodes of each shard, in increasing node order.
  [[nodiscard]] std::vector<std::vector<NodeId>> members() const;
};

/// Deterministically partitions g's nodes into `shards` parts of size
/// ⌊n/P⌋ or ⌈n/P⌉.  Requires 1 ≤ shards ≤ n.
[[nodiscard]] Partition partition_graph(const Graph& g, std::uint32_t shards,
                                        PartitionMode mode);

}  // namespace dgc::graph
