#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "graph/builder.hpp"
#include "util/require.hpp"

namespace dgc::graph {

namespace {

// ---------------------------------------------------------------------------
// Fast text scanning over a slurped buffer.

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

void skip_spaces(const char*& p, const char* end) {
  while (p != end && is_space(*p)) ++p;
}

template <typename Int>
bool parse_int(const char*& p, const char* end, Int& out) {
  const auto [ptr, ec] = std::from_chars(p, end, out);
  if (ec != std::errc() || ptr == p) return false;
  p = ptr;
  return true;
}

/// Pops the next line (without the terminator; trailing '\r' stripped).
/// Returns false when the text is exhausted.
bool next_line(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const auto pos = rest.find('\n');
  if (pos == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, pos);
    rest.remove_prefix(pos + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return true;
}

std::string slurp_stream(std::istream& is) {
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

std::string slurp_file(const std::string& file_path) {
  std::ifstream is(file_path, std::ios::binary);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  is.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamsize>(is.tellg());
  DGC_REQUIRE(size >= 0, "cannot determine file size: " + file_path);
  is.seekg(0, std::ios::beg);
  std::string data(static_cast<std::size_t>(size), '\0');
  is.read(data.data(), size);
  DGC_REQUIRE(is.gcount() == size, "short read: " + file_path);
  return data;
}

void write_file(const std::string& file_path, const std::string& data) {
  std::ofstream os(file_path, std::ios::binary | std::ios::trunc);
  DGC_REQUIRE(os.good(), "cannot open for writing: " + file_path);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
  DGC_REQUIRE(os.good(), "failed to write: " + file_path);
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  out.append(buf, ptr);
}

std::string render_edge_list(const Graph& g) {
  std::string out;
  out.reserve(g.num_edges() * 14 + 32);
  out += "# nodes ";
  append_uint(out, g.num_nodes());
  out += '\n';
  g.for_each_edge([&](NodeId u, NodeId v) {
    append_uint(out, u);
    out += ' ';
    append_uint(out, v);
    out += '\n';
  });
  return out;
}

std::string render_metis(const Graph& g) {
  std::string out;
  out.reserve(g.adjacency().size() * 7 + 32);
  append_uint(out, g.num_nodes());
  out += ' ';
  append_uint(out, g.num_edges());
  out += '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool first = true;
    for (const NodeId u : g.neighbors(v)) {
      if (!first) out += ' ';
      append_uint(out, u + std::uint64_t{1});
      first = false;
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Binary .dgcg header.

constexpr char kMagic[4] = {'D', 'G', 'C', 'G'};
constexpr std::uint32_t kEndianMarker = 0x01020304u;
constexpr std::uint32_t kVersion = 1;

struct BinaryHeader {
  char magic[4];
  std::uint32_t endian;
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t num_nodes;
  std::uint64_t adjacency_len;
};
static_assert(sizeof(BinaryHeader) == 32, "binary header layout must be stable");

/// Reads `count` elements in bounded chunks, so a corrupt header cannot
/// demand a giant allocation up front: a truncated stream fails after at
/// most one chunk of over-allocation, not after resizing to the header's
/// claim.
template <typename T>
std::vector<T> read_array(std::istream& is, std::uint64_t count, const char* what) {
  constexpr std::uint64_t kChunkElems = (std::uint64_t{1} << 22) / sizeof(T);  // 4 MB
  std::vector<T> out;
  while (out.size() < count) {
    const auto take = std::min<std::uint64_t>(kChunkElems, count - out.size());
    const std::size_t old = out.size();
    if (out.capacity() < old + take) {
      out.reserve(std::max<std::size_t>(old * 2, old + static_cast<std::size_t>(take)));
    }
    out.resize(old + static_cast<std::size_t>(take));
    const auto bytes = static_cast<std::streamsize>(take * sizeof(T));
    is.read(reinterpret_cast<char*>(out.data() + old), bytes);
    DGC_REQUIRE(is.gcount() == bytes, std::string("truncated binary graph ") + what);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Format names and detection.

std::string_view to_string(GraphFormat format) noexcept {
  switch (format) {
    case GraphFormat::kEdgeList: return "edges";
    case GraphFormat::kMetis: return "metis";
    case GraphFormat::kBinary: return "binary";
    case GraphFormat::kAuto: break;
  }
  return "auto";
}

GraphFormat parse_format(std::string_view name) {
  if (name == "auto") return GraphFormat::kAuto;
  if (name == "edges" || name == "edgelist" || name == "el") return GraphFormat::kEdgeList;
  if (name == "metis" || name == "graph") return GraphFormat::kMetis;
  if (name == "binary" || name == "dgcg") return GraphFormat::kBinary;
  DGC_REQUIRE(false, "unknown graph format: " + std::string(name) +
                         " (expected auto|edges|metis|binary)");
  return GraphFormat::kAuto;  // unreachable
}

GraphFormat format_from_path(const std::string& file_path) noexcept {
  const auto slash = file_path.find_last_of("/\\");
  const std::string base =
      slash == std::string::npos ? file_path : file_path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot == std::string::npos || dot + 1 == base.size()) return GraphFormat::kAuto;
  std::string ext = base.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (ext == "dgcg") return GraphFormat::kBinary;
  if (ext == "graph" || ext == "metis") return GraphFormat::kMetis;
  if (ext == "edges" || ext == "el" || ext == "edgelist" || ext == "txt") {
    return GraphFormat::kEdgeList;
  }
  return GraphFormat::kAuto;
}

GraphFormat sniff_format(const std::string& file_path) {
  std::ifstream is(file_path, std::ios::binary);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  char head[256];
  is.read(head, sizeof head);
  const auto got = static_cast<std::size_t>(is.gcount());
  if (got >= sizeof kMagic && std::memcmp(head, kMagic, sizeof kMagic) == 0) {
    return GraphFormat::kBinary;
  }
  for (std::size_t i = 0; i < got; ++i) {
    const char c = head[i];
    if (is_space(c) || c == '\n') continue;
    if (c == '%') return GraphFormat::kMetis;
    // '#' comments and anything numeric default to the edge-list reader
    // (a headerless METIS file is indistinguishable from an edge list;
    // name those .graph/.metis or pass the format explicitly).
    return GraphFormat::kEdgeList;
  }
  return GraphFormat::kEdgeList;  // empty file: empty edge list
}

// ---------------------------------------------------------------------------
// Edge list.

void write_edge_list(std::ostream& os, const Graph& g) {
  const std::string out = render_edge_list(g);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

Graph parse_edge_list(std::string_view text) {
  GraphBuilder builder;
  NodeId n = 0;
  bool have_n = false;
  std::string_view line;
  while (next_line(text, line)) {
    const char* p = line.data();
    const char* const end = p + line.size();
    skip_spaces(p, end);
    if (p == end) continue;
    if (*p == '#') {
      ++p;
      skip_spaces(p, end);
      constexpr std::string_view kNodes = "nodes";
      if (static_cast<std::size_t>(end - p) > kNodes.size() &&
          std::string_view(p, kNodes.size()) == kNodes && is_space(p[kNodes.size()])) {
        p += kNodes.size();
        skip_spaces(p, end);
        // A declared node count that does not parse (junk, or a value
        // overflowing NodeId) must fail loudly, not silently fall back
        // to max-endpoint+1 and drop isolated trailing nodes.
        DGC_REQUIRE(parse_int(p, end, n),
                    "malformed '# nodes' header: " + std::string(line));
        have_n = true;
      }
      continue;
    }
    NodeId u = 0;
    NodeId v = 0;
    bool ok = parse_int(p, end, u);
    if (ok) {
      const char* before = p;
      skip_spaces(p, end);
      ok = p != before && parse_int(p, end, v);
    }
    // Anything after `u v` must be whitespace-separated; extra columns
    // (weights, timestamps — common in real edge-list dumps) are
    // ignored, matching the iostream reader this replaced.
    DGC_REQUIRE(ok && (p == end || is_space(*p)),
                "malformed edge list line: " + std::string(line));
    builder.add_edge(u, v);
  }
  if (have_n) {
    DGC_REQUIRE(builder.num_nodes() <= n, "edge endpoint out of range");
    builder.ensure_nodes(n);
  }
  return builder.build();
}

Graph read_edge_list(std::istream& is) { return parse_edge_list(slurp_stream(is)); }

// ---------------------------------------------------------------------------
// METIS.

void write_metis(std::ostream& os, const Graph& g) {
  const std::string out = render_metis(g);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

Graph parse_metis(std::string_view text) {
  std::string_view line;
  // The METIS spec allows `%` comment lines anywhere, including before
  // the header; empty lines are *not* comments — they are the adjacency
  // lines of isolated nodes.
  const auto next_content_line = [&](std::string_view& out) {
    while (next_line(text, out)) {
      const char* p = out.data();
      const char* const end = p + out.size();
      skip_spaces(p, end);
      if (p != end && *p == '%') continue;
      return true;
    }
    return false;
  };

  DGC_REQUIRE(next_content_line(line), "missing METIS header");
  NodeId n = 0;
  std::uint64_t m = 0;
  {
    const char* p = line.data();
    const char* const end = p + line.size();
    skip_spaces(p, end);
    bool ok = parse_int(p, end, n);
    if (ok) {
      skip_spaces(p, end);
      ok = parse_int(p, end, m);
    }
    skip_spaces(p, end);
    if (ok && p != end) {
      // Optional third header field: the format code.  Only fmt = 0
      // (no weights) is supported.
      const char* const fmt_begin = p;
      while (p != end && *p == '0') ++p;
      skip_spaces(p, end);
      DGC_REQUIRE(p == end && p != fmt_begin,
                  "unsupported METIS format field (only unweighted graphs, fmt 0)");
    }
    DGC_REQUIRE(ok, "malformed METIS header");
  }

  GraphBuilder builder;
  // Cap the reservation by what the remaining text could possibly hold,
  // so a corrupt header cannot trigger a giant allocation.
  builder.reserve_edges(static_cast<std::size_t>(
      std::min<std::uint64_t>(m, text.size() / 4 + 16)));
  std::uint64_t mentions = 0;
  for (NodeId v = 0; v < n; ++v) {
    DGC_REQUIRE(next_content_line(line),
                "METIS file ended before all adjacency lines were read");
    const char* p = line.data();
    const char* const end = p + line.size();
    for (;;) {
      skip_spaces(p, end);
      if (p == end) break;
      NodeId u = 0;
      DGC_REQUIRE(parse_int(p, end, u),
                  "malformed METIS adjacency line: " + std::string(line));
      DGC_REQUIRE(u >= 1 && u <= n, "METIS neighbour id out of range");
      DGC_REQUIRE(u - 1 != v, "METIS adjacency contains a self-loop");
      ++mentions;
      if (u - 1 > v) builder.add_edge(v, u - 1);
    }
  }
  DGC_REQUIRE(mentions == 2 * m,
              "METIS neighbour entries do not match the declared edge count");
  builder.ensure_nodes(n);
  Graph g = builder.build();
  DGC_REQUIRE(g.num_edges() == m, "METIS header edge count mismatch");
  return g;
}

Graph read_metis(std::istream& is) { return parse_metis(slurp_stream(is)); }

// ---------------------------------------------------------------------------
// Binary.

void write_binary(std::ostream& os, const Graph& g) {
  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.endian = kEndianMarker;
  header.version = kVersion;
  header.reserved = 0;
  header.num_nodes = g.num_nodes();
  header.adjacency_len = g.adjacency().size();
  os.write(reinterpret_cast<const char*>(&header), sizeof header);
  os.write(reinterpret_cast<const char*>(g.offsets().data()),
           static_cast<std::streamsize>(g.offsets().size_bytes()));
  os.write(reinterpret_cast<const char*>(g.adjacency().data()),
           static_cast<std::streamsize>(g.adjacency().size_bytes()));
}

Graph read_binary(std::istream& is) {
  BinaryHeader header{};
  is.read(reinterpret_cast<char*>(&header), sizeof header);
  DGC_REQUIRE(is.gcount() == static_cast<std::streamsize>(sizeof header),
              "truncated binary graph header");
  DGC_REQUIRE(std::memcmp(header.magic, kMagic, sizeof kMagic) == 0,
              "not a binary graph file (bad magic)");
  DGC_REQUIRE(header.endian == kEndianMarker,
              "binary graph file has foreign byte order");
  DGC_REQUIRE(header.version == kVersion, "unsupported binary graph version");
  DGC_REQUIRE(header.num_nodes <= kInvalidNode, "binary graph node count overflows NodeId");
  DGC_REQUIRE(header.adjacency_len % 2 == 0, "binary graph adjacency length must be even");

  auto offsets = read_array<std::uint64_t>(is, header.num_nodes + 1, "offsets");
  auto adjacency = read_array<NodeId>(is, header.adjacency_len, "adjacency");
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

// ---------------------------------------------------------------------------
// File-path conveniences and format dispatch.

void save_edge_list(const std::string& file_path, const Graph& g) {
  write_file(file_path, render_edge_list(g));
}

Graph load_edge_list(const std::string& file_path) {
  return parse_edge_list(slurp_file(file_path));
}

void save_metis(const std::string& file_path, const Graph& g) {
  write_file(file_path, render_metis(g));
}

Graph load_metis(const std::string& file_path) {
  return parse_metis(slurp_file(file_path));
}

void save_binary(const std::string& file_path, const Graph& g) {
  std::ofstream os(file_path, std::ios::binary | std::ios::trunc);
  DGC_REQUIRE(os.good(), "cannot open for writing: " + file_path);
  write_binary(os, g);
  DGC_REQUIRE(os.good(), "failed to write: " + file_path);
}

Graph load_binary(const std::string& file_path) {
  std::ifstream is(file_path, std::ios::binary);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  return read_binary(is);
}

void save_graph(const std::string& file_path, const Graph& g, GraphFormat format) {
  if (format == GraphFormat::kAuto) format = format_from_path(file_path);
  DGC_REQUIRE(format != GraphFormat::kAuto,
              "cannot infer graph format from extension; pass an explicit format: " +
                  file_path);
  switch (format) {
    case GraphFormat::kEdgeList: save_edge_list(file_path, g); return;
    case GraphFormat::kMetis: save_metis(file_path, g); return;
    case GraphFormat::kBinary: save_binary(file_path, g); return;
    case GraphFormat::kAuto: break;
  }
}

Graph load_graph(const std::string& file_path, GraphFormat format) {
  if (format == GraphFormat::kAuto) format = format_from_path(file_path);
  if (format == GraphFormat::kAuto) format = sniff_format(file_path);
  switch (format) {
    case GraphFormat::kMetis: return load_metis(file_path);
    case GraphFormat::kBinary: return load_binary(file_path);
    case GraphFormat::kEdgeList:
    case GraphFormat::kAuto: break;
  }
  return load_edge_list(file_path);
}

}  // namespace dgc::graph
