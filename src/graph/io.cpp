#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <unordered_map>

#include "graph/builder.hpp"
#include "util/binary_file.hpp"
#include "util/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DGC_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#if defined(DGC_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace dgc::graph {

namespace {

// ---------------------------------------------------------------------------
// Fast text scanning over a slurped buffer.

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

void skip_spaces(const char*& p, const char* end) {
  while (p != end && is_space(*p)) ++p;
}

template <typename Int>
bool parse_int(const char*& p, const char* end, Int& out) {
  const auto [ptr, ec] = std::from_chars(p, end, out);
  if (ec != std::errc() || ptr == p) return false;
  p = ptr;
  return true;
}

bool parse_double(const char*& p, const char* end, double& out) {
  const auto [ptr, ec] = std::from_chars(p, end, out);
  if (ec != std::errc() || ptr == p) return false;
  p = ptr;
  return true;
}

/// Pops the next line (without the terminator; trailing '\r' stripped).
/// Returns false when the text is exhausted.
bool next_line(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const auto pos = rest.find('\n');
  if (pos == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, pos);
    rest.remove_prefix(pos + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return true;
}

std::string slurp_stream(std::istream& is) {
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

std::string slurp_file(const std::string& file_path) {
  std::ifstream is(file_path, std::ios::binary);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  is.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamsize>(is.tellg());
  DGC_REQUIRE(size >= 0, "cannot determine file size: " + file_path);
  is.seekg(0, std::ios::beg);
  std::string data(static_cast<std::size_t>(size), '\0');
  is.read(data.data(), size);
  DGC_REQUIRE(is.gcount() == size, "short read: " + file_path);
  return data;
}

bool has_gz_suffix(const std::string& file_path) {
  return file_path.size() > 3 && file_path.compare(file_path.size() - 3, 3, ".gz") == 0;
}

/// Slurps and decompresses a gzip file.  Streams through gzread (which
/// also accepts uncompressed data, per zlib's gzopen contract) so the
/// compressed file is never fully buffered twice.
std::string gunzip_file(const std::string& file_path) {
#if defined(DGC_HAVE_ZLIB)
  gzFile gz = gzopen(file_path.c_str(), "rb");
  DGC_REQUIRE(gz != nullptr, "cannot open for reading: " + file_path);
  std::string out;
  char buf[1 << 16];
  int got = 0;
  while ((got = gzread(gz, buf, sizeof buf)) > 0) {
    out.append(buf, static_cast<std::size_t>(got));
  }
  if (got < 0) {
    int errnum = 0;
    const char* msg = gzerror(gz, &errnum);
    const std::string detail = msg != nullptr ? msg : "unknown zlib error";
    gzclose(gz);
    DGC_REQUIRE(false, "gzip decompression failed: " + file_path + " (" + detail + ")");
  }
  gzclose(gz);
  return out;
#else
  DGC_REQUIRE(false,
              "cannot read " + file_path +
                  ": this build has no zlib — configure with zlib available to "
                  "enable transparent .gz ingestion, or decompress the file first");
  return {};  // unreachable
#endif
}

void write_file(const std::string& file_path, const std::string& data) {
  std::ofstream os(file_path, std::ios::binary | std::ios::trunc);
  DGC_REQUIRE(os.good(), "cannot open for writing: " + file_path);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
  DGC_REQUIRE(os.good(), "failed to write: " + file_path);
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  out.append(buf, ptr);
}

/// Shortest round-trip rendering: re-parsing restores the exact bits.
void append_double(std::string& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  out.append(buf, ptr);
}

std::string render_edge_list(const Graph& g) {
  std::string out;
  out.reserve(g.num_edges() * (g.is_weighted() ? 22 : 14) + 48);
  out += "# nodes ";
  append_uint(out, g.num_nodes());
  out += '\n';
  if (g.is_weighted()) {
    out += "# weighted\n";
    g.for_each_weighted_edge([&](NodeId u, NodeId v, double w) {
      append_uint(out, u);
      out += ' ';
      append_uint(out, v);
      out += ' ';
      append_double(out, w);
      out += '\n';
    });
  } else {
    g.for_each_edge([&](NodeId u, NodeId v) {
      append_uint(out, u);
      out += ' ';
      append_uint(out, v);
      out += '\n';
    });
  }
  return out;
}

std::string render_metis(const Graph& g) {
  const bool weighted = g.is_weighted();
  std::string out;
  out.reserve(g.adjacency().size() * (weighted ? 15 : 7) + 32);
  append_uint(out, g.num_nodes());
  out += ' ';
  append_uint(out, g.num_edges());
  if (weighted) out += " 1";  // fmt: edge weights
  out += '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    bool first = true;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!first) out += ' ';
      append_uint(out, nbrs[i] + std::uint64_t{1});
      if (weighted) {
        out += ' ';
        append_double(out, ws[i]);
      }
      first = false;
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Binary .dgcg header.

constexpr char kMagic[4] = {'D', 'G', 'C', 'G'};
constexpr std::uint32_t kEndianMarker = 0x01020304u;
/// Version 1: header + offsets + adjacency.  Version 2 adds a flags
/// field (the old reserved slot) and, when kFlagWeighted is set, the
/// per-arc weight array after adjacency.  Both versions load.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kFlagWeighted = 1u << 0;

struct BinaryHeader {
  char magic[4];
  std::uint32_t endian;
  std::uint32_t version;
  std::uint32_t flags;  ///< reserved (zero) in version 1
  std::uint64_t num_nodes;
  std::uint64_t adjacency_len;
};
static_assert(sizeof(BinaryHeader) == 32, "binary header layout must be stable");

/// Shared header validation for the stream and mmap loaders; returns
/// whether the payload carries a weight section.
bool check_binary_header(const BinaryHeader& header) {
  DGC_REQUIRE(std::memcmp(header.magic, kMagic, sizeof kMagic) == 0,
              "not a binary graph file (bad magic)");
  DGC_REQUIRE(header.endian == kEndianMarker,
              "binary graph file has foreign byte order");
  DGC_REQUIRE(header.version == 1 || header.version == kVersion,
              "unsupported binary graph version");
  DGC_REQUIRE(header.num_nodes <= kInvalidNode, "binary graph node count overflows NodeId");
  DGC_REQUIRE(header.adjacency_len % 2 == 0, "binary graph adjacency length must be even");
  if (header.version == 1) return false;  // pre-weights format, flags reserved
  DGC_REQUIRE((header.flags & ~kFlagWeighted) == 0, "unknown binary graph flags");
  return (header.flags & kFlagWeighted) != 0;
}

/// Reads `count` elements in bounded chunks, so a corrupt header cannot
/// demand a giant allocation up front: a truncated stream fails after at
/// most one chunk of over-allocation, not after resizing to the header's
/// claim.
template <typename T>
std::vector<T> read_array(std::istream& is, std::uint64_t count, const char* what) {
  constexpr std::uint64_t kChunkElems = (std::uint64_t{1} << 22) / sizeof(T);  // 4 MB
  std::vector<T> out;
  while (out.size() < count) {
    const auto take = std::min<std::uint64_t>(kChunkElems, count - out.size());
    const std::size_t old = out.size();
    if (out.capacity() < old + take) {
      out.reserve(std::max<std::size_t>(old * 2, old + static_cast<std::size_t>(take)));
    }
    out.resize(old + static_cast<std::size_t>(take));
    const auto bytes = static_cast<std::streamsize>(take * sizeof(T));
    is.read(reinterpret_cast<char*>(out.data() + old), bytes);
    DGC_REQUIRE(is.gcount() == bytes, std::string("truncated binary graph ") + what);
  }
  return out;
}

#ifdef DGC_HAS_MMAP

/// Owns one read-only file mapping; Graphs share it via shared_ptr.
struct MappedFile {
  const unsigned char* data = nullptr;
  std::size_t size = 0;

  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data != nullptr) {
      ::munmap(const_cast<unsigned char*>(data), size);
    }
  }
};

/// Maps the whole file read-only; nullptr on any failure (the caller
/// falls back to the stream path, which reports open errors properly).
std::shared_ptr<const MappedFile> map_file(const std::string& file_path) {
  const int fd = ::open(file_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return nullptr;
  auto out = std::make_shared<MappedFile>();
  out->data = static_cast<const unsigned char*>(base);
  out->size = size;
  return out;
}

/// Zero-copy load: validate the header and array bounds against the
/// mapped size, then hand the Graph views straight into the mapping
/// (from_csr_views re-validates every CSR invariant in place).
Graph load_mapped(std::shared_ptr<const MappedFile> file) {
  DGC_REQUIRE(file->size >= sizeof(BinaryHeader), "truncated binary graph header");
  BinaryHeader header{};
  std::memcpy(&header, file->data, sizeof header);
  const bool weighted = check_binary_header(header);
  // Bound the lengths by the file size first so the byte arithmetic
  // below cannot overflow on an adversarial header.
  DGC_REQUIRE(header.num_nodes < file->size / sizeof(std::uint64_t) &&
                  header.adjacency_len <= file->size / sizeof(NodeId),
              "truncated binary graph payload");
  const std::uint64_t offsets_bytes = (header.num_nodes + 1) * sizeof(std::uint64_t);
  const std::uint64_t adjacency_bytes = header.adjacency_len * sizeof(NodeId);
  const std::uint64_t weight_bytes =
      weighted ? header.adjacency_len * sizeof(double) : 0;
  DGC_REQUIRE(sizeof(BinaryHeader) + offsets_bytes + adjacency_bytes + weight_bytes <=
                  file->size,
              "truncated binary graph payload");
  const unsigned char* cursor = file->data + sizeof(BinaryHeader);
  const std::span<const std::uint64_t> offsets{
      reinterpret_cast<const std::uint64_t*>(cursor),
      static_cast<std::size_t>(header.num_nodes + 1)};
  cursor += offsets_bytes;
  const std::span<const NodeId> adjacency{reinterpret_cast<const NodeId*>(cursor),
                                          static_cast<std::size_t>(header.adjacency_len)};
  cursor += adjacency_bytes;
  std::span<const double> weights;
  if (weighted) {
    weights = {reinterpret_cast<const double*>(cursor),
               static_cast<std::size_t>(header.adjacency_len)};
  }
  return Graph::from_csr_views(std::move(file), offsets, adjacency, weights);
}

#endif  // DGC_HAS_MMAP

}  // namespace

// ---------------------------------------------------------------------------
// Format names and detection.

std::string_view to_string(GraphFormat format) noexcept {
  switch (format) {
    case GraphFormat::kEdgeList: return "edges";
    case GraphFormat::kMetis: return "metis";
    case GraphFormat::kBinary: return "binary";
    case GraphFormat::kAuto: break;
  }
  return "auto";
}

GraphFormat parse_format(std::string_view name) {
  if (name == "auto") return GraphFormat::kAuto;
  if (name == "edges" || name == "edgelist" || name == "el") return GraphFormat::kEdgeList;
  if (name == "metis" || name == "graph") return GraphFormat::kMetis;
  if (name == "binary" || name == "dgcg") return GraphFormat::kBinary;
  DGC_REQUIRE(false, "unknown graph format: " + std::string(name) +
                         " (expected auto|edges|metis|binary)");
  return GraphFormat::kAuto;  // unreachable
}

WeightMode parse_weight_mode(std::string_view name) {
  if (name == "auto") return WeightMode::kAuto;
  if (name == "yes") return WeightMode::kYes;
  if (name == "no") return WeightMode::kNo;
  DGC_REQUIRE(false, "unknown weight mode: " + std::string(name) +
                         " (expected auto|yes|no)");
  return WeightMode::kAuto;  // unreachable
}

bool gzip_supported() noexcept {
#if defined(DGC_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

GraphFormat format_from_path(const std::string& file_path) noexcept {
  const auto slash = file_path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? file_path : file_path.substr(slash + 1);
  // A trailing .gz names the compression, not the format: strip it and
  // classify what is underneath ("web.edges.gz" -> kEdgeList).
  if (has_gz_suffix(base)) base.resize(base.size() - 3);
  const auto dot = base.find_last_of('.');
  if (dot == std::string::npos || dot + 1 == base.size()) return GraphFormat::kAuto;
  std::string ext = base.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (ext == "dgcg") return GraphFormat::kBinary;
  if (ext == "graph" || ext == "metis") return GraphFormat::kMetis;
  if (ext == "edges" || ext == "el" || ext == "edgelist" || ext == "txt") {
    return GraphFormat::kEdgeList;
  }
  return GraphFormat::kAuto;
}

namespace {

/// Shared head classifier for sniff_format (file head) and the .gz path
/// (decompressed head).  `source` names the input in error messages.
GraphFormat classify_head(const char* head, std::size_t got, const std::string& source) {
  if (got >= sizeof kMagic && std::memcmp(head, kMagic, sizeof kMagic) == 0) {
    return GraphFormat::kBinary;
  }
  if (got >= 2 && static_cast<unsigned char>(head[0]) == 0x1f &&
      static_cast<unsigned char>(head[1]) == 0x8b) {
    DGC_REQUIRE(false, "gzip-compressed graph without a .gz extension: " + source +
                           " — rename it with .gz (e.g. .edges.gz) to enable "
                           "transparent decompression");
  }
  for (std::size_t i = 0; i < got; ++i) {
    const char c = head[i];
    if (is_space(c) || c == '\n') continue;
    if (c == '%') return GraphFormat::kMetis;
    // '#' comments and anything numeric default to the edge-list reader
    // (a headerless METIS file is indistinguishable from an edge list;
    // name those .graph/.metis or pass the format explicitly).
    return GraphFormat::kEdgeList;
  }
  return GraphFormat::kEdgeList;  // empty file: empty edge list
}

}  // namespace

GraphFormat sniff_format(const std::string& file_path) {
  std::ifstream is(file_path, std::ios::binary);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  char head[256];
  is.read(head, sizeof head);
  return classify_head(head, static_cast<std::size_t>(is.gcount()), file_path);
}

// ---------------------------------------------------------------------------
// Edge list.

void write_edge_list(std::ostream& os, const Graph& g) {
  const std::string out = render_edge_list(g);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

Graph parse_edge_list(std::string_view text, WeightMode mode) {
  GraphBuilder builder;
  NodeId n = 0;
  bool have_n = false;
  bool header_weighted = false;
  std::string_view line;
  while (next_line(text, line)) {
    const char* p = line.data();
    const char* const end = p + line.size();
    skip_spaces(p, end);
    if (p == end) continue;
    if (*p == '#') {
      ++p;
      skip_spaces(p, end);
      constexpr std::string_view kNodes = "nodes";
      constexpr std::string_view kWeighted = "weighted";
      if (static_cast<std::size_t>(end - p) > kNodes.size() &&
          std::string_view(p, kNodes.size()) == kNodes && is_space(p[kNodes.size()])) {
        p += kNodes.size();
        skip_spaces(p, end);
        // A declared node count that does not parse (junk, or a value
        // overflowing NodeId) must fail loudly, not silently fall back
        // to max-endpoint+1 and drop isolated trailing nodes.
        DGC_REQUIRE(parse_int(p, end, n),
                    "malformed '# nodes' header: " + std::string(line));
        have_n = true;
      } else if (static_cast<std::size_t>(end - p) >= kWeighted.size() &&
                 std::string_view(p, kWeighted.size()) == kWeighted &&
                 (static_cast<std::size_t>(end - p) == kWeighted.size() ||
                  is_space(p[kWeighted.size()]))) {
        DGC_REQUIRE(builder.edges_added() == 0,
                    "'# weighted' header must precede the first edge");
        header_weighted = true;
      }
      continue;
    }
    const bool read_weight =
        mode == WeightMode::kYes || (mode == WeightMode::kAuto && header_weighted);
    NodeId u = 0;
    NodeId v = 0;
    double w = 1.0;
    bool ok = parse_int(p, end, u);
    if (ok) {
      const char* before = p;
      skip_spaces(p, end);
      ok = p != before && parse_int(p, end, v);
    }
    if (ok && read_weight) {
      const char* before = p;
      skip_spaces(p, end);
      ok = p != before && parse_double(p, end, w);
      DGC_REQUIRE(ok, "edge list line is missing its weight column: " + std::string(line));
      DGC_REQUIRE(std::isfinite(w) && w > 0.0,
                  "edge list weight must be positive and finite: " + std::string(line));
    }
    // Anything after the consumed columns must be whitespace-separated;
    // extra columns (weights, timestamps — common in real edge-list
    // dumps) are ignored unless the weight column was requested.
    DGC_REQUIRE(ok && (p == end || is_space(*p)),
                "malformed edge list line: " + std::string(line));
    if (read_weight) {
      builder.add_edge(u, v, w);
    } else {
      builder.add_edge(u, v);
    }
  }
  if (have_n) {
    DGC_REQUIRE(builder.num_nodes() <= n, "edge endpoint out of range");
    builder.ensure_nodes(n);
  }
  return builder.build();
}

Graph read_edge_list(std::istream& is, WeightMode mode) {
  return parse_edge_list(slurp_stream(is), mode);
}

// ---------------------------------------------------------------------------
// METIS.

void write_metis(std::ostream& os, const Graph& g) {
  const std::string out = render_metis(g);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

Graph parse_metis(std::string_view text) {
  std::string_view line;
  std::size_t line_no = 0;
  // The METIS spec allows `%` comment lines anywhere, including before
  // the header; empty lines are *not* comments — they are the adjacency
  // lines of isolated nodes.
  const auto next_content_line = [&](std::string_view& out) {
    while (next_line(text, out)) {
      ++line_no;
      const char* p = out.data();
      const char* const end = p + out.size();
      skip_spaces(p, end);
      if (p != end && *p == '%') continue;
      return true;
    }
    return false;
  };
  const auto at_line = [&](const std::string& what) {
    return "METIS line " + std::to_string(line_no) + ": " + what;
  };

  DGC_REQUIRE(next_content_line(line), "missing METIS header");
  NodeId n = 0;
  std::uint64_t m = 0;
  bool edge_weights = false;
  bool vertex_weights = false;
  std::uint64_t ncon = 0;
  {
    const char* p = line.data();
    const char* const end = p + line.size();
    skip_spaces(p, end);
    bool ok = parse_int(p, end, n);
    if (ok) {
      skip_spaces(p, end);
      ok = parse_int(p, end, m);
    }
    DGC_REQUIRE(ok, "malformed METIS header");
    skip_spaces(p, end);
    if (p != end) {
      // Optional third header field: the format code — a bit string
      // read as [vertex sizes][vertex weights][edge weights].
      std::uint32_t fmt = 0;
      DGC_REQUIRE(parse_int(p, end, fmt), at_line("malformed METIS format field"));
      DGC_REQUIRE(fmt == 0 || fmt == 1 || fmt == 10 || fmt == 11,
                  at_line("unsupported METIS format field (expected 0, 1, 10 or 11; "
                          "vertex sizes are not supported)"));
      edge_weights = fmt % 10 == 1;
      vertex_weights = fmt / 10 == 1;
      skip_spaces(p, end);
      if (p != end) {
        // Optional fourth field: vertex weights per vertex.
        DGC_REQUIRE(parse_int(p, end, ncon), at_line("malformed METIS ncon field"));
        DGC_REQUIRE(vertex_weights, at_line("ncon requires vertex weights (fmt 10/11)"));
        DGC_REQUIRE(ncon >= 1, at_line("ncon must be at least 1"));
        skip_spaces(p, end);
        DGC_REQUIRE(p == end, at_line("trailing junk after the METIS header"));
      }
    }
    if (vertex_weights && ncon == 0) ncon = 1;
  }

  GraphBuilder builder;
  // Cap the reservation by what the remaining text could possibly hold,
  // so a corrupt header cannot trigger a giant allocation.
  builder.reserve_edges(static_cast<std::size_t>(
      std::min<std::uint64_t>(m, text.size() / 4 + 16)));
  // For weighted graphs the two listings of every edge must agree; the
  // lower endpoint's line records the weight, the higher one checks it.
  std::unordered_map<std::uint64_t, double> recorded_weight;
  if (edge_weights) {
    recorded_weight.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(m, text.size() / 4 + 16)));
  }
  std::uint64_t mentions = 0;
  for (NodeId v = 0; v < n; ++v) {
    DGC_REQUIRE(next_content_line(line),
                "METIS file ended before all adjacency lines were read");
    const char* p = line.data();
    const char* const end = p + line.size();
    // Leading vertex weights: validated (non-negative integers per the
    // spec) and discarded — the engines carry no node-weight notion.
    for (std::uint64_t c = 0; c < (vertex_weights ? ncon : 0); ++c) {
      skip_spaces(p, end);
      std::int64_t vw = 0;
      DGC_REQUIRE(parse_int(p, end, vw), at_line("malformed vertex weight"));
      DGC_REQUIRE(vw >= 0, at_line("negative vertex weight"));
    }
    for (;;) {
      skip_spaces(p, end);
      if (p == end) break;
      NodeId u = 0;
      DGC_REQUIRE(parse_int(p, end, u), at_line("malformed METIS adjacency entry"));
      DGC_REQUIRE(u >= 1 && u <= n, at_line("METIS neighbour id out of range"));
      DGC_REQUIRE(u - 1 != v, at_line("METIS adjacency contains a self-loop"));
      double w = 1.0;
      if (edge_weights) {
        skip_spaces(p, end);
        DGC_REQUIRE(parse_double(p, end, w), at_line("missing METIS edge weight"));
        DGC_REQUIRE(std::isfinite(w) && w > 0.0,
                    at_line("METIS edge weights must be positive and finite"));
      }
      ++mentions;
      const NodeId nbr = u - 1;
      if (edge_weights) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(v, nbr)) << 32) | std::max(v, nbr);
        if (nbr > v) {
          recorded_weight.emplace(key, w);
        } else {
          const auto it = recorded_weight.find(key);
          DGC_REQUIRE(it != recorded_weight.end(),
                      at_line("METIS edge is not listed from both endpoints"));
          DGC_REQUIRE(it->second == w,
                      at_line("METIS edge weight differs between its two listings"));
          // Each entry is dead after its one check: erase it so the live
          // map is bounded by the unmatched frontier, not by m.
          recorded_weight.erase(it);
        }
      }
      if (nbr > v) {
        if (edge_weights) {
          builder.add_edge(v, nbr, w);
        } else {
          builder.add_edge(v, nbr);
        }
      }
    }
  }
  DGC_REQUIRE(mentions == 2 * m,
              "METIS neighbour entries do not match the declared edge count");
  builder.ensure_nodes(n);
  Graph g = builder.build();
  DGC_REQUIRE(g.num_edges() == m, "METIS header edge count mismatch");
  return g;
}

Graph read_metis(std::istream& is) { return parse_metis(slurp_stream(is)); }

// ---------------------------------------------------------------------------
// Binary.

namespace {

/// The .dgcg file image: a header plus views into the graph's own CSR
/// arrays — both the stream writer and the mmap'd save emit these parts.
struct BinaryImage {
  BinaryHeader header{};
  std::vector<util::ConstBytes> parts;
};

BinaryImage build_binary_image(const Graph& g) {
  BinaryImage image;
  BinaryHeader& header = image.header;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.endian = kEndianMarker;
  // Unweighted payloads are byte-identical to the version-1 layout, so
  // stamp them as v1 — pre-weights readers keep working on them.
  header.version = g.is_weighted() ? kVersion : 1;
  header.flags = g.is_weighted() ? kFlagWeighted : 0;
  header.num_nodes = g.num_nodes();
  header.adjacency_len = g.adjacency().size();
  image.parts.push_back({&image.header, sizeof image.header});
  image.parts.push_back({g.offsets().data(), g.offsets().size_bytes()});
  image.parts.push_back({g.adjacency().data(), g.adjacency().size_bytes()});
  if (g.is_weighted()) {
    image.parts.push_back({g.weights().data(), g.weights().size_bytes()});
  }
  return image;
}

}  // namespace

void write_binary(std::ostream& os, const Graph& g) {
  const BinaryImage image = build_binary_image(g);
  for (const util::ConstBytes& part : image.parts) {
    os.write(static_cast<const char*>(part.data),
             static_cast<std::streamsize>(part.size));
  }
}

Graph read_binary(std::istream& is) {
  BinaryHeader header{};
  is.read(reinterpret_cast<char*>(&header), sizeof header);
  DGC_REQUIRE(is.gcount() == static_cast<std::streamsize>(sizeof header),
              "truncated binary graph header");
  const bool weighted = check_binary_header(header);

  auto offsets = read_array<std::uint64_t>(is, header.num_nodes + 1, "offsets");
  auto adjacency = read_array<NodeId>(is, header.adjacency_len, "adjacency");
  std::vector<double> weights;
  if (weighted) weights = read_array<double>(is, header.adjacency_len, "weights");
  return Graph::from_csr(std::move(offsets), std::move(adjacency), std::move(weights));
}

// ---------------------------------------------------------------------------
// File-path conveniences and format dispatch.

namespace {

/// A text loader handed gzip bytes (misnamed file, or a forced format)
/// should say so instead of failing on the first "malformed" line.
void require_not_gzip(const std::string& text, const std::string& source) {
  DGC_REQUIRE(text.size() < 2 || static_cast<unsigned char>(text[0]) != 0x1f ||
                  static_cast<unsigned char>(text[1]) != 0x8b,
              "gzip-compressed graph without a .gz extension: " + source +
                  " — rename it with .gz (e.g. .edges.gz) to enable transparent "
                  "decompression");
}

}  // namespace

void save_edge_list(const std::string& file_path, const Graph& g) {
  write_file(file_path, render_edge_list(g));
}

Graph load_edge_list(const std::string& file_path, WeightMode mode) {
  const std::string text = slurp_file(file_path);
  require_not_gzip(text, file_path);
  return parse_edge_list(text, mode);
}

void save_metis(const std::string& file_path, const Graph& g) {
  write_file(file_path, render_metis(g));
}

Graph load_metis(const std::string& file_path) {
  const std::string text = slurp_file(file_path);
  require_not_gzip(text, file_path);
  return parse_metis(text);
}

void save_binary(const std::string& file_path, const Graph& g) {
  // Shared zero-copy write path (util/binary_file.hpp): the CSR arrays
  // are memcpy'd straight into a mapping of the destination — the write
  // mirror of the mmap'd load below — with an ofstream fallback that
  // produces byte-identical files.  .dgcc checkpoints use the same path.
  const BinaryImage image = build_binary_image(g);
  util::write_binary_file(file_path, image.parts);
}

Graph load_binary(const std::string& file_path) {
#ifdef DGC_HAS_MMAP
  if (auto mapped = map_file(file_path)) {
    return load_mapped(std::move(mapped));
  }
#endif
  std::ifstream is(file_path, std::ios::binary);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  return read_binary(is);
}

void save_graph(const std::string& file_path, const Graph& g, GraphFormat format) {
  if (format == GraphFormat::kAuto) format = format_from_path(file_path);
  DGC_REQUIRE(format != GraphFormat::kAuto,
              "cannot infer graph format from extension; pass an explicit format: " +
                  file_path);
  switch (format) {
    case GraphFormat::kEdgeList: save_edge_list(file_path, g); return;
    case GraphFormat::kMetis: save_metis(file_path, g); return;
    case GraphFormat::kBinary: save_binary(file_path, g); return;
    case GraphFormat::kAuto: break;
  }
}

Graph load_graph(const std::string& file_path, GraphFormat format, WeightMode weights) {
  if (format == GraphFormat::kAuto) format = format_from_path(file_path);
  if (has_gz_suffix(file_path)) {
    // Decompress once, then parse the text in memory.  Binary graphs are
    // excluded on purpose: .dgcg loads are zero-copy mmaps of the file,
    // which a decompression buffer cannot honour.
    DGC_REQUIRE(format != GraphFormat::kBinary,
                "cannot load a gzip-compressed binary graph: " + file_path +
                    " — decompress it first (.dgcg loads via mmap)");
    const std::string text = gunzip_file(file_path);
    if (format == GraphFormat::kAuto) {
      format = classify_head(text.data(), std::min<std::size_t>(text.size(), 256),
                             file_path);
      DGC_REQUIRE(format != GraphFormat::kBinary,
                  "cannot load a gzip-compressed binary graph: " + file_path +
                      " — decompress it first (.dgcg loads via mmap)");
    }
    if (format == GraphFormat::kMetis) return parse_metis(text);
    return parse_edge_list(text, weights);
  }
  if (format == GraphFormat::kAuto) format = sniff_format(file_path);
  switch (format) {
    case GraphFormat::kMetis: return load_metis(file_path);
    case GraphFormat::kBinary: return load_binary(file_path);
    case GraphFormat::kEdgeList:
    case GraphFormat::kAuto: break;
  }
  return load_edge_list(file_path, weights);
}

}  // namespace dgc::graph
