#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "util/require.hpp"

namespace dgc::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# nodes " << g.num_nodes() << '\n';
  g.for_each_edge([&](NodeId u, NodeId v) { os << u << ' ' << v << '\n'; });
}

Graph read_edge_list(std::istream& is) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId n = 0;
  bool have_n = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string word;
      header >> word;
      if (word == "nodes") {
        header >> n;
        have_n = true;
      }
      continue;
    }
    std::istringstream row(line);
    NodeId u = 0;
    NodeId v = 0;
    DGC_REQUIRE(static_cast<bool>(row >> u >> v), "malformed edge list line: " + line);
    edges.emplace_back(u, v);
    if (!have_n) n = std::max({n, u + 1, v + 1});
  }
  return Graph::from_edges(n, std::move(edges));
}

void write_metis(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool first = true;
    for (const NodeId u : g.neighbors(v)) {
      if (!first) os << ' ';
      os << (u + 1);
      first = false;
    }
    os << '\n';
  }
}

Graph read_metis(std::istream& is) {
  std::string line;
  DGC_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing METIS header");
  std::istringstream header(line);
  NodeId n = 0;
  std::size_t m = 0;
  DGC_REQUIRE(static_cast<bool>(header >> n >> m), "malformed METIS header");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  for (NodeId v = 0; v < n; ++v) {
    DGC_REQUIRE(static_cast<bool>(std::getline(is, line)),
                "METIS file ended before all adjacency lines were read");
    std::istringstream row(line);
    NodeId u = 0;
    while (row >> u) {
      DGC_REQUIRE(u >= 1 && u <= n, "METIS neighbour id out of range");
      if (u - 1 > v) edges.emplace_back(v, u - 1);
    }
  }
  Graph g = Graph::from_edges(n, std::move(edges));
  DGC_REQUIRE(g.num_edges() == m, "METIS header edge count mismatch");
  return g;
}

void save_edge_list(const std::string& file_path, const Graph& g) {
  std::ofstream os(file_path);
  DGC_REQUIRE(os.good(), "cannot open for writing: " + file_path);
  write_edge_list(os, g);
}

Graph load_edge_list(const std::string& file_path) {
  std::ifstream is(file_path);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  return read_edge_list(is);
}

}  // namespace dgc::graph
