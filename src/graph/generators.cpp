#include "graph/generators.hpp"

#include "graph/builder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/require.hpp"

namespace dgc::graph {

namespace {

using Edge = std::pair<NodeId, NodeId>;

std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph random_regular(NodeId n, std::size_t degree, util::Rng& rng) {
  DGC_REQUIRE(degree > 0 && degree < n, "need 0 < d < n");
  DGC_REQUIRE((static_cast<std::uint64_t>(n) * degree) % 2 == 0, "n*d must be even");

  // Configuration model: pair up n*d stubs, then repair conflicts
  // (self-loops / duplicates) by swapping with random valid pairs.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * degree);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < degree; ++i) stubs.push_back(v);
  }
  util::shuffle(stubs.begin(), stubs.end(), rng);

  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  std::unordered_set<std::uint64_t> present;
  present.reserve(stubs.size());
  std::vector<Edge> conflicts;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (u == v || present.count(edge_key(u, v)) != 0) {
      conflicts.emplace_back(u, v);
    } else {
      present.insert(edge_key(u, v));
      edges.emplace_back(u, v);
    }
  }

  // Repair: swap a conflicting pair (u,v) with a random accepted edge
  // (x,y) to form (u,x),(v,y).  Each attempt preserves the stub multiset.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 200 * (conflicts.size() + 1) + 10000;
  while (!conflicts.empty()) {
    DGC_REQUIRE(++attempts < max_attempts,
                "random_regular repair did not converge; d too close to n?");
    const auto [u, v] = conflicts.back();
    const std::size_t j = rng.next_below(edges.size());
    auto [x, y] = edges[j];
    if (rng.next_bit()) std::swap(x, y);
    if (u == x || v == y || present.count(edge_key(u, x)) != 0 ||
        present.count(edge_key(v, y)) != 0 || edge_key(u, x) == edge_key(v, y)) {
      continue;
    }
    conflicts.pop_back();
    present.erase(edge_key(edges[j].first, edges[j].second));
    present.insert(edge_key(u, x));
    present.insert(edge_key(v, y));
    edges[j] = {u, x};
    edges.emplace_back(v, y);
  }

  return Graph::from_edges(n, std::move(edges));
}

PlantedGraph clustered_regular(const ClusteredRegularSpec& spec, util::Rng& rng) {
  const auto k = static_cast<std::uint32_t>(spec.cluster_sizes.size());
  DGC_REQUIRE(k >= 1, "need at least one cluster");
  for (const auto s : spec.cluster_sizes) {
    DGC_REQUIRE(s > spec.degree, "cluster size must exceed degree");
    DGC_REQUIRE((static_cast<std::uint64_t>(s) * spec.degree) % 2 == 0,
                "cluster_size*degree must be even");
  }
  DGC_REQUIRE(k >= 2 || spec.inter_cluster_swaps == 0,
              "inter-cluster swaps need at least two clusters");
  const std::uint32_t gs = spec.sibling_group_size;
  DGC_REQUIRE(gs >= 1, "sibling_group_size must be at least 1");
  if (gs > 1) {
    DGC_REQUIRE(k % gs == 0, "sibling_group_size must divide the cluster count");
    DGC_REQUIRE(spec.topology == ClusteredRegularSpec::Topology::kComplete,
                "sibling groups are only defined for kComplete topology");
    DGC_REQUIRE(gs < k || spec.inter_cluster_swaps == 0,
                "inter-cluster swaps need at least two sibling groups");
  } else {
    DGC_REQUIRE(spec.sibling_swaps == 0, "sibling_swaps need sibling_group_size > 1");
  }

  // Node id layout: cluster c occupies a contiguous block.
  std::vector<NodeId> base(k + 1, 0);
  for (std::uint32_t c = 0; c < k; ++c) base[c + 1] = base[c] + spec.cluster_sizes[c];
  const NodeId n = base[k];

  std::vector<std::uint32_t> membership(n);
  std::vector<Edge> edges;
  std::unordered_set<std::uint64_t> present;
  // Per-cluster list of *intra* edges (indices into `edges`) for O(1)
  // sampling; maintained with swap-with-last deletion.
  std::vector<std::vector<std::size_t>> intra(k);

  for (std::uint32_t c = 0; c < k; ++c) {
    const Graph cluster_graph = random_regular(spec.cluster_sizes[c], spec.degree, rng);
    cluster_graph.for_each_edge([&](NodeId u, NodeId v) {
      const Edge e{base[c] + u, base[c] + v};
      intra[c].push_back(edges.size());
      edges.push_back(e);
      present.insert(edge_key(e.first, e.second));
    });
    for (NodeId v = base[c]; v < base[c + 1]; ++v) membership[v] = c;
  }

  // Degree-preserving rewiring: pick intra edges (u1,v1) in cluster a and
  // (u2,v2) in cluster b, replace with the cross edges (u1,u2),(v1,v2).
  auto pick_cluster_pair = [&]() -> std::pair<std::uint32_t, std::uint32_t> {
    if (spec.topology == ClusteredRegularSpec::Topology::kRing && k > 2) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(k));
      return {a, (a + 1) % k};
    }
    const auto a = static_cast<std::uint32_t>(rng.next_below(k));
    auto b = static_cast<std::uint32_t>(rng.next_below(k - 1));
    if (b >= a) ++b;
    return {a, b};
  };

  // One rewiring attempt between clusters a and b; returns whether it
  // landed (false on intra-list exhaustion or a duplicate-edge clash).
  const auto try_swap = [&](std::uint32_t a, std::uint32_t b) {
    if (intra[a].empty() || intra[b].empty()) return false;
    const std::size_t ia = rng.next_below(intra[a].size());
    const std::size_t ib = rng.next_below(intra[b].size());
    const std::size_t ea = intra[a][ia];
    const std::size_t eb = intra[b][ib];
    auto [u1, v1] = edges[ea];
    auto [u2, v2] = edges[eb];
    if (rng.next_bit()) std::swap(u2, v2);  // random orientation
    if (present.count(edge_key(u1, u2)) != 0 || present.count(edge_key(v1, v2)) != 0) {
      return false;
    }
    present.erase(edge_key(u1, v1));
    present.erase(edge_key(u2, v2));
    present.insert(edge_key(u1, u2));
    present.insert(edge_key(v1, v2));
    edges[ea] = {u1, u2};  // now inter-cluster
    edges[eb] = {v1, v2};  // now inter-cluster
    // Remove both from the intra lists (ea from a, eb from b).
    intra[a][ia] = intra[a].back();
    intra[a].pop_back();
    intra[b][ib] = intra[b].back();
    intra[b].pop_back();
    return true;
  };

  // Sibling tier first: rewire inside each parent group, so the nested
  // sub-structure exists before the coarse tier spreads across groups.
  std::size_t done = 0;
  std::size_t attempts = 0;
  std::size_t max_attempts = 400 * (spec.sibling_swaps + 1) + 10000;
  while (done < spec.sibling_swaps) {
    DGC_REQUIRE(++attempts < max_attempts,
                "clustered_regular sibling rewiring did not converge; too many swaps");
    const auto a = static_cast<std::uint32_t>(rng.next_below(k));
    auto b = (a / gs) * gs + static_cast<std::uint32_t>(rng.next_below(gs - 1));
    if (b >= a) ++b;
    if (try_swap(a, b)) ++done;
  }

  done = 0;
  attempts = 0;
  max_attempts = 400 * (spec.inter_cluster_swaps + 1) + 10000;
  while (done < spec.inter_cluster_swaps) {
    DGC_REQUIRE(++attempts < max_attempts,
                "clustered_regular rewiring did not converge; too many swaps requested");
    const auto [a, b] = pick_cluster_pair();
    if (gs > 1 && a / gs == b / gs) continue;  // coarse tier crosses groups only
    if (try_swap(a, b)) ++done;
  }

  PlantedGraph out;
  if (spec.weighted) {
    DGC_REQUIRE(std::isfinite(spec.intra_weight) && spec.intra_weight > 0.0 &&
                    std::isfinite(spec.inter_weight) && spec.inter_weight > 0.0,
                "weighted spec needs positive finite weights");
    std::vector<WeightedEdge> weighted_edges;
    weighted_edges.reserve(edges.size());
    for (const auto& [u, v] : edges) {
      weighted_edges.push_back(
          {u, v,
           membership[u] == membership[v] ? spec.intra_weight : spec.inter_weight});
    }
    out.graph = Graph::from_weighted_edges(n, std::move(weighted_edges));
  } else {
    out.graph = Graph::from_edges(n, std::move(edges));
  }
  out.membership = std::move(membership);
  out.num_clusters = k;
  return out;
}

std::size_t swaps_for_conductance(const ClusteredRegularSpec& spec, double phi) {
  DGC_REQUIRE(phi >= 0.0 && phi < 1.0, "phi must be in [0,1)");
  const auto k = spec.cluster_sizes.size();
  DGC_REQUIRE(k >= 2, "need at least two clusters");
  // Every swap adds two cross edges; with kComplete topology a given
  // cluster is an endpoint of a fraction 2/k of them, so after W swaps
  // cut_i ≈ 4W/k.  With phi = cut_i / (intra_i + cut_i) and
  // intra_i ≈ d*s_i/2 the inversion is W ≈ k*phi*intra/(4(1-phi)).
  double min_size = static_cast<double>(spec.cluster_sizes[0]);
  for (const auto s : spec.cluster_sizes) min_size = std::min(min_size, double(s));
  const double intra = static_cast<double>(spec.degree) * min_size / 2.0;
  const double w = static_cast<double>(k) * phi * intra / (4.0 * (1.0 - phi));
  return static_cast<std::size_t>(std::llround(w));
}

namespace {

/// Calls fn(linear_index) for a Bernoulli(p) subset of [0, total) in
/// expected O(p*total) time via geometric skips.
template <typename Fn>
void sample_bernoulli_indices(std::uint64_t total, double p, util::Rng& rng, Fn&& fn) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) fn(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  double cursor = -1.0;
  for (;;) {
    // Skip ~ Geometric(p): floor(log(U)/log(1-p)).
    const double u = std::max(rng.next_double(), 1e-300);
    cursor += 1.0 + std::floor(std::log(u) / log1mp);
    if (cursor >= static_cast<double>(total)) return;
    fn(static_cast<std::uint64_t>(cursor));
  }
}

/// Unranks linear index r in [0, s*(s-1)/2) to a pair (i < j) of [0, s).
std::pair<NodeId, NodeId> unrank_triangular(std::uint64_t r, NodeId s) {
  // Row i contains (s-1-i) pairs; solve for i by the quadratic formula,
  // then fix up rounding.
  const double sd = static_cast<double>(s);
  const double rd = static_cast<double>(r);
  double id = std::floor(sd - 0.5 - std::sqrt((sd - 0.5) * (sd - 0.5) - 2.0 * rd));
  auto i = static_cast<std::uint64_t>(std::max(0.0, id));
  auto row_start = [&](std::uint64_t row) {
    return row * (2 * s - row - 1) / 2;
  };
  while (i > 0 && row_start(i) > r) --i;
  while (row_start(i + 1) <= r) ++i;
  const std::uint64_t j = i + 1 + (r - row_start(i));
  return {static_cast<NodeId>(i), static_cast<NodeId>(j)};
}

}  // namespace

PlantedGraph stochastic_block_model(const SbmSpec& spec, util::Rng& rng) {
  DGC_REQUIRE(spec.clusters >= 1, "need at least one block");
  DGC_REQUIRE(spec.nodes_per_cluster >= 2, "blocks need at least two nodes");
  DGC_REQUIRE(spec.p_in >= 0.0 && spec.p_in <= 1.0, "p_in out of range");
  DGC_REQUIRE(spec.p_out >= 0.0 && spec.p_out <= 1.0, "p_out out of range");

  if (spec.weighted) {
    DGC_REQUIRE(std::isfinite(spec.intra_weight) && spec.intra_weight > 0.0 &&
                    std::isfinite(spec.inter_weight) && spec.inter_weight > 0.0,
                "weighted spec needs positive finite weights");
  }

  const NodeId s = spec.nodes_per_cluster;
  const std::uint32_t k = spec.clusters;
  const NodeId n = s * k;
  GraphBuilder builder(n);
  const auto add = [&](NodeId u, NodeId v, double w) {
    if (spec.weighted) {
      builder.add_edge(u, v, w);
    } else {
      builder.add_edge(u, v);
    }
  };

  // Intra-block pairs, streamed straight into the builder.
  const std::uint64_t intra_pairs = static_cast<std::uint64_t>(s) * (s - 1) / 2;
  for (std::uint32_t c = 0; c < k; ++c) {
    const NodeId block_base = c * s;
    sample_bernoulli_indices(intra_pairs, spec.p_in, rng, [&](std::uint64_t r) {
      const auto [i, j] = unrank_triangular(r, s);
      add(block_base + i, block_base + j, spec.intra_weight);
    });
  }
  // Inter-block rectangles, one per ordered pair a < b.
  const std::uint64_t rect = static_cast<std::uint64_t>(s) * s;
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = a + 1; b < k; ++b) {
      sample_bernoulli_indices(rect, spec.p_out, rng, [&](std::uint64_t r) {
        const auto i = static_cast<NodeId>(r / s);
        const auto j = static_cast<NodeId>(r % s);
        add(a * s + i, b * s + j, spec.inter_weight);
      });
    }
  }

  PlantedGraph out;
  out.graph = builder.build();
  out.membership.resize(n);
  for (NodeId v = 0; v < n; ++v) out.membership[v] = v / s;
  out.num_clusters = k;
  return out;
}

PlantedGraph ring_of_cliques(std::uint32_t k, NodeId clique_size) {
  DGC_REQUIRE(k >= 2, "need at least two cliques");
  DGC_REQUIRE(clique_size >= 3, "cliques need at least three nodes");
  const NodeId n = k * clique_size;
  GraphBuilder builder(n);
  for (std::uint32_t c = 0; c < k; ++c) {
    const NodeId block_base = c * clique_size;
    for (NodeId i = 0; i < clique_size; ++i) {
      for (NodeId j = i + 1; j < clique_size; ++j) {
        builder.add_edge(block_base + i, block_base + j);
      }
    }
  }
  if (k == 2) {
    // Two disjoint bridges so the graph is simple and 2-edge-connected.
    builder.add_edge(0, clique_size);
    builder.add_edge(1, clique_size + 1);
  } else {
    for (std::uint32_t c = 0; c < k; ++c) {
      const std::uint32_t next = (c + 1) % k;
      builder.add_edge(c * clique_size, next * clique_size + 1);
    }
  }
  PlantedGraph out;
  out.graph = builder.build();
  out.membership.resize(n);
  for (NodeId v = 0; v < n; ++v) out.membership[v] = v / clique_size;
  out.num_clusters = k;
  return out;
}

PlantedGraph almost_regular_clusters(const ClusteredRegularSpec& spec, double drop_prob,
                                     util::Rng& rng) {
  DGC_REQUIRE(drop_prob >= 0.0 && drop_prob < 0.5, "drop_prob must be in [0, 0.5)");
  PlantedGraph planted = clustered_regular(spec, rng);
  GraphBuilder builder(planted.graph.num_nodes());
  builder.reserve_edges(planted.graph.num_edges());
  planted.graph.for_each_edge([&](NodeId u, NodeId v) {
    if (!rng.next_bool(drop_prob)) builder.add_edge(u, v);
  });
  planted.graph = builder.build();
  return planted;
}

Graph path(NodeId n) {
  DGC_REQUIRE(n >= 2, "path needs at least two nodes");
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

Graph cycle(NodeId n) {
  DGC_REQUIRE(n >= 3, "cycle needs at least three nodes");
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) builder.add_edge(v, (v + 1) % n);
  return builder.build();
}

Graph complete(NodeId n) {
  DGC_REQUIRE(n >= 2, "complete graph needs at least two nodes");
  GraphBuilder builder(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) builder.add_edge(i, j);
  }
  return builder.build();
}

Graph star(NodeId n) {
  DGC_REQUIRE(n >= 2, "star needs at least two nodes");
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(0, v);
  return builder.build();
}

}  // namespace dgc::graph
