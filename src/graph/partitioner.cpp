#include "graph/partitioner.hpp"

#include <deque>

#include "util/require.hpp"

namespace dgc::graph {

std::string_view partition_mode_name(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::kRange:
      return "range";
    case PartitionMode::kBfs:
      return "bfs";
  }
  DGC_REQUIRE(false, "unknown partition mode");
}

std::vector<std::size_t> Partition::shard_sizes() const {
  std::vector<std::size_t> sizes(num_shards, 0);
  for (const std::uint32_t s : shard_of) ++sizes[s];
  return sizes;
}

std::vector<std::vector<NodeId>> Partition::members() const {
  std::vector<std::vector<NodeId>> out(num_shards);
  const auto sizes = shard_sizes();
  for (std::uint32_t s = 0; s < num_shards; ++s) out[s].reserve(sizes[s]);
  for (NodeId v = 0; v < shard_of.size(); ++v) out[shard_of[v]].push_back(v);
  return out;
}

namespace {

/// Target size of shard s: ⌈n/P⌉ for the first n mod P shards, ⌊n/P⌋ after.
std::vector<std::size_t> target_sizes(std::size_t n, std::uint32_t shards) {
  std::vector<std::size_t> targets(shards, n / shards);
  for (std::uint32_t s = 0; s < n % shards; ++s) ++targets[s];
  return targets;
}

Partition partition_range(const Graph& g, std::uint32_t shards) {
  Partition p;
  p.num_shards = shards;
  p.shard_of.resize(g.num_nodes());
  const auto targets = target_sizes(g.num_nodes(), shards);
  NodeId v = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::size_t i = 0; i < targets[s]; ++i) p.shard_of[v++] = s;
  }
  return p;
}

Partition partition_bfs(const Graph& g, std::uint32_t shards) {
  const NodeId n = g.num_nodes();
  Partition p;
  p.num_shards = shards;
  p.shard_of.assign(n, shards);  // "unassigned" sentinel
  const auto targets = target_sizes(n, shards);

  std::deque<NodeId> frontier;
  NodeId next_unassigned = 0;  // smallest node never enqueued as a restart
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::size_t filled = 0;
    while (filled < targets[s]) {
      if (frontier.empty()) {
        while (p.shard_of[next_unassigned] != shards) ++next_unassigned;
        frontier.push_back(next_unassigned);
      }
      const NodeId v = frontier.front();
      frontier.pop_front();
      if (p.shard_of[v] != shards) continue;
      p.shard_of[v] = s;
      ++filled;
      for (const NodeId u : g.neighbors(v)) {
        if (p.shard_of[u] == shards) frontier.push_back(u);
      }
    }
  }
  return p;
}

}  // namespace

Partition partition_graph(const Graph& g, std::uint32_t shards, PartitionMode mode) {
  DGC_REQUIRE(shards >= 1, "need at least one shard");
  DGC_REQUIRE(shards <= g.num_nodes(), "more shards than nodes");
  switch (mode) {
    case PartitionMode::kRange:
      return partition_range(g, shards);
    case PartitionMode::kBfs:
      return partition_bfs(g, shards);
  }
  DGC_REQUIRE(false, "unknown partition mode");
}

}  // namespace dgc::graph
