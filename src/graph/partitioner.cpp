#include "graph/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <functional>
#include <numeric>
#include <queue>
#include <span>
#include <utility>

#include "util/require.hpp"

namespace dgc::graph {

std::string_view partition_mode_name(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::kRange:
      return "range";
    case PartitionMode::kBfs:
      return "bfs";
    case PartitionMode::kRefined:
      return "refined";
  }
  DGC_REQUIRE(false, "unknown partition mode");
}

PartitionMode parse_partition_mode(std::string_view name) {
  if (name == "range") return PartitionMode::kRange;
  if (name == "bfs") return PartitionMode::kBfs;
  if (name == "refined") return PartitionMode::kRefined;
  DGC_REQUIRE(false, "unknown partition mode (want range|bfs|refined)");
}

std::vector<std::size_t> Partition::shard_sizes() const {
  std::vector<std::size_t> sizes(num_shards, 0);
  for (const std::uint32_t s : shard_of) ++sizes[s];
  return sizes;
}

std::vector<std::vector<NodeId>> Partition::members() const {
  std::vector<std::vector<NodeId>> out(num_shards);
  const auto sizes = shard_sizes();
  for (std::uint32_t s = 0; s < num_shards; ++s) out[s].reserve(sizes[s]);
  for (NodeId v = 0; v < shard_of.size(); ++v) out[shard_of[v]].push_back(v);
  return out;
}

void validate_partition(const Partition& p, NodeId num_nodes) {
  DGC_REQUIRE(p.num_shards >= 1, "need at least one shard");
  DGC_REQUIRE(p.num_shards <= num_nodes, "more shards than nodes");
  DGC_REQUIRE(p.shard_of.size() == num_nodes, "partition size mismatch");
  for (const std::uint32_t s : p.shard_of) {
    DGC_REQUIRE(s < p.num_shards, "shard id out of range");
  }
}

namespace {

constexpr double kEps = 1e-9;

/// Target size of shard s: ⌈n/P⌉ for the first n mod P shards, ⌊n/P⌋ after.
std::vector<std::size_t> target_sizes(std::size_t n, std::uint32_t shards) {
  std::vector<std::size_t> targets(shards, n / shards);
  for (std::uint32_t s = 0; s < n % shards; ++s) ++targets[s];
  return targets;
}

Partition partition_range(const Graph& g, std::uint32_t shards) {
  Partition p;
  p.num_shards = shards;
  p.shard_of.resize(g.num_nodes());
  const auto targets = target_sizes(g.num_nodes(), shards);
  NodeId v = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::size_t i = 0; i < targets[s]; ++i) p.shard_of[v++] = s;
  }
  return p;
}

/// Grows shards breadth-first over a CSR view.  Weight-aware: shard s
/// absorbs the frontier until the cumulative assigned weight reaches
/// sum_{t<=s} (⌊W/P⌋ + (t < W mod P)) — with unit weights this is the
/// classic node-count grower, and the multilevel refiner reuses it at
/// the coarsest level with contracted node weights.  Restart rule:
/// whenever the frontier empties (disconnected graphs, isolated nodes)
/// growth restarts from the lowest-id unassigned node, so the result is
/// deterministic on every input.
std::vector<std::uint32_t> bfs_grow(NodeId n, std::span<const std::uint64_t> offsets,
                                    std::span<const NodeId> adj,
                                    std::span<const std::uint64_t> node_weight,
                                    std::uint32_t shards) {
  std::vector<std::uint32_t> part(n, shards);  // "unassigned" sentinel
  std::uint64_t total = 0;
  if (node_weight.empty()) {
    total = n;
  } else {
    for (const std::uint64_t w : node_weight) total += w;
  }
  const std::uint64_t base = total / shards;
  const std::uint64_t rem = total % shards;

  std::deque<NodeId> frontier;
  NodeId next_unassigned = 0;  // smallest node never enqueued as a restart
  std::uint64_t assigned = 0;
  std::uint64_t cum_target = 0;
  NodeId assigned_nodes = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    cum_target += base + (s < rem ? 1 : 0);
    while (assigned < cum_target && assigned_nodes < n) {
      if (frontier.empty()) {
        while (part[next_unassigned] != shards) ++next_unassigned;
        frontier.push_back(next_unassigned);
      }
      const NodeId v = frontier.front();
      frontier.pop_front();
      if (part[v] != shards) continue;
      part[v] = s;
      assigned += node_weight.empty() ? 1 : node_weight[v];
      ++assigned_nodes;
      for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        const NodeId u = adj[i];
        if (part[u] == shards) frontier.push_back(u);
      }
    }
  }
  // Lumpy node weights can exhaust the targets before every node is
  // placed; sweep the tail into the last shard (unit weights never hit
  // this — the targets sum to exactly n).
  for (NodeId v = 0; v < n; ++v) {
    if (part[v] == shards) part[v] = shards - 1;
  }
  return part;
}

Partition partition_bfs(const Graph& g, std::uint32_t shards) {
  Partition p;
  p.num_shards = shards;
  p.shard_of = bfs_grow(g.num_nodes(), g.offsets(), g.adjacency(), {}, shards);
  return p;
}

// ---------------------------------------------------------------------------
// Multilevel machinery (refine_partition).
// ---------------------------------------------------------------------------

/// One level of the coarsening hierarchy.  Level 0 aliases the input
/// graph's CSR spans (no copy); coarse levels own their arrays and keep
/// the spans bound to them (rebind()).  Coarse graphs are always
/// weighted — contracted parallel edges sum their weights — and carry
/// per-node weights (= how many original nodes a coarse node stands
/// for), so balance at any level speaks for balance at level 0.
struct Level {
  NodeId n = 0;
  std::span<const std::uint64_t> offsets;
  std::span<const NodeId> adj;
  std::span<const double> wgt;             // empty ⇒ every arc weighs 1.0
  std::vector<std::uint64_t> node_weight;  // empty ⇒ every node weighs 1
  std::vector<double> node_volume;         // filled only for kVolume runs
  std::vector<NodeId> coarse_of;           // fine node → this level's node
  std::uint64_t max_node_weight = 1;
  std::vector<std::uint64_t> own_offsets;
  std::vector<NodeId> own_adj;
  std::vector<double> own_wgt;

  [[nodiscard]] double arc_weight(std::uint64_t i) const {
    return wgt.empty() ? 1.0 : wgt[i];
  }
  [[nodiscard]] std::uint64_t weight_of(NodeId v) const {
    return node_weight.empty() ? 1 : node_weight[v];
  }
  /// Points the spans at the owned arrays (call after moving a Level
  /// into its final slot; level 0 keeps aliasing the Graph).
  void rebind() {
    if (!own_offsets.empty()) {
      offsets = own_offsets;
      adj = own_adj;
      wgt = own_wgt;
    }
  }
};

/// Contracts one level by heavy-edge matching: scanning nodes in id
/// order, each unmatched node grabs its heaviest unmatched neighbour
/// (ties → lowest id); matched pairs and leftover singletons become the
/// coarse nodes, numbered by their smaller endpoint, so the whole step
/// is deterministic.
Level coarsen_level(const Level& fine, bool need_volume) {
  const NodeId n = fine.n;
  std::vector<NodeId> match(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (match[v] != kInvalidNode) continue;
    NodeId best = kInvalidNode;
    double best_w = 0.0;
    for (std::uint64_t i = fine.offsets[v]; i < fine.offsets[v + 1]; ++i) {
      const NodeId u = fine.adj[i];
      if (match[u] != kInvalidNode || u == v) continue;
      const double w = fine.arc_weight(i);
      if (best == kInvalidNode || w > best_w || (w == best_w && u < best)) {
        best = u;
        best_w = w;
      }
    }
    match[v] = (best == kInvalidNode) ? v : best;
    if (best != kInvalidNode) match[best] = v;
  }

  Level coarse;
  coarse.coarse_of.resize(n);
  std::vector<NodeId> rep;  // smaller endpoint of each coarse node
  rep.reserve(n);
  NodeId cn = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (match[v] >= v) {
      coarse.coarse_of[v] = cn++;
      rep.push_back(v);
    } else {
      coarse.coarse_of[v] = coarse.coarse_of[match[v]];
    }
  }
  coarse.n = cn;

  coarse.node_weight.assign(cn, 0);
  for (NodeId v = 0; v < n; ++v) {
    coarse.node_weight[coarse.coarse_of[v]] += fine.weight_of(v);
  }
  for (const std::uint64_t w : coarse.node_weight) {
    coarse.max_node_weight = std::max(coarse.max_node_weight, w);
  }
  if (need_volume) {
    coarse.node_volume.assign(cn, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      coarse.node_volume[coarse.coarse_of[v]] += fine.node_volume[v];
    }
  }

  coarse.own_offsets.assign(static_cast<std::size_t>(cn) + 1, 0);
  std::vector<double> acc(cn, 0.0);
  std::vector<NodeId> touched;
  for (NodeId cv = 0; cv < cn; ++cv) {
    const NodeId a = rep[cv];
    const NodeId b = match[a];
    const auto absorb = [&](NodeId u) {
      for (std::uint64_t i = fine.offsets[u]; i < fine.offsets[u + 1]; ++i) {
        const NodeId cu = coarse.coarse_of[fine.adj[i]];
        if (cu == cv) continue;  // the contracted edge disappears
        if (acc[cu] == 0.0) touched.push_back(cu);
        acc[cu] += fine.arc_weight(i);
      }
    };
    absorb(a);
    if (b != a) absorb(b);
    std::sort(touched.begin(), touched.end());
    for (const NodeId cu : touched) {
      coarse.own_adj.push_back(cu);
      coarse.own_wgt.push_back(acc[cu]);
      acc[cu] = 0.0;
    }
    coarse.own_offsets[cv + 1] =
        coarse.own_offsets[cv] + static_cast<std::uint64_t>(touched.size());
    touched.clear();
  }
  return coarse;
}

double level_cut_weight(const Level& L, const std::vector<std::uint32_t>& part) {
  double cut = 0.0;
  for (NodeId v = 0; v < L.n; ++v) {
    for (std::uint64_t i = L.offsets[v]; i < L.offsets[v + 1]; ++i) {
      const NodeId u = L.adj[i];
      if (u > v && part[u] != part[v]) cut += L.arc_weight(i);
    }
  }
  return cut;
}

/// Per-level balance bands.  Moves during a refinement pass must keep
/// every shard in [lo, hi]; a pass prefix only *commits* when every
/// shard is in [legal_lo, legal_hi].  The two differ only at the finest
/// node-balance level when P | n, where the commit target is "all shards
/// exactly n/P" but a ±1 corridor is needed to swap nodes at all.
struct Bounds {
  double lo = 0.0;
  double hi = 0.0;
  double legal_lo = 0.0;
  double legal_hi = 0.0;
};

Bounds level_bounds(const Level& L, std::uint32_t P, bool finest, bool volume,
                    double volume_tolerance, const std::vector<double>& size) {
  Bounds b;
  if (volume) {
    double total = 0.0;
    double largest = 0.0;
    for (const double s : size) {
      total += s;
      largest = std::max(largest, s);
    }
    // Never demand a tighter balance than the state we started from —
    // lumpy volumes can make the tolerance unreachable; "no worse" is
    // always reachable.
    b.hi = std::max(volume_tolerance * total / static_cast<double>(P), largest);
    b.legal_hi = b.hi;
    b.lo = 0.0;
    b.legal_lo = 0.0;
    return b;
  }
  std::uint64_t total = 0;
  if (L.node_weight.empty()) {
    total = L.n;
  } else {
    for (const std::uint64_t w : L.node_weight) total += w;
  }
  const double f = static_cast<double>(total / P);
  const double c = static_cast<double>(total / P + (total % P != 0 ? 1 : 0));
  if (finest) {
    b.legal_lo = f;
    b.legal_hi = c;
    if (total % P == 0) {
      // All shards must end at exactly f; allow a ±1 corridor so nodes
      // can still trade places mid-pass.
      b.lo = f - 1.0;
      b.hi = f + 1.0;
    } else {
      b.lo = f;
      b.hi = c;
    }
  } else {
    const double slack = static_cast<double>(L.max_node_weight);
    b.lo = std::max(0.0, f - slack);
    b.hi = c + slack;
    b.legal_lo = b.lo;
    b.legal_hi = b.hi;
  }
  return b;
}

/// Euclidean projection of a row onto the probability simplex (the
/// standard sort-and-threshold step).
void project_row_simplex(std::span<double> row, std::vector<double>& scratch) {
  scratch.assign(row.begin(), row.end());
  std::sort(scratch.begin(), scratch.end(), std::greater<>());
  double cum = 0.0;
  double theta = 0.0;
  std::size_t k = 0;
  for (std::size_t j = 0; j < scratch.size(); ++j) {
    cum += scratch[j];
    const double t = (cum - 1.0) / static_cast<double>(j + 1);
    if (scratch[j] - t > 0.0) {
      theta = t;
      k = j + 1;
    }
  }
  if (k == 0) {
    const double uniform = 1.0 / static_cast<double>(row.size());
    for (double& x : row) x = uniform;
    return;
  }
  for (double& x : row) x = std::max(0.0, x - theta);
}

/// Projected-gradient smoothing of the fractional shard assignment at
/// the coarsest level (arXiv:1902.03522-style): gradient steps on the
/// random-walk smoothness objective interleaved with row-simplex and
/// column-mass projections, then a confidence-ordered deterministic
/// rounding under per-shard capacities.
void projected_gradient_sweep(const Level& L, std::uint32_t P, const RefineOptions& opt,
                              bool volume, std::vector<std::uint32_t>& part) {
  const NodeId n = L.n;
  if (n == 0 || P <= 1) return;
  const std::size_t np = static_cast<std::size_t>(n) * P;
  std::vector<double> x(np, 0.0);
  std::vector<double> y(np, 0.0);
  for (NodeId v = 0; v < n; ++v) x[static_cast<std::size_t>(v) * P + part[v]] = 1.0;

  std::vector<double> deg(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = L.offsets[v]; i < L.offsets[v + 1]; ++i) {
      deg[v] += L.arc_weight(i);
    }
  }
  const auto node_size = [&](NodeId v) -> double {
    return volume ? L.node_volume[v] : static_cast<double>(L.weight_of(v));
  };

  std::vector<double> scratch;
  std::vector<double> acc(P, 0.0);
  std::vector<double> mass(P, 0.0);
  const double step = opt.pg_step;
  for (std::size_t it = 0; it < opt.pg_iterations; ++it) {
    for (NodeId v = 0; v < n; ++v) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (std::uint64_t i = L.offsets[v]; i < L.offsets[v + 1]; ++i) {
        const double* xu = &x[static_cast<std::size_t>(L.adj[i]) * P];
        const double w = L.arc_weight(i);
        for (std::uint32_t p = 0; p < P; ++p) acc[p] += w * xu[p];
      }
      double* yv = &y[static_cast<std::size_t>(v) * P];
      const double* xv = &x[static_cast<std::size_t>(v) * P];
      if (deg[v] > 0.0) {
        for (std::uint32_t p = 0; p < P; ++p) {
          yv[p] = (1.0 - step) * xv[p] + step * acc[p] / deg[v];
        }
      } else {
        for (std::uint32_t p = 0; p < P; ++p) yv[p] = xv[p];
      }
      project_row_simplex(std::span<double>(yv, P), scratch);
    }
    // Pull column masses toward balance, then restore row-stochasticity.
    std::fill(mass.begin(), mass.end(), 0.0);
    double total = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double wv = node_size(v);
      const double* yv = &y[static_cast<std::size_t>(v) * P];
      for (std::uint32_t p = 0; p < P; ++p) mass[p] += wv * yv[p];
      total += wv;
    }
    const double target = total / static_cast<double>(P);
    for (std::uint32_t p = 0; p < P; ++p) {
      mass[p] = target / std::max(mass[p], 1e-12);  // reuse as scale
    }
    for (NodeId v = 0; v < n; ++v) {
      double* yv = &y[static_cast<std::size_t>(v) * P];
      for (std::uint32_t p = 0; p < P; ++p) yv[p] *= mass[p];
      project_row_simplex(std::span<double>(yv, P), scratch);
    }
    x.swap(y);
  }

  // Round the most confident rows first so ambiguous nodes absorb the
  // capacity pressure; ties (including the one-hot rows PG left alone)
  // break on node id.
  std::vector<double> conf(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const double* xv = &x[static_cast<std::size_t>(v) * P];
    double top1 = -1.0;
    double top2 = -1.0;
    for (std::uint32_t p = 0; p < P; ++p) {
      if (xv[p] > top1) {
        top2 = top1;
        top1 = xv[p];
      } else if (xv[p] > top2) {
        top2 = xv[p];
      }
    }
    conf[v] = top1 - top2;
  }
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (conf[a] != conf[b]) return conf[a] > conf[b];
    return a < b;
  });

  double cap = 0.0;
  if (volume) {
    double total = 0.0;
    double largest = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      total += L.node_volume[v];
      largest = std::max(largest, L.node_volume[v]);
    }
    cap = opt.volume_tolerance * total / static_cast<double>(P) + largest;
  } else {
    std::uint64_t total = 0;
    for (NodeId v = 0; v < n; ++v) total += L.weight_of(v);
    cap = static_cast<double>(total / P + (total % P != 0 ? 1 : 0)) +
          static_cast<double>(L.max_node_weight);
  }

  std::vector<double> size(P, 0.0);
  std::vector<std::uint32_t> rank(P, 0);
  for (const NodeId v : order) {
    const double* xv = &x[static_cast<std::size_t>(v) * P];
    std::iota(rank.begin(), rank.end(), std::uint32_t{0});
    std::sort(rank.begin(), rank.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (xv[a] != xv[b]) return xv[a] > xv[b];
      return a < b;
    });
    const double w = node_size(v);
    std::uint32_t chosen = P;
    for (const std::uint32_t s : rank) {
      if (size[s] + w <= cap + kEps) {
        chosen = s;
        break;
      }
    }
    if (chosen == P) {  // every shard over capacity: take the emptiest
      chosen = 0;
      for (std::uint32_t s = 1; s < P; ++s) {
        if (size[s] < size[chosen]) chosen = s;
      }
    }
    part[v] = chosen;
    size[chosen] += w;
  }
}

/// FM-style refinement of `part` on one level: a rebalance preamble
/// forces every shard inside the commit band, then up to max_fm_passes
/// gain-ordered passes.  Each pass moves every node at most once
/// (best-gain first, deterministic tie-breaks on node id then target
/// shard), tracks the running cut gain, and rolls back to the best
/// prefix whose shard sizes were all legal — the classic
/// Fiduccia–Mattheyses hill-climb, with a lazy max-heap instead of gain
/// buckets because coarse-level gains are real-valued.
void fm_refine(const Level& L, std::uint32_t P, const RefineOptions& opt, bool finest,
               bool volume, std::vector<std::uint32_t>& part) {
  if (P <= 1 || L.n == 0) return;
  const auto node_size = [&](NodeId v) -> double {
    return volume ? L.node_volume[v] : static_cast<double>(L.weight_of(v));
  };
  std::vector<double> size(P, 0.0);
  for (NodeId v = 0; v < L.n; ++v) size[part[v]] += node_size(v);
  const Bounds b = level_bounds(L, P, finest, volume, opt.volume_tolerance, size);

  // --- Rebalance preamble: projection from the coarser level (or PG
  // rounding overflow) can leave shards outside the commit band.  Move
  // the best-gain node from the fullest shard to the emptiest until
  // every shard is legal; stop if a move can no longer reduce the
  // violation (lumpy volumes).
  const auto violation = [&](double s) {
    return std::max(0.0, s - b.legal_hi) + std::max(0.0, b.legal_lo - s);
  };
  for (std::size_t guard = 0; guard <= 4 * static_cast<std::size_t>(L.n) + 16; ++guard) {
    std::uint32_t lo_s = 0;
    std::uint32_t hi_s = 0;
    for (std::uint32_t s = 1; s < P; ++s) {
      if (size[s] < size[lo_s]) lo_s = s;
      if (size[s] > size[hi_s]) hi_s = s;
    }
    if (size[hi_s] <= b.legal_hi + kEps && size[lo_s] >= b.legal_lo - kEps) break;
    NodeId best_v = kInvalidNode;
    double best_g = 0.0;
    for (NodeId v = 0; v < L.n; ++v) {
      if (part[v] != hi_s) continue;
      double g = 0.0;
      for (std::uint64_t i = L.offsets[v]; i < L.offsets[v + 1]; ++i) {
        const std::uint32_t s = part[L.adj[i]];
        if (s == lo_s) g += L.arc_weight(i);
        else if (s == hi_s) g -= L.arc_weight(i);
      }
      if (best_v == kInvalidNode || g > best_g || (g == best_g && v < best_v)) {
        best_v = v;
        best_g = g;
      }
    }
    if (best_v == kInvalidNode) break;  // fullest shard is somehow empty
    const double w = node_size(best_v);
    const double before = violation(size[hi_s]) + violation(size[lo_s]);
    const double after = violation(size[hi_s] - w) + violation(size[lo_s] + w);
    if (after >= before - kEps) break;  // this move can't help any more
    size[hi_s] -= w;
    size[lo_s] += w;
    part[best_v] = lo_s;
  }

  // --- Gain-ordered passes.
  std::vector<double> conn(P, 0.0);
  std::vector<std::uint32_t> touched;
  const auto best_move = [&](NodeId v, double& gain, std::uint32_t& to) {
    const std::uint32_t own = part[v];
    for (std::uint64_t i = L.offsets[v]; i < L.offsets[v + 1]; ++i) {
      const std::uint32_t s = part[L.adj[i]];
      if (conn[s] == 0.0) touched.push_back(s);
      conn[s] += L.arc_weight(i);
    }
    bool found = false;
    for (const std::uint32_t s : touched) {
      if (s == own) continue;
      const double g = conn[s] - conn[own];
      if (!found || g > gain || (g == gain && s < to)) {
        gain = g;
        to = s;
        found = true;
      }
    }
    for (const std::uint32_t s : touched) conn[s] = 0.0;
    touched.clear();
    return found;
  };

  struct Cand {
    double gain;
    NodeId v;
    std::uint32_t to;
    std::uint64_t stamp;
  };
  const auto cand_less = [](const Cand& lhs, const Cand& rhs) {
    if (lhs.gain != rhs.gain) return lhs.gain < rhs.gain;  // max-heap on gain
    if (lhs.v != rhs.v) return lhs.v > rhs.v;              // then lowest node id
    return lhs.to > rhs.to;                                // then lowest target
  };
  std::vector<std::uint64_t> version(L.n, 0);
  std::vector<char> moved(L.n, 0);
  struct Move {
    NodeId v;
    std::uint32_t from;
    std::uint32_t to;
  };
  std::vector<Move> history;
  const auto legal = [&](double s) {
    return s >= b.legal_lo - kEps && s <= b.legal_hi + kEps;
  };

  for (std::size_t pass = 0; pass < opt.max_fm_passes; ++pass) {
    std::fill(moved.begin(), moved.end(), char{0});
    history.clear();
    std::priority_queue<Cand, std::vector<Cand>, decltype(cand_less)> heap(cand_less);
    for (NodeId v = 0; v < L.n; ++v) {
      double gain = 0.0;
      std::uint32_t to = 0;
      if (best_move(v, gain, to)) heap.push({gain, v, to, version[v]});
    }
    int violations = 0;
    for (std::uint32_t s = 0; s < P; ++s) violations += legal(size[s]) ? 0 : 1;
    double gain_sum = 0.0;
    double best_gain = 0.0;
    std::size_t best_prefix = 0;
    while (!heap.empty()) {
      const Cand c = heap.top();
      heap.pop();
      if (moved[c.v] || c.stamp != version[c.v]) continue;
      const std::uint32_t from = part[c.v];
      if (from == c.to) continue;
      const double w = node_size(c.v);
      if (size[from] - w < b.lo - kEps || size[c.to] + w > b.hi + kEps) continue;
      violations -= legal(size[from]) ? 0 : 1;
      violations -= legal(size[c.to]) ? 0 : 1;
      size[from] -= w;
      size[c.to] += w;
      violations += legal(size[from]) ? 0 : 1;
      violations += legal(size[c.to]) ? 0 : 1;
      part[c.v] = c.to;
      moved[c.v] = 1;
      history.push_back({c.v, from, c.to});
      gain_sum += c.gain;
      if (violations == 0 && gain_sum > best_gain + kEps) {
        best_gain = gain_sum;
        best_prefix = history.size();
      }
      for (std::uint64_t i = L.offsets[c.v]; i < L.offsets[c.v + 1]; ++i) {
        const NodeId u = L.adj[i];
        if (moved[u]) continue;
        ++version[u];
        double gain = 0.0;
        std::uint32_t to = 0;
        if (best_move(u, gain, to)) heap.push({gain, u, to, version[u]});
      }
    }
    for (std::size_t i = history.size(); i-- > best_prefix;) {
      const Move& mv = history[i];
      part[mv.v] = mv.from;
      const double w = node_size(mv.v);
      size[mv.to] -= w;
      size[mv.from] += w;
    }
    if (best_prefix == 0) break;  // the pass found no committable gain
  }
}

}  // namespace

Partition refine_partition(const Graph& g, std::uint32_t shards,
                           const RefineOptions& opt) {
  const NodeId n = g.num_nodes();
  DGC_REQUIRE(shards >= 1, "need at least one shard");
  DGC_REQUIRE(shards <= n, "more shards than nodes");
  DGC_REQUIRE(opt.volume_tolerance >= 1.0, "volume_tolerance must be >= 1.0");
  Partition p;
  p.num_shards = shards;
  if (shards == 1) {
    p.shard_of.assign(n, 0);
    return p;
  }
  if (shards == n) {
    p.shard_of.resize(n);
    std::iota(p.shard_of.begin(), p.shard_of.end(), std::uint32_t{0});
    return p;
  }
  const bool volume = opt.objective == BalanceObjective::kVolume;

  // --- Coarsen.
  constexpr std::size_t kMaxLevels = 48;
  std::vector<Level> levels;
  levels.reserve(kMaxLevels);
  levels.emplace_back();
  levels[0].n = n;
  levels[0].offsets = g.offsets();
  levels[0].adj = g.adjacency();
  levels[0].wgt = g.weights();
  if (volume) {
    levels[0].node_volume.assign(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint64_t i = levels[0].offsets[v]; i < levels[0].offsets[v + 1]; ++i) {
        levels[0].node_volume[v] += levels[0].arc_weight(i);
      }
    }
  }
  const std::size_t stop =
      std::max<std::size_t>(opt.coarsen_min_nodes != 0
                                ? opt.coarsen_min_nodes
                                : std::max<std::size_t>(64, std::size_t{16} * shards),
                            shards);
  while (levels.back().n > stop && levels.size() < kMaxLevels) {
    Level c = coarsen_level(levels.back(), volume);
    const NodeId prev = levels.back().n;
    if (c.n < shards || c.n >= prev - prev / 20) break;  // overshoot / stall
    levels.push_back(std::move(c));
    levels.back().rebind();
  }

  // --- Initial partition at the coarsest level.
  const Level& top = levels.back();
  std::vector<std::uint32_t> part =
      bfs_grow(top.n, top.offsets, top.adj, top.node_weight, shards);
  if (opt.projected_gradient) {
    projected_gradient_sweep(top, shards, opt, volume, part);
  }
  fm_refine(top, shards, opt, /*finest=*/levels.size() == 1, volume, part);

  // --- Uncoarsen: project each level down and refine.
  for (std::size_t li = levels.size() - 1; li >= 1; --li) {
    const Level& coarse = levels[li];
    const Level& fine = levels[li - 1];
    std::vector<std::uint32_t> fine_part(fine.n);
    for (NodeId v = 0; v < fine.n; ++v) fine_part[v] = part[coarse.coarse_of[v]];
    part = std::move(fine_part);
    fm_refine(fine, shards, opt, /*finest=*/li - 1 == 0, volume, part);
  }

  // --- Portfolio: the multilevel result must never cut more weight than
  // the plain heuristics, so refine range and BFS the same way and keep
  // the lightest cut (ties prefer the multilevel result, then BFS).
  // Node balance only — range/BFS don't honour the volume objective.
  if (!volume) {
    const Level& base = levels.front();
    double best_cut = level_cut_weight(base, part);
    for (const PartitionMode mode : {PartitionMode::kBfs, PartitionMode::kRange}) {
      std::vector<std::uint32_t> cand = partition_graph(g, shards, mode).shard_of;
      fm_refine(base, shards, opt, /*finest=*/true, /*volume=*/false, cand);
      const double cut = level_cut_weight(base, cand);
      if (cut < best_cut - kEps) {
        best_cut = cut;
        part = std::move(cand);
      }
    }
  }
  p.shard_of = std::move(part);
  return p;
}

Partition partition_graph(const Graph& g, std::uint32_t shards, PartitionMode mode) {
  DGC_REQUIRE(shards >= 1, "need at least one shard");
  DGC_REQUIRE(shards <= g.num_nodes(), "more shards than nodes");
  switch (mode) {
    case PartitionMode::kRange:
      return partition_range(g, shards);
    case PartitionMode::kBfs:
      return partition_bfs(g, shards);
    case PartitionMode::kRefined:
      return refine_partition(g, shards);
  }
  DGC_REQUIRE(false, "unknown partition mode");
}

}  // namespace dgc::graph
