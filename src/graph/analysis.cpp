#include "graph/analysis.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dgc::graph {

std::uint64_t cut_size(const Graph& g, std::span<const NodeId> set) {
  std::vector<char> in_set(g.num_nodes(), 0);
  for (const NodeId v : set) {
    DGC_REQUIRE(v < g.num_nodes(), "set member out of range");
    in_set[v] = 1;
  }
  std::uint64_t cut = 0;
  for (const NodeId v : set) {
    for (const NodeId u : g.neighbors(v)) {
      if (!in_set[u]) ++cut;
    }
  }
  return cut;
}

std::vector<std::uint64_t> cut_sizes(const Graph& g,
                                     std::span<const std::uint32_t> membership,
                                     std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  std::vector<std::uint64_t> cuts(num_clusters, 0);
  g.for_each_edge([&](NodeId u, NodeId v) {
    const auto cu = membership[u];
    const auto cv = membership[v];
    DGC_REQUIRE(cu < num_clusters && cv < num_clusters, "label out of range");
    if (cu != cv) {
      ++cuts[cu];
      ++cuts[cv];
    }
  });
  return cuts;
}

namespace {

/// #edges with at least one endpoint in S (the paper's vol), plus the cut.
struct SetEdgeCounts {
  std::uint64_t cut = 0;
  std::uint64_t touching = 0;  // |E(S,S)| + cut
};

SetEdgeCounts count_set_edges(const Graph& g, std::span<const NodeId> set) {
  std::vector<char> in_set(g.num_nodes(), 0);
  for (const NodeId v : set) {
    DGC_REQUIRE(v < g.num_nodes(), "set member out of range");
    in_set[v] = 1;
  }
  SetEdgeCounts counts;
  std::uint64_t internal_halves = 0;
  for (const NodeId v : set) {
    for (const NodeId u : g.neighbors(v)) {
      if (in_set[u]) {
        ++internal_halves;
      } else {
        ++counts.cut;
      }
    }
  }
  counts.touching = internal_halves / 2 + counts.cut;
  return counts;
}

}  // namespace

double conductance(const Graph& g, std::span<const NodeId> set) {
  const auto counts = count_set_edges(g, set);
  if (counts.touching == 0) return 0.0;
  return static_cast<double>(counts.cut) / static_cast<double>(counts.touching);
}

double conductance_degree_volume(const Graph& g, std::span<const NodeId> set) {
  const auto counts = count_set_edges(g, set);
  const std::uint64_t vol = g.volume(set);
  if (vol == 0) return 0.0;
  return static_cast<double>(counts.cut) / static_cast<double>(vol);
}

std::vector<double> partition_conductances(const Graph& g,
                                           std::span<const std::uint32_t> membership,
                                           std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  // One pass: per-cluster cut and internal edge count.
  std::vector<std::uint64_t> cuts(num_clusters, 0);
  std::vector<std::uint64_t> internal(num_clusters, 0);
  g.for_each_edge([&](NodeId u, NodeId v) {
    const auto cu = membership[u];
    const auto cv = membership[v];
    DGC_REQUIRE(cu < num_clusters && cv < num_clusters, "label out of range");
    if (cu == cv) {
      ++internal[cu];
    } else {
      ++cuts[cu];
      ++cuts[cv];
    }
  });
  std::vector<double> phis(num_clusters, 0.0);
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    const std::uint64_t touching = internal[c] + cuts[c];
    phis[c] = touching == 0 ? 0.0
                            : static_cast<double>(cuts[c]) / static_cast<double>(touching);
  }
  return phis;
}

double rho(const Graph& g, std::span<const std::uint32_t> membership,
           std::uint32_t num_clusters) {
  const auto phis = partition_conductances(g, membership, num_clusters);
  double worst = 0.0;
  for (const double phi : phis) worst = std::max(worst, phi);
  return worst;
}

namespace {

std::size_t count_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<char> visited(n, 0);
  std::vector<NodeId> stack;
  std::size_t components = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    visited[start] = 1;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

}  // namespace

bool is_connected(const Graph& g) {
  return g.num_nodes() == 0 || count_components(g) == 1;
}

std::size_t num_components(const Graph& g) { return count_components(g); }

}  // namespace dgc::graph
