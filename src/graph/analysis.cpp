#include "graph/analysis.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dgc::graph {

std::uint64_t cut_size(const Graph& g, std::span<const NodeId> set) {
  std::vector<char> in_set(g.num_nodes(), 0);
  for (const NodeId v : set) {
    DGC_REQUIRE(v < g.num_nodes(), "set member out of range");
    in_set[v] = 1;
  }
  std::uint64_t cut = 0;
  for (const NodeId v : set) {
    for (const NodeId u : g.neighbors(v)) {
      if (!in_set[u]) ++cut;
    }
  }
  return cut;
}

std::vector<std::uint64_t> cut_sizes(const Graph& g,
                                     std::span<const std::uint32_t> membership,
                                     std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  std::vector<std::uint64_t> cuts(num_clusters, 0);
  g.for_each_edge([&](NodeId u, NodeId v) {
    const auto cu = membership[u];
    const auto cv = membership[v];
    DGC_REQUIRE(cu < num_clusters && cv < num_clusters, "label out of range");
    if (cu != cv) {
      ++cuts[cu];
      ++cuts[cv];
    }
  });
  return cuts;
}

namespace {

/// #edges with at least one endpoint in S (the paper's vol), plus the cut.
struct SetEdgeCounts {
  std::uint64_t cut = 0;
  std::uint64_t touching = 0;  // |E(S,S)| + cut
};

SetEdgeCounts count_set_edges(const Graph& g, std::span<const NodeId> set) {
  std::vector<char> in_set(g.num_nodes(), 0);
  for (const NodeId v : set) {
    DGC_REQUIRE(v < g.num_nodes(), "set member out of range");
    in_set[v] = 1;
  }
  SetEdgeCounts counts;
  std::uint64_t internal_halves = 0;
  for (const NodeId v : set) {
    for (const NodeId u : g.neighbors(v)) {
      if (in_set[u]) {
        ++internal_halves;
      } else {
        ++counts.cut;
      }
    }
  }
  counts.touching = internal_halves / 2 + counts.cut;
  return counts;
}

}  // namespace

double conductance(const Graph& g, std::span<const NodeId> set) {
  const auto counts = count_set_edges(g, set);
  if (counts.touching == 0) return 0.0;
  return static_cast<double>(counts.cut) / static_cast<double>(counts.touching);
}

double conductance_degree_volume(const Graph& g, std::span<const NodeId> set) {
  const auto counts = count_set_edges(g, set);
  const std::uint64_t vol = g.volume(set);
  if (vol == 0) return 0.0;
  return static_cast<double>(counts.cut) / static_cast<double>(vol);
}

std::vector<double> partition_conductances(const Graph& g,
                                           std::span<const std::uint32_t> membership,
                                           std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  // One pass: per-cluster cut and internal edge count.
  std::vector<std::uint64_t> cuts(num_clusters, 0);
  std::vector<std::uint64_t> internal(num_clusters, 0);
  g.for_each_edge([&](NodeId u, NodeId v) {
    const auto cu = membership[u];
    const auto cv = membership[v];
    DGC_REQUIRE(cu < num_clusters && cv < num_clusters, "label out of range");
    if (cu == cv) {
      ++internal[cu];
    } else {
      ++cuts[cu];
      ++cuts[cv];
    }
  });
  std::vector<double> phis(num_clusters, 0.0);
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    const std::uint64_t touching = internal[c] + cuts[c];
    phis[c] = touching == 0 ? 0.0
                            : static_cast<double>(cuts[c]) / static_cast<double>(touching);
  }
  return phis;
}

double rho(const Graph& g, std::span<const std::uint32_t> membership,
           std::uint32_t num_clusters) {
  const auto phis = partition_conductances(g, membership, num_clusters);
  double worst = 0.0;
  for (const double phi : phis) worst = std::max(worst, phi);
  return worst;
}

namespace {

/// Weight of edges with at least one endpoint in S, plus the cut weight.
struct SetEdgeWeights {
  double cut = 0.0;
  double touching = 0.0;  // w(E(S,S)) + cut
};

SetEdgeWeights weigh_set_edges(const Graph& g, std::span<const NodeId> set) {
  std::vector<char> in_set(g.num_nodes(), 0);
  for (const NodeId v : set) {
    DGC_REQUIRE(v < g.num_nodes(), "set member out of range");
    in_set[v] = 1;
  }
  SetEdgeWeights weights;
  double internal_halves = 0.0;
  for (const NodeId v : set) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w = ws.empty() ? 1.0 : ws[i];
      if (in_set[nbrs[i]]) {
        internal_halves += w;
      } else {
        weights.cut += w;
      }
    }
  }
  weights.touching = internal_halves / 2.0 + weights.cut;
  return weights;
}

}  // namespace

double cut_weight(const Graph& g, std::span<const NodeId> set) {
  return weigh_set_edges(g, set).cut;
}

double weighted_conductance(const Graph& g, std::span<const NodeId> set) {
  const auto weights = weigh_set_edges(g, set);
  if (weights.touching == 0.0) return 0.0;
  return weights.cut / weights.touching;
}

std::vector<double> weighted_partition_conductances(
    const Graph& g, std::span<const std::uint32_t> membership,
    std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  std::vector<double> cuts(num_clusters, 0.0);
  std::vector<double> internal(num_clusters, 0.0);
  g.for_each_weighted_edge([&](NodeId u, NodeId v, double w) {
    const auto cu = membership[u];
    const auto cv = membership[v];
    DGC_REQUIRE(cu < num_clusters && cv < num_clusters, "label out of range");
    if (cu == cv) {
      internal[cu] += w;
    } else {
      cuts[cu] += w;
      cuts[cv] += w;
    }
  });
  std::vector<double> phis(num_clusters, 0.0);
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    const double touching = internal[c] + cuts[c];
    phis[c] = touching == 0.0 ? 0.0 : cuts[c] / touching;
  }
  return phis;
}

double weighted_rho(const Graph& g, std::span<const std::uint32_t> membership,
                    std::uint32_t num_clusters) {
  const auto phis = weighted_partition_conductances(g, membership, num_clusters);
  double worst = 0.0;
  for (const double phi : phis) worst = std::max(worst, phi);
  return worst;
}

CompactedGraph drop_isolated(const Graph& g) {
  const NodeId n = g.num_nodes();
  CompactedGraph out;
  std::vector<NodeId> new_id(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 0) {
      new_id[v] = static_cast<NodeId>(out.original_of.size());
      out.original_of.push_back(v);
    }
  }
  const auto kept = static_cast<NodeId>(out.original_of.size());
  std::vector<std::uint64_t> offsets(kept + 1, 0);
  std::vector<NodeId> adjacency;
  adjacency.reserve(g.adjacency().size());
  std::vector<double> weights;
  if (g.is_weighted()) weights.reserve(g.adjacency().size());
  for (NodeId c = 0; c < kept; ++c) {
    const NodeId v = out.original_of[c];
    // The relabelling is monotone, so runs stay sorted and symmetric.
    for (const NodeId u : g.neighbors(v)) adjacency.push_back(new_id[u]);
    if (g.is_weighted()) {
      const auto ws = g.weights(v);
      weights.insert(weights.end(), ws.begin(), ws.end());
    }
    offsets[c + 1] = adjacency.size();
  }
  out.graph = Graph::from_csr(std::move(offsets), std::move(adjacency), std::move(weights));
  return out;
}

namespace {

std::size_t count_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<char> visited(n, 0);
  std::vector<NodeId> stack;
  std::size_t components = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    ++components;
    visited[start] = 1;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

}  // namespace

bool is_connected(const Graph& g) {
  return g.num_nodes() == 0 || count_components(g) == 1;
}

std::size_t num_components(const Graph& g) { return count_components(g); }

}  // namespace dgc::graph
