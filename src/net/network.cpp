#include "net/network.hpp"

#include "util/require.hpp"

namespace dgc::net {

Network::Network(const graph::Graph& g) : graph_(&g) {
  inboxes_.resize(g.num_nodes());
}

void Network::send(Message message) {
  DGC_REQUIRE(message.from < graph_->num_nodes() && message.to < graph_->num_nodes(),
              "endpoint out of range");
  DGC_REQUIRE(graph_->has_edge(message.from, message.to),
              "messages may only travel along graph edges");
  stats_.messages += 1;
  stats_.words += words_of(message);
  in_flight_.push_back(std::move(message));
}

void Network::deliver() {
  for (auto& inbox : inboxes_) inbox.clear();
  for (auto& message : in_flight_) {
    if (drop_probability_ > 0.0 && drop_rng_ && drop_rng_->next_bool(drop_probability_)) {
      stats_.dropped_messages += 1;
      continue;
    }
    inboxes_[message.to].push_back(std::move(message));
  }
  in_flight_.clear();
}

const std::vector<Message>& Network::inbox(graph::NodeId v) const {
  DGC_REQUIRE(v < graph_->num_nodes(), "node out of range");
  return inboxes_[v];
}

void Network::set_drop_probability(double p, std::uint64_t seed) {
  DGC_REQUIRE(p >= 0.0 && p < 1.0, "drop probability out of range");
  drop_probability_ = p;
  drop_rng_.emplace(seed);
}

}  // namespace dgc::net
