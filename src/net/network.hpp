// Synchronous message-passing network simulator.
//
// The paper's model: n processors, one per graph node, communicating only
// with graph neighbours in globally synchronous rounds.  We do not have n
// machines, so this substrate simulates them faithfully enough for every
// paper-relevant observable:
//   * locality     — send() rejects non-neighbour destinations;
//   * synchrony    — messages sent in phase p are readable only after
//                    deliver() closes the phase;
//   * cost         — every message is metered in messages and *words*
//                    (1 header word + 2 words per (id, value) payload
//                    entry: one for the log n-bit identifier, one for the
//                    value), which is the unit Theorem 1.1 counts;
//   * faults       — optional iid message drops for robustness studies.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dgc::net {

/// Message kinds used by the distributed clustering protocol; the
/// simulator itself treats them opaquely.
enum class MsgKind : std::uint8_t {
  kProbe = 0,   ///< matching protocol step (2): "I picked you"
  kAccept = 1,  ///< matching protocol step (3): "we are matched"
  kState = 2,   ///< averaging procedure: full sparse state transfer
};

struct Message {
  graph::NodeId from = 0;
  graph::NodeId to = 0;
  MsgKind kind = MsgKind::kProbe;
  /// (identifier, value) pairs — the State_v(t) entries of §3.1.
  std::vector<std::pair<std::uint64_t, double>> payload;
};

/// Cumulative traffic counters.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  std::uint64_t dropped_messages = 0;
};

class Network {
 public:
  explicit Network(const graph::Graph& g);

  /// Enqueues a message for the next deliver().  The destination must be
  /// a graph neighbour of the sender.
  void send(Message message);

  /// Closes the phase: everything sent becomes readable via inbox().
  /// Messages from earlier phases are discarded.
  void deliver();

  /// Read-only inbox of node v for the current phase.
  [[nodiscard]] const std::vector<Message>& inbox(graph::NodeId v) const;

  /// Fault injection: every message is independently dropped with
  /// probability p at deliver() time.
  void set_drop_probability(double p, std::uint64_t seed);

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// Words metered for a message: 1 + 2 * payload entries.
  [[nodiscard]] static std::uint64_t words_of(const Message& message) noexcept {
    return 1 + 2 * static_cast<std::uint64_t>(message.payload.size());
  }

 private:
  const graph::Graph* graph_;
  std::vector<Message> in_flight_;
  std::vector<std::vector<Message>> inboxes_;
  TrafficStats stats_;
  double drop_probability_ = 0.0;
  std::optional<util::Rng> drop_rng_;
};

}  // namespace dgc::net
