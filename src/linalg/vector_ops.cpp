#include "linalg/vector_ops.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dgc::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  DGC_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_diff(std::span<const double> x, std::span<const double> y) {
  DGC_REQUIRE(x.size() == y.size(), "norm_diff: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  DGC_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(std::span<double> x, double a) {
  for (auto& xi : x) xi *= a;
}

double normalize(std::span<double> x) {
  const double n = norm(x);
  if (n > 0.0) scale(x, 1.0 / n);
  return n;
}

double sum(std::span<const double> x) {
  double acc = 0.0;
  for (const double xi : x) acc += xi;
  return acc;
}

void orthogonalize_against(std::span<double> x,
                           const std::vector<std::vector<double>>& basis) {
  for (const auto& b : basis) {
    const double c = dot(x, b);
    axpy(-c, b, x);
  }
}

std::size_t gram_schmidt(std::vector<std::vector<double>>& vectors, double tol) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    auto& v = vectors[i];
    // Two MGS passes for numerical robustness ("twice is enough").
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t j = 0; j < kept; ++j) {
        const double c = dot(v, vectors[j]);
        axpy(-c, vectors[j], v);
      }
    }
    if (normalize(v) > tol) {
      if (kept != i) vectors[kept] = std::move(v);
      ++kept;
    }
  }
  vectors.resize(kept);
  return kept;
}

}  // namespace dgc::linalg
