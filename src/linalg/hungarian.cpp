#include "linalg/hungarian.hpp"

#include <limits>

#include "util/require.hpp"

namespace dgc::linalg {

AssignmentResult hungarian_min_cost(const std::vector<double>& cost, std::size_t rows,
                                    std::size_t cols) {
  DGC_REQUIRE(rows >= 1 && cols >= rows, "need 1 <= rows <= cols");
  DGC_REQUIRE(cost.size() == rows * cols, "cost matrix size mismatch");

  constexpr double kInf = std::numeric_limits<double>::max() / 4;
  // Potentials formulation with 1-based sentinel row/column 0.
  std::vector<double> u(rows + 1, 0.0);
  std::vector<double> v(cols + 1, 0.0);
  std::vector<std::size_t> match(cols + 1, 0);  // match[c] = row assigned to c
  std::vector<std::size_t> way(cols + 1, 0);

  for (std::size_t r = 1; r <= rows; ++r) {
    match[0] = r;
    std::size_t j0 = 0;
    std::vector<double> minv(cols + 1, kInf);
    std::vector<char> used(cols + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = match[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        const double cur = cost[(i0 - 1) * cols + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.row_to_col.assign(rows, 0);
  for (std::size_t j = 1; j <= cols; ++j) {
    if (match[j] != 0) result.row_to_col[match[j] - 1] = j - 1;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    result.total_cost += cost[r * cols + result.row_to_col[r]];
  }
  return result;
}

}  // namespace dgc::linalg
