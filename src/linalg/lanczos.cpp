#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/tridiag.hpp"
#include "linalg/vector_ops.hpp"
#include "util/require.hpp"

namespace dgc::linalg {

EigenPairs lanczos_top_eigenpairs(std::size_t n, const SymmetricOperator& op,
                                  const LanczosOptions& options) {
  const std::size_t k = options.num_eigenpairs;
  DGC_REQUIRE(k >= 1, "need at least one eigenpair");
  DGC_REQUIRE(n >= k, "operator dimension smaller than requested pairs");

  std::size_t m = options.max_iterations;
  if (m == 0) m = 3 * k + 40;
  m = std::min(m, n);
  m = std::max(m, k);

  util::Rng rng(options.seed);

  // Krylov basis with full reorthogonalisation (memory m*n; m is small).
  std::vector<std::vector<double>> basis;
  basis.reserve(m);
  std::vector<double> alpha;  // tridiagonal diagonal
  std::vector<double> beta;   // tridiagonal offdiagonal

  auto random_unit_orthogonal = [&]() {
    std::vector<double> v(n);
    for (int attempt = 0; attempt < 64; ++attempt) {
      for (auto& x : v) x = rng.next_double() - 0.5;
      orthogonalize_against(v, basis);
      if (normalize(v) > 1e-8) return v;
    }
    DGC_REQUIRE(false, "could not expand Krylov space");
    return v;
  };

  basis.push_back(random_unit_orthogonal());
  std::vector<double> w(n);

  for (std::size_t j = 0; j < m; ++j) {
    op(basis[j], w);
    const double a = dot(w, basis[j]);
    alpha.push_back(a);
    if (j + 1 == m) break;

    // w -= alpha_j v_j + beta_{j-1} v_{j-1}, then full reorthogonalise
    // (two passes) to defeat the classical Lanczos loss of orthogonality.
    axpy(-a, basis[j], w);
    if (j > 0) axpy(-beta[j - 1], basis[j - 1], w);
    for (int pass = 0; pass < 2; ++pass) orthogonalize_against(w, basis);

    const double b = norm(w);
    if (b < options.tolerance) {
      // Invariant subspace found.  Restart the recurrence in the
      // orthogonal complement (beta = 0 decouples the tridiagonal
      // blocks); this is what recovers *multiplicities* — a single
      // Krylov sequence contains at most one direction per eigenspace.
      beta.push_back(0.0);
      basis.push_back(random_unit_orthogonal());
      continue;
    }
    beta.push_back(b);
    scale(w, 1.0 / b);
    basis.push_back(w);
  }

  const std::size_t steps = alpha.size();
  DGC_REQUIRE(steps >= k, "Lanczos produced too few steps");
  beta.resize(steps - 1);

  const TridiagEigen tri = tridiagonal_eigen(alpha, beta);

  // Ritz pairs: take the k largest eigenvalues of the tridiagonal matrix
  // and lift their eigenvectors through the basis.
  EigenPairs out;
  out.values.reserve(k);
  out.vectors.reserve(k);
  for (std::size_t idx = 0; idx < k; ++idx) {
    const std::size_t col = steps - 1 - idx;  // ascending order -> from back
    out.values.push_back(tri.values[col]);
    std::vector<double> ritz(n, 0.0);
    for (std::size_t i = 0; i < steps; ++i) {
      axpy(tri.vectors[i * steps + col], basis[i], ritz);
    }
    normalize(ritz);
    out.vectors.push_back(std::move(ritz));
  }
  return out;
}

}  // namespace dgc::linalg
