// Dense vector kernels.  Everything operates on std::span<double> so the
// load-balancing engine can run the same kernels over rows of its
// s-dimensional state matrix without copies.
#pragma once

#include <span>
#include <vector>

namespace dgc::linalg {

[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);
[[nodiscard]] double norm(std::span<const double> x);
[[nodiscard]] double norm_diff(std::span<const double> x, std::span<const double> y);

/// y += a*x
void axpy(double a, std::span<const double> x, std::span<double> y);
/// x *= a
void scale(std::span<double> x, double a);
/// x /= ||x||; returns the original norm (0 if x == 0, x untouched).
double normalize(std::span<double> x);
/// Sum of entries.
[[nodiscard]] double sum(std::span<const double> x);

/// Removes from x its components along each of the given orthonormal
/// basis vectors (one modified-Gram-Schmidt pass).
void orthogonalize_against(std::span<double> x,
                           const std::vector<std::vector<double>>& basis);

/// Modified Gram-Schmidt: orthonormalises `vectors` in place.  Vectors
/// whose residual norm falls below `tol` are dropped.  Returns the number
/// of vectors kept (they occupy the front of the vector).
std::size_t gram_schmidt(std::vector<std::vector<double>>& vectors, double tol = 1e-12);

}  // namespace dgc::linalg
