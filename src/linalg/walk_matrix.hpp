// Matrix-free application of the random walk matrix P and friends.
//
// For a d-regular graph the paper's P = A/d is symmetric and its
// spectrum drives everything (Cheeger bounds, the gap condition (2),
// the round count T).  For non-regular graphs we expose the symmetric
// normalised adjacency N = D^{-1/2} A D^{-1/2}, whose spectrum equals
// that of the (row-stochastic) walk matrix D^{-1}A.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::linalg {

/// Matrix-free operator view over a graph.
class WalkOperator {
 public:
  explicit WalkOperator(const graph::Graph& g);

  [[nodiscard]] std::size_t dimension() const noexcept { return graph_->num_nodes(); }

  /// out = (A/d) in — requires a regular graph.
  void apply_walk(std::span<const double> in, std::span<double> out) const;

  /// out = D^{-1/2} A D^{-1/2} in — any graph without isolated nodes.
  void apply_normalized(std::span<const double> in, std::span<double> out) const;

  /// out = D^{-1} A in — the row-stochastic walk matrix of any graph
  /// (equals apply_walk on regular graphs).
  void apply_row_stochastic(std::span<const double> in, std::span<double> out) const;

  /// out = ((1-gamma) I + gamma A/d) in — the lazy walk matching the
  /// expected matching matrix of Lemma 2.1 with gamma = d_bar/4.
  void apply_lazy_walk(std::span<const double> in, std::span<double> out,
                       double gamma) const;

  /// The paper's d_bar = (1 - 1/(2d))^{d-1} for regular degree d.
  [[nodiscard]] double d_bar() const;

 private:
  const graph::Graph* graph_;
  std::vector<double> inv_sqrt_degree_;
};

/// Dense n x n random walk matrix (tests only; O(n^2) memory).
[[nodiscard]] std::vector<double> dense_walk_matrix(const graph::Graph& g);

}  // namespace dgc::linalg
