#include "linalg/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace dgc::linalg {

DenseEigen jacobi_eigen(std::vector<double> a, std::size_t n, double tolerance,
                        std::size_t max_sweeps) {
  DGC_REQUIRE(n > 0, "empty matrix");
  DGC_REQUIRE(a.size() == n * n, "matrix size mismatch");

  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_norm = [&]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) acc += a[i * n + j] * a[i * n + j];
    }
    return std::sqrt(2.0 * acc);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps && off_norm() > tolerance; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a[i * n + p];
          const double aiq = a[i * n + q];
          a[i * n + p] = c * aip - s * aiq;
          a[i * n + q] = s * aip + c * aiq;
        }
        for (std::size_t j = 0; j < n; ++j) {
          const double apj = a[p * n + j];
          const double aqj = a[q * n + j];
          a[p * n + j] = c * apj - s * aqj;
          a[q * n + j] = s * apj + c * aqj;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v[i * n + p];
          const double viq = v[i * n + q];
          v[i * n + p] = c * vip - s * viq;
          v[i * n + q] = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x * n + x] < a[y * n + y]; });

  DenseEigen out;
  out.values.resize(n);
  out.vectors.assign(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a[order[j] * n + order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors[i * n + j] = v[i * n + order[j]];
  }
  return out;
}

}  // namespace dgc::linalg
