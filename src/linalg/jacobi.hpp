// Cyclic Jacobi eigensolver for small dense symmetric matrices.
// Used as the ground-truth oracle in tests (vs Lanczos) and for the
// k x k Gram matrices inside Lemma 4.2's orthonormalisation diagnostics.
#pragma once

#include <cstddef>
#include <vector>

namespace dgc::linalg {

struct DenseEigen {
  /// Eigenvalues ascending.
  std::vector<double> values;
  /// Row-major n x n; column j is the eigenvector of values[j].
  std::vector<double> vectors;
};

/// Diagonalises the row-major symmetric matrix `a` (n x n).  O(n^3) per
/// sweep; fine for n up to a few hundred.
[[nodiscard]] DenseEigen jacobi_eigen(std::vector<double> a, std::size_t n,
                                      double tolerance = 1e-12,
                                      std::size_t max_sweeps = 64);

}  // namespace dgc::linalg
