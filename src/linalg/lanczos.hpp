// Lanczos iteration with full reorthogonalisation for the extreme
// eigenpairs of a symmetric matrix-free operator.
//
// The library needs the top k+1 eigenpairs of the random walk matrix P
// for three purposes: estimating the round count T = Θ(log n/(1−λ_{k+1})),
// computing the structure quantities of Lemma 4.2 (χ̂_i, ϒ, α_v), and the
// spectral-clustering baseline.  Clustered graphs have a large gap after
// λ_k, which is exactly the regime where Lanczos converges in O(k + log n)
// iterations.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace dgc::linalg {

/// out = M * in for a symmetric M.
using SymmetricOperator =
    std::function<void(std::span<const double> in, std::span<double> out)>;

struct LanczosOptions {
  std::size_t num_eigenpairs = 1;   ///< how many top (largest) pairs to return
  std::size_t max_iterations = 0;   ///< 0 = auto (3*k + 40, capped at n)
  double tolerance = 1e-10;         ///< residual tolerance for convergence
  std::uint64_t seed = 7;           ///< start-vector seed
};

struct EigenPairs {
  /// Eigenvalues in descending order (largest first).
  std::vector<double> values;
  /// vectors[j] is the unit eigenvector of values[j].
  std::vector<std::vector<double>> vectors;
};

/// Computes the `num_eigenpairs` algebraically largest eigenpairs of the
/// n-dimensional symmetric operator.  Throws contract_error if the Krylov
/// space cannot be expanded (n smaller than requested pairs).
[[nodiscard]] EigenPairs lanczos_top_eigenpairs(std::size_t n, const SymmetricOperator& op,
                                                const LanczosOptions& options);

}  // namespace dgc::linalg
