#include "linalg/walk_matrix.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dgc::linalg {

WalkOperator::WalkOperator(const graph::Graph& g) : graph_(&g) {
  DGC_REQUIRE(g.num_nodes() > 0, "empty graph");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
  inv_sqrt_degree_.resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    inv_sqrt_degree_[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));
  }
}

void WalkOperator::apply_walk(std::span<const double> in, std::span<double> out) const {
  DGC_REQUIRE(graph_->is_regular(), "apply_walk requires a regular graph");
  DGC_REQUIRE(in.size() == dimension() && out.size() == dimension(), "size mismatch");
  const double inv_d = 1.0 / static_cast<double>(graph_->max_degree());
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    double acc = 0.0;
    for (const graph::NodeId u : graph_->neighbors(v)) acc += in[u];
    out[v] = acc * inv_d;
  }
}

void WalkOperator::apply_normalized(std::span<const double> in,
                                    std::span<double> out) const {
  DGC_REQUIRE(in.size() == dimension() && out.size() == dimension(), "size mismatch");
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    double acc = 0.0;
    for (const graph::NodeId u : graph_->neighbors(v)) acc += in[u] * inv_sqrt_degree_[u];
    out[v] = acc * inv_sqrt_degree_[v];
  }
}

void WalkOperator::apply_row_stochastic(std::span<const double> in,
                                        std::span<double> out) const {
  DGC_REQUIRE(in.size() == dimension() && out.size() == dimension(), "size mismatch");
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    double acc = 0.0;
    for (const graph::NodeId u : graph_->neighbors(v)) acc += in[u];
    out[v] = acc / static_cast<double>(graph_->degree(v));
  }
}

void WalkOperator::apply_lazy_walk(std::span<const double> in, std::span<double> out,
                                   double gamma) const {
  DGC_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "gamma out of range");
  apply_walk(in, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = (1.0 - gamma) * in[i] + gamma * out[i];
  }
}

double WalkOperator::d_bar() const {
  DGC_REQUIRE(graph_->is_regular(), "d_bar defined for regular graphs");
  const double d = static_cast<double>(graph_->max_degree());
  return std::pow(1.0 - 1.0 / (2.0 * d), d - 1.0);
}

std::vector<double> dense_walk_matrix(const graph::Graph& g) {
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
  const std::size_t n = g.num_nodes();
  std::vector<double> p(n * n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double inv_d = 1.0 / static_cast<double>(g.degree(v));
    for (const graph::NodeId u : g.neighbors(v)) p[v * n + u] = inv_d;
  }
  return p;
}

}  // namespace dgc::linalg
