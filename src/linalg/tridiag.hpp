// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts —
// the classic EISPACK tql2 routine).  Used by the Lanczos driver to
// diagonalise the projected tridiagonal matrix.
#pragma once

#include <vector>

namespace dgc::linalg {

struct TridiagEigen {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Row-major n x n; column j (entries vectors[i*n+j]) is the
  /// eigenvector of values[j].
  std::vector<double> vectors;
};

/// Diagonalises the symmetric tridiagonal matrix with diagonal `diag`
/// (size n) and sub/super-diagonal `offdiag` (size n-1; offdiag[i]
/// couples i and i+1).  Throws if the QL iteration fails to converge.
[[nodiscard]] TridiagEigen tridiagonal_eigen(std::vector<double> diag,
                                             std::vector<double> offdiag);

}  // namespace dgc::linalg
