#include "linalg/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace dgc::linalg {

namespace {

double sq_dist(std::span<const double> points, std::size_t p, std::span<const double> c,
               std::size_t cid, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const double d = points[p * dim + j] - c[cid * dim + j];
    acc += d * d;
  }
  return acc;
}

KMeansResult run_once(std::span<const double> points, std::size_t num_points,
                      std::size_t dim, std::uint32_t k, std::size_t max_iterations,
                      util::Rng& rng) {
  // k-means++ seeding.
  std::vector<double> centroids(static_cast<std::size_t>(k) * dim, 0.0);
  std::vector<double> min_dist(num_points, std::numeric_limits<double>::max());
  {
    const std::size_t first = rng.next_below(num_points);
    std::copy_n(points.begin() + static_cast<std::ptrdiff_t>(first * dim), dim,
                centroids.begin());
  }
  for (std::uint32_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t p = 0; p < num_points; ++p) {
      min_dist[p] = std::min(min_dist[p], sq_dist(points, p, centroids, c - 1, dim));
      total += min_dist[p];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (std::size_t p = 0; p < num_points; ++p) {
        target -= min_dist[p];
        if (target <= 0.0) {
          chosen = p;
          break;
        }
      }
    } else {
      chosen = rng.next_below(num_points);
    }
    std::copy_n(points.begin() + static_cast<std::ptrdiff_t>(chosen * dim), dim,
                centroids.begin() + static_cast<std::ptrdiff_t>(c) * static_cast<std::ptrdiff_t>(dim));
  }

  KMeansResult result;
  result.assignment.assign(num_points, 0);
  std::vector<std::size_t> counts(k, 0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t p = 0; p < num_points; ++p) {
      double best = std::numeric_limits<double>::max();
      std::uint32_t best_c = 0;
      for (std::uint32_t c = 0; c < k; ++c) {
        const double d = sq_dist(points, p, centroids, c, dim);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignment[p] != best_c) {
        result.assignment[p] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    std::fill(centroids.begin(), centroids.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t p = 0; p < num_points; ++p) {
      const std::uint32_t c = result.assignment[p];
      ++counts[c];
      for (std::size_t j = 0; j < dim; ++j) centroids[c * dim + j] += points[p * dim + j];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed at the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t p = 0; p < num_points; ++p) {
          const double d = sq_dist(points, p, centroids, result.assignment[p], dim);
          if (d > far_d) {
            far_d = d;
            far = p;
          }
        }
        std::copy_n(points.begin() + static_cast<std::ptrdiff_t>(far * dim), dim,
                    centroids.begin() + static_cast<std::ptrdiff_t>(c) * static_cast<std::ptrdiff_t>(dim));
      } else {
        for (std::size_t j = 0; j < dim; ++j) {
          centroids[c * dim + j] /= static_cast<double>(counts[c]);
        }
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t p = 0; p < num_points; ++p) {
    result.inertia += sq_dist(points, p, centroids, result.assignment[p], dim);
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace

KMeansResult kmeans(std::span<const double> points, std::size_t num_points,
                    std::size_t dim, const KMeansOptions& options) {
  DGC_REQUIRE(options.clusters >= 1, "need at least one cluster");
  DGC_REQUIRE(num_points >= options.clusters, "fewer points than clusters");
  DGC_REQUIRE(points.size() == num_points * dim, "points size mismatch");
  DGC_REQUIRE(options.restarts >= 1, "need at least one restart");

  util::Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult candidate = run_once(points, num_points, dim, options.clusters,
                                      options.max_iterations, rng);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

}  // namespace dgc::linalg
