#include "linalg/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace dgc::linalg {

TridiagEigen tridiagonal_eigen(std::vector<double> diag, std::vector<double> offdiag) {
  const std::size_t n = diag.size();
  DGC_REQUIRE(n > 0, "empty matrix");
  DGC_REQUIRE(offdiag.size() + 1 == n, "offdiag must have size n-1");

  // Implicit QL with Wilkinson shifts (tqli).  Convention: e[i] couples
  // rows i and i+1; e[n-1] is scratch.
  std::vector<double> d = std::move(diag);
  std::vector<double> e(n, 0.0);
  std::copy(offdiag.begin(), offdiag.end(), e.begin());

  std::vector<double> z(n * n, 0.0);  // accumulated rotations, row-major
  for (std::size_t i = 0; i < n; ++i) z[i * n + i] = 1.0;

  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iter = 0;
    for (;;) {
      std::size_t m = l;
      while (m + 1 < n) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
        ++m;
      }
      if (m == l) break;
      DGC_REQUIRE(++iter <= 64, "tqli failed to converge");

      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool underflow = false;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        for (std::size_t row = 0; row < n; ++row) {
          f = z[row * n + i + 1];
          z[row * n + i + 1] = s * z[row * n + i] + c * f;
          z[row * n + i] = c * z[row * n + i] - s * f;
        }
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }

  // Sort ascending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  TridiagEigen out;
  out.values.resize(n);
  out.vectors.assign(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors[i * n + j] = z[i * n + order[j]];
  }
  return out;
}

}  // namespace dgc::linalg
