// Exact minimum-cost assignment (Hungarian algorithm, O(n^2 m) potentials
// formulation).  The metrics layer uses it on the k x k confusion matrix
// to find the label permutation sigma of Theorem 1.1 that minimises the
// number of misclassified nodes.
#pragma once

#include <cstddef>
#include <vector>

namespace dgc::linalg {

struct AssignmentResult {
  /// row_to_col[r] = assigned column of row r.
  std::vector<std::size_t> row_to_col;
  double total_cost = 0.0;
};

/// Solves min-cost perfect assignment of `rows` rows to `cols` columns
/// (rows <= cols) over the row-major cost matrix.
[[nodiscard]] AssignmentResult hungarian_min_cost(const std::vector<double>& cost,
                                                  std::size_t rows, std::size_t cols);

}  // namespace dgc::linalg
