// Lloyd's k-means with k-means++ seeding, on row-major point sets.
// Consumed by the spectral-clustering baseline (points = rows of the
// n x k eigenvector embedding).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace dgc::linalg {

struct KMeansOptions {
  std::uint32_t clusters = 2;
  std::size_t max_iterations = 100;
  std::size_t restarts = 3;      ///< independent k-means++ restarts; best kept
  std::uint64_t seed = 11;
};

struct KMeansResult {
  std::vector<std::uint32_t> assignment;  ///< size = #points, labels in [0,k)
  std::vector<double> centroids;          ///< row-major k x dim
  double inertia = 0.0;                   ///< sum of squared distances
  std::size_t iterations = 0;             ///< of the best restart
};

/// Clusters `num_points` points of dimension `dim` stored row-major in
/// `points`.  Deterministic given options.seed.
[[nodiscard]] KMeansResult kmeans(std::span<const double> points, std::size_t num_points,
                                  std::size_t dim, const KMeansOptions& options);

}  // namespace dgc::linalg
