#include "matching/discrete.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dgc::matching {

DiscreteLoadState::DiscreteLoadState(std::size_t num_nodes, std::uint64_t seed)
    : tokens_(num_nodes, 0), rng_(seed) {
  DGC_REQUIRE(num_nodes > 0, "need at least one node");
}

void DiscreteLoadState::set(graph::NodeId v, std::int64_t tokens) {
  DGC_REQUIRE(v < tokens_.size(), "node out of range");
  tokens_[v] = tokens;
}

std::int64_t DiscreteLoadState::at(graph::NodeId v) const {
  DGC_REQUIRE(v < tokens_.size(), "node out of range");
  return tokens_[v];
}

void DiscreteLoadState::apply(const Matching& m) {
  DGC_REQUIRE(m.partner.size() == tokens_.size(), "matching size mismatch");
  for (const auto& [u, v] : m.edges) {
    const std::int64_t sum = tokens_[u] + tokens_[v];
    const std::int64_t low = sum >= 0 ? sum / 2 : (sum - 1) / 2;  // floor
    const std::int64_t high = sum - low;
    if (low == high) {
      tokens_[u] = low;
      tokens_[v] = low;
    } else if (rng_.next_bit()) {
      tokens_[u] = high;
      tokens_[v] = low;
    } else {
      tokens_[u] = low;
      tokens_[v] = high;
    }
  }
}

std::int64_t DiscreteLoadState::total() const {
  std::int64_t acc = 0;
  for (const auto t : tokens_) acc += t;
  return acc;
}

std::int64_t DiscreteLoadState::discrepancy() const {
  const auto [lo, hi] = std::minmax_element(tokens_.begin(), tokens_.end());
  return *hi - *lo;
}

}  // namespace dgc::matching
