// The random matching model (Boyd et al. [5], §2.2 of the paper).
//
// One round of the protocol, run by every node with private coins:
//   (1) every node is active with probability 1/2 (independently);
//   (2) every active node chooses one of its neighbours uniformly at
//       random and probes it;
//   (3) every NON-active node probed by exactly one neighbour is matched
//       to that neighbour.
// Active nodes never accept probes, and a probe from an active node to
// another active node (or to a node probed more than once) fails, so the
// result is always a valid matching with at most ⌊n/2⌋ edges.
//
// Lemma 2.1 follows from this exact procedure:
//   E[M(t)] = (1 − d̄/4) I + (d̄/4) P with d̄ = (1 − 1/(2d))^{d−1}.
//
// Almost-regular graphs (§4.5): the protocol conceptually runs on the
// D-regular padded graph G* obtained by adding D − deg(v) self-loops at
// every node.  We never materialise the loops — an active node picks one
// of D slots, and a self-loop slot is simply a failed probe (matching a
// node to itself averages nothing, exactly as G*'s self-loop matchings
// would).  Activation can optionally be biased to 1/2 + (D−deg(v))/(2D),
// the literal modification stated in §4.5; bench E9 compares the two.
//
// Hot path: every node owns an independent RNG stream, so coin flipping
// is embarrassingly parallel, and resolution is block-parallel too (see
// resolve below).  The in-place flip_round_coins/resolve/next overloads
// reuse caller- and generator-owned buffers so steady-state rounds
// allocate nothing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "matching/simd_kernels.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dgc::matching {

/// One sampled matching.
struct Matching {
  /// partner[v] = matched neighbour of v, or graph::kInvalidNode.
  std::vector<graph::NodeId> partner;
  /// Matched edges with first < second, listed in increasing order of the
  /// accepting (non-active) endpoint.  That order is a pure function of
  /// the coins — parallel resolution concatenates contiguous acceptor
  /// blocks in block order — so it is identical for every thread count.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;

  [[nodiscard]] bool is_matched(graph::NodeId v) const {
    return partner[v] != graph::kInvalidNode;
  }
  /// Validates the matching invariants (symmetry, edge existence).
  [[nodiscard]] bool valid(const graph::Graph& g) const;
};

struct ProtocolOptions {
  /// Virtual degree D of the padded graph G*.  0 means "use each node's
  /// own degree" (the plain protocol; correct for regular graphs).
  /// Otherwise must be >= the maximum degree.
  std::size_t virtual_degree = 0;
  /// §4.5 literal variant: node v is active with probability
  /// 1/2 + (D − deg(v))/(2D) instead of 1/2.
  bool degree_biased_activation = false;
};

/// Stateful per-round matching sampler.  Every node owns an independent
/// RNG stream forked from `seed`, so the sequence of matchings is a pure
/// function of (graph, seed, options) — this is what lets the in-memory
/// and message-passing engines replay identical randomness, and what
/// makes block-parallel flipping exact: workers only ever advance the
/// streams of the nodes in their own block.
class MatchingGenerator {
 public:
  /// Nodes per parallel block: below 2 blocks' worth a pool can never
  /// split the work, so callers should not bother attaching one.
  static constexpr std::size_t kParallelGrain = 256;

  MatchingGenerator(const graph::Graph& g, std::uint64_t seed,
                    ProtocolOptions options = {});

  /// Samples the matching of the next round.
  [[nodiscard]] Matching next();

  /// In-place variant for hot loops: refills `out`, reusing its capacity
  /// (and the generator's scratch buffers) so steady-state rounds
  /// allocate nothing.
  void next(Matching& out);

  /// Per-node view of one round's coin flips — used by the distributed
  /// engine so its nodes flip the *same* coins through messages.
  struct Coins {
    std::vector<char> active;            ///< active[v]
    std::vector<graph::NodeId> probe;    ///< probed neighbour or kInvalidNode
  };
  [[nodiscard]] Coins flip_round_coins();

  /// In-place variant; runs on the attached thread pool (if any) in
  /// contiguous node blocks.  Exact for any worker count: each node's
  /// coins come solely from its own stream.
  void flip_round_coins(Coins& out);

  /// Fast-forwards the generator past `rounds` rounds by flipping (and
  /// discarding) their coins.  Exact: flip_node consumes the same two
  /// draws per node whatever the outcome and resolution consumes none,
  /// so after skip_rounds(r) the generator is in precisely the state a
  /// live run reaches after r next() calls — the basis of checkpoint
  /// resume (core/checkpoint.hpp), which stores no RNG state.
  void skip_rounds(std::size_t rounds);

  /// Deterministically resolves a matching from a set of coins (static:
  /// pure function; the distributed engine resolves via messages and must
  /// agree with this).
  [[nodiscard]] static Matching resolve(const graph::Graph& g, const Coins& coins);

  /// In-place resolution using the generator's reusable scratch.  With a
  /// thread pool attached, the probe-counting + accept pass runs over
  /// contiguous acceptor blocks (each block scans its nodes' adjacency
  /// lists; the graph is simple, so counting probing neighbours equals
  /// counting probes) and per-block edge lists are concatenated in block
  /// order — the same matching as the static resolve, with no per-round
  /// sort and no allocation in the steady state.
  void resolve(const Coins& coins, Matching& out);

  /// Attaches (or detaches, with nullptr) a thread pool used by the
  /// in-place flip/resolve paths.  The pool must outlive its use here;
  /// results are bit-identical with and without a pool.
  void use_thread_pool(util::ThreadPool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] util::ThreadPool* thread_pool() const noexcept { return pool_; }

  /// Toggles the SIMD batched coin advance (default on).  Coin flipping
  /// always runs in blocks of four streams; this only selects whether
  /// the four xoshiro states step in AVX2 lanes or one by one — the
  /// draws are bit-identical either way (simd_kernels.hpp), so this is
  /// pure scheduling like use_thread_pool.
  void use_simd(bool enabled) noexcept {
    simd_ = enabled;
    flip_draws4_ = simd::flip_draws4_kernel(enabled);
    accept_mask64_ = simd::accept_mask64_kernel(enabled);
  }
  [[nodiscard]] bool simd() const noexcept { return simd_; }

  /// Edges-only rounds: when set, next()/resolve() fill Matching::edges
  /// (and the draws advance identically) but may leave Matching::partner
  /// stale — skipping the O(n) partner fill and two scattered stores per
  /// accepted pair.  The schedule builder turns this on while
  /// materialising a window: its consumers read edges only.  Off by
  /// default; paths that hand matchings to apply()/split_by_shard need
  /// partner intact.
  void set_edges_only(bool enabled) noexcept { edges_only_ = enabled; }
  [[nodiscard]] bool edges_only() const noexcept { return edges_only_; }

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

 private:
  /// One node's two coin draws.  `target` is the probed neighbour or
  /// kInvalidNode (inactive node, or a virtual self-loop slot).
  struct NodeCoin {
    bool active;
    graph::NodeId target;
  };
  NodeCoin flip_node(graph::NodeId v);

  /// Turns node v's two raw draws into its coin: the activation compare
  /// and the Lemire slot reduction of Rng::next_bool*/next_below applied
  /// to pre-drawn words.  The (rare) Lemire rejection resumes drawing
  /// from v's own stream, exactly as the unbatched helpers would.
  NodeCoin coin_from_draws(graph::NodeId v, std::uint64_t draw1, std::uint64_t draw2);

  void flip_block(Coins& out, graph::NodeId begin, graph::NodeId end);

  /// Fused serial round specialised for the default protocol
  /// (virtual_degree == 0, unbiased activation).  Same draws, same
  /// scatter values, same acceptor order as the generic fused path —
  /// just scheduled harder: block-pipelined neighbour prefetch, a
  /// branchless scatter through a sink entry, and a 64-node SIMD
  /// acceptance mask (simd_kernels.hpp) in the accept sweep.
  void next_fused_fast(Matching& out);

  const graph::Graph* graph_;
  ProtocolOptions options_;
  std::vector<util::Rng> node_rng_;
  util::ThreadPool* pool_ = nullptr;
  bool simd_ = true;
  bool edges_only_ = false;
  simd::FlipDraws4Fn flip_draws4_ = simd::flip_draws4_kernel(true);
  simd::AcceptMask64Fn accept_mask64_ = simd::accept_mask64_kernel(true);

  // Reusable per-round scratch (zero-allocation steady state).
  Coins round_coins_;
  /// Serial resolve scratch: probe count (high 32 bits) | last prober
  /// (low 32 bits) per node; all-zero between rounds.  The fast fused
  /// path sizes it n + 1 and routes inactive nodes' non-probes to the
  /// extra sink entry so its scatter never branches.
  std::vector<std::uint64_t> probes_scratch_;
  std::vector<std::vector<std::pair<graph::NodeId, graph::NodeId>>> block_edges_;
};

}  // namespace dgc::matching
