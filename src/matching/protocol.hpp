// The random matching model (Boyd et al. [5], §2.2 of the paper).
//
// One round of the protocol, run by every node with private coins:
//   (1) every node is active with probability 1/2 (independently);
//   (2) every active node chooses one of its neighbours uniformly at
//       random and probes it;
//   (3) every NON-active node probed by exactly one neighbour is matched
//       to that neighbour.
// Active nodes never accept probes, and a probe from an active node to
// another active node (or to a node probed more than once) fails, so the
// result is always a valid matching with at most ⌊n/2⌋ edges.
//
// Lemma 2.1 follows from this exact procedure:
//   E[M(t)] = (1 − d̄/4) I + (d̄/4) P with d̄ = (1 − 1/(2d))^{d−1}.
//
// Almost-regular graphs (§4.5): the protocol conceptually runs on the
// D-regular padded graph G* obtained by adding D − deg(v) self-loops at
// every node.  We never materialise the loops — an active node picks one
// of D slots, and a self-loop slot is simply a failed probe (matching a
// node to itself averages nothing, exactly as G*'s self-loop matchings
// would).  Activation can optionally be biased to 1/2 + (D−deg(v))/(2D),
// the literal modification stated in §4.5; bench E9 compares the two.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dgc::matching {

/// One sampled matching.
struct Matching {
  /// partner[v] = matched neighbour of v, or graph::kInvalidNode.
  std::vector<graph::NodeId> partner;
  /// Matched edges with first < second.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;

  [[nodiscard]] bool is_matched(graph::NodeId v) const {
    return partner[v] != graph::kInvalidNode;
  }
  /// Validates the matching invariants (symmetry, edge existence).
  [[nodiscard]] bool valid(const graph::Graph& g) const;
};

struct ProtocolOptions {
  /// Virtual degree D of the padded graph G*.  0 means "use each node's
  /// own degree" (the plain protocol; correct for regular graphs).
  /// Otherwise must be >= the maximum degree.
  std::size_t virtual_degree = 0;
  /// §4.5 literal variant: node v is active with probability
  /// 1/2 + (D − deg(v))/(2D) instead of 1/2.
  bool degree_biased_activation = false;
};

/// Stateful per-round matching sampler.  Every node owns an independent
/// RNG stream forked from `seed`, so the sequence of matchings is a pure
/// function of (graph, seed, options) — this is what lets the in-memory
/// and message-passing engines replay identical randomness.
class MatchingGenerator {
 public:
  MatchingGenerator(const graph::Graph& g, std::uint64_t seed,
                    ProtocolOptions options = {});

  /// Samples the matching of the next round.
  [[nodiscard]] Matching next();

  /// Per-node view of one round's coin flips — used by the distributed
  /// engine so its nodes flip the *same* coins through messages.
  struct Coins {
    std::vector<char> active;            ///< active[v]
    std::vector<graph::NodeId> probe;    ///< probed neighbour or kInvalidNode
  };
  [[nodiscard]] Coins flip_round_coins();

  /// Deterministically resolves a matching from a set of coins (static:
  /// pure function; the distributed engine resolves via messages and must
  /// agree with this).
  [[nodiscard]] static Matching resolve(const graph::Graph& g, const Coins& coins);

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

 private:
  const graph::Graph* graph_;
  ProtocolOptions options_;
  std::vector<util::Rng> node_rng_;
};

}  // namespace dgc::matching
