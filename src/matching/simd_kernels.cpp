#include "matching/simd_kernels.hpp"

#include "util/rng.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__) && \
    !defined(DGC_NO_AVX2)
#define DGC_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define DGC_AVX2_KERNELS 0
#endif

namespace dgc::matching::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar fallbacks.  These are the reference semantics: the AVX2 kernels
// below must match them bit for bit (see the header's contract).
// ---------------------------------------------------------------------

void avg_half_scalar(double* __restrict ru, double* __restrict rv,
                     std::size_t dims) {
  for (std::size_t i = 0; i < dims; ++i) {
    const double avg = 0.5 * (ru[i] + rv[i]);
    ru[i] = avg;
    rv[i] = avg;
  }
}

void avg_lambda_scalar(double* __restrict ru, double* __restrict rv,
                       std::size_t dims, double lambda) {
  const double keep = 1.0 - lambda;
  for (std::size_t i = 0; i < dims; ++i) {
    const double xu = ru[i];
    const double xv = rv[i];
    ru[i] = keep * xu + lambda * xv;
    rv[i] = keep * xv + lambda * xu;
  }
}

void flip_draws4_scalar(util::Rng* rngs, std::uint64_t* draw1, std::uint64_t* draw2) {
  for (int lane = 0; lane < 4; ++lane) {
    draw1[lane] = rngs[lane].next();
    draw2[lane] = rngs[lane].next();
  }
}

std::uint64_t accept_mask64_scalar(const std::uint64_t* probes, const char* active) {
  std::uint64_t mask = 0;
  for (int i = 0; i < 64; ++i) {
    const bool candidate = (probes[i] >> 32) == 1 && active[i] == 0;
    mask |= static_cast<std::uint64_t>(candidate) << i;
  }
  return mask;
}

#if DGC_AVX2_KERNELS

// ---------------------------------------------------------------------
// AVX2 λ-averaging.  Plain vector mul/add intrinsics — target("avx2")
// does not enable FMA, so neither the vector body nor the scalar tail
// can contract keep·x + λ·y, keeping both bit-identical to the scalar
// reference above.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) void avg_half_avx2(double* __restrict ru,
                                                   double* __restrict rv,
                                                   std::size_t dims) {
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    const __m256d a = _mm256_loadu_pd(ru + i);
    const __m256d b = _mm256_loadu_pd(rv + i);
    const __m256d avg = _mm256_mul_pd(half, _mm256_add_pd(a, b));
    _mm256_storeu_pd(ru + i, avg);
    _mm256_storeu_pd(rv + i, avg);
  }
  for (; i < dims; ++i) {
    const double avg = 0.5 * (ru[i] + rv[i]);
    ru[i] = avg;
    rv[i] = avg;
  }
}

__attribute__((target("avx2"))) void avg_lambda_avx2(double* __restrict ru,
                                                     double* __restrict rv,
                                                     std::size_t dims, double lambda) {
  const double keep_s = 1.0 - lambda;
  const __m256d keep = _mm256_set1_pd(keep_s);
  const __m256d lam = _mm256_set1_pd(lambda);
  std::size_t i = 0;
  for (; i + 4 <= dims; i += 4) {
    const __m256d xu = _mm256_loadu_pd(ru + i);
    const __m256d xv = _mm256_loadu_pd(rv + i);
    const __m256d nu = _mm256_add_pd(_mm256_mul_pd(keep, xu), _mm256_mul_pd(lam, xv));
    const __m256d nv = _mm256_add_pd(_mm256_mul_pd(keep, xv), _mm256_mul_pd(lam, xu));
    _mm256_storeu_pd(ru + i, nu);
    _mm256_storeu_pd(rv + i, nv);
  }
  for (; i < dims; ++i) {
    const double xu = ru[i];
    const double xv = rv[i];
    ru[i] = keep_s * xu + lambda * xv;
    rv[i] = keep_s * xv + lambda * xu;
  }
}

// ---------------------------------------------------------------------
// AVX2 4-lane xoshiro256++ advance.  State words are transposed so that
// lane l of vector s_w holds stream l's word w; the step sequence is the
// exact integer recurrence of util::Rng::next() applied per lane.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i rotl64x4(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

__attribute__((target("avx2"))) void flip_draws4_avx2(util::Rng* rngs,
                                                      std::uint64_t* draw1,
                                                      std::uint64_t* draw2) {
  static_assert(sizeof(util::Rng) == 4 * sizeof(std::uint64_t),
                "Rng must be exactly its four state words");
  const __m256i r0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rngs[0].raw_state()));
  const __m256i r1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rngs[1].raw_state()));
  const __m256i r2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rngs[2].raw_state()));
  const __m256i r3 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rngs[3].raw_state()));

  // 4×4 uint64 transpose: s_w[lane] = state word w of stream `lane`.
  const __m256i lo01 = _mm256_unpacklo_epi64(r0, r1);  // r0[0] r1[0] r0[2] r1[2]
  const __m256i hi01 = _mm256_unpackhi_epi64(r0, r1);  // r0[1] r1[1] r0[3] r1[3]
  const __m256i lo23 = _mm256_unpacklo_epi64(r2, r3);
  const __m256i hi23 = _mm256_unpackhi_epi64(r2, r3);
  __m256i s0 = _mm256_permute2x128_si256(lo01, lo23, 0x20);
  __m256i s1 = _mm256_permute2x128_si256(hi01, hi23, 0x20);
  __m256i s2 = _mm256_permute2x128_si256(lo01, lo23, 0x31);
  __m256i s3 = _mm256_permute2x128_si256(hi01, hi23, 0x31);

  for (int draw = 0; draw < 2; ++draw) {
    // result = rotl(s0 + s3, 23) + s0
    const __m256i result =
        _mm256_add_epi64(rotl64x4(_mm256_add_epi64(s0, s3), 23), s0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(draw == 0 ? draw1 : draw2), result);
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = rotl64x4(s3, 45);
  }

  // Transpose back and store the advanced states.
  const __m256i a01 = _mm256_unpacklo_epi64(s0, s1);  // s0[0] s1[0] s0[2] s1[2]
  const __m256i b01 = _mm256_unpackhi_epi64(s0, s1);
  const __m256i a23 = _mm256_unpacklo_epi64(s2, s3);
  const __m256i b23 = _mm256_unpackhi_epi64(s2, s3);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[0].raw_state()),
                      _mm256_permute2x128_si256(a01, a23, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[1].raw_state()),
                      _mm256_permute2x128_si256(b01, b23, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[2].raw_state()),
                      _mm256_permute2x128_si256(a01, a23, 0x31));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[3].raw_state()),
                      _mm256_permute2x128_si256(b01, b23, 0x31));
}

// ---------------------------------------------------------------------
// AVX2 acceptance mask.  Four probe entries per vector: count == 1 is
// (entry >> 32) == 1, the four active bytes widen to 64-bit lanes and
// compare against zero, and movemask collects four candidate bits per
// iteration.  All integer compares — identical to the scalar loop.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) std::uint64_t accept_mask64_avx2(
    const std::uint64_t* probes, const char* active) {
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t mask = 0;
  for (int i = 0; i < 64; i += 4) {
    const __m256i entry =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(probes + i));
    const __m256i count_ok = _mm256_cmpeq_epi64(_mm256_srli_epi64(entry, 32), one);
    std::int32_t act4;
    __builtin_memcpy(&act4, active + i, 4);
    const __m256i act = _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(act4));
    const __m256i inactive = _mm256_cmpeq_epi64(act, zero);
    const __m256i candidate = _mm256_and_si256(count_ok, inactive);
    const auto bits = static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(candidate)));
    mask |= static_cast<std::uint64_t>(bits) << i;
  }
  return mask;
}

#endif  // DGC_AVX2_KERNELS

}  // namespace

bool avx2_available() noexcept {
#if DGC_AVX2_KERNELS
  static const bool available = __builtin_cpu_supports("avx2") != 0;
  return available;
#else
  return false;
#endif
}

const char* kernel_name(bool use_simd) noexcept {
  return use_simd && avx2_available() ? "avx2" : "scalar";
}

AvgHalfFn avg_half_kernel(bool use_simd) noexcept {
#if DGC_AVX2_KERNELS
  if (use_simd && avx2_available()) return &avg_half_avx2;
#else
  (void)use_simd;
#endif
  return &avg_half_scalar;
}

AvgLambdaFn avg_lambda_kernel(bool use_simd) noexcept {
#if DGC_AVX2_KERNELS
  if (use_simd && avx2_available()) return &avg_lambda_avx2;
#else
  (void)use_simd;
#endif
  return &avg_lambda_scalar;
}

FlipDraws4Fn flip_draws4_kernel(bool use_simd) noexcept {
#if DGC_AVX2_KERNELS
  if (use_simd && avx2_available()) return &flip_draws4_avx2;
#else
  (void)use_simd;
#endif
  return &flip_draws4_scalar;
}

AcceptMask64Fn accept_mask64_kernel(bool use_simd) noexcept {
#if DGC_AVX2_KERNELS
  if (use_simd && avx2_available()) return &accept_mask64_avx2;
#else
  (void)use_simd;
#endif
  return &accept_mask64_scalar;
}

}  // namespace dgc::matching::simd
