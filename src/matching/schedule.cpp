#include "matching/schedule.hpp"

#include "util/require.hpp"

namespace dgc::matching {

void ScheduleBuilder::build(MatchingGenerator& generator, std::size_t first_round,
                            std::size_t window, const graph::Graph* weighted_graph,
                            RoundSchedule& out,
                            const std::function<void(std::size_t, const Matching&)>& on_round) {
  DGC_REQUIRE(window > 0, "schedule window must cover at least one round");
  out.first_round = first_round;
  out.offsets.clear();
  out.pairs.clear();
  out.lambda.clear();
  out.matched.clear();
  out.offsets.reserve(window + 1);
  out.matched.reserve(window);
  out.offsets.push_back(0);

  const bool weighted =
      weighted_graph != nullptr && weighted_graph->is_weighted() &&
      weighted_graph->max_weight() > 0.0;
  // The same divisor average_pair caches (two_max_weight_), so the
  // packed quotients match its λ bit for bit.
  const double two_max_weight = weighted ? 2.0 * weighted_graph->max_weight() : 0.0;

  // Only the edge lists feed the schedule (and on_round consumers read
  // edges too), so the generator may skip its per-round partner-array
  // maintenance — an O(n) fill plus two scattered stores per pair.
  const bool had_partners = !generator.edges_only();
  generator.set_edges_only(true);
  for (std::size_t w = 0; w < window; ++w) {
    generator.next(scratch_);
    if (on_round) on_round(first_round + w + 1, scratch_);
    for (const auto& [u, v] : scratch_.edges) {
      out.pairs.push_back(u);
      out.pairs.push_back(v);
      if (weighted) {
        out.lambda.push_back(weighted_graph->edge_weight(u, v) / two_max_weight);
      }
    }
    out.matched.push_back(static_cast<std::uint32_t>(scratch_.edges.size()));
    out.offsets.push_back(out.pairs.size() / 2);
  }
  generator.set_edges_only(!had_partners);
}

}  // namespace dgc::matching
