// Multi-dimensional load state: the s load vectors x^(t,1) … x^(t,s) of
// §3.2, stored row-major (node-major) so that averaging a matched pair
// touches two contiguous rows — one cache line per few dimensions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "matching/protocol.hpp"

namespace dgc::matching {

class MultiLoadState {
 public:
  /// n nodes, s dimensions, all loads zero.
  MultiLoadState(std::size_t num_nodes, std::size_t dimensions);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dimensions_; }

  /// Mutable view of node v's s values.
  [[nodiscard]] std::span<double> row(graph::NodeId v);
  [[nodiscard]] std::span<const double> row(graph::NodeId v) const;

  [[nodiscard]] double at(graph::NodeId v, std::size_t dim) const;
  void set(graph::NodeId v, std::size_t dim, double value);

  /// Averages rows u and v in every dimension (one matched pair).
  void average_pair(graph::NodeId u, graph::NodeId v);

  /// Applies a whole matching.
  void apply(const Matching& m);

  /// Copy of dimension `dim` as an n-vector (for analysis).
  [[nodiscard]] std::vector<double> column(std::size_t dim) const;

  /// Sum over nodes of dimension `dim` — invariant under apply().
  [[nodiscard]] double total(std::size_t dim) const;

 private:
  std::size_t num_nodes_;
  std::size_t dimensions_;
  std::vector<double> data_;
};

}  // namespace dgc::matching
