// Multi-dimensional load state: the s load vectors x^(t,1) … x^(t,s) of
// §3.2, with an adaptive two-mode representation.
//
// Dense mode stores the full n×s matrix row-major (node-major) so that
// averaging a matched pair touches two contiguous rows.  Sparse mode
// stores only the *active* rows, packed contiguously in allocation
// order, with a per-node slot index: the load vectors start with support
// s ≪ n (only seed rows are nonzero) and a round can at most double the
// support — a zero row only becomes nonzero by averaging with a nonzero
// one — so early rounds touch O(s·2^t) rows, and packing them keeps the
// whole working set inside cache while the dense matrix would stride
// through n·s doubles.
//
// Mode switching (SparseMode::kAuto) is a pure function of the active-
// row count, evaluated only at round boundaries (update_mode, called by
// apply() and by the engines before their parallel round phases): once
// active_rows·2 > n the state densifies, one way, copying every packed
// row into its dense position.  Because the activity flags are a pure
// function of the value history — identical across engines, thread
// counts, and storage modes — every run takes the switch on the same
// round, and the values themselves are bit-identical in either mode:
// both modes run the same averaging kernels over the same row contents,
// and rows absent from the sparse packing are exactly the all-+0.0 rows
// the dense mode skips (or rewrites with their own zeros).
//
// Active-support skipping: the state tracks which rows may be nonzero.
// Skipping a pair whose two rows are both all-zero is exact: the average
// of two zero rows writes back the zeros already there, bit for bit.  In
// sparse mode the skip is structural — a pair of slotless rows has no
// storage to touch — so it stays exact even with skip_zeros off.
//
// SIMD: the per-pair averaging kernels are runtime-dispatched (AVX2 when
// available and enabled, guaranteed-bit-identical scalar fallback
// otherwise — see matching/simd_kernels.hpp for the no-FMA argument).
//
// Weighted averaging (our extension; the paper is unweighted): with
// set_weighted_graph on a weighted graph, a matched pair along edge
// {u, v} takes the partial-averaging step
//     x_u' = (1-λ)x_u + λx_v,   x_v' = (1-λ)x_v + λx_u,
//     λ = w(u,v) / (2·w_max),
// so heavier edges mix faster and the maximum-weight edge averages
// fully.  The per-round matrix stays symmetric and doubly stochastic
// (λ ≤ 1/2), preserving every total() invariant.  On an all-equal
// weighting λ = w/(2w) = 1/2 exactly, and the λ = 1/2 path evaluates
// the same 0.5·(x_u + x_v) expression as the unweighted code — the
// all-ones ⇒ bit-identical-to-unweighted contract the EngineEquivalence
// grid asserts.  Zero-row skipping stays exact: (1-λ)·0 + λ·0 = +0.0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "matching/protocol.hpp"
#include "matching/simd_kernels.hpp"

namespace dgc::matching {

struct RoundSchedule;

/// One matching's edges split by a shard assignment: intra[s] holds the
/// pairs whose endpoints both live on shard s (appliable shard-locally,
/// in parallel across shards), cross the pairs that straddle two shards
/// (their rows must be exchanged between machines first).  Because a
/// matching touches every node at most once, all listed pairs are
/// pairwise row-disjoint.
struct ShardSplit {
  std::vector<std::vector<std::pair<graph::NodeId, graph::NodeId>>> intra;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> cross;

  /// Total pairs across all intra lists.
  [[nodiscard]] std::size_t intra_pairs() const;
};

/// Splits m.edges by shard_of (values in [0, num_shards)).
[[nodiscard]] ShardSplit split_by_shard(const Matching& m,
                                        std::span<const std::uint32_t> shard_of,
                                        std::uint32_t num_shards);

/// In-place variant for per-round hot loops: clears and refills `out`,
/// reusing its vectors' capacity so steady-state rounds allocate nothing.
void split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                    std::uint32_t num_shards, ShardSplit& out);

/// Storage policy for MultiLoadState.  Pure scheduling — values, flags
/// and labels are bit-identical across all three settings.
enum class SparseMode : std::uint8_t {
  /// Dense n×s matrix for the whole run (the library default, and the
  /// representation checkpoint replay/verification uses).
  kOff = 0,
  /// Start sparse, densify one-way once active_rows·2 > n (the measured
  /// crossover; see bench_micro's sweep).
  kAuto = 1,
  /// Stay sparse for the whole run (packed storage can still grow to n
  /// rows; useful for measurement and for very low-support workloads).
  kOn = 2,
};

class MultiLoadState {
 public:
  /// n nodes, s dimensions, all loads zero.  kOff starts (and stays)
  /// dense; kAuto/kOn start sparse with no per-node row storage at all.
  MultiLoadState(std::size_t num_nodes, std::size_t dimensions,
                 SparseMode mode = SparseMode::kOff);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dimensions_; }

  /// Mutable view of node v's s values.  Conservatively marks the row
  /// active (the caller may write any value through the span; in sparse
  /// mode this materialises the row's packed storage); use the const
  /// overload for read-only access.  Not thread-safe.
  [[nodiscard]] std::span<double> row(graph::NodeId v);
  /// Read-only view; an inactive sparse row views a shared all-zero row.
  [[nodiscard]] std::span<const double> row(graph::NodeId v) const;

  [[nodiscard]] double at(graph::NodeId v, std::size_t dim) const;
  void set(graph::NodeId v, std::size_t dim, double value);

  /// Averages rows u and v in every dimension (one matched pair).  When
  /// skip_zeros() is on and both rows are flagged all-zero the pair is
  /// skipped — bit-identical to averaging, which would rewrite the zeros.
  /// On a weighted graph (set_weighted_graph) this is the λ-partial
  /// average along the edge {u, v}; u and v must then be adjacent.
  void average_pair(graph::NodeId u, graph::NodeId v);

  /// Enables weighted averaging against `g`'s edge weights (see the
  /// header comment).  Null or an unweighted graph restores the plain
  /// 1/2 averaging.  The graph must outlive the state.
  void set_weighted_graph(const graph::Graph* g) noexcept;
  [[nodiscard]] bool weighted() const noexcept { return weighted_graph_ != nullptr; }

  /// Applies a whole matching.  A round boundary: re-evaluates the
  /// storage mode first (see update_mode).
  void apply(const Matching& m);

  /// Averages each listed pair.  The pairs of one matching are pairwise
  /// row-disjoint, so concurrent apply_pairs calls on disjoint pair sets
  /// (e.g. a ShardSplit's lists) are race-free and bit-identical to any
  /// sequential order (each pair also owns its two activity flags, and
  /// sparse-mode slot allocation is a single atomic counter bump into
  /// storage update_mode() pre-reserved for the round).
  void apply_pairs(std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs);

  /// Structural pre-pass of the schedule-ahead window executor (see
  /// matching/schedule.hpp).  Serially walks the schedule's rounds in
  /// order, advancing the activity flags through the exact recurrence the
  /// per-round path runs (merged = active[u] | active[v] — a pure
  /// function of the value history, never of the values' magnitudes),
  /// drops pairs whose two rows are both all-+0.0 at their round (exact:
  /// averaging two zero rows rewrites the zeros, (1−λ)·0 + λ·0 = +0.0,
  /// and per-round application leaves their flags at 0 too), allocates
  /// sparse slots for every row the window will touch, and rewrites the
  /// surviving pairs to storage row indices.  After this pass
  /// apply_window_stripe never allocates, never branches on flags, and is
  /// race-free across disjoint dimension stripes.  Call update_mode()
  /// first, exactly like the per-round engines do at round boundaries.
  void prepare_window(RoundSchedule& sched);

  /// Replays a prepared window's pairs, in round order, on dimensions
  /// [d0, d1) only.  Per dimension this performs the same averaging
  /// operations in the same order as W per-round apply() calls — pairs
  /// within a round are row-disjoint — so the result is bit-identical
  /// for every stripe decomposition, and concurrent calls on disjoint
  /// stripes are race-free.  The inline averaging expressions are the
  /// scalar kernels' (simd_kernels.hpp), which the AVX2 kernels are
  /// bit-identical to, so the simd toggle cannot change the result here
  /// either.
  void apply_window_stripe(const RoundSchedule& sched, std::size_t d0, std::size_t d1);

  /// Round-boundary hook: densifies a kAuto state once active_rows·2 > n
  /// and pre-reserves sparse storage for the round ahead (support can at
  /// most double, so 2·active slots suffice — this is what makes the
  /// parallel apply_pairs slot allocation realloc-free and race-free).
  /// The trigger is a pure function of the active-row count, so every
  /// engine and thread count switches on the same round.  apply() calls
  /// this itself; engines that drive apply_pairs directly (the sharded
  /// round phases) must call it once per round, before fanning out.
  void update_mode();

  /// Storage policy.  Changing it mid-run converts the representation
  /// immediately (an O(n·s) copy); values and flags are preserved bitwise.
  void set_sparse_mode(SparseMode mode);
  [[nodiscard]] SparseMode sparse_mode() const noexcept { return mode_; }
  /// True while the packed sparse representation is live.
  [[nodiscard]] bool sparse_storage() const noexcept { return !dense_storage_; }

  /// Toggles the SIMD averaging kernels (default on; scalar fallback is
  /// bit-identical, see simd_kernels.hpp).
  void set_simd(bool enabled) noexcept;
  [[nodiscard]] bool simd() const noexcept { return simd_; }

  /// Toggles active-support skipping (default on).  Pure scheduling: the
  /// stored values are identical either way; flags are maintained in both
  /// modes so the toggle can flip mid-run.
  void set_skip_zeros(bool enabled) noexcept { skip_zeros_ = enabled; }
  [[nodiscard]] bool skip_zeros() const noexcept { return skip_zeros_; }

  /// Number of rows flagged possibly-nonzero — the support bound s·2^t
  /// that makes early-round skipping pay (plotted by bench E16).  O(1)
  /// in sparse mode, O(n) dense.
  [[nodiscard]] std::size_t active_rows() const;
  [[nodiscard]] bool row_active(graph::NodeId v) const;

  /// Read-only view of the whole row-major n×s matrix.  Dense storage
  /// only — use snapshot_dense() for a mode-agnostic copy.
  [[nodiscard]] std::span<const double> values() const;

  /// Writes the full row-major n×s matrix into `out` (resizing it) —
  /// the exact bytes a checkpoint stores, in either storage mode:
  /// sparse rows scatter into their dense positions, absent rows are
  /// +0.0.
  void snapshot_dense(std::vector<double>& out) const;

  /// Restores the whole matrix from a row-major n×s snapshot (a loaded
  /// checkpoint), recomputes the activity flags by scanning — the same
  /// not-+0.0 predicate set() uses, so a restored state skips exactly
  /// the rows a live run would — and re-picks the storage mode from the
  /// snapshot's density, so a checkpoint written sparse resumes dense
  /// (and vice versa) with identical bits.
  void load_matrix(std::span<const double> matrix);

  /// Copy of dimension `dim` as an n-vector (for analysis).
  [[nodiscard]] std::vector<double> column(std::size_t dim) const;

  /// Sum over nodes of dimension `dim` — invariant under apply().
  /// Accumulated in node-id order in both modes, so the float sum is
  /// bit-identical whatever order sparse slots were allocated in.
  [[nodiscard]] double total(std::size_t dim) const;

 private:
  static constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

  [[nodiscard]] double* row_ptr(graph::NodeId v) {
    return data_.data() + static_cast<std::size_t>(v) * dimensions_;
  }
  [[nodiscard]] double* slot_ptr(std::uint32_t slot) {
    return packed_.data() + static_cast<std::size_t>(slot) * dimensions_;
  }
  [[nodiscard]] const double* slot_ptr(std::uint32_t slot) const {
    return packed_.data() + static_cast<std::size_t>(slot) * dimensions_;
  }

  /// Sparse-mode row materialisation.  Thread-safe when update_mode()
  /// pre-reserved this round's capacity (a relaxed atomic counter bump;
  /// rows are pair-disjoint so no two workers allocate the same node).
  std::uint32_t allocate_slot(graph::NodeId v);

  /// One-way sparse → dense conversion.
  void densify();

  void refresh_kernels() noexcept;

  std::size_t num_nodes_;
  std::size_t dimensions_;
  SparseMode mode_ = SparseMode::kOff;
  bool dense_storage_ = true;

  // Dense representation (live iff dense_storage_).
  std::vector<double> data_;
  /// active_[v] != 0 iff row v may hold a value whose bits are not +0.0.
  std::vector<char> active_;

  // Sparse representation (live iff !dense_storage_).  A row is active
  /// iff it owns a slot; packed_ holds the slot-major row values.
  std::vector<std::uint32_t> slot_of_;
  std::vector<graph::NodeId> slot_node_;
  std::vector<double> packed_;
  /// Allocated slot count; bumped via std::atomic_ref during parallel
  /// apply_pairs (plain storage keeps the state movable).
  std::uint32_t slots_ = 0;
  /// Shared all-zero row backing const row() views of inactive rows.
  std::vector<double> zero_row_;

  bool skip_zeros_ = true;
  bool simd_ = true;
  simd::AvgHalfFn avg_half_ = nullptr;
  simd::AvgLambdaFn avg_lambda_ = nullptr;

  /// Weighted averaging context (null = unweighted 1/2 averaging).
  const graph::Graph* weighted_graph_ = nullptr;
  double two_max_weight_ = 0.0;
};

}  // namespace dgc::matching
