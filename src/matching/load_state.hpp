// Multi-dimensional load state: the s load vectors x^(t,1) … x^(t,s) of
// §3.2, stored row-major (node-major) so that averaging a matched pair
// touches two contiguous rows — one cache line per few dimensions.
//
// Active-support skipping: the state tracks which rows may be nonzero.
// The load vectors start with support s ≪ n (only seed rows are nonzero)
// and a round can at most double the support — a zero row only becomes
// nonzero by averaging with a nonzero one — so early rounds touch
// O(s·2^t) rows.  Skipping a pair whose two rows are both all-zero is
// exact: the average of two zero rows writes back the zeros already
// there, bit for bit.
//
// Weighted averaging (our extension; the paper is unweighted): with
// set_weighted_graph on a weighted graph, a matched pair along edge
// {u, v} takes the partial-averaging step
//     x_u' = (1-λ)x_u + λx_v,   x_v' = (1-λ)x_v + λx_u,
//     λ = w(u,v) / (2·w_max),
// so heavier edges mix faster and the maximum-weight edge averages
// fully.  The per-round matrix stays symmetric and doubly stochastic
// (λ ≤ 1/2), preserving every total() invariant.  On an all-equal
// weighting λ = w/(2w) = 1/2 exactly, and the λ = 1/2 path evaluates
// the same 0.5·(x_u + x_v) expression as the unweighted code — the
// all-ones ⇒ bit-identical-to-unweighted contract the EngineEquivalence
// grid asserts.  Zero-row skipping stays exact: (1-λ)·0 + λ·0 = +0.0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "matching/protocol.hpp"

namespace dgc::matching {

/// One matching's edges split by a shard assignment: intra[s] holds the
/// pairs whose endpoints both live on shard s (appliable shard-locally,
/// in parallel across shards), cross the pairs that straddle two shards
/// (their rows must be exchanged between machines first).  Because a
/// matching touches every node at most once, all listed pairs are
/// pairwise row-disjoint.
struct ShardSplit {
  std::vector<std::vector<std::pair<graph::NodeId, graph::NodeId>>> intra;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> cross;

  /// Total pairs across all intra lists.
  [[nodiscard]] std::size_t intra_pairs() const;
};

/// Splits m.edges by shard_of (values in [0, num_shards)).
[[nodiscard]] ShardSplit split_by_shard(const Matching& m,
                                        std::span<const std::uint32_t> shard_of,
                                        std::uint32_t num_shards);

/// In-place variant for per-round hot loops: clears and refills `out`,
/// reusing its vectors' capacity so steady-state rounds allocate nothing.
void split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                    std::uint32_t num_shards, ShardSplit& out);

class MultiLoadState {
 public:
  /// n nodes, s dimensions, all loads zero.
  MultiLoadState(std::size_t num_nodes, std::size_t dimensions);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dimensions_; }

  /// Mutable view of node v's s values.  Conservatively marks the row
  /// active (the caller may write any value through the span); use the
  /// const overload for read-only access.
  [[nodiscard]] std::span<double> row(graph::NodeId v);
  [[nodiscard]] std::span<const double> row(graph::NodeId v) const;

  [[nodiscard]] double at(graph::NodeId v, std::size_t dim) const;
  void set(graph::NodeId v, std::size_t dim, double value);

  /// Averages rows u and v in every dimension (one matched pair).  When
  /// skip_zeros() is on and both rows are flagged all-zero the pair is
  /// skipped — bit-identical to averaging, which would rewrite the zeros.
  /// On a weighted graph (set_weighted_graph) this is the λ-partial
  /// average along the edge {u, v}; u and v must then be adjacent.
  void average_pair(graph::NodeId u, graph::NodeId v);

  /// Enables weighted averaging against `g`'s edge weights (see the
  /// header comment).  Null or an unweighted graph restores the plain
  /// 1/2 averaging.  The graph must outlive the state.
  void set_weighted_graph(const graph::Graph* g) noexcept;
  [[nodiscard]] bool weighted() const noexcept { return weighted_graph_ != nullptr; }

  /// Applies a whole matching.
  void apply(const Matching& m);

  /// Averages each listed pair.  The pairs of one matching are pairwise
  /// row-disjoint, so concurrent apply_pairs calls on disjoint pair sets
  /// (e.g. a ShardSplit's lists) are race-free and bit-identical to any
  /// sequential order (each pair also owns its two activity flags).
  void apply_pairs(std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs);

  /// Toggles active-support skipping (default on).  Pure scheduling: the
  /// stored values are identical either way; flags are maintained in both
  /// modes so the toggle can flip mid-run.
  void set_skip_zeros(bool enabled) noexcept { skip_zeros_ = enabled; }
  [[nodiscard]] bool skip_zeros() const noexcept { return skip_zeros_; }

  /// Number of rows flagged possibly-nonzero — the support bound s·2^t
  /// that makes early-round skipping pay (plotted by bench E16).
  [[nodiscard]] std::size_t active_rows() const;
  [[nodiscard]] bool row_active(graph::NodeId v) const;

  /// Read-only view of the whole row-major n×s matrix — the exact bytes
  /// a checkpoint stores.
  [[nodiscard]] std::span<const double> values() const noexcept { return data_; }

  /// Restores the whole matrix from a row-major n×s snapshot (a loaded
  /// checkpoint) and recomputes the activity flags by scanning — the
  /// same not-+0.0 predicate set() uses, so a restored state skips
  /// exactly the rows a live run would.
  void load_matrix(std::span<const double> matrix);

  /// Copy of dimension `dim` as an n-vector (for analysis).
  [[nodiscard]] std::vector<double> column(std::size_t dim) const;

  /// Sum over nodes of dimension `dim` — invariant under apply().
  [[nodiscard]] double total(std::size_t dim) const;

 private:
  [[nodiscard]] double* row_ptr(graph::NodeId v) {
    return data_.data() + static_cast<std::size_t>(v) * dimensions_;
  }

  std::size_t num_nodes_;
  std::size_t dimensions_;
  std::vector<double> data_;
  /// active_[v] != 0 iff row v may hold a value whose bits are not +0.0.
  std::vector<char> active_;
  bool skip_zeros_ = true;
  /// Weighted averaging context (null = unweighted 1/2 averaging).
  const graph::Graph* weighted_graph_ = nullptr;
  double two_max_weight_ = 0.0;
};

}  // namespace dgc::matching
