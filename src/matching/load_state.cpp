#include "matching/load_state.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dgc::matching {

std::size_t ShardSplit::intra_pairs() const {
  std::size_t total = 0;
  for (const auto& list : intra) total += list.size();
  return total;
}

ShardSplit split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                          std::uint32_t num_shards) {
  ShardSplit split;
  split_by_shard(m, shard_of, num_shards, split);
  return split;
}

void split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                    std::uint32_t num_shards, ShardSplit& out) {
  DGC_REQUIRE(m.partner.size() == shard_of.size(), "matching/shard size mismatch");
  DGC_REQUIRE(num_shards > 0, "need at least one shard");
  out.intra.resize(num_shards);
  for (auto& list : out.intra) list.clear();
  out.cross.clear();
  for (const auto& edge : m.edges) {
    const std::uint32_t su = shard_of[edge.first];
    const std::uint32_t sv = shard_of[edge.second];
    DGC_REQUIRE(su < num_shards && sv < num_shards, "shard id out of range");
    if (su == sv) {
      out.intra[su].push_back(edge);
    } else {
      out.cross.push_back(edge);
    }
  }
}

MultiLoadState::MultiLoadState(std::size_t num_nodes, std::size_t dimensions)
    : num_nodes_(num_nodes), dimensions_(dimensions) {
  DGC_REQUIRE(num_nodes > 0, "need at least one node");
  DGC_REQUIRE(dimensions > 0, "need at least one dimension");
  data_.assign(num_nodes * dimensions, 0.0);
  active_.assign(num_nodes, 0);
}

std::span<double> MultiLoadState::row(graph::NodeId v) {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  active_[v] = 1;  // the caller may write through the span
  return {row_ptr(v), dimensions_};
}

std::span<const double> MultiLoadState::row(graph::NodeId v) const {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  return {data_.data() + static_cast<std::size_t>(v) * dimensions_, dimensions_};
}

double MultiLoadState::at(graph::NodeId v, std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  return row(v)[dim];
}

void MultiLoadState::set(graph::NodeId v, std::size_t dim, double value) {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  // Flag anything whose bits differ from +0.0 (including -0.0 and NaN) so
  // skipping never suppresses a write that would change stored bits.
  if (value != 0.0 || std::signbit(value)) active_[v] = 1;
  row_ptr(v)[dim] = value;
}

void MultiLoadState::set_weighted_graph(const graph::Graph* g) noexcept {
  if (g == nullptr || !g->is_weighted() || g->max_weight() <= 0.0) {
    weighted_graph_ = nullptr;
    two_max_weight_ = 0.0;
    return;
  }
  weighted_graph_ = g;
  two_max_weight_ = 2.0 * g->max_weight();
}

void MultiLoadState::average_pair(graph::NodeId u, graph::NodeId v) {
  DGC_REQUIRE(u != v, "cannot average a node with itself");
  DGC_REQUIRE(u < num_nodes_ && v < num_nodes_, "node out of range");
  const char merged = static_cast<char>(active_[u] | active_[v]);
  if (skip_zeros_ && !merged) return;  // both rows all +0.0: a λ-average is a no-op
  // λ = w/(2·w_max): exactly 0.5 whenever w == w_max (x/(2x) is exact in
  // binary floating point), so all-equal weightings take the unweighted
  // code path below, bit for bit.
  double lambda = 0.5;
  if (weighted_graph_ != nullptr) {
    lambda = weighted_graph_->edge_weight(u, v) / two_max_weight_;
  }
  // u != v, so the two rows are disjoint — restrict lets the loop vectorise.
  double* __restrict ru = row_ptr(u);
  double* __restrict rv = row_ptr(v);
  if (lambda == 0.5) {
    for (std::size_t i = 0; i < dimensions_; ++i) {
      const double avg = 0.5 * (ru[i] + rv[i]);
      ru[i] = avg;
      rv[i] = avg;
    }
  } else {
    const double keep = 1.0 - lambda;
    for (std::size_t i = 0; i < dimensions_; ++i) {
      const double xu = ru[i];
      const double xv = rv[i];
      ru[i] = keep * xu + lambda * xv;
      rv[i] = keep * xv + lambda * xu;
    }
  }
  active_[u] = merged;
  active_[v] = merged;
}

void MultiLoadState::apply(const Matching& m) {
  DGC_REQUIRE(m.partner.size() == num_nodes_, "matching size mismatch");
  apply_pairs(m.edges);
}

void MultiLoadState::apply_pairs(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs) {
  // The pair list hops between distant rows, so the loop is bound by
  // cache-miss latency; prefetching a few pairs ahead overlaps the
  // misses.  Pairs that skip-zeros will skip never touch their rows, so
  // don't drag their dead lines through the cache either (the flag
  // check reads the small hot active_ array, not row data).
  constexpr std::size_t kAhead = 4;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i + kAhead < pairs.size()) {
      const auto& [pu, pv] = pairs[i + kAhead];
      if (!skip_zeros_ || (active_[pu] | active_[pv]) != 0) {
        __builtin_prefetch(row_ptr(pu));
        __builtin_prefetch(row_ptr(pv));
      }
    }
    average_pair(pairs[i].first, pairs[i].second);
  }
}

void MultiLoadState::load_matrix(std::span<const double> matrix) {
  DGC_REQUIRE(matrix.size() == data_.size(), "matrix snapshot has the wrong shape");
  data_.assign(matrix.begin(), matrix.end());
  const double* p = data_.data();
  for (std::size_t v = 0; v < num_nodes_; ++v, p += dimensions_) {
    char active = 0;
    for (std::size_t i = 0; i < dimensions_; ++i) {
      if (p[i] != 0.0 || std::signbit(p[i])) {
        active = 1;
        break;
      }
    }
    active_[v] = active;
  }
}

std::size_t MultiLoadState::active_rows() const {
  std::size_t count = 0;
  for (const char a : active_) count += a != 0;
  return count;
}

bool MultiLoadState::row_active(graph::NodeId v) const {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  return active_[v] != 0;
}

std::vector<double> MultiLoadState::column(std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  std::vector<double> out(num_nodes_, 0.0);
  // Single strided pass: one pointer bump per row instead of a multiply,
  // and inactive rows (all +0.0 by the flag invariant) are never read.
  const double* p = data_.data() + dim;
  for (std::size_t v = 0; v < num_nodes_; ++v, p += dimensions_) {
    if (active_[v]) out[v] = *p;
  }
  return out;
}

double MultiLoadState::total(std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  double acc = 0.0;
  const double* p = data_.data() + dim;
  for (std::size_t v = 0; v < num_nodes_; ++v, p += dimensions_) {
    if (active_[v]) acc += *p;
  }
  return acc;
}

}  // namespace dgc::matching
