#include "matching/load_state.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "matching/schedule.hpp"
#include "util/require.hpp"

namespace dgc::matching {

namespace {

/// The activity predicate: anything whose bits differ from +0.0
/// (including -0.0 and NaN) must be flagged, so skipping never
/// suppresses a write that would change stored bits.
inline bool nonzero_bits(double value) noexcept {
  return value != 0.0 || std::signbit(value);
}

}  // namespace

std::size_t ShardSplit::intra_pairs() const {
  std::size_t total = 0;
  for (const auto& list : intra) total += list.size();
  return total;
}

ShardSplit split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                          std::uint32_t num_shards) {
  ShardSplit split;
  split_by_shard(m, shard_of, num_shards, split);
  return split;
}

void split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                    std::uint32_t num_shards, ShardSplit& out) {
  DGC_REQUIRE(m.partner.size() == shard_of.size(), "matching/shard size mismatch");
  DGC_REQUIRE(num_shards > 0, "need at least one shard");
  out.intra.resize(num_shards);
  for (auto& list : out.intra) list.clear();
  out.cross.clear();
  for (const auto& edge : m.edges) {
    const std::uint32_t su = shard_of[edge.first];
    const std::uint32_t sv = shard_of[edge.second];
    DGC_REQUIRE(su < num_shards && sv < num_shards, "shard id out of range");
    if (su == sv) {
      out.intra[su].push_back(edge);
    } else {
      out.cross.push_back(edge);
    }
  }
}

MultiLoadState::MultiLoadState(std::size_t num_nodes, std::size_t dimensions,
                               SparseMode mode)
    : num_nodes_(num_nodes), dimensions_(dimensions), mode_(mode) {
  DGC_REQUIRE(num_nodes > 0, "need at least one node");
  DGC_REQUIRE(dimensions > 0, "need at least one dimension");
  if (mode_ == SparseMode::kOff) {
    data_.assign(num_nodes * dimensions, 0.0);
    active_.assign(num_nodes, 0);
  } else {
    dense_storage_ = false;
    slot_of_.assign(num_nodes, kNoSlot);
    zero_row_.assign(dimensions, 0.0);
  }
  refresh_kernels();
}

void MultiLoadState::refresh_kernels() noexcept {
  avg_half_ = simd::avg_half_kernel(simd_);
  avg_lambda_ = simd::avg_lambda_kernel(simd_);
}

void MultiLoadState::set_simd(bool enabled) noexcept {
  simd_ = enabled;
  refresh_kernels();
}

std::uint32_t MultiLoadState::allocate_slot(graph::NodeId v) {
  const std::uint32_t slot =
      std::atomic_ref<std::uint32_t>(slots_).fetch_add(1, std::memory_order_relaxed);
  if (static_cast<std::size_t>(slot) >= slot_node_.size()) {
    // Growth fallback for direct single-threaded use; engine rounds never
    // reach it because update_mode() pre-reserves the support-doubling
    // bound before any parallel fan-out.
    slot_node_.resize(slot + 1);
    packed_.resize(static_cast<std::size_t>(slot + 1) * dimensions_, 0.0);
  }
  slot_node_[slot] = v;
  slot_of_[v] = slot;
  return slot;
}

void MultiLoadState::densify() {
  data_.assign(num_nodes_ * dimensions_, 0.0);
  active_.assign(num_nodes_, 0);
  for (std::uint32_t slot = 0; slot < slots_; ++slot) {
    const graph::NodeId v = slot_node_[slot];
    std::copy_n(slot_ptr(slot), dimensions_, row_ptr(v));
    active_[v] = 1;
  }
  dense_storage_ = true;
  slot_of_ = {};
  slot_node_ = {};
  packed_ = {};
  zero_row_ = {};
  slots_ = 0;
}

void MultiLoadState::update_mode() {
  if (dense_storage_) return;
  const std::size_t active = slots_;
  if (mode_ == SparseMode::kAuto && active * 2 > num_nodes_) {
    densify();
    return;
  }
  // Support at most doubles per round (a slotless row gains a slot only
  // by pairing with a slotted one, and pairs are row-disjoint), so
  // 2·active slots cover the round's worst case — reserved here so the
  // parallel apply never reallocates mid-round.
  const std::size_t cap =
      std::min<std::size_t>(num_nodes_, std::max<std::size_t>(2 * active, 64));
  if (slot_node_.size() < cap) {
    slot_node_.resize(cap);
    packed_.resize(cap * dimensions_, 0.0);
  }
}

void MultiLoadState::set_sparse_mode(SparseMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  if (mode == SparseMode::kOff) {
    if (!dense_storage_) densify();
    return;
  }
  if (dense_storage_) {
    // Convert through a snapshot; load_matrix re-picks the representation
    // from the new mode and the current density.
    std::vector<double> snapshot;
    snapshot_dense(snapshot);
    load_matrix(snapshot);
  }
}

std::span<double> MultiLoadState::row(graph::NodeId v) {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  if (dense_storage_) {
    active_[v] = 1;  // the caller may write through the span
    return {row_ptr(v), dimensions_};
  }
  std::uint32_t slot = slot_of_[v];
  if (slot == kNoSlot) slot = allocate_slot(v);
  return {slot_ptr(slot), dimensions_};
}

std::span<const double> MultiLoadState::row(graph::NodeId v) const {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  if (dense_storage_) {
    return {data_.data() + static_cast<std::size_t>(v) * dimensions_, dimensions_};
  }
  const std::uint32_t slot = slot_of_[v];
  if (slot == kNoSlot) return {zero_row_.data(), dimensions_};
  return {slot_ptr(slot), dimensions_};
}

double MultiLoadState::at(graph::NodeId v, std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  return row(v)[dim];
}

void MultiLoadState::set(graph::NodeId v, std::size_t dim, double value) {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  if (dense_storage_) {
    if (nonzero_bits(value)) active_[v] = 1;
    row_ptr(v)[dim] = value;
    return;
  }
  std::uint32_t slot = slot_of_[v];
  if (slot == kNoSlot) {
    // Writing +0.0 into a slotless (all-+0.0) row changes nothing; do
    // not materialise it — mirrors dense, where set(+0.0) leaves the
    // activity flag untouched.
    if (!nonzero_bits(value)) return;
    slot = allocate_slot(v);
  }
  slot_ptr(slot)[dim] = value;
}

void MultiLoadState::set_weighted_graph(const graph::Graph* g) noexcept {
  if (g == nullptr || !g->is_weighted() || g->max_weight() <= 0.0) {
    weighted_graph_ = nullptr;
    two_max_weight_ = 0.0;
    return;
  }
  weighted_graph_ = g;
  two_max_weight_ = 2.0 * g->max_weight();
}

void MultiLoadState::average_pair(graph::NodeId u, graph::NodeId v) {
  DGC_REQUIRE(u != v, "cannot average a node with itself");
  DGC_REQUIRE(u < num_nodes_ && v < num_nodes_, "node out of range");
  double* ru;
  double* rv;
  if (dense_storage_) {
    const char merged = static_cast<char>(active_[u] | active_[v]);
    if (skip_zeros_ && !merged) return;  // both rows all +0.0: a no-op
    ru = row_ptr(u);
    rv = row_ptr(v);
    active_[u] = merged;
    active_[v] = merged;
  } else {
    std::uint32_t su = slot_of_[u];
    std::uint32_t sv = slot_of_[v];
    // Two slotless rows are both all-+0.0: structurally nothing to do
    // (exact whatever skip_zeros says — dense would rewrite the zeros).
    if (su == kNoSlot && sv == kNoSlot) return;
    if (su == kNoSlot) su = allocate_slot(u);
    if (sv == kNoSlot) sv = allocate_slot(v);
    ru = slot_ptr(su);
    rv = slot_ptr(sv);
  }
  // λ = w/(2·w_max): exactly 0.5 whenever w == w_max (x/(2x) is exact in
  // binary floating point), so all-equal weightings take the unweighted
  // kernel below, bit for bit.
  double lambda = 0.5;
  if (weighted_graph_ != nullptr) {
    lambda = weighted_graph_->edge_weight(u, v) / two_max_weight_;
  }
  // u != v, so the two rows are disjoint (sparse slots are unique per
  // node); the kernels carry the restrict promise internally.
  if (lambda == 0.5) {
    avg_half_(ru, rv, dimensions_);
  } else {
    avg_lambda_(ru, rv, dimensions_, lambda);
  }
}

void MultiLoadState::apply(const Matching& m) {
  DGC_REQUIRE(m.partner.size() == num_nodes_, "matching size mismatch");
  update_mode();
  apply_pairs(m.edges);
}

void MultiLoadState::apply_pairs(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs) {
  // The pair list hops between distant rows, so the loop is bound by
  // cache-miss latency; prefetching a few pairs ahead overlaps the
  // misses.  Pairs that skip-zeros will skip never touch their rows, so
  // don't drag their dead lines through the cache either (the flag
  // check reads the small hot active_/slot_of_ array, not row data).
  constexpr std::size_t kAhead = 4;
  if (dense_storage_) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (i + kAhead < pairs.size()) {
        const auto& [pu, pv] = pairs[i + kAhead];
        if (!skip_zeros_ || (active_[pu] | active_[pv]) != 0) {
          __builtin_prefetch(row_ptr(pu));
          __builtin_prefetch(row_ptr(pv));
        }
      }
      average_pair(pairs[i].first, pairs[i].second);
    }
    return;
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i + kAhead < pairs.size()) {
      const auto& [pu, pv] = pairs[i + kAhead];
      const std::uint32_t su = slot_of_[pu];
      const std::uint32_t sv = slot_of_[pv];
      if (su != kNoSlot) __builtin_prefetch(slot_ptr(su));
      if (sv != kNoSlot) __builtin_prefetch(slot_ptr(sv));
    }
    average_pair(pairs[i].first, pairs[i].second);
  }
}

void MultiLoadState::prepare_window(RoundSchedule& sched) {
  const std::size_t rounds = sched.rounds();
  DGC_REQUIRE(sched.offsets.size() == rounds + 1, "schedule offsets malformed");
  const bool weighted = !sched.lambda.empty();
  DGC_REQUIRE(!weighted || sched.lambda.size() == sched.pair_count(),
              "schedule lambda column malformed");
  if (dense_storage_ &&
      std::all_of(active_.begin(), active_.end(), [](char a) { return a != 0; })) {
    // Saturated state: every pair survives the filter, the flag updates
    // are all 1 |= 1, and dense storage rows are the node ids the
    // schedule already carries — the pass would be the identity.  Flags
    // are monotone within a run, so once the support covers every row
    // (the common steady state past the support-doubling ramp) each
    // window takes this exit after one early-exiting scan of active_.
    return;
  }
  if (!dense_storage_) {
    // Support at most doubles per round, so `rounds` doublings bound the
    // window's slot demand; reserving up front keeps allocate_slot on its
    // O(1) path (the growth fallback would copy packed_ per slot).
    std::size_t cap = std::max<std::size_t>(slots_, 64);
    for (std::size_t r = 0; r < rounds && cap < num_nodes_; ++r) cap *= 2;
    cap = std::min(cap, num_nodes_);
    if (slot_node_.size() < cap) {
      slot_node_.resize(cap);
      packed_.resize(cap * dimensions_, 0.0);
    }
  }
  std::size_t kept = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = sched.offsets[r];
    const std::size_t end = sched.offsets[r + 1];
    sched.offsets[r] = kept;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t u = sched.pairs[2 * i];
      const std::uint32_t v = sched.pairs[2 * i + 1];
      std::uint32_t iu;
      std::uint32_t iv;
      if (dense_storage_) {
        // Filtering both-zero pairs is exact with skip_zeros on OR off:
        // either way the per-round path leaves both values and both flags
        // untouched (merged == 0 writes the 0 already there).
        if ((active_[u] | active_[v]) == 0) continue;
        active_[u] = 1;
        active_[v] = 1;
        iu = u;
        iv = v;
      } else {
        std::uint32_t su = slot_of_[u];
        std::uint32_t sv = slot_of_[v];
        if (su == kNoSlot && sv == kNoSlot) continue;  // structurally zero
        if (su == kNoSlot) su = allocate_slot(u);
        if (sv == kNoSlot) sv = allocate_slot(v);
        iu = su;
        iv = sv;
      }
      sched.pairs[2 * kept] = iu;
      sched.pairs[2 * kept + 1] = iv;
      if (weighted) sched.lambda[kept] = sched.lambda[i];
      ++kept;
    }
  }
  sched.offsets[rounds] = kept;
  sched.pairs.resize(2 * kept);
  if (weighted) sched.lambda.resize(kept);
}

void MultiLoadState::apply_window_stripe(const RoundSchedule& sched, std::size_t d0,
                                         std::size_t d1) {
  DGC_REQUIRE(d0 < d1 && d1 <= dimensions_, "dimension stripe out of range");
  double* const base = dense_storage_ ? data_.data() : packed_.data();
  const std::size_t dims = dimensions_;
  const std::size_t width = d1 - d0;
  const std::uint32_t* p = sched.pairs.data();
  const double* lam = sched.lambda.empty() ? nullptr : sched.lambda.data();
  const std::size_t total = sched.pair_count();
  // Round boundaries need no special handling: the flat array lists the
  // rounds' surviving pairs in round order, and sequential application in
  // that order is exactly the per-round order, per dimension.
  // A stripe slice spans up to ⌈width·8/64⌉ + 1 cache lines; prefetch
  // them all — the rows land randomly in an L3-resident matrix, and the
  // hardware prefetcher does not chase the pair indirection.
  const std::size_t lines = (width * sizeof(double) + 63) / 64 + 1;
  constexpr std::size_t kAhead = 8;
  for (std::size_t i = 0; i < total; ++i) {
    if (i + kAhead < total) {
      const double* fu = base + static_cast<std::size_t>(p[2 * (i + kAhead)]) * dims + d0;
      const double* fv =
          base + static_cast<std::size_t>(p[2 * (i + kAhead) + 1]) * dims + d0;
      for (std::size_t l = 0; l < lines; ++l) {
        __builtin_prefetch(fu + 8 * l);
        __builtin_prefetch(fv + 8 * l);
      }
    }
    double* const ru = base + static_cast<std::size_t>(p[2 * i]) * dims + d0;
    double* const rv = base + static_cast<std::size_t>(p[2 * i + 1]) * dims + d0;
    const double lambda = lam != nullptr ? lam[i] : 0.5;
    // The same runtime-dispatched kernels as average_pair, applied to the
    // stripe slice: AVX2 and scalar variants are bit-identical by the
    // simd_kernels.hpp contract, and the λ == 0.5 routing mirrors
    // average_pair exactly, so stripe width and the simd toggle are both
    // pure scheduling.
    if (lambda == 0.5) {
      avg_half_(ru, rv, width);
    } else {
      avg_lambda_(ru, rv, width, lambda);
    }
  }
}

std::span<const double> MultiLoadState::values() const {
  DGC_REQUIRE(dense_storage_,
              "values() views dense storage only; use snapshot_dense() for a "
              "mode-agnostic copy");
  return data_;
}

void MultiLoadState::snapshot_dense(std::vector<double>& out) const {
  if (dense_storage_) {
    out.assign(data_.begin(), data_.end());
    return;
  }
  out.assign(num_nodes_ * dimensions_, 0.0);
  for (std::uint32_t slot = 0; slot < slots_; ++slot) {
    const graph::NodeId v = slot_node_[slot];
    std::copy_n(slot_ptr(slot), dimensions_,
                out.data() + static_cast<std::size_t>(v) * dimensions_);
  }
}

void MultiLoadState::load_matrix(std::span<const double> matrix) {
  DGC_REQUIRE(matrix.size() == num_nodes_ * dimensions_,
              "matrix snapshot has the wrong shape");
  // One scan for the activity flags — the same not-+0.0 predicate set()
  // uses — which also decides the representation below.
  std::vector<char> flags(num_nodes_, 0);
  std::size_t active = 0;
  const double* p = matrix.data();
  for (std::size_t v = 0; v < num_nodes_; ++v, p += dimensions_) {
    for (std::size_t i = 0; i < dimensions_; ++i) {
      if (nonzero_bits(p[i])) {
        flags[v] = 1;
        ++active;
        break;
      }
    }
  }
  const bool want_dense = mode_ == SparseMode::kOff ||
                          (mode_ == SparseMode::kAuto && active * 2 > num_nodes_);
  if (want_dense) {
    data_.assign(matrix.begin(), matrix.end());
    active_ = std::move(flags);
    dense_storage_ = true;
    slot_of_ = {};
    slot_node_ = {};
    packed_ = {};
    zero_row_ = {};
    slots_ = 0;
    return;
  }
  dense_storage_ = false;
  data_ = {};
  active_ = {};
  slot_of_.assign(num_nodes_, kNoSlot);
  slot_node_.clear();
  slot_node_.reserve(active);
  packed_.clear();
  packed_.reserve(active * dimensions_);
  slots_ = 0;
  zero_row_.assign(dimensions_, 0.0);
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    if (!flags[v]) continue;
    slot_of_[v] = slots_;
    slot_node_.push_back(static_cast<graph::NodeId>(v));
    const double* src = matrix.data() + v * dimensions_;
    packed_.insert(packed_.end(), src, src + dimensions_);
    ++slots_;
  }
}

std::size_t MultiLoadState::active_rows() const {
  if (!dense_storage_) return slots_;
  std::size_t count = 0;
  for (const char a : active_) count += a != 0;
  return count;
}

bool MultiLoadState::row_active(graph::NodeId v) const {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  if (!dense_storage_) return slot_of_[v] != kNoSlot;
  return active_[v] != 0;
}

std::vector<double> MultiLoadState::column(std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  std::vector<double> out(num_nodes_, 0.0);
  if (!dense_storage_) {
    // Gather through the slot map in node order; slotless rows stay +0.0.
    for (std::size_t v = 0; v < num_nodes_; ++v) {
      const std::uint32_t slot = slot_of_[v];
      if (slot != kNoSlot) out[v] = slot_ptr(slot)[dim];
    }
    return out;
  }
  // Single strided pass: one pointer bump per row instead of a multiply,
  // and inactive rows (all +0.0 by the flag invariant) are never read.
  const double* p = data_.data() + dim;
  for (std::size_t v = 0; v < num_nodes_; ++v, p += dimensions_) {
    if (active_[v]) out[v] = *p;
  }
  return out;
}

double MultiLoadState::total(std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  double acc = 0.0;
  if (!dense_storage_) {
    // Node-id order through the slot map — the same summand order as the
    // dense pass below, so the float sum is bit-identical no matter what
    // order parallel rounds allocated the slots in.
    for (std::size_t v = 0; v < num_nodes_; ++v) {
      const std::uint32_t slot = slot_of_[v];
      if (slot != kNoSlot) acc += slot_ptr(slot)[dim];
    }
    return acc;
  }
  const double* p = data_.data() + dim;
  for (std::size_t v = 0; v < num_nodes_; ++v, p += dimensions_) {
    if (active_[v]) acc += *p;
  }
  return acc;
}

}  // namespace dgc::matching
