#include "matching/load_state.hpp"

#include "util/require.hpp"

namespace dgc::matching {

std::size_t ShardSplit::intra_pairs() const {
  std::size_t total = 0;
  for (const auto& list : intra) total += list.size();
  return total;
}

ShardSplit split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                          std::uint32_t num_shards) {
  ShardSplit split;
  split_by_shard(m, shard_of, num_shards, split);
  return split;
}

void split_by_shard(const Matching& m, std::span<const std::uint32_t> shard_of,
                    std::uint32_t num_shards, ShardSplit& out) {
  DGC_REQUIRE(m.partner.size() == shard_of.size(), "matching/shard size mismatch");
  DGC_REQUIRE(num_shards > 0, "need at least one shard");
  out.intra.resize(num_shards);
  for (auto& list : out.intra) list.clear();
  out.cross.clear();
  for (const auto& edge : m.edges) {
    const std::uint32_t su = shard_of[edge.first];
    const std::uint32_t sv = shard_of[edge.second];
    DGC_REQUIRE(su < num_shards && sv < num_shards, "shard id out of range");
    if (su == sv) {
      out.intra[su].push_back(edge);
    } else {
      out.cross.push_back(edge);
    }
  }
}

MultiLoadState::MultiLoadState(std::size_t num_nodes, std::size_t dimensions)
    : num_nodes_(num_nodes), dimensions_(dimensions) {
  DGC_REQUIRE(num_nodes > 0, "need at least one node");
  DGC_REQUIRE(dimensions > 0, "need at least one dimension");
  data_.assign(num_nodes * dimensions, 0.0);
}

std::span<double> MultiLoadState::row(graph::NodeId v) {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  return {data_.data() + static_cast<std::size_t>(v) * dimensions_, dimensions_};
}

std::span<const double> MultiLoadState::row(graph::NodeId v) const {
  DGC_REQUIRE(v < num_nodes_, "node out of range");
  return {data_.data() + static_cast<std::size_t>(v) * dimensions_, dimensions_};
}

double MultiLoadState::at(graph::NodeId v, std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  return row(v)[dim];
}

void MultiLoadState::set(graph::NodeId v, std::size_t dim, double value) {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  row(v)[dim] = value;
}

void MultiLoadState::average_pair(graph::NodeId u, graph::NodeId v) {
  DGC_REQUIRE(u != v, "cannot average a node with itself");
  auto ru = row(u);
  auto rv = row(v);
  for (std::size_t i = 0; i < dimensions_; ++i) {
    const double avg = 0.5 * (ru[i] + rv[i]);
    ru[i] = avg;
    rv[i] = avg;
  }
}

void MultiLoadState::apply(const Matching& m) {
  DGC_REQUIRE(m.partner.size() == num_nodes_, "matching size mismatch");
  apply_pairs(m.edges);
}

void MultiLoadState::apply_pairs(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs) {
  for (const auto& [u, v] : pairs) average_pair(u, v);
}

std::vector<double> MultiLoadState::column(std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  std::vector<double> out(num_nodes_);
  for (std::size_t v = 0; v < num_nodes_; ++v) out[v] = data_[v * dimensions_ + dim];
  return out;
}

double MultiLoadState::total(std::size_t dim) const {
  DGC_REQUIRE(dim < dimensions_, "dimension out of range");
  double acc = 0.0;
  for (std::size_t v = 0; v < num_nodes_; ++v) acc += data_[v * dimensions_ + dim];
  return acc;
}

}  // namespace dgc::matching
