#include "matching/protocol.hpp"

#include <algorithm>
#include <cstring>

#include "util/require.hpp"

namespace dgc::matching {

using graph::kInvalidNode;
using graph::NodeId;

namespace {

/// Nodes per parallel block.  Small enough that the mid-size test graphs
/// (n in the hundreds) still split across workers, large enough that the
/// per-block dispatch cost is noise.
constexpr std::size_t kBlockGrain = MatchingGenerator::kParallelGrain;

/// Reference resolution: probe-count scatter pass, then an accept sweep
/// in increasing acceptor order.  Also the serial hot path — callers
/// hand in reusable scratch so rounds allocate nothing.  Probe count and
/// last prober share one word (count in the high half, prober in the
/// low) so the scatter pass touches one cache location per probe, and
/// the accept sweep zeroes each entry as it reads it, leaving the
/// scratch ready for the next round with no memset.  `probes` must be
/// all-zero on entry (vectors start that way, and every round restores
/// it).
void resolve_serial(const graph::Graph& g, const MatchingGenerator::Coins& coins,
                    Matching& out, std::vector<std::uint64_t>& probes) {
  const NodeId n = g.num_nodes();
  if (probes.size() != n) probes.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId target = coins.probe[v];
    if (target == kInvalidNode) continue;
    const std::uint64_t slot = probes[target];
    probes[target] = (((slot >> 32) + 1) << 32) | v;
  }
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t slot = probes[v];
    probes[v] = 0;
    if (coins.active[v] || (slot >> 32) != 1) continue;
    const NodeId u = static_cast<NodeId>(slot);
    // u is active (it probed) so it cannot itself accept a probe; the
    // pair (u, v) is therefore conflict-free.
    out.partner[v] = u;
    out.partner[u] = v;
    out.edges.emplace_back(std::min(u, v), std::max(u, v));
  }
}

}  // namespace

bool Matching::valid(const graph::Graph& g) const {
  if (partner.size() != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId u = partner[v];
    if (u == kInvalidNode) continue;
    if (u >= g.num_nodes() || u == v) return false;
    if (partner[u] != v) return false;
    if (!g.has_edge(u, v)) return false;
  }
  for (const auto& [a, b] : edges) {
    if (a >= b) return false;
    if (partner[a] != b || partner[b] != a) return false;
  }
  // Every matched node appears in exactly one edge.
  std::size_t matched = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (partner[v] != kInvalidNode) ++matched;
  }
  return matched == 2 * edges.size();
}

MatchingGenerator::MatchingGenerator(const graph::Graph& g, std::uint64_t seed,
                                     ProtocolOptions options)
    : graph_(&g), options_(options) {
  DGC_REQUIRE(g.num_nodes() > 0, "empty graph");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
  if (options_.virtual_degree != 0) {
    DGC_REQUIRE(options_.virtual_degree >= g.max_degree(),
                "virtual_degree must cover the maximum degree");
  }
  DGC_REQUIRE(!options_.degree_biased_activation || options_.virtual_degree != 0,
              "degree-biased activation needs a virtual degree D");
  util::Rng master(seed);
  node_rng_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) node_rng_.push_back(master.fork(v));
}

MatchingGenerator::NodeCoin MatchingGenerator::coin_from_draws(NodeId v,
                                                               std::uint64_t draw1,
                                                               std::uint64_t draw2) {
  const auto neighbors = graph_->neighbors(v);
  const std::size_t degree = neighbors.size();
  const std::size_t slots =
      options_.virtual_degree == 0 ? degree : options_.virtual_degree;

  // Activation from draw1 — the identical compares Rng::next_bool(p) /
  // next_bool_half evaluate on a fresh draw.
  bool active;
  if (options_.degree_biased_activation) {
    const double dd = static_cast<double>(slots);
    const double activation = 0.5 + (dd - static_cast<double>(degree)) / (2.0 * dd);
    active = static_cast<double>(draw1 >> 11) * 0x1.0p-53 < activation;
  } else {
    active = draw1 < (1ULL << 63);
  }

  // Slot from draw2 — Rng::next_below(slots) with the first multiply
  // applied to the pre-drawn word; the rare rejection keeps drawing from
  // v's own stream, so the stream state matches the unbatched path.
  const std::uint64_t bound = slots;
  std::uint64_t x = draw2;
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = node_rng_[v].next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  const auto slot = static_cast<std::size_t>(m >> 64);
  return {active, active && slot < degree ? neighbors[slot] : kInvalidNode};
}

MatchingGenerator::NodeCoin MatchingGenerator::flip_node(NodeId v) {
  // Every node burns exactly two draws per round regardless of the
  // branch taken, so RNG streams stay aligned across protocol variants
  // (and skip_rounds stays exact).
  auto& rng = node_rng_[v];
  const std::uint64_t draw1 = rng.next();
  const std::uint64_t draw2 = rng.next();
  return coin_from_draws(v, draw1, draw2);
}

void MatchingGenerator::flip_block(Coins& out, NodeId begin, NodeId end) {
  // Batch the RNG advance four streams at a time (AVX2 lanes when
  // enabled, one by one otherwise — identical draws either way), then
  // finish each node's coin scalar: the neighbour lookup and scatter
  // are irregular, but the draw arithmetic is the bulk of the work.
  alignas(32) std::uint64_t draw1[4];
  alignas(32) std::uint64_t draw2[4];
  NodeId v = begin;
  while (end - v >= 4) {
    flip_draws4_(&node_rng_[v], draw1, draw2);
    for (NodeId lane = 0; lane < 4; ++lane) {
      const NodeCoin coin = coin_from_draws(v + lane, draw1[lane], draw2[lane]);
      out.active[v + lane] = coin.active ? 1 : 0;
      out.probe[v + lane] = coin.target;
    }
    v += 4;
  }
  for (; v < end; ++v) {
    const NodeCoin coin = flip_node(v);
    out.active[v] = coin.active ? 1 : 0;
    out.probe[v] = coin.target;
  }
}

void MatchingGenerator::skip_rounds(std::size_t rounds) {
  for (std::size_t t = 0; t < rounds; ++t) flip_round_coins(round_coins_);
}

void MatchingGenerator::flip_round_coins(Coins& out) {
  const NodeId n = graph_->num_nodes();
  // Every slot is overwritten below, so a resize (no clearing pass)
  // suffices and steady-state rounds reuse the buffers untouched.
  out.active.resize(n);
  out.probe.resize(n);
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->parallel_blocks(n, kBlockGrain,
                           [&](std::size_t, std::size_t begin, std::size_t end) {
                             flip_block(out, static_cast<NodeId>(begin),
                                        static_cast<NodeId>(end));
                           });
  } else {
    flip_block(out, 0, n);
  }
}

MatchingGenerator::Coins MatchingGenerator::flip_round_coins() {
  Coins coins;
  flip_round_coins(coins);
  return coins;
}

Matching MatchingGenerator::resolve(const graph::Graph& g, const Coins& coins) {
  const NodeId n = g.num_nodes();
  DGC_REQUIRE(coins.active.size() == n && coins.probe.size() == n, "coin size mismatch");
  Matching m;
  m.partner.assign(n, kInvalidNode);
  std::vector<std::uint64_t> probes;
  resolve_serial(g, coins, m, probes);
  return m;
}

void MatchingGenerator::resolve(const Coins& coins, Matching& out) {
  const graph::Graph& g = *graph_;
  const NodeId n = g.num_nodes();
  DGC_REQUIRE(coins.active.size() == n && coins.probe.size() == n, "coin size mismatch");
  out.partner.assign(n, kInvalidNode);
  out.edges.clear();

  const std::size_t blocks =
      pool_ != nullptr && pool_->size() > 1 ? pool_->blocks_for(n, kBlockGrain) : 1;
  if (blocks <= 1) {
    if (out.edges.capacity() < n / 2 + 1) out.edges.reserve(n / 2 + 1);
    resolve_serial(g, coins, out, probes_scratch_);
    return;
  }

  // Parallel path: one fused probe-count + accept pass per contiguous
  // acceptor block.  A probe at v can only come from a neighbour of v and
  // the graph is simple (each neighbour appears once in the adjacency
  // list), so counting neighbours u with probe[u] == v counts v's probes
  // exactly.  Writes are race-free: each acceptor v writes partner[v] and
  // partner[u] for its unique prober u, and a node probes at most one
  // target, so no two acceptors share a prober.  Per-block edge lists
  // concatenated in block order equal the serial acceptor-order sweep for
  // every block count, so the matching is bit-identical to resolve_serial.
  if (block_edges_.size() < blocks) block_edges_.resize(blocks);
  pool_->parallel_blocks(n, kBlockGrain, [&](std::size_t b, std::size_t begin,
                                             std::size_t end) {
    auto& edges = block_edges_[b];
    edges.clear();
    // Every acceptor in [begin, end) is distinct, so `end - begin` bounds
    // the block's edges; reserving it once makes later rounds alloc-free.
    if (edges.capacity() < end - begin) edges.reserve(end - begin);
    for (NodeId v = static_cast<NodeId>(begin); v < static_cast<NodeId>(end); ++v) {
      if (coins.active[v]) continue;
      std::uint32_t probes = 0;
      NodeId prober = kInvalidNode;
      for (const NodeId u : g.neighbors(v)) {
        if (coins.probe[u] == v) {
          prober = u;
          if (++probes > 1) break;
        }
      }
      if (probes != 1) continue;
      out.partner[v] = prober;
      out.partner[prober] = v;
      edges.emplace_back(std::min(prober, v), std::max(prober, v));
    }
  });
  if (out.edges.capacity() < n / 2 + 1) out.edges.reserve(n / 2 + 1);
  for (std::size_t b = 0; b < blocks; ++b) {
    out.edges.insert(out.edges.end(), block_edges_[b].begin(), block_edges_[b].end());
  }
}

void MatchingGenerator::next_fused_fast(Matching& out) {
  const NodeId n = graph_->num_nodes();
  auto& active = round_coins_.active;
  active.resize(n);
  // One extra sink entry at index n lets the scatter store
  // unconditionally: an inactive node "probes" the sink instead of
  // taking a 50/50-unpredictable branch.  With virtual_degree == 0 the
  // drawn slot is always a real neighbour, so that is the only case a
  // probe can fail.
  if (probes_scratch_.size() != static_cast<std::size_t>(n) + 1) {
    probes_scratch_.assign(static_cast<std::size_t>(n) + 1, 0);
  }
  std::uint64_t* const probes = probes_scratch_.data();

  // Stage-pipelined flip: advance a block of RNG streams four at a time,
  // compute every lane's slot and prefetch its neighbour entry, then
  // read the targets and scatter.  Grouping the random adjacency reads
  // behind prefetches hides their cache latency; draws, Lemire rejection
  // handling, and scatter values match coin_from_draws lane for lane.
  constexpr NodeId kBlock = 32;
  alignas(32) std::uint64_t draw1[kBlock];
  alignas(32) std::uint64_t draw2[kBlock];
  const NodeId* addr[kBlock];
  bool act[kBlock];
  NodeId v = 0;
  for (; v + kBlock <= n; v += kBlock) {
    for (NodeId b = 0; b < kBlock; b += 4) {
      flip_draws4_(&node_rng_[v + b], &draw1[b], &draw2[b]);
    }
    for (NodeId b = 0; b < kBlock; ++b) {
      const NodeId node = v + b;
      const auto neighbors = graph_->neighbors(node);
      const std::uint64_t bound = neighbors.size();
      act[b] = draw1[b] < (1ULL << 63);
      std::uint64_t x = draw2[b];
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      auto lo = static_cast<std::uint64_t>(m);
      if (lo < bound) [[unlikely]] {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
          x = node_rng_[node].next();
          m = static_cast<__uint128_t>(x) * bound;
          lo = static_cast<std::uint64_t>(m);
        }
      }
      addr[b] = &neighbors[static_cast<std::size_t>(m >> 64)];
      __builtin_prefetch(addr[b], 0, 1);
    }
    for (NodeId b = 0; b < kBlock; ++b) {
      const NodeId node = v + b;
      active[node] = act[b] ? 1 : 0;
      const NodeId idx = act[b] ? *addr[b] : n;
      const std::uint64_t entry = probes[idx];
      probes[idx] = (((entry >> 32) + 1) << 32) | node;
    }
  }
  for (; v < n; ++v) {
    const NodeCoin coin = flip_node(v);
    active[v] = coin.active ? 1 : 0;
    if (coin.target != kInvalidNode) {
      const std::uint64_t entry = probes[coin.target];
      probes[coin.target] = (((entry >> 32) + 1) << 32) | v;
    }
  }

  const bool partners = !edges_only_;
  if (partners) out.partner.assign(n, kInvalidNode);
  out.edges.clear();
  if (out.edges.capacity() < n / 2 + 1) out.edges.reserve(n / 2 + 1);
  // Accept sweep: the kernel grades 64 nodes per call (probe count 1,
  // inactive); only candidate bits pay scalar work, and each block is
  // zeroed right after grading so the scratch is clean for the next
  // round.  Bits come out in ascending node order, so edges are still
  // emitted in increasing acceptor order — bit-identical to the scalar
  // sweep.
  NodeId base = 0;
  for (; base + 64 <= n; base += 64) {
    std::uint64_t mask = accept_mask64_(probes + base, active.data() + base);
    while (mask != 0) {
      const auto bit = static_cast<NodeId>(__builtin_ctzll(mask));
      mask &= mask - 1;
      const NodeId acceptor = base + bit;
      const auto u = static_cast<NodeId>(probes[acceptor]);
      if (partners) {
        out.partner[acceptor] = u;
        out.partner[u] = acceptor;
      }
      out.edges.emplace_back(std::min(u, acceptor), std::max(u, acceptor));
    }
    std::memset(probes + base, 0, 64 * sizeof(std::uint64_t));
  }
  for (; base < n; ++base) {
    const std::uint64_t entry = probes[base];
    probes[base] = 0;
    if (active[base] || (entry >> 32) != 1) continue;
    const auto u = static_cast<NodeId>(entry);
    if (partners) {
      out.partner[base] = u;
      out.partner[u] = base;
    }
    out.edges.emplace_back(std::min(u, base), std::max(u, base));
  }
  probes[n] = 0;
}

void MatchingGenerator::next(Matching& out) {
  if (pool_ != nullptr && pool_->size() > 1) {
    flip_round_coins(round_coins_);
    resolve(round_coins_, out);
    return;
  }
  if (options_.virtual_degree == 0 && !options_.degree_biased_activation) {
    next_fused_fast(out);
    return;
  }
  // Fused serial path: flip and scatter in one sweep, consuming each
  // node's probe straight from the registers — no probe array is written
  // or re-read, saving a full O(n) pass per round.  Draw order, scatter
  // order, and the accept sweep are identical to flip_round_coins +
  // resolve, so the matching is bit-identical to the unfused paths
  // (asserted by the protocol tests).
  const NodeId n = graph_->num_nodes();
  auto& active = round_coins_.active;
  active.resize(n);
  if (probes_scratch_.size() != n) probes_scratch_.assign(n, 0);
  // Same four-stream draw batching as flip_block, with each lane's probe
  // scattered straight from the registers.
  {
    alignas(32) std::uint64_t draw1[4];
    alignas(32) std::uint64_t draw2[4];
    NodeId v = 0;
    while (n - v >= 4) {
      flip_draws4_(&node_rng_[v], draw1, draw2);
      for (NodeId lane = 0; lane < 4; ++lane) {
        const NodeId node = v + lane;
        const NodeCoin coin = coin_from_draws(node, draw1[lane], draw2[lane]);
        active[node] = coin.active ? 1 : 0;
        if (coin.target != kInvalidNode) {
          const std::uint64_t entry = probes_scratch_[coin.target];
          probes_scratch_[coin.target] = (((entry >> 32) + 1) << 32) | node;
        }
      }
      v += 4;
    }
    for (; v < n; ++v) {
      const NodeCoin coin = flip_node(v);
      active[v] = coin.active ? 1 : 0;
      if (coin.target != kInvalidNode) {
        const std::uint64_t entry = probes_scratch_[coin.target];
        probes_scratch_[coin.target] = (((entry >> 32) + 1) << 32) | v;
      }
    }
  }
  const bool partners = !edges_only_;
  if (partners) out.partner.assign(n, kInvalidNode);
  out.edges.clear();
  if (out.edges.capacity() < n / 2 + 1) out.edges.reserve(n / 2 + 1);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t entry = probes_scratch_[v];
    probes_scratch_[v] = 0;
    if (active[v] || (entry >> 32) != 1) continue;
    const NodeId u = static_cast<NodeId>(entry);
    if (partners) {
      out.partner[v] = u;
      out.partner[u] = v;
    }
    out.edges.emplace_back(std::min(u, v), std::max(u, v));
  }
}

Matching MatchingGenerator::next() {
  Matching m;
  next(m);
  return m;
}

}  // namespace dgc::matching
