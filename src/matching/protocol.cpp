#include "matching/protocol.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace dgc::matching {

using graph::kInvalidNode;
using graph::NodeId;

bool Matching::valid(const graph::Graph& g) const {
  if (partner.size() != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId u = partner[v];
    if (u == kInvalidNode) continue;
    if (u >= g.num_nodes() || u == v) return false;
    if (partner[u] != v) return false;
    if (!g.has_edge(u, v)) return false;
  }
  for (const auto& [a, b] : edges) {
    if (a >= b) return false;
    if (partner[a] != b || partner[b] != a) return false;
  }
  // Every matched node appears in exactly one edge.
  std::size_t matched = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (partner[v] != kInvalidNode) ++matched;
  }
  return matched == 2 * edges.size();
}

MatchingGenerator::MatchingGenerator(const graph::Graph& g, std::uint64_t seed,
                                     ProtocolOptions options)
    : graph_(&g), options_(options) {
  DGC_REQUIRE(g.num_nodes() > 0, "empty graph");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
  if (options_.virtual_degree != 0) {
    DGC_REQUIRE(options_.virtual_degree >= g.max_degree(),
                "virtual_degree must cover the maximum degree");
  }
  DGC_REQUIRE(!options_.degree_biased_activation || options_.virtual_degree != 0,
              "degree-biased activation needs a virtual degree D");
  util::Rng master(seed);
  node_rng_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) node_rng_.push_back(master.fork(v));
}

MatchingGenerator::Coins MatchingGenerator::flip_round_coins() {
  const NodeId n = graph_->num_nodes();
  Coins coins;
  coins.active.assign(n, 0);
  coins.probe.assign(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    auto& rng = node_rng_[v];
    const std::size_t degree = graph_->degree(v);
    const std::size_t slots =
        options_.virtual_degree == 0 ? degree : options_.virtual_degree;

    double activation = 0.5;
    if (options_.degree_biased_activation) {
      const double dd = static_cast<double>(slots);
      activation = 0.5 + (dd - static_cast<double>(degree)) / (2.0 * dd);
    }
    // Every node burns exactly two draws per round regardless of the
    // branch taken, so RNG streams stay aligned across protocol variants.
    const bool active = rng.next_bool(activation);
    const std::size_t slot = rng.next_below(slots);
    coins.active[v] = active ? 1 : 0;
    if (active && slot < degree) {
      coins.probe[v] = graph_->neighbors(v)[slot];
    }
  }
  return coins;
}

Matching MatchingGenerator::resolve(const graph::Graph& g, const Coins& coins) {
  const NodeId n = g.num_nodes();
  DGC_REQUIRE(coins.active.size() == n && coins.probe.size() == n, "coin size mismatch");
  std::vector<std::uint32_t> probes_received(n, 0);
  std::vector<NodeId> prober(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId target = coins.probe[v];
    if (target == kInvalidNode) continue;
    ++probes_received[target];
    prober[target] = v;
  }
  Matching m;
  m.partner.assign(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (coins.active[v] || probes_received[v] != 1) continue;
    const NodeId u = prober[v];
    // u is active (it probed) so it cannot itself accept a probe; the
    // pair (u, v) is therefore conflict-free.
    m.partner[v] = u;
    m.partner[u] = v;
    m.edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(m.edges.begin(), m.edges.end());
  return m;
}

Matching MatchingGenerator::next() { return resolve(*graph_, flip_round_coins()); }

}  // namespace dgc::matching
