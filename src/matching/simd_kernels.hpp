// Runtime-dispatched SIMD kernels for the matching hot path.
//
// Two families live here, both with the same contract: the AVX2 variant
// and the scalar fallback produce bit-identical results, so picking one
// at runtime is pure scheduling (the EngineEquivalence grid asserts it).
//
//   * λ-averaging kernels: the per-pair row averages of MultiLoadState.
//     Both variants evaluate the same IEEE expression — 0.5·(a+b), or
//     keep·x_u + λ·x_v — as separate multiplies and adds.  Neither side
//     may contract mul+add into an FMA: the scalar build targets baseline
//     x86-64 (no FMA instruction exists to contract into) and the AVX2
//     kernels are compiled under target("avx2"), which deliberately does
//     NOT enable FMA (a separate CPU feature).  Same ops, same order,
//     same rounding ⇒ same bits.
//
//   * Batched coin draws: advances four consecutive xoshiro256++ node
//     streams by exactly two next() calls each.  The generator's streams
//     are mutually independent, so stepping four of them in SIMD lanes
//     (a 4×4 transpose of the state words, then the identical add/xor/
//     shift/rotate sequence per lane) yields precisely the draws four
//     scalar calls would — integer ops have no rounding to disagree on.
//
// Kernel selection: callers pass `use_simd`; the AVX2 variant is
// returned only when the build carries it (x86-64, not -DDGC_NO_AVX2)
// AND the CPU reports AVX2 at runtime.  Everything else — including the
// CI leg built with -mno-avx2 -DDGC_NO_AVX2 — gets the scalar fallback.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dgc::util {
class Rng;
}

namespace dgc::matching::simd {

/// In-place pair average: ru[i] = rv[i] = 0.5·(ru[i] + rv[i]).
using AvgHalfFn = void (*)(double* ru, double* rv, std::size_t dims);
/// In-place λ-partial average: ru' = keep·ru + λ·rv, rv' = keep·rv + λ·ru.
using AvgLambdaFn = void (*)(double* ru, double* rv, std::size_t dims, double lambda);
/// Advances rngs[0..3] by exactly two next() draws each; draw1[l] and
/// draw2[l] receive lane l's first and second draw.
using FlipDraws4Fn = void (*)(util::Rng* rngs, std::uint64_t* draw1,
                              std::uint64_t* draw2);
/// Acceptance candidates for 64 consecutive nodes of a resolve sweep:
/// bit i is set iff probes[i] has probe count exactly 1 (high 32 bits)
/// AND active[i] == 0.  Pure read — the caller still extracts the prober
/// from each candidate's entry and zeroes the block afterwards.  The
/// mask is a deterministic function of the inputs, so the AVX2 and
/// scalar variants agree bit for bit (integer compares, no rounding).
using AcceptMask64Fn = std::uint64_t (*)(const std::uint64_t* probes,
                                         const char* active);

/// True when this build carries AVX2 kernels and the CPU supports them.
[[nodiscard]] bool avx2_available() noexcept;

/// "avx2" or "scalar" — what the selectors below would hand back.
[[nodiscard]] const char* kernel_name(bool use_simd) noexcept;

[[nodiscard]] AvgHalfFn avg_half_kernel(bool use_simd) noexcept;
[[nodiscard]] AvgLambdaFn avg_lambda_kernel(bool use_simd) noexcept;
[[nodiscard]] FlipDraws4Fn flip_draws4_kernel(bool use_simd) noexcept;
[[nodiscard]] AcceptMask64Fn accept_mask64_kernel(bool use_simd) noexcept;

}  // namespace dgc::matching::simd
