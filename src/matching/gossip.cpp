#include "matching/gossip.hpp"

#include "util/require.hpp"

namespace dgc::matching {

AsyncGossip::AsyncGossip(const graph::Graph& g, std::uint64_t seed)
    : graph_(&g), rng_(seed) {
  DGC_REQUIRE(g.num_nodes() > 1, "graph too small");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
}

void AsyncGossip::tick(MultiLoadState& state) {
  DGC_REQUIRE(state.num_nodes() == graph_->num_nodes(), "state size mismatch");
  const auto v = static_cast<graph::NodeId>(rng_.next_below(graph_->num_nodes()));
  const auto nbrs = graph_->neighbors(v);
  const graph::NodeId u = nbrs[rng_.next_below(nbrs.size())];
  state.average_pair(v, u);
  ++exchanges_;
}

void AsyncGossip::run(MultiLoadState& state, std::size_t ticks) {
  for (std::size_t t = 0; t < ticks; ++t) tick(state);
}

RumorSpreading::RumorSpreading(const graph::Graph& g, std::uint64_t seed)
    : graph_(&g), rng_(seed) {
  DGC_REQUIRE(g.num_nodes() > 0, "empty graph");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
  informed_.assign(g.num_nodes(), 0);
}

void RumorSpreading::start(graph::NodeId source) {
  DGC_REQUIRE(source < graph_->num_nodes(), "source out of range");
  std::fill(informed_.begin(), informed_.end(), 0);
  informed_[source] = 1;
  informed_count_ = 1;
}

std::size_t RumorSpreading::round() {
  DGC_REQUIRE(informed_count_ > 0, "call start() first");
  const graph::NodeId n = graph_->num_nodes();
  std::vector<char> next = informed_;
  std::size_t newly = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto nbrs = graph_->neighbors(v);
    const graph::NodeId target = nbrs[rng_.next_below(nbrs.size())];
    if (informed_[v] && !next[target]) {
      next[target] = 1;  // push
      ++newly;
    } else if (!informed_[v] && informed_[target] && !next[v]) {
      next[v] = 1;  // pull
      ++newly;
    }
  }
  informed_ = std::move(next);
  informed_count_ += newly;
  return newly;
}

bool RumorSpreading::informed(graph::NodeId v) const {
  DGC_REQUIRE(v < graph_->num_nodes(), "node out of range");
  return informed_[v] != 0;
}

std::size_t RumorSpreading::informed_within(std::span<const graph::NodeId> members) const {
  std::size_t count = 0;
  for (const auto v : members) {
    DGC_REQUIRE(v < graph_->num_nodes(), "member out of range");
    count += informed_[v] != 0;
  }
  return count;
}

std::size_t RumorSpreading::rounds_to_saturation(const graph::Graph& g,
                                                 graph::NodeId source, std::uint64_t seed,
                                                 std::size_t max_rounds) {
  RumorSpreading process(g, seed);
  process.start(source);
  for (std::size_t t = 1; t <= max_rounds; ++t) {
    process.round();
    if (process.informed_count() == g.num_nodes()) return t;
  }
  return max_rounds;
}

}  // namespace dgc::matching
