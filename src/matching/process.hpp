// Drivers for the load-balancing processes analysed in §4:
//  * run_process      — the real random-matching process (x ← M(t) x)
//  * run_lazy_walk    — the expectation reference: x ← E[M] x per round,
//                       i.e. the lazy random walk of Lemma 2.1
//  * trajectory_1d    — 1-D process recording per-round snapshots, used
//                       by the Lemma 4.1 early-behaviour experiment (E6)
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "matching/load_state.hpp"
#include "matching/protocol.hpp"
#include "matching/schedule.hpp"

namespace dgc::util {
class ThreadPool;
}

namespace dgc::matching {

/// Statistics of one run of the matching process.
struct ProcessStats {
  std::size_t rounds = 0;
  std::size_t total_matched_edges = 0;   ///< sum over rounds of |M(t)|
  double mean_matched_fraction = 0.0;    ///< mean of |M(t)| / (n/2)
};

/// Runs `rounds` rounds of the random matching process on `state`.
/// `on_round(t, matching)` is invoked after each application (t from 1).
ProcessStats run_process(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t rounds,
    const std::function<void(std::size_t, const Matching&)>& on_round = {});

/// Generalised driver: draws one matching per round and delegates its
/// application to `apply(t, matching)` — the sharded engine splits and
/// parallelises it — while keeping the ProcessStats accounting in one
/// place so every engine reports identical statistics.
ProcessStats run_process(MatchingGenerator& generator, std::size_t rounds,
                         const std::function<void(std::size_t, const Matching&)>& apply);

/// Resumable window of the matching process: runs global rounds
/// first_round+1 .. last_round (the generator must already be advanced
/// past first_round, e.g. via MatchingGenerator::skip_rounds).
/// `on_round(t, matching)` is invoked after each application with the
/// *global* round number; returning false stops after that round (the
/// matching was already applied — round t is complete).  Stats count
/// only the rounds actually executed here, so a resumed run's stats
/// cover its own window.
ProcessStats run_process_range(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t first_round,
    std::size_t last_round,
    const std::function<bool(std::size_t, const Matching&)>& on_round = {});

/// Generalised range driver: delegates application to `apply` like the
/// run_process overload above, with the same stop-capable callback.
ProcessStats run_process_range(
    MatchingGenerator& generator, std::size_t first_round, std::size_t last_round,
    const std::function<void(std::size_t, const Matching&)>& apply,
    const std::function<bool(std::size_t, const Matching&)>& on_round = {});

/// Wall-clock accumulators for the windowed driver (observability;
/// engines surface them in the run summary).  `schedule` covers drawing
/// the window's matchings — coin flips and resolution, fused on the fast
/// path — `apply` the structural pre-pass plus the striped replay.
struct ProcessPhaseTimes {
  double schedule_seconds = 0.0;
  double apply_seconds = 0.0;
};

/// Execution plan for run_process_windowed.  Pure scheduling, like
/// HotPathOptions: every field combination yields bit-identical state.
struct WindowPlan {
  /// Rounds scheduled ahead per window (W >= 1).
  std::size_t window = 8;
  /// Dimension-stripe width of the tiled apply (0 = one stripe of all
  /// dimensions).  An n × tile stripe should fit the private cache.
  std::size_t tile_cols = 0;
  /// Workers for stripe ownership: each stripe is applied by one worker,
  /// with a single barrier per window (null = serial stripes).
  util::ThreadPool* pool = nullptr;
  /// Close windows at multiples of this round cadence so the checkpoint
  /// hook fires exactly where the per-round driver would save (0 = off).
  std::size_t checkpoint_every = 0;
  /// Close a window at this global round (the stop_after_round hook).
  std::size_t stop_after_round = 0;
  /// λ source for weighted schedules; must be the state's weighted graph
  /// (null = unweighted 1/2 averaging).
  const graph::Graph* weighted_graph = nullptr;
  /// Optional phase-time sink.
  ProcessPhaseTimes* phases = nullptr;
};

/// Schedule-ahead window executor: runs global rounds first_round+1 ..
/// last_round in windows of plan.window rounds — each window drawn into
/// a RoundSchedule in one fused pass, then replayed per dimension stripe
/// (see matching/schedule.hpp for the bit-identity argument).  Windows
/// close early at checkpoint cadence rounds and at stop_after_round, so
/// `on_window(t)`, called after the window ending at global round t,
/// fires at every round the per-round driver's checkpoint hook would
/// save at; returning false stops the run (round t is complete).  The
/// cooperative stop flag is therefore observed with at most plan.window
/// rounds of latency.  `on_schedule_round(t, matching)` sees every drawn
/// matching in global round order, before packing (the sharded engine
/// meters cross-shard traffic from it).  Stats match the per-round
/// drivers exactly: they count the as-drawn |M(t)|, in round order.
ProcessStats run_process_windowed(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t first_round,
    std::size_t last_round, const WindowPlan& plan,
    const std::function<void(std::size_t, const Matching&)>& on_schedule_round = {},
    const std::function<bool(std::size_t)>& on_window = {});

/// Applies the *expected* matching matrix E[M] = (1−d̄/4)I + (d̄/4)P for
/// `rounds` rounds to an n-vector (regular graphs only).
[[nodiscard]] std::vector<double> run_lazy_walk(const graph::Graph& g,
                                                std::vector<double> x,
                                                std::size_t rounds);

/// 1-D process from initial vector x, recording ||snapshots|| on demand:
/// returns the state after every round (rounds+1 snapshots incl. t=0).
[[nodiscard]] std::vector<std::vector<double>> trajectory_1d(MatchingGenerator& generator,
                                                             std::vector<double> x,
                                                             std::size_t rounds);

}  // namespace dgc::matching
