// Drivers for the load-balancing processes analysed in §4:
//  * run_process      — the real random-matching process (x ← M(t) x)
//  * run_lazy_walk    — the expectation reference: x ← E[M] x per round,
//                       i.e. the lazy random walk of Lemma 2.1
//  * trajectory_1d    — 1-D process recording per-round snapshots, used
//                       by the Lemma 4.1 early-behaviour experiment (E6)
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "matching/load_state.hpp"
#include "matching/protocol.hpp"

namespace dgc::matching {

/// Statistics of one run of the matching process.
struct ProcessStats {
  std::size_t rounds = 0;
  std::size_t total_matched_edges = 0;   ///< sum over rounds of |M(t)|
  double mean_matched_fraction = 0.0;    ///< mean of |M(t)| / (n/2)
};

/// Runs `rounds` rounds of the random matching process on `state`.
/// `on_round(t, matching)` is invoked after each application (t from 1).
ProcessStats run_process(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t rounds,
    const std::function<void(std::size_t, const Matching&)>& on_round = {});

/// Generalised driver: draws one matching per round and delegates its
/// application to `apply(t, matching)` — the sharded engine splits and
/// parallelises it — while keeping the ProcessStats accounting in one
/// place so every engine reports identical statistics.
ProcessStats run_process(MatchingGenerator& generator, std::size_t rounds,
                         const std::function<void(std::size_t, const Matching&)>& apply);

/// Resumable window of the matching process: runs global rounds
/// first_round+1 .. last_round (the generator must already be advanced
/// past first_round, e.g. via MatchingGenerator::skip_rounds).
/// `on_round(t, matching)` is invoked after each application with the
/// *global* round number; returning false stops after that round (the
/// matching was already applied — round t is complete).  Stats count
/// only the rounds actually executed here, so a resumed run's stats
/// cover its own window.
ProcessStats run_process_range(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t first_round,
    std::size_t last_round,
    const std::function<bool(std::size_t, const Matching&)>& on_round = {});

/// Generalised range driver: delegates application to `apply` like the
/// run_process overload above, with the same stop-capable callback.
ProcessStats run_process_range(
    MatchingGenerator& generator, std::size_t first_round, std::size_t last_round,
    const std::function<void(std::size_t, const Matching&)>& apply,
    const std::function<bool(std::size_t, const Matching&)>& on_round = {});

/// Applies the *expected* matching matrix E[M] = (1−d̄/4)I + (d̄/4)P for
/// `rounds` rounds to an n-vector (regular graphs only).
[[nodiscard]] std::vector<double> run_lazy_walk(const graph::Graph& g,
                                                std::vector<double> x,
                                                std::size_t rounds);

/// 1-D process from initial vector x, recording ||snapshots|| on demand:
/// returns the state after every round (rounds+1 snapshots incl. t=0).
[[nodiscard]] std::vector<std::vector<double>> trajectory_1d(MatchingGenerator& generator,
                                                             std::vector<double> x,
                                                             std::size_t rounds);

}  // namespace dgc::matching
