// Discrete (indivisible-token) load balancing in the matching model with
// randomized rounding — the Berenbrink et al. / Friedrich–Sauerwald
// variant the paper cites ([4], [15]).  Matched pairs split their token
// sum evenly; an odd token goes to either endpoint by a fair coin
// ("randomized rounding"), which keeps the process unbiased:
// E[tokens after] equals the continuous average.
//
// Included as an extension study: the clustering algorithm works with
// continuous loads, and this module quantifies what indivisibility costs
// (discrepancy stalls at O(1) instead of vanishing — see the tests and
// bench E13).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "matching/protocol.hpp"
#include "util/rng.hpp"

namespace dgc::matching {

/// Integer token vector balanced over random matchings.
class DiscreteLoadState {
 public:
  DiscreteLoadState(std::size_t num_nodes, std::uint64_t seed);

  void set(graph::NodeId v, std::int64_t tokens);
  [[nodiscard]] std::int64_t at(graph::NodeId v) const;

  /// Applies a matching: each matched pair rebalances to
  /// ⌊(a+b)/2⌋ / ⌈(a+b)/2⌉ with the extra token placed by a fair coin.
  void apply(const Matching& m);

  /// Sum of all tokens — invariant under apply().
  [[nodiscard]] std::int64_t total() const;

  /// max_v tokens − min_v tokens.
  [[nodiscard]] std::int64_t discrepancy() const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return tokens_.size(); }

 private:
  std::vector<std::int64_t> tokens_;
  util::Rng rng_;
};

}  // namespace dgc::matching
