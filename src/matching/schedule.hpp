// Schedule-ahead round windows: precomputed matching schedules.
//
// The protocol's central structural property (§2.2; the basis of
// checkpoint replay too) is that the matching of round t is a pure
// function of (graph, seed, t) — coins never read the load values.  So
// a *window* of W rounds of matchings can be materialised up front, in
// one fused pass over the generator, and the load updates replayed from
// the packed schedule afterwards, in any per-dimension order:
//
//   * per round the matched pairs are pairwise row-disjoint (it is a
//     matching), so within one round any application order is exact;
//   * across rounds each of the s load dimensions evolves independently
//     (averaging mixes rows, never columns), so replaying the whole
//     window for one dimension stripe [d0, d1) at a time performs the
//     same float operations in the same order per dimension as the
//     interleaved per-round loop — bit for bit.
//
// That second point is what the tiled apply path exploits
// (MultiLoadState::apply_window_stripe): an n × tile stripe of the load
// matrix stays cache-resident across all W rounds, cutting steady-state
// memory traffic from O(W·n·s) to O(schedule + n·s), and thread
// parallelism moves from per-round pair splitting to stripe ownership
// with one barrier per window instead of per round.
//
// Layout: one flat u32 array with two entries per pair, plus per-round
// CSR offsets; weighted graphs carry a per-pair λ = w/(2·w_max) so the
// apply never re-derives edge weights.  After MultiLoadState::
// prepare_window the pair entries are *storage row indices* (node ids in
// dense mode, packed slots in sparse mode) and exact no-op pairs (both
// rows all-+0.0) are dropped; `matched` keeps the as-drawn per-round
// |M(t)| so ProcessStats accounting is independent of the filtering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "matching/protocol.hpp"

namespace dgc::matching {

struct RoundSchedule {
  /// Global rounds covered: first_round+1 .. first_round+rounds().
  std::size_t first_round = 0;
  /// Per-round CSR offsets into `pairs` (in pair units); size rounds()+1.
  std::vector<std::size_t> offsets;
  /// Two entries per pair.  Node ids as built; storage row indices after
  /// MultiLoadState::prepare_window rewrote them.
  std::vector<std::uint32_t> pairs;
  /// Per-pair λ for weighted graphs (empty = unweighted, λ = 1/2).
  std::vector<double> lambda;
  /// As-drawn |M(t)| per round, before no-op filtering (stats source).
  std::vector<std::uint32_t> matched;

  [[nodiscard]] std::size_t rounds() const noexcept { return matched.size(); }
  [[nodiscard]] std::size_t pair_count() const noexcept { return pairs.size() / 2; }
};

/// Draws `window` consecutive matchings from `generator` (which must be
/// advanced exactly past `first_round` global rounds) and packs them.
/// Owns a Matching scratch so steady-state windows reuse all capacity.
class ScheduleBuilder {
 public:
  /// `weighted_graph` non-null enables the per-pair λ column, computed
  /// as edge_weight(u,v) / (2·max_weight) — the exact expression
  /// MultiLoadState::average_pair evaluates, so the packed λ reproduces
  /// the per-round path bit for bit.  `on_round(t, matching)` (optional)
  /// sees every freshly drawn matching with its global round number —
  /// the sharded engine meters per-round cross-shard traffic from it.
  void build(MatchingGenerator& generator, std::size_t first_round, std::size_t window,
             const graph::Graph* weighted_graph, RoundSchedule& out,
             const std::function<void(std::size_t, const Matching&)>& on_round = {});

 private:
  Matching scratch_;
};

}  // namespace dgc::matching
