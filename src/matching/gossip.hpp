// Other gossip processes on the same substrate — the paper's abstract
// suggests its algebraic tool "can be further applied to analyse other
// gossip processes, such as rumour spreading and averaging processes".
// This header provides the two canonical ones for the extension study
// (bench E13):
//
//  * AsyncGossip — Boyd et al.'s asynchronous pairwise averaging: at
//    every tick one uniformly random node wakes and averages (all load
//    dimensions) with one uniformly random neighbour.  n ticks are the
//    natural unit comparable to one synchronous matching round.
//
//  * RumorSpreading — synchronous push–pull: every round, every informed
//    node pushes the rumour to a random neighbour, and every uninformed
//    node pulls from a random neighbour.  On clustered graphs a rumour
//    saturates its own cluster before crossing the sparse cut — the same
//    early/late behaviour split that drives the clustering algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "matching/load_state.hpp"
#include "util/rng.hpp"

namespace dgc::matching {

/// Asynchronous pairwise averaging gossip.
class AsyncGossip {
 public:
  AsyncGossip(const graph::Graph& g, std::uint64_t seed);

  /// One wake-up: a random node averages with a random neighbour.
  void tick(MultiLoadState& state);

  /// Runs `ticks` wake-ups.
  void run(MultiLoadState& state, std::size_t ticks);

  [[nodiscard]] std::size_t total_exchanges() const noexcept { return exchanges_; }

 private:
  const graph::Graph* graph_;
  util::Rng rng_;
  std::size_t exchanges_ = 0;
};

/// Synchronous push–pull rumour spreading.
class RumorSpreading {
 public:
  RumorSpreading(const graph::Graph& g, std::uint64_t seed);

  /// Starts the rumour at `source` (resets any previous run).
  void start(graph::NodeId source);

  /// One synchronous push–pull round; returns newly informed count.
  std::size_t round();

  [[nodiscard]] bool informed(graph::NodeId v) const;
  [[nodiscard]] std::size_t informed_count() const noexcept { return informed_count_; }

  /// Informed nodes within `members` (for per-cluster saturation curves).
  [[nodiscard]] std::size_t informed_within(std::span<const graph::NodeId> members) const;

  /// Rounds until everyone is informed (capped), from `source`.
  [[nodiscard]] static std::size_t rounds_to_saturation(const graph::Graph& g,
                                                        graph::NodeId source,
                                                        std::uint64_t seed,
                                                        std::size_t max_rounds);

 private:
  const graph::Graph* graph_;
  util::Rng rng_;
  std::vector<char> informed_;
  std::size_t informed_count_ = 0;
};

}  // namespace dgc::matching
