#include "matching/process.hpp"

#include <algorithm>

#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dgc::matching {

ProcessStats run_process(MatchingGenerator& generator, MultiLoadState& state,
                         std::size_t rounds,
                         const std::function<void(std::size_t, const Matching&)>& on_round) {
  DGC_REQUIRE(generator.graph().num_nodes() == state.num_nodes(),
              "generator/state node count mismatch");
  return run_process(generator, rounds, [&](std::size_t t, const Matching& m) {
    state.apply(m);
    if (on_round) on_round(t, m);
  });
}

ProcessStats run_process(MatchingGenerator& generator, std::size_t rounds,
                         const std::function<void(std::size_t, const Matching&)>& apply) {
  ProcessStats stats;
  stats.rounds = rounds;
  const double half_n = static_cast<double>(generator.graph().num_nodes()) / 2.0;
  Matching m;  // hoisted: rounds refill it in place, allocation-free after round 1
  for (std::size_t t = 1; t <= rounds; ++t) {
    generator.next(m);
    apply(t, m);
    stats.total_matched_edges += m.edges.size();
    stats.mean_matched_fraction += static_cast<double>(m.edges.size()) / half_n;
  }
  if (rounds > 0) stats.mean_matched_fraction /= static_cast<double>(rounds);
  return stats;
}

ProcessStats run_process_range(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t first_round,
    std::size_t last_round,
    const std::function<bool(std::size_t, const Matching&)>& on_round) {
  DGC_REQUIRE(generator.graph().num_nodes() == state.num_nodes(),
              "generator/state node count mismatch");
  return run_process_range(
      generator, first_round, last_round,
      [&](std::size_t, const Matching& m) { state.apply(m); }, on_round);
}

ProcessStats run_process_range(
    MatchingGenerator& generator, std::size_t first_round, std::size_t last_round,
    const std::function<void(std::size_t, const Matching&)>& apply,
    const std::function<bool(std::size_t, const Matching&)>& on_round) {
  DGC_REQUIRE(first_round <= last_round, "round window is inverted");
  ProcessStats stats;
  const double half_n = static_cast<double>(generator.graph().num_nodes()) / 2.0;
  Matching m;
  for (std::size_t t = first_round + 1; t <= last_round; ++t) {
    generator.next(m);
    apply(t, m);
    stats.rounds += 1;
    stats.total_matched_edges += m.edges.size();
    stats.mean_matched_fraction += static_cast<double>(m.edges.size()) / half_n;
    if (on_round && !on_round(t, m)) break;
  }
  if (stats.rounds > 0) stats.mean_matched_fraction /= static_cast<double>(stats.rounds);
  return stats;
}

ProcessStats run_process_windowed(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t first_round,
    std::size_t last_round, const WindowPlan& plan,
    const std::function<void(std::size_t, const Matching&)>& on_schedule_round,
    const std::function<bool(std::size_t)>& on_window) {
  DGC_REQUIRE(first_round <= last_round, "round window is inverted");
  DGC_REQUIRE(generator.graph().num_nodes() == state.num_nodes(),
              "generator/state node count mismatch");
  DGC_REQUIRE(plan.window > 0, "schedule window must cover at least one round");
  ProcessStats stats;
  const double half_n = static_cast<double>(generator.graph().num_nodes()) / 2.0;
  const std::size_t dims = state.dimensions();
  const std::size_t tile =
      plan.tile_cols == 0 ? dims : std::min(std::max<std::size_t>(plan.tile_cols, 1), dims);
  const std::size_t stripes = (dims + tile - 1) / tile;
  ScheduleBuilder builder;
  RoundSchedule sched;  // hoisted: windows reuse its capacity
  util::Timer phase;
  std::size_t r = first_round;
  while (r < last_round) {
    std::size_t end = std::min(last_round, r + plan.window);
    if (plan.checkpoint_every > 0) {
      const std::size_t next_save = (r / plan.checkpoint_every + 1) * plan.checkpoint_every;
      end = std::min(end, next_save);
    }
    if (plan.stop_after_round > r) end = std::min(end, plan.stop_after_round);

    if (plan.phases != nullptr) phase.reset();
    builder.build(generator, r, end - r, plan.weighted_graph, sched, on_schedule_round);
    if (plan.phases != nullptr) {
      plan.phases->schedule_seconds += phase.seconds();
      phase.reset();
    }

    // The same round-boundary hook the per-round engines call (sparse
    // densify trigger + slot pre-reserve); prepare_window then advances
    // the flags through the whole window and rewrites the schedule to
    // storage rows, so the stripes below are pure disjoint-column replay.
    state.update_mode();
    state.prepare_window(sched);
    if (plan.pool != nullptr && stripes > 1) {
      plan.pool->parallel_for(stripes, [&](std::size_t stripe) {
        const std::size_t d0 = stripe * tile;
        state.apply_window_stripe(sched, d0, std::min(dims, d0 + tile));
      });
    } else {
      for (std::size_t d0 = 0; d0 < dims; d0 += tile) {
        state.apply_window_stripe(sched, d0, std::min(dims, d0 + tile));
      }
    }
    if (plan.phases != nullptr) plan.phases->apply_seconds += phase.seconds();

    // Identical accounting to the per-round drivers: as-drawn |M(t)|,
    // accumulated in round order.
    for (const std::uint32_t m : sched.matched) {
      stats.rounds += 1;
      stats.total_matched_edges += m;
      stats.mean_matched_fraction += static_cast<double>(m) / half_n;
    }
    r = end;
    if (on_window && !on_window(r)) break;
  }
  if (stats.rounds > 0) stats.mean_matched_fraction /= static_cast<double>(stats.rounds);
  return stats;
}

std::vector<double> run_lazy_walk(const graph::Graph& g, std::vector<double> x,
                                  std::size_t rounds) {
  const linalg::WalkOperator op(g);
  DGC_REQUIRE(x.size() == op.dimension(), "vector size mismatch");
  const double gamma = op.d_bar() / 4.0;
  std::vector<double> next(x.size());
  for (std::size_t t = 0; t < rounds; ++t) {
    op.apply_lazy_walk(x, next, gamma);
    x.swap(next);
  }
  return x;
}

std::vector<std::vector<double>> trajectory_1d(MatchingGenerator& generator,
                                               std::vector<double> x, std::size_t rounds) {
  const std::size_t n = generator.graph().num_nodes();
  DGC_REQUIRE(x.size() == n, "vector size mismatch");
  MultiLoadState state(n, 1);
  for (graph::NodeId v = 0; v < n; ++v) state.set(v, 0, x[v]);
  std::vector<std::vector<double>> snapshots;
  snapshots.reserve(rounds + 1);
  snapshots.push_back(state.column(0));
  run_process(generator, state, rounds, [&](std::size_t, const Matching&) {
    snapshots.push_back(state.column(0));
  });
  return snapshots;
}

}  // namespace dgc::matching
