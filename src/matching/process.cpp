#include "matching/process.hpp"

#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"

namespace dgc::matching {

ProcessStats run_process(MatchingGenerator& generator, MultiLoadState& state,
                         std::size_t rounds,
                         const std::function<void(std::size_t, const Matching&)>& on_round) {
  DGC_REQUIRE(generator.graph().num_nodes() == state.num_nodes(),
              "generator/state node count mismatch");
  return run_process(generator, rounds, [&](std::size_t t, const Matching& m) {
    state.apply(m);
    if (on_round) on_round(t, m);
  });
}

ProcessStats run_process(MatchingGenerator& generator, std::size_t rounds,
                         const std::function<void(std::size_t, const Matching&)>& apply) {
  ProcessStats stats;
  stats.rounds = rounds;
  const double half_n = static_cast<double>(generator.graph().num_nodes()) / 2.0;
  Matching m;  // hoisted: rounds refill it in place, allocation-free after round 1
  for (std::size_t t = 1; t <= rounds; ++t) {
    generator.next(m);
    apply(t, m);
    stats.total_matched_edges += m.edges.size();
    stats.mean_matched_fraction += static_cast<double>(m.edges.size()) / half_n;
  }
  if (rounds > 0) stats.mean_matched_fraction /= static_cast<double>(rounds);
  return stats;
}

ProcessStats run_process_range(
    MatchingGenerator& generator, MultiLoadState& state, std::size_t first_round,
    std::size_t last_round,
    const std::function<bool(std::size_t, const Matching&)>& on_round) {
  DGC_REQUIRE(generator.graph().num_nodes() == state.num_nodes(),
              "generator/state node count mismatch");
  return run_process_range(
      generator, first_round, last_round,
      [&](std::size_t, const Matching& m) { state.apply(m); }, on_round);
}

ProcessStats run_process_range(
    MatchingGenerator& generator, std::size_t first_round, std::size_t last_round,
    const std::function<void(std::size_t, const Matching&)>& apply,
    const std::function<bool(std::size_t, const Matching&)>& on_round) {
  DGC_REQUIRE(first_round <= last_round, "round window is inverted");
  ProcessStats stats;
  const double half_n = static_cast<double>(generator.graph().num_nodes()) / 2.0;
  Matching m;
  for (std::size_t t = first_round + 1; t <= last_round; ++t) {
    generator.next(m);
    apply(t, m);
    stats.rounds += 1;
    stats.total_matched_edges += m.edges.size();
    stats.mean_matched_fraction += static_cast<double>(m.edges.size()) / half_n;
    if (on_round && !on_round(t, m)) break;
  }
  if (stats.rounds > 0) stats.mean_matched_fraction /= static_cast<double>(stats.rounds);
  return stats;
}

std::vector<double> run_lazy_walk(const graph::Graph& g, std::vector<double> x,
                                  std::size_t rounds) {
  const linalg::WalkOperator op(g);
  DGC_REQUIRE(x.size() == op.dimension(), "vector size mismatch");
  const double gamma = op.d_bar() / 4.0;
  std::vector<double> next(x.size());
  for (std::size_t t = 0; t < rounds; ++t) {
    op.apply_lazy_walk(x, next, gamma);
    x.swap(next);
  }
  return x;
}

std::vector<std::vector<double>> trajectory_1d(MatchingGenerator& generator,
                                               std::vector<double> x, std::size_t rounds) {
  const std::size_t n = generator.graph().num_nodes();
  DGC_REQUIRE(x.size() == n, "vector size mismatch");
  MultiLoadState state(n, 1);
  for (graph::NodeId v = 0; v < n; ++v) state.set(v, 0, x[v]);
  std::vector<std::vector<double>> snapshots;
  snapshots.reserve(rounds + 1);
  snapshots.push_back(state.column(0));
  run_process(generator, state, rounds, [&](std::size_t, const Matching&) {
    snapshots.push_back(state.column(0));
  });
  return snapshots;
}

}  // namespace dgc::matching
