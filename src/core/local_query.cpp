#include "core/local_query.hpp"

#include <cmath>

#include "core/clusterer.hpp"
#include "linalg/vector_ops.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"
#include "matching/protocol.hpp"
#include "util/require.hpp"

namespace dgc::core {

LocalQueryResult same_cluster_query(const graph::Graph& g, graph::NodeId u,
                                    graph::NodeId v, const LocalQueryConfig& config) {
  DGC_REQUIRE(u < g.num_nodes() && v < g.num_nodes(), "node out of range");
  DGC_REQUIRE(u != v, "query nodes must be distinct");
  DGC_REQUIRE(config.rounds > 0, "rounds must be set (use recommended_rounds)");
  DGC_REQUIRE(config.beta > 0.0 && config.beta <= 0.5, "beta must be in (0, 0.5]");

  const std::size_t n = g.num_nodes();
  matching::MultiLoadState state(n, 2);
  state.set(u, 0, 1.0);
  state.set(v, 1, 1.0);
  matching::MatchingGenerator generator(g, config.seed);
  matching::run_process(generator, state, config.rounds);

  LocalQueryResult result;
  result.threshold = query_threshold(1.0, config.beta, n);
  result.cross_mass = std::min(state.at(v, 0), state.at(u, 1));

  const auto profile_u = state.column(0);
  const auto profile_v = state.column(1);
  const double nu = linalg::norm(profile_u);
  const double nv = linalg::norm(profile_v);
  result.profile_similarity =
      nu > 0.0 && nv > 0.0 ? linalg::dot(profile_u, profile_v) / (nu * nv) : 0.0;

  // Same cluster iff each seed's load reached the other node with the
  // mass the query procedure demands.
  result.same_cluster = result.cross_mass >= result.threshold;
  return result;
}

}  // namespace dgc::core
