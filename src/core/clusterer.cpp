#include "core/clusterer.hpp"

#include <memory>
#include <utility>

#include "core/seeding.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/thread_pool.hpp"

namespace dgc::core {

Clusterer::Clusterer(const graph::Graph& g, ClusterConfig config)
    : Engine(g, config) {}

ClusterResult Clusterer::run() const { return run(nullptr); }

ClusterResult Clusterer::run(matching::MultiLoadState* final_state) const {
  const graph::Graph& g = graph();
  const graph::NodeId n = g.num_nodes();
  const HotPathOptions& hot = config().hot_path;

  ClusterResult result;

  // --- Rounds, IDs, seeding, threshold (shared plumbing) -------------
  const std::vector<std::uint64_t> seed_ids = prepare(result);
  const std::size_t s = result.seeds.size();

  if (s == 0) {
    // No node activated (probability ~ e^{-s̄}): everyone is unclustered.
    result.labels.assign(n, metrics::kUnclustered);
    return result;
  }

  // --- Averaging procedure ------------------------------------------
  matching::MultiLoadState state(n, s, hot.sparse_mode);
  state.set_skip_zeros(hot.skip_zero_rows);
  state.set_simd(hot.simd);
  state.set_weighted_graph(&g);  // no-op on unweighted graphs
  for (std::size_t i = 0; i < s; ++i) {
    state.set(result.seeds[i], i, 1.0);  // x^(0,i) = χ_{v_i}
  }
  matching::MatchingGenerator generator(g, derive_seed(config().seed, Stream::kMatching),
                                        config().protocol);
  generator.use_simd(hot.simd);
  const std::unique_ptr<util::ThreadPool> coin_pool = make_coin_pool(hot, n);
  generator.use_thread_pool(coin_pool.get());

  RoundCheckpointer ckpt(g, config());
  const std::size_t start = ckpt.prepare_resume(result.rounds, s);
  if (const Checkpoint* loaded = ckpt.loaded()) {
    state.load_matrix(loaded->matrix);
  }
  generator.skip_rounds(start);
  result.process = matching::run_process_range(
      generator, state, start, result.rounds,
      [&](std::size_t t, const matching::Matching&) { return ckpt.after_round(t, state); });
  ckpt.finish(result);

  // --- Query procedure ------------------------------------------------
  result.labels.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    result.labels[v] = query_label(std::as_const(state).row(v), seed_ids,
                                   result.threshold, config().query_rule);
  }

  if (final_state != nullptr) *final_state = std::move(state);
  return result;
}

}  // namespace dgc::core
