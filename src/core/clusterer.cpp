#include "core/clusterer.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/seeding.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dgc::core {

Clusterer::Clusterer(const graph::Graph& g, ClusterConfig config)
    : Engine(g, config) {}

ClusterResult Clusterer::run() const { return run(nullptr); }

ClusterResult Clusterer::run(matching::MultiLoadState* final_state) const {
  const graph::Graph& g = graph();
  const graph::NodeId n = g.num_nodes();
  const HotPathOptions& hot = config().hot_path;

  ClusterResult result;

  // --- Rounds, IDs, seeding, threshold (shared plumbing) -------------
  const std::vector<std::uint64_t> seed_ids = prepare(result);
  const std::size_t s = result.seeds.size();

  if (s == 0) {
    // No node activated (probability ~ e^{-s̄}): everyone is unclustered.
    result.labels.assign(n, metrics::kUnclustered);
    return result;
  }

  // --- Averaging procedure ------------------------------------------
  matching::MultiLoadState state(n, s, hot.sparse_mode);
  state.set_skip_zeros(hot.skip_zero_rows);
  state.set_simd(hot.simd);
  state.set_weighted_graph(&g);  // no-op on unweighted graphs
  for (std::size_t i = 0; i < s; ++i) {
    state.set(result.seeds[i], i, 1.0);  // x^(0,i) = χ_{v_i}
  }
  matching::MatchingGenerator generator(g, derive_seed(config().seed, Stream::kMatching),
                                        config().protocol);
  generator.use_simd(hot.simd);
  const std::unique_ptr<util::ThreadPool> coin_pool = make_coin_pool(hot, n);
  generator.use_thread_pool(coin_pool.get());

  RoundCheckpointer ckpt(g, config());
  const std::size_t start = ckpt.prepare_resume(result.rounds, s);
  if (const Checkpoint* loaded = ckpt.loaded()) {
    state.load_matrix(loaded->matrix);
  }
  generator.skip_rounds(start);
  const std::size_t window = resolve_schedule_window(hot, config().checkpoint);
  if (window > 1) {
    // Schedule-ahead executor: W rounds of matchings drawn per window,
    // replayed per dimension stripe (see matching/schedule.hpp).  The
    // coin pool doubles as the stripe pool — both phases are barriered,
    // never concurrent.
    matching::WindowPlan plan;
    plan.window = window;
    plan.tile_cols = resolve_tile_cols(hot, n, s);
    plan.pool = coin_pool.get();
    plan.checkpoint_every = config().checkpoint.every;
    plan.stop_after_round = config().checkpoint.stop_after_round;
    plan.weighted_graph = state.weighted() ? &g : nullptr;
    matching::ProcessPhaseTimes phases;
    plan.phases = &phases;
    result.process = matching::run_process_windowed(
        generator, state, start, result.rounds, plan, {},
        [&](std::size_t t) { return ckpt.after_round(t, state); });
    result.phase_seconds.schedule = phases.schedule_seconds;
    result.phase_seconds.apply = phases.apply_seconds;
  } else {
    double apply_seconds = 0.0;
    const util::Timer loop_timer;
    result.process = matching::run_process_range(
        generator, start, result.rounds,
        [&](std::size_t, const matching::Matching& m) {
          const util::Timer apply_timer;
          state.apply(m);
          apply_seconds += apply_timer.seconds();
        },
        [&](std::size_t t, const matching::Matching&) { return ckpt.after_round(t, state); });
    result.phase_seconds.apply = apply_seconds;
    result.phase_seconds.schedule = std::max(0.0, loop_timer.seconds() - apply_seconds);
  }
  ckpt.finish(result);

  // --- Query procedure ------------------------------------------------
  const util::Timer query_timer;
  result.labels.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    result.labels[v] = query_label(std::as_const(state).row(v), seed_ids,
                                   result.threshold, config().query_rule);
  }
  result.phase_seconds.query = query_timer.seconds();

  if (final_state != nullptr) *final_state = std::move(state);
  return result;
}

}  // namespace dgc::core
