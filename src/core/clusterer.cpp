#include "core/clusterer.hpp"

#include <cmath>
#include <limits>

#include "core/rounds.hpp"
#include "core/seeding.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/require.hpp"

namespace dgc::core {

Clusterer::Clusterer(const graph::Graph& g, ClusterConfig config)
    : graph_(&g), config_(config) {
  DGC_REQUIRE(g.num_nodes() > 1, "graph too small");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
  DGC_REQUIRE(config_.beta > 0.0 && config_.beta <= 0.5, "beta must be in (0, 0.5]");
  DGC_REQUIRE(config_.threshold_scale > 0.0, "threshold_scale must be positive");
  DGC_REQUIRE(config_.rounds > 0 || config_.k_hint > 0,
              "either fix rounds or provide k_hint for the T estimate");
}

double Clusterer::query_threshold(double threshold_scale, double beta, std::size_t n) {
  return threshold_scale / (std::sqrt(2.0 * beta) * static_cast<double>(n));
}

std::uint64_t Clusterer::query_label(std::span<const double> values,
                                     std::span<const std::uint64_t> seed_ids,
                                     double threshold, QueryRule rule) {
  DGC_REQUIRE(values.size() == seed_ids.size(), "values/ids size mismatch");
  if (rule == QueryRule::kArgmax) {
    std::uint64_t best_id = metrics::kUnclustered;
    double best = -std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] > best || (values[i] == best && seed_ids[i] < best_id)) {
        best = values[i];
        best_id = seed_ids[i];
      }
    }
    return values.empty() || best <= 0.0 ? metrics::kUnclustered : best_id;
  }
  // Paper rule: min ID among coordinates clearing the threshold.
  std::uint64_t label = metrics::kUnclustered;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= threshold && seed_ids[i] < label) label = seed_ids[i];
  }
  return label;
}

ClusterResult Clusterer::run() const { return run(nullptr); }

ClusterResult Clusterer::run(matching::MultiLoadState* final_state) const {
  const graph::Graph& g = *graph_;
  const graph::NodeId n = g.num_nodes();

  ClusterResult result;

  // --- Rounds -------------------------------------------------------
  if (config_.rounds > 0) {
    result.rounds = config_.rounds;
  } else {
    const RoundEstimate est =
        recommended_rounds(g, config_.k_hint, config_.rounds_multiplier, config_.seed);
    result.rounds = est.rounds;
    result.lambda_k1 = est.lambda_k1;
  }

  // --- Initialisation: IDs ------------------------------------------
  result.node_ids = assign_node_ids(n, config_.seed);

  // --- Seeding procedure --------------------------------------------
  const std::size_t trials = config_.seeding_trials > 0
                                 ? config_.seeding_trials
                                 : default_seeding_trials(config_.beta);
  result.seeds = run_seeding(n, trials, config_.seed);
  const std::size_t s = result.seeds.size();
  result.threshold = query_threshold(config_.threshold_scale, config_.beta, n);

  if (s == 0) {
    // No node activated (probability ~ e^{-s̄}): everyone is unclustered.
    result.labels.assign(n, metrics::kUnclustered);
    return result;
  }

  std::vector<std::uint64_t> seed_ids(s);
  for (std::size_t i = 0; i < s; ++i) seed_ids[i] = result.node_ids[result.seeds[i]];

  // --- Averaging procedure ------------------------------------------
  matching::MultiLoadState state(n, s);
  for (std::size_t i = 0; i < s; ++i) {
    state.set(result.seeds[i], i, 1.0);  // x^(0,i) = χ_{v_i}
  }
  matching::MatchingGenerator generator(g, derive_seed(config_.seed, Stream::kMatching),
                                        config_.protocol);
  result.process = matching::run_process(generator, state, result.rounds);

  // --- Query procedure ------------------------------------------------
  result.labels.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    result.labels[v] =
        query_label(state.row(v), seed_ids, result.threshold, config_.query_rule);
  }

  if (final_state != nullptr) *final_state = std::move(state);
  return result;
}

}  // namespace dgc::core
