// Post-hoc partition diagnostics.
//
// The paper stresses (§3.2) that the algorithm "does not need to know
// the exact number of clusters k — a lower bound of β suffices".  The
// number of clusters is therefore an *output*; this header summarises it
// together with the quantities a user needs to sanity-check a run:
// per-cluster sizes, the realised balance β̂, per-cluster conductance,
// and the realised ρ̂(k) of the recovered partition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::core {

struct ClusterSummary {
  std::uint64_t label = 0;     ///< original seed ID (or kUnclustered)
  std::size_t size = 0;
  /// Paper conductance of the cluster (weighted — cut weight over
  /// touching weight — when the graph carries edge weights).
  double conductance = 0.0;
};

struct PartitionSummary {
  /// Recovered clusters, largest first (unclustered nodes excluded).
  std::vector<ClusterSummary> clusters;
  /// Number of recovered clusters (excluding the unclustered bucket).
  std::uint32_t num_clusters = 0;
  /// Nodes whose label is metrics::kUnclustered.
  std::size_t unclustered = 0;
  /// min cluster size / n over recovered clusters (the realised beta).
  double beta_hat = 0.0;
  /// max conductance over recovered clusters (the realised rho(k)).
  double rho_hat = 0.0;
};

/// Summarises raw labels (seed IDs + sentinel) against the graph.
[[nodiscard]] PartitionSummary summarize_partition(const graph::Graph& g,
                                                   std::span<const std::uint64_t> labels);

/// Writes one decimal label per line (node order).  The quickstart
/// example and `dgc cluster` both use this, so their outputs are
/// byte-comparable — the CLI smoke test diffs them.
void save_labels(const std::string& file_path, std::span<const std::uint64_t> labels);

/// Inverse of save_labels (blank lines ignored).
[[nodiscard]] std::vector<std::uint64_t> load_labels(const std::string& file_path);

}  // namespace dgc::core
