// Common engine abstraction: one algorithm, several execution engines.
//
// The paper's pipeline is three procedures run back to back — seeding,
// T rounds of multi-dimensional load balancing over random matchings,
// and the local query.  Every engine executes that same pipeline and
// must produce label-for-label identical output for equal configs (the
// coin-flip equivalence contract: all randomness derives from
// config.seed through fixed stream tags, never from execution order).
// The contract extends to ClusterConfig::hot_path: parallel coin
// generation, active-support skipping, and buffer reuse are pure
// scheduling — every combination yields bit-identical labels, asserted
// by the EngineEquivalence grid.
// This header holds the pieces the engines share:
//   * ClusterResult        — the common output type;
//   * query_threshold /    — the §3.2 query procedure, a pure function
//     query_label            of one node's loads;
//   * Engine               — base class providing config validation and
//                            prepare() (rounds, IDs, seeding, threshold);
//   * make_engine          — factory over the three engines: dense
//                            (core/clusterer.hpp), message-passing
//                            (core/distributed_clusterer.hpp), sharded
//                            parallel (core/sharded_clusterer.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"
#include "matching/process.hpp"
#include "util/thread_pool.hpp"

namespace dgc::core {

/// Per-phase wall seconds of one run (observability: `dgc cluster`
/// surfaces these in the run-summary JSON so bench regressions are
/// diagnosable from production runs).  `schedule` covers drawing the
/// matchings — coin flips and resolution, which the fast paths fuse, so
/// `flip`/`resolve` are only split out by runs that executed them
/// unfused (the E16 breakdown bench) and stay 0 here.  Fields a path
/// didn't exercise stay 0.
struct PhaseSeconds {
  double schedule = 0.0;
  double flip = 0.0;
  double resolve = 0.0;
  double apply = 0.0;
  double query = 0.0;
};

struct ClusterResult {
  /// Per-node label: the ID of a seed node, or metrics::kUnclustered.
  std::vector<std::uint64_t> labels;
  /// The active (seed) nodes v_1 … v_s in increasing node order.
  std::vector<graph::NodeId> seeds;
  /// ID(v) for every node.
  std::vector<std::uint64_t> node_ids;
  /// Number of rounds T actually run.
  std::size_t rounds = 0;
  /// Query threshold τ used by the paper rule.
  double threshold = 0.0;
  /// Matching process statistics.
  matching::ProcessStats process;
  /// λ_{k+1} estimate when rounds were auto-derived (0 otherwise).
  double lambda_k1 = 0.0;
  /// Checkpoint/restart provenance (core/checkpoint.hpp).
  bool resumed = false;               ///< run started from a checkpoint
  std::size_t resume_round = 0;       ///< rounds already complete at start
  bool interrupted = false;           ///< stop flag fired: labels are NOT
                                      ///< final, a checkpoint was written
  std::size_t checkpoint_round = 0;   ///< last round checkpointed (0 = none)
  /// Per-phase wall times of this run (see PhaseSeconds).
  PhaseSeconds phase_seconds;
};

/// τ = threshold_scale / (sqrt(2β)·n).
[[nodiscard]] double query_threshold(double threshold_scale, double beta, std::size_t n);

/// The query procedure on one node's loads (values[i] pairs with
/// seed_ids[i]); shared by every engine.
///
/// kPaperMinId: smallest seed ID among coordinates with value ≥ τ.
/// kArgmax: among *strictly positive* loads, the largest value wins and
/// ties break to the smallest seed ID.  A node whose loads are all ≤ 0
/// is unclustered: zero means "no mass from that seed reached me", so it
/// is never a clustering vote, regardless of how an all-zero tie would
/// break on IDs.
[[nodiscard]] std::uint64_t query_label(std::span<const double> values,
                                        std::span<const std::uint64_t> seed_ids,
                                        double threshold, QueryRule rule);

/// The deterministic pre-averaging pipeline as a free function (what
/// Engine::prepare runs): fills rounds/lambda_k1, node_ids, seeds and
/// threshold of `result` and returns ID(v_i) per seed.  Exposed so
/// checkpoint verification can re-derive a run's setup without
/// constructing an engine.
[[nodiscard]] std::vector<std::uint64_t> prepare_run(const graph::Graph& g,
                                                     const ClusterConfig& config,
                                                     ClusterResult& result);

class Engine {
 public:
  /// Validates the invariants shared by every engine.  The graph must
  /// outlive the engine.
  Engine(const graph::Graph& g, ClusterConfig config);
  virtual ~Engine() = default;

  /// Short engine name for tables and logs ("dense", "message-passing",
  /// "sharded").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Runs the full pipeline.  Deterministic in config.seed, and
  /// label-identical across engines for equal configs.
  [[nodiscard]] virtual ClusterResult cluster() const = 0;

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  /// Writes a .dgcc snapshot of `state` after `round` completed rounds
  /// (atomic temp-file + rename), stamped with this engine's
  /// graph/config fingerprint so only a matching run can resume it.
  void save_checkpoint(const std::string& path, const matching::MultiLoadState& state,
                       std::size_t round, std::size_t total_rounds) const;

  /// Loads a .dgcc file and validates it against this engine's graph and
  /// config (format, CRC, fingerprint, node count).  Throws
  /// contract_error naming the failure.
  [[nodiscard]] Checkpoint load_checkpoint(const std::string& path) const;

 protected:
  /// The pipeline steps every engine runs identically before averaging:
  /// round count T (fixed or spectral estimate), node IDs, the seeding
  /// procedure, and the query threshold.  Fills those fields of `result`
  /// and returns ID(v_i) for each seed, in seed order.
  [[nodiscard]] std::vector<std::uint64_t> prepare(ClusterResult& result) const;

 private:
  const graph::Graph* graph_;
  ClusterConfig config_;
};

enum class EngineKind : std::uint8_t {
  kDense = 0,           ///< core::Clusterer — in-memory fast path
  kMessagePassing = 1,  ///< core::DistributedClusterer — fidelity path
  kSharded = 2,         ///< core::ShardedClusterer — parallel shard path
};

/// Constructs the requested engine (the sharded engine with default
/// ShardOptions).  Handy for benches that sweep engines uniformly.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind, const graph::Graph& g,
                                                  const ClusterConfig& config);

/// Spawns the hot-path coin pool for an engine-owned generator, or
/// returns null when the config disables it, the thread count resolves
/// to 1, or the graph is too small to ever split into more than one
/// block.  Shared by the dense and message-passing engines (the sharded
/// engine reuses its shard pool instead).
[[nodiscard]] std::unique_ptr<util::ThreadPool> make_coin_pool(const HotPathOptions& hot,
                                                               graph::NodeId n);

/// The auto window width HotPathOptions::schedule_window == 0 resolves
/// to.  Deep enough to amortise the schedule build, shallow enough that
/// the stop flag and the checkpoint-cadence early close stay responsive.
inline constexpr std::size_t kDefaultScheduleWindow = 8;

/// Resolves HotPathOptions::schedule_window to the W an engine runs
/// with: 1 (the classic per-round driver) while round_sleep_ms widens
/// per-round signal windows — the kill-and-resume harness relies on the
/// sleep firing every round — else the explicit value, or
/// kDefaultScheduleWindow for 0.
[[nodiscard]] std::size_t resolve_schedule_window(const HotPathOptions& hot,
                                                  const CheckpointOptions& checkpoint);

/// Resolves HotPathOptions::tile_cols to a stripe width in [1, dims]:
/// the explicit value clamped, or auto-sized so an n × tile stripe of
/// doubles fills about half the L2 cache (sysconf when available, 1 MiB
/// assumed otherwise).
[[nodiscard]] std::size_t resolve_tile_cols(const HotPathOptions& hot, std::size_t n,
                                            std::size_t dims);

}  // namespace dgc::core
