// The seeding procedure (§3.1) plus node ID assignment.
//
// Randomness discipline: all coins are derived from the config seed via
// fixed stream tags, so the in-memory engine (core/clusterer.hpp) and the
// message-passing engine (core/distributed_clusterer.hpp) flip *the same
// coins* and produce identical runs — the integration tests assert
// label-for-label equality.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::core {

/// Stream tags for deriving sub-seeds from the master seed.
enum class Stream : std::uint64_t {
  kNodeIds = 1,
  kSeeding = 2,
  kMatching = 3,
  kTieBreak = 4,
};

/// Sub-seed for a given stream (SplitMix64 of master ^ tag).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, Stream stream);

/// Assigns every node a distinct uniform ID in [1, n^3].  The paper lets
/// nodes pick independently and argues distinctness whp; we re-draw the
/// (whp non-existent) collisions so downstream min-ID logic is exact.
[[nodiscard]] std::vector<std::uint64_t> assign_node_ids(graph::NodeId n,
                                                         std::uint64_t master_seed);

/// The paper's trial count s̄ = ceil((3/β)·ln(1/β)).
[[nodiscard]] std::size_t default_seeding_trials(double beta);

/// Runs the seeding procedure: every node flips `trials` coins with
/// success probability 1/n (its own RNG stream); nodes with ≥1 success
/// become seeds.  Returned in increasing node order.
[[nodiscard]] std::vector<graph::NodeId> run_seeding(graph::NodeId n, std::size_t trials,
                                                     std::uint64_t master_seed);

}  // namespace dgc::core
