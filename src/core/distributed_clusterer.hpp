// The paper's algorithm, message-passing engine.
//
// Every node runs the *local* protocol of §3.1 verbatim over the
// synchronous network simulator: sparse State_v(t) maps, matching formed
// by Probe/Accept messages, states exchanged only between matched pairs,
// query evaluated locally.  Traffic is metered in words — the unit of
// Theorem 1.1's O(T·n·k·log k) bound — and the engine optionally injects
// iid message loss to study robustness (E4 and failure-injection tests).
//
// Fault-free, this engine flips the same coins as the other engines
// (core/engine.hpp) and yields identical labels; the dense engine is the
// fast path, this one is the fidelity path.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "graph/partitioner.hpp"
#include "net/network.hpp"

namespace dgc::core {

struct DistributedReport {
  ClusterResult result;
  net::TrafficStats traffic;
  /// Maximum number of (id, value) entries held by any node at the end.
  std::size_t max_state_entries = 0;
  /// Message phases executed (3 per averaging round).
  std::size_t phases = 0;
  /// Per-round words, for the message-complexity experiment (E4).
  std::vector<std::uint64_t> words_per_round;
  /// With a partition supplied to run(): the subset of traffic whose
  /// endpoints sit on different shards — what a multi-process deployment
  /// would actually put on the wire (intra-shard messages stay
  /// in-memory).  Zero when no partition is given.
  std::uint64_t cross_partition_words = 0;
  std::uint64_t cross_partition_messages = 0;
};

class DistributedClusterer : public Engine {
 public:
  DistributedClusterer(const graph::Graph& g, ClusterConfig config);

  /// Runs the protocol.  drop_probability > 0 enables iid message loss
  /// (losing an Accept aborts that pair's averaging symmetrically; losing
  /// the final State reply leaves the pair asymmetric — exactly the
  /// two-generals behaviour a real lossy network would exhibit).
  /// `partition` (optional, validated, not owned) only adds accounting:
  /// cross_partition_words/messages meter the traffic that crosses its
  /// shard boundaries.  The protocol itself — coins, pairs, labels — is
  /// partition-independent.
  [[nodiscard]] DistributedReport run(double drop_probability = 0.0,
                                      const graph::Partition* partition = nullptr) const;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "message-passing";
  }
  [[nodiscard]] ClusterResult cluster() const override { return run().result; }
};

}  // namespace dgc::core
