#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#ifdef __unix__
#include <unistd.h>
#endif

#include "core/clusterer.hpp"
#include "core/distributed_clusterer.hpp"
#include "core/rounds.hpp"
#include "core/seeding.hpp"
#include "core/sharded_clusterer.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/require.hpp"

namespace dgc::core {

double query_threshold(double threshold_scale, double beta, std::size_t n) {
  return threshold_scale / (std::sqrt(2.0 * beta) * static_cast<double>(n));
}

std::uint64_t query_label(std::span<const double> values,
                          std::span<const std::uint64_t> seed_ids, double threshold,
                          QueryRule rule) {
  DGC_REQUIRE(values.size() == seed_ids.size(), "values/ids size mismatch");
  if (rule == QueryRule::kArgmax) {
    // Only strictly positive loads are candidates; among them the largest
    // value wins and equal values break to the smallest seed ID.  Skipping
    // non-positive values up front (rather than guarding afterwards) keeps
    // the zero-load case independent of the ID tie-break order.  With
    // best = 0.0 every first candidate clears `values[i] > best`, and the
    // sentinel start of best_id makes the tie clause pick the smaller ID.
    std::uint64_t best_id = metrics::kUnclustered;
    double best = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] <= 0.0) continue;
      if (values[i] > best || (values[i] == best && seed_ids[i] < best_id)) {
        best = values[i];
        best_id = seed_ids[i];
      }
    }
    return best_id;
  }
  // Paper rule: min ID among coordinates clearing the threshold.
  std::uint64_t label = metrics::kUnclustered;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= threshold && seed_ids[i] < label) label = seed_ids[i];
  }
  return label;
}

Engine::Engine(const graph::Graph& g, ClusterConfig config)
    : graph_(&g), config_(config) {
  DGC_REQUIRE(g.num_nodes() > 1, "graph too small");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");
  DGC_REQUIRE(config_.beta > 0.0 && config_.beta <= 0.5, "beta must be in (0, 0.5]");
  DGC_REQUIRE(config_.threshold_scale > 0.0, "threshold_scale must be positive");
  DGC_REQUIRE(config_.rounds > 0 || config_.k_hint > 0,
              "either fix rounds or provide k_hint for the T estimate");
}

std::vector<std::uint64_t> prepare_run(const graph::Graph& g,
                                       const ClusterConfig& config,
                                       ClusterResult& result) {
  const graph::NodeId n = g.num_nodes();

  if (config.rounds > 0) {
    result.rounds = config.rounds;
  } else {
    const RoundEstimate est =
        recommended_rounds(g, config.k_hint, config.rounds_multiplier, config.seed);
    result.rounds = est.rounds;
    result.lambda_k1 = est.lambda_k1;
  }

  result.node_ids = assign_node_ids(n, config.seed);

  const std::size_t trials = config.seeding_trials > 0
                                 ? config.seeding_trials
                                 : default_seeding_trials(config.beta);
  result.seeds = run_seeding(n, trials, config.seed);
  result.threshold = query_threshold(config.threshold_scale, config.beta, n);

  std::vector<std::uint64_t> seed_ids(result.seeds.size());
  for (std::size_t i = 0; i < seed_ids.size(); ++i) {
    seed_ids[i] = result.node_ids[result.seeds[i]];
  }
  return seed_ids;
}

std::vector<std::uint64_t> Engine::prepare(ClusterResult& result) const {
  return prepare_run(*graph_, config_, result);
}

void Engine::save_checkpoint(const std::string& path,
                             const matching::MultiLoadState& state, std::size_t round,
                             std::size_t total_rounds) const {
  Checkpoint cp;
  cp.fingerprint = checkpoint_fingerprint(*graph_, config_);
  cp.round = round;
  cp.total_rounds = total_rounds;
  cp.num_nodes = state.num_nodes();
  cp.dimensions = state.dimensions();
  state.snapshot_dense(cp.matrix);
  save_checkpoint_file(path, cp);
}

Checkpoint Engine::load_checkpoint(const std::string& path) const {
  Checkpoint cp = load_checkpoint_file(path);
  DGC_REQUIRE(cp.fingerprint == checkpoint_fingerprint(*graph_, config_),
              "checkpoint fingerprint mismatch: " + path +
                  " was written by a different graph/config");
  DGC_REQUIRE(cp.num_nodes == graph_->num_nodes(),
              "checkpoint node count mismatch: " + path);
  return cp;
}

std::unique_ptr<Engine> make_engine(EngineKind kind, const graph::Graph& g,
                                    const ClusterConfig& config) {
  switch (kind) {
    case EngineKind::kDense:
      return std::make_unique<Clusterer>(g, config);
    case EngineKind::kMessagePassing:
      return std::make_unique<DistributedClusterer>(g, config);
    case EngineKind::kSharded:
      return std::make_unique<ShardedClusterer>(g, config);
  }
  DGC_REQUIRE(false, "unknown engine kind");
}

std::unique_ptr<util::ThreadPool> make_coin_pool(const HotPathOptions& hot,
                                                 graph::NodeId n) {
  if (!hot.parallel_coins ||
      n < 2 * matching::MatchingGenerator::kParallelGrain) {
    return nullptr;
  }
  const std::size_t threads =
      hot.coin_threads != 0 ? hot.coin_threads : std::thread::hardware_concurrency();
  if (threads <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(threads);
}

std::size_t resolve_schedule_window(const HotPathOptions& hot,
                                    const CheckpointOptions& checkpoint) {
  if (checkpoint.round_sleep_ms > 0) return 1;
  return hot.schedule_window == 0 ? kDefaultScheduleWindow : hot.schedule_window;
}

std::size_t resolve_tile_cols(const HotPathOptions& hot, std::size_t n,
                              std::size_t dims) {
  if (dims == 0) return 1;
  if (hot.tile_cols != 0) return std::min(hot.tile_cols, dims);
  long l2 = -1;
  long l3 = -1;
#if defined(__unix__) && defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(__unix__) && defined(_SC_LEVEL3_CACHE_SIZE)
  l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
#endif
  // Striping is a memory-traffic play: replaying the window per stripe
  // only pays when the full matrix spills out of the last-level cache,
  // so each stripe's cache residency across the window's rounds cuts
  // DRAM traffic.  While the matrix is LLC-resident, every extra stripe
  // is a pure per-pair-overhead loss (bench_micro's tile sweep has
  // every tile < full width losing to one full-width pass), so run one
  // pass over all columns.
  const std::size_t llc = l3 > 0 ? static_cast<std::size_t>(l3) : (32u << 20);
  if (n * dims * sizeof(double) <= llc) return dims;
  // Past the LLC, stripe to the L2 budget — but never narrower than 8
  // columns: a skinnier stripe pulls whole cache lines for a fraction
  // of their bytes and repeats the per-pair pointer work per stripe,
  // which costs more than the residency buys.
  const std::size_t budget = (l2 > 0 ? static_cast<std::size_t>(l2) : (1u << 20)) / 2;
  const std::size_t tile = budget / (std::max<std::size_t>(n, 1) * sizeof(double));
  return std::min<std::size_t>(std::max<std::size_t>(tile, 8), dims);
}

}  // namespace dgc::core
