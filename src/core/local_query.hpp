// Local same-cluster queries — the §1.2 observation made operational:
// "the non-distributed version of our algorithm runs in O(n log n) time
// once we have an oracle which outputs a random neighbour of any node …
// the techniques might be of interest for local algorithms and property
// testing".
//
// Instead of seeding by the global Bernoulli procedure, seed single unit
// loads at the two queried nodes, run T rounds of the same matching
// process, and compare the resulting load profiles: if u and v share a
// cluster, both loads spread over the same ≈βn nodes, so
//   * x_u(v) and x_v(u) are ≈ 1/|S| (cross-mass test), and
//   * the profiles' normalised inner product is ≈ 1.
// Across clusters both quantities are ≈ 0.  No global labelling is
// materialised — this is the pair-query primitive of property testing.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace dgc::core {

struct LocalQueryConfig {
  /// Balance lower bound β (same role as in ClusterConfig).
  double beta = 0.25;
  /// Averaging rounds; pick core::recommended_rounds(...) or fix it.
  std::size_t rounds = 0;
  std::uint64_t seed = 51;
};

struct LocalQueryResult {
  bool same_cluster = false;
  /// min(x_u(v), x_v(u)) against the τ = 1/(√(2β)n) threshold.
  double cross_mass = 0.0;
  double threshold = 0.0;
  /// Cosine similarity of the two final load profiles in [0, 1].
  double profile_similarity = 0.0;
};

/// Runs the two-seed process and answers "are u and v in one cluster?".
[[nodiscard]] LocalQueryResult same_cluster_query(const graph::Graph& g, graph::NodeId u,
                                                  graph::NodeId v,
                                                  const LocalQueryConfig& config);

}  // namespace dgc::core
