#include "core/checkpoint.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <thread>

#include "core/engine.hpp"
#include "core/seeding.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"
#include "matching/protocol.hpp"
#include "util/binary_file.hpp"
#include "util/require.hpp"

namespace dgc::core {

namespace {

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected): the integrity trailer.

std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

std::uint32_t crc32_of(std::span<const util::ConstBytes> parts) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const util::ConstBytes& part : parts) crc = crc32_update(crc, part.data, part.size);
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// .dgcc layout.

constexpr char kMagic[4] = {'D', 'G', 'C', 'C'};
constexpr std::uint32_t kEndianMarker = 0x01020304u;
constexpr std::uint32_t kVersion = 1;
/// Payload storage: the dense n×s matrix, or only the active rows
/// (node-id array then packed row values) when that is smaller.
constexpr std::uint32_t kModeDense = 0;
constexpr std::uint32_t kModeSparse = 1;

struct CheckpointHeader {
  char magic[4];
  std::uint32_t endian;
  std::uint32_t version;
  std::uint32_t mode;
  std::uint64_t fingerprint;
  std::uint64_t round;
  std::uint64_t total_rounds;
  std::uint64_t num_nodes;
  std::uint64_t dimensions;
  std::uint64_t payload_rows;  ///< dense: n; sparse: active row count
};
static_assert(sizeof(CheckpointHeader) == 64, "checkpoint header layout must be stable");

/// True iff the value's bits differ from +0.0 — the same predicate the
/// load state uses for its activity flags, so sparse storage never
/// drops a row whose bits matter (−0.0, NaN payloads included).
bool row_entry_set(double value) { return value != 0.0 || std::signbit(value); }

/// The serialised image of one checkpoint: header + payload parts + CRC
/// trailer, with sparse payloads packed into owned buffers.  Both the
/// stream writer and the atomic file writer emit exactly these parts.
struct Image {
  CheckpointHeader header{};
  std::vector<std::uint64_t> ids;    // sparse mode only
  std::vector<double> packed;        // sparse mode only
  std::span<const double> values;    // dense: cp.matrix; sparse: packed
  std::uint64_t crc = 0;

  [[nodiscard]] std::vector<util::ConstBytes> parts() const {
    std::vector<util::ConstBytes> out;
    out.push_back({&header, sizeof header});
    if (!ids.empty()) out.push_back({ids.data(), ids.size() * sizeof(std::uint64_t)});
    out.push_back({values.data(), values.size_bytes()});
    out.push_back({&crc, sizeof crc});
    return out;
  }
};

Image build_image(const Checkpoint& cp) {
  const std::size_t n = cp.num_nodes;
  const std::size_t s = cp.dimensions;
  DGC_REQUIRE(cp.matrix.size() == n * s, "checkpoint matrix has the wrong shape");
  DGC_REQUIRE(cp.round <= cp.total_rounds, "checkpoint round exceeds total rounds");

  Image image;
  std::memcpy(image.header.magic, kMagic, sizeof kMagic);
  image.header.endian = kEndianMarker;
  image.header.version = kVersion;
  image.header.fingerprint = cp.fingerprint;
  image.header.round = cp.round;
  image.header.total_rounds = cp.total_rounds;
  image.header.num_nodes = n;
  image.header.dimensions = s;

  std::size_t active = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const double* row = cp.matrix.data() + v * s;
    for (std::size_t i = 0; i < s; ++i) {
      if (row_entry_set(row[i])) {
        ++active;
        break;
      }
    }
  }
  // Sparse pays one id word per row on top of the row itself; dense
  // pays every row.  Early-round checkpoints (support O(s·2^t) ≪ n)
  // take the sparse branch, late ones the dense branch.
  if (active * (s + 1) < n * s) {
    image.header.mode = kModeSparse;
    image.header.payload_rows = active;
    image.ids.reserve(active);
    image.packed.reserve(active * s);
    for (std::size_t v = 0; v < n; ++v) {
      const double* row = cp.matrix.data() + v * s;
      bool any = false;
      for (std::size_t i = 0; i < s && !any; ++i) any = row_entry_set(row[i]);
      if (!any) continue;
      image.ids.push_back(v);
      image.packed.insert(image.packed.end(), row, row + s);
    }
    image.values = image.packed;
  } else {
    image.header.mode = kModeDense;
    image.header.payload_rows = n;
    image.values = cp.matrix;
  }

  auto parts = image.parts();
  parts.pop_back();  // the CRC trailer is not part of its own input
  image.crc = crc32_of(parts);
  return image;
}

/// Bounded chunked reads (io.cpp's pattern): a corrupt header cannot
/// demand a giant up-front allocation; truncation fails after at most
/// one chunk of over-allocation.
template <typename T>
std::vector<T> read_array(std::istream& is, std::uint64_t count, const char* what) {
  constexpr std::uint64_t kChunkElems = (std::uint64_t{1} << 22) / sizeof(T);  // 4 MB
  std::vector<T> out;
  while (out.size() < count) {
    const auto take = std::min<std::uint64_t>(kChunkElems, count - out.size());
    const std::size_t old = out.size();
    if (out.capacity() < old + take) {
      out.reserve(std::max<std::size_t>(old * 2, old + static_cast<std::size_t>(take)));
    }
    out.resize(old + static_cast<std::size_t>(take));
    const auto bytes = static_cast<std::streamsize>(take * sizeof(T));
    is.read(reinterpret_cast<char*>(out.data() + old), bytes);
    DGC_REQUIRE(is.gcount() == bytes, std::string("truncated checkpoint ") + what);
  }
  return out;
}

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Hasher {
  std::uint64_t h = 0x6A09E667F3BCC908ULL;  // arbitrary fixed start
  void mix(std::uint64_t v) { h = mix64(h + 0x9E3779B97F4A7C15ULL + v); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  template <typename T>
  void mix_span(std::span<const T> values) {
    mix(values.size());
    for (const T v : values) mix(static_cast<std::uint64_t>(v));
  }
};

}  // namespace

std::uint64_t checkpoint_fingerprint(const graph::Graph& g, const ClusterConfig& config) {
  Hasher h;
  // Graph: the full CSR (and weights), so a checkpoint can never be
  // resumed against a different graph that happens to share n and m.
  h.mix(std::uint64_t{0xD6CC});  // format tag
  h.mix_span(g.offsets());
  h.mix_span(g.adjacency());
  h.mix(std::uint64_t{g.is_weighted()});
  for (const double w : g.weights()) h.mix(w);
  // Config: every field that changes computed values.  hot_path and
  // checkpoint are deliberately excluded — pure scheduling.
  h.mix(config.seed);
  h.mix(config.beta);
  h.mix(config.rounds);
  h.mix(std::uint64_t{config.k_hint});
  h.mix(config.rounds_multiplier);
  h.mix(config.threshold_scale);
  h.mix(static_cast<std::uint64_t>(config.query_rule));
  h.mix(config.seeding_trials);
  h.mix(config.protocol.virtual_degree);
  h.mix(std::uint64_t{config.protocol.degree_biased_activation});
  return h.h;
}

void write_checkpoint(std::ostream& os, const Checkpoint& cp) {
  const Image image = build_image(cp);
  for (const util::ConstBytes& part : image.parts()) {
    os.write(static_cast<const char*>(part.data),
             static_cast<std::streamsize>(part.size));
  }
}

Checkpoint read_checkpoint(std::istream& is) {
  CheckpointHeader header{};
  is.read(reinterpret_cast<char*>(&header), sizeof header);
  DGC_REQUIRE(is.gcount() == static_cast<std::streamsize>(sizeof header),
              "truncated checkpoint header");
  DGC_REQUIRE(std::memcmp(header.magic, kMagic, sizeof kMagic) == 0,
              "not a checkpoint file (bad magic)");
  DGC_REQUIRE(header.endian == kEndianMarker, "checkpoint file has foreign byte order");
  DGC_REQUIRE(header.version == kVersion,
              "unsupported checkpoint version " + std::to_string(header.version) +
                  " (this build reads version " + std::to_string(kVersion) + ")");
  DGC_REQUIRE(header.mode == kModeDense || header.mode == kModeSparse,
              "unknown checkpoint storage mode");
  DGC_REQUIRE(header.num_nodes > 0 && header.dimensions > 0,
              "checkpoint header claims an empty matrix");
  DGC_REQUIRE(header.round <= header.total_rounds,
              "checkpoint round exceeds its total rounds");
  if (header.mode == kModeDense) {
    DGC_REQUIRE(header.payload_rows == header.num_nodes,
                "dense checkpoint row count mismatch");
  } else {
    DGC_REQUIRE(header.payload_rows <= header.num_nodes,
                "sparse checkpoint claims more rows than nodes");
  }

  std::vector<std::uint64_t> ids;
  if (header.mode == kModeSparse) {
    ids = read_array<std::uint64_t>(is, header.payload_rows, "row ids");
  }
  const std::uint64_t value_count = header.payload_rows * header.dimensions;
  const std::vector<double> values = read_array<double>(is, value_count, "matrix");

  std::uint64_t stored_crc = 0;
  is.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc);
  DGC_REQUIRE(is.gcount() == static_cast<std::streamsize>(sizeof stored_crc),
              "truncated checkpoint trailer");
  const util::ConstBytes parts[] = {
      {&header, sizeof header},
      {ids.data(), ids.size() * sizeof(std::uint64_t)},
      {values.data(), values.size() * sizeof(double)},
  };
  DGC_REQUIRE(crc32_of(parts) == stored_crc,
              "checkpoint CRC mismatch (corrupt or torn file)");

  Checkpoint cp;
  cp.fingerprint = header.fingerprint;
  cp.round = header.round;
  cp.total_rounds = header.total_rounds;
  cp.num_nodes = header.num_nodes;
  cp.dimensions = header.dimensions;
  const std::size_t s = header.dimensions;
  if (header.mode == kModeDense) {
    cp.matrix = values;
  } else {
    cp.matrix.assign(static_cast<std::size_t>(header.num_nodes) * s, 0.0);
    std::uint64_t previous = 0;
    for (std::size_t r = 0; r < ids.size(); ++r) {
      const std::uint64_t v = ids[r];
      DGC_REQUIRE(v < header.num_nodes, "sparse checkpoint row id out of range");
      DGC_REQUIRE(r == 0 || v > previous, "sparse checkpoint rows must be increasing");
      previous = v;
      std::memcpy(cp.matrix.data() + v * s, values.data() + r * s, s * sizeof(double));
    }
  }
  return cp;
}

void save_checkpoint_file(const std::string& path, const Checkpoint& cp) {
  const Image image = build_image(cp);
  const auto parts = image.parts();
  util::write_binary_file_atomic(path, parts);
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DGC_REQUIRE(is.good(), "cannot open checkpoint: " + path);
  return read_checkpoint(is);
}

// ---------------------------------------------------------------------------
// Verification by coin replay.

CheckpointVerification verify_checkpoint(const graph::Graph& g,
                                         const ClusterConfig& config,
                                         const Checkpoint& cp) {
  CheckpointVerification out;
  if (cp.fingerprint != checkpoint_fingerprint(g, config)) {
    out.error = "fingerprint mismatch: checkpoint was written by a different graph/config";
    return out;
  }
  ClusterResult derived;
  (void)prepare_run(g, config, derived);
  if (derived.rounds != cp.total_rounds) {
    out.error = "total-round mismatch: config derives T=" + std::to_string(derived.rounds) +
                " but the checkpoint was cut for T=" + std::to_string(cp.total_rounds);
    return out;
  }
  const std::size_t s = derived.seeds.size();
  if (cp.num_nodes != g.num_nodes() || cp.dimensions != s) {
    out.error = "shape mismatch: checkpoint is " + std::to_string(cp.num_nodes) + "x" +
                std::to_string(cp.dimensions) + ", the run derives " +
                std::to_string(g.num_nodes()) + "x" + std::to_string(s);
    return out;
  }

  // Replay rounds 1..r from coins alone, through the same schedule-ahead
  // windowed executor the engines run — which is bit-identical to the
  // per-round path for every window and stripe width, so a checkpoint
  // written by any engine with any HotPathOptions verifies against it.
  matching::MultiLoadState state(g.num_nodes(), s);
  state.set_weighted_graph(&g);
  for (std::size_t i = 0; i < s; ++i) state.set(derived.seeds[i], i, 1.0);
  matching::MatchingGenerator generator(g, derive_seed(config.seed, Stream::kMatching),
                                        config.protocol);
  matching::WindowPlan plan;
  plan.window = resolve_schedule_window(config.hot_path, CheckpointOptions{});
  plan.tile_cols = resolve_tile_cols(config.hot_path, g.num_nodes(), s);
  plan.weighted_graph = state.weighted() ? &g : nullptr;
  (void)matching::run_process_windowed(generator, state, 0, cp.round, plan);

  const std::span<const double> replay = state.values();
  for (std::size_t idx = 0; idx < replay.size(); ++idx) {
    if (std::bit_cast<std::uint64_t>(replay[idx]) ==
        std::bit_cast<std::uint64_t>(cp.matrix[idx])) {
      continue;
    }
    if (out.mismatches == 0) {
      out.node = static_cast<graph::NodeId>(idx / s);
      out.dimension = idx % s;
      out.expected = replay[idx];
      out.found = cp.matrix[idx];
    }
    ++out.mismatches;
  }
  out.ok = out.mismatches == 0;
  return out;
}

// ---------------------------------------------------------------------------
// RoundCheckpointer.

RoundCheckpointer::RoundCheckpointer(const graph::Graph& g, const ClusterConfig& config)
    : graph_(&g), config_(&config) {}

std::size_t RoundCheckpointer::prepare_resume(std::size_t total_rounds,
                                              std::size_t dimensions) {
  total_rounds_ = total_rounds;
  dimensions_ = dimensions;
  const CheckpointOptions& opt = config_->checkpoint;
  if (!opt.resume || opt.path.empty()) return 0;
  {
    // A missing file is a fresh start (--resume is idempotent: the first
    // run of a chain has nothing to resume from).  Anything unreadable
    // or invalid beyond that is an error — load_checkpoint_file throws.
    std::ifstream probe(opt.path, std::ios::binary);
    if (!probe.good()) return 0;
  }
  loaded_ = load_checkpoint_file(opt.path);
  if (fingerprint_ == 0) fingerprint_ = checkpoint_fingerprint(*graph_, *config_);
  DGC_REQUIRE(loaded_.fingerprint == fingerprint_,
              "checkpoint fingerprint mismatch: " + opt.path +
                  " was written by a different graph/config");
  DGC_REQUIRE(loaded_.num_nodes == graph_->num_nodes() &&
                  loaded_.dimensions == dimensions_,
              "checkpoint shape mismatch: " + opt.path);
  DGC_REQUIRE(loaded_.total_rounds == total_rounds_,
              "checkpoint total-round mismatch: " + opt.path);
  resumed_ = true;
  checkpoint_round_ = loaded_.round;
  return loaded_.round;
}

bool RoundCheckpointer::should_act(std::size_t t) {
  const CheckpointOptions& opt = config_->checkpoint;
  if (opt.round_sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.round_sleep_ms));
  }
  stop_pending_ = (opt.stop != nullptr && opt.stop->load(std::memory_order_relaxed)) ||
                  (opt.stop_after_round > 0 && t >= opt.stop_after_round);
  if (stop_pending_) return true;
  return !opt.path.empty() && opt.every > 0 && t % opt.every == 0 && t < total_rounds_;
}

Checkpoint RoundCheckpointer::make_frame(std::size_t t) const {
  Checkpoint cp;
  cp.fingerprint = fingerprint_;
  cp.round = t;
  cp.total_rounds = total_rounds_;
  cp.num_nodes = graph_->num_nodes();
  cp.dimensions = dimensions_;
  cp.matrix.assign(static_cast<std::size_t>(cp.num_nodes) * dimensions_, 0.0);
  return cp;
}

bool RoundCheckpointer::commit(std::size_t t, Checkpoint cp) {
  if (!config_->checkpoint.path.empty()) {
    if (cp.fingerprint == 0) {
      // Lazily computed so runs without checkpointing never hash the graph.
      fingerprint_ = checkpoint_fingerprint(*graph_, *config_);
      cp.fingerprint = fingerprint_;
    }
    save_checkpoint_file(config_->checkpoint.path, cp);
    checkpoint_round_ = t;
  }
  if (stop_pending_) {
    interrupted_ = true;
    return false;
  }
  return true;
}

bool RoundCheckpointer::after_round(std::size_t t, const matching::MultiLoadState& state) {
  // snapshot_dense works in either storage mode, so a sparse-mode run
  // writes the same dense frame a dense run would — which is what lets a
  // checkpoint written sparse resume dense (and vice versa) bit-exactly.
  return after_round_with(
      t, [&](std::vector<double>& matrix) { state.snapshot_dense(matrix); });
}

void RoundCheckpointer::finish(ClusterResult& result) const {
  result.resumed = resumed_;
  result.resume_round = resumed_ ? static_cast<std::size_t>(loaded_.round) : 0;
  result.interrupted = interrupted_;
  result.checkpoint_round = checkpoint_round_;
}

}  // namespace dgc::core
