#include "core/rounds.hpp"

#include <cmath>

#include "linalg/lanczos.hpp"
#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"

namespace dgc::core {

RoundEstimate recommended_rounds(const graph::Graph& g, std::uint32_t k, double multiplier,
                                 std::uint64_t seed) {
  DGC_REQUIRE(k >= 1, "need k >= 1");
  DGC_REQUIRE(multiplier > 0.0, "multiplier must be positive");
  DGC_REQUIRE(g.num_nodes() > static_cast<graph::NodeId>(k + 1),
              "graph too small for k clusters");

  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = k + 1;
  options.seed = seed;
  // Clustered graphs have a big gap after λ_k; a modest Krylov space
  // resolves λ_{k+1} to far better accuracy than T needs.
  options.max_iterations = 4 * (k + 1) + 60;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      g.num_nodes(),
      [&](std::span<const double> in, std::span<double> out) {
        if (g.is_regular()) {
          op.apply_walk(in, out);
        } else {
          op.apply_normalized(in, out);
        }
      },
      options);

  RoundEstimate est;
  est.lambda_k = pairs.values[k - 1];
  est.lambda_k1 = pairs.values[k];
  est.spectral_gap = 1.0 - est.lambda_k1;
  DGC_REQUIRE(est.spectral_gap > 1e-9, "no spectral gap after lambda_k+1");
  // One matching round contracts the i-th eigencomponent by
  // (1 − d̄(1−λ_i)/4) in expectation (Lemma 2.1), so the Θ(·) in
  // T = Θ(log n / (1−λ_{k+1})) carries a 4/d̄ constant.
  const double d_avg = 2.0 * static_cast<double>(g.num_edges()) /
                       static_cast<double>(g.num_nodes());
  const double d_bar = std::pow(1.0 - 1.0 / (2.0 * d_avg), d_avg - 1.0);
  const double t = multiplier * (4.0 / d_bar) *
                   std::log(static_cast<double>(g.num_nodes())) / est.spectral_gap;
  est.rounds = static_cast<std::size_t>(std::ceil(std::max(1.0, t)));
  return est;
}

}  // namespace dgc::core
