#include "core/sharded_clusterer.hpp"

#include <algorithm>
#include <span>
#include <thread>
#include <utility>

#include "core/seeding.hpp"
#include "matching/load_state.hpp"
#include "matching/protocol.hpp"
#include "metrics/clustering_metrics.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dgc::core {

namespace {

/// Meters the row exchanges behind the cross-shard pairs of one round.
/// For every cross pair both machines ship their endpoint's full row to
/// the partner shard: 2 messages of (1 header + 2 words per entry), the
/// net::Network words_of formula applied to a *dense* row of s entries.
/// Note the rows here are dense (zeros included) while the
/// message-passing engine's State messages are sparse, so E15's
/// cross-shard words upper-bound — and are not directly comparable to —
/// the E4 per-node word counts.
class ShardMailbox {
 public:
  explicit ShardMailbox(std::size_t dimensions) : dimensions_(dimensions) {}

  /// Records the exchange for `pairs` cross-shard pairs; returns the
  /// words this round cost.
  std::uint64_t exchange(std::size_t pairs) {
    const std::uint64_t words_per_row = 1 + 2 * static_cast<std::uint64_t>(dimensions_);
    const std::uint64_t words = 2 * static_cast<std::uint64_t>(pairs) * words_per_row;
    traffic_.messages += 2 * static_cast<std::uint64_t>(pairs);
    traffic_.words += words;
    return words;
  }

  [[nodiscard]] const ShardTraffic& traffic() const noexcept { return traffic_; }

 private:
  std::size_t dimensions_;
  ShardTraffic traffic_;
};

}  // namespace

ShardedClusterer::ShardedClusterer(const graph::Graph& g, ClusterConfig config,
                                   ShardOptions options)
    : Engine(g, config), options_(options) {
  if (options_.partition != nullptr) {
    graph::validate_partition(*options_.partition, g.num_nodes());
    shards_ = options_.partition->num_shards;
    return;
  }
  std::uint32_t shards = options_.shards;
  if (shards == 0) {
    shards = std::max<std::uint32_t>(1, std::thread::hardware_concurrency());
  }
  shards_ = std::min<std::uint32_t>(shards, g.num_nodes());
}

ShardedReport ShardedClusterer::run() const {
  const graph::Graph& g = graph();
  const graph::NodeId n = g.num_nodes();
  const std::uint32_t P = shards_;

  ShardedReport report;
  ClusterResult& result = report.result;

  // --- Rounds, IDs, seeding, threshold (shared plumbing) -------------
  const std::vector<std::uint64_t> seed_ids = prepare(result);
  const std::size_t s = result.seeds.size();

  // --- Shard assignment ---------------------------------------------
  report.partition = options_.partition != nullptr
                         ? *options_.partition
                         : graph::partition_graph(g, P, options_.mode);
  report.partition_edge_cut = metrics::edge_cut(g, report.partition.shard_of);
  report.partition_cut_weight = metrics::edge_cut_weight(g, report.partition.shard_of);
  report.partition_imbalance = metrics::partition_imbalance(report.partition.shard_of, P);

  if (s == 0) {
    // Mirror the dense engine exactly: no seeds, everyone unclustered.
    result.labels.assign(n, metrics::kUnclustered);
    return report;
  }

  // --- Averaging procedure, sharded ---------------------------------
  matching::MultiLoadState state(n, s, config().hot_path.sparse_mode);
  state.set_skip_zeros(config().hot_path.skip_zero_rows);
  state.set_simd(config().hot_path.simd);
  state.set_weighted_graph(&g);  // no-op on unweighted graphs
  for (std::size_t i = 0; i < s; ++i) state.set(result.seeds[i], i, 1.0);

  matching::MatchingGenerator generator(g, derive_seed(config().seed, Stream::kMatching),
                                        config().protocol);
  generator.use_simd(config().hot_path.simd);
  ShardMailbox mailbox(s);
  util::ThreadPool pool(options_.threads == 0 ? P : options_.threads);
  // The generator is the serial bottleneck of the engine's Amdahl curve:
  // reuse the shard pool for block-parallel coin flips and resolution.
  if (config().hot_path.parallel_coins) generator.use_thread_pool(&pool);
  const std::vector<std::vector<graph::NodeId>> members = report.partition.members();

  RoundCheckpointer ckpt(g, config());
  const std::size_t start = ckpt.prepare_resume(result.rounds, s);
  if (const Checkpoint* loaded = ckpt.loaded()) {
    state.load_matrix(loaded->matrix);
  }
  generator.skip_rounds(start);

  report.words_per_round.reserve(result.rounds);
  const std::size_t window = resolve_schedule_window(config().hot_path, config().checkpoint);
  if (window > 1) {
    // Schedule-ahead executor: thread parallelism moves from per-round
    // pair splitting to dimension-stripe ownership — one barrier per
    // window instead of two per round.  The per-round mailbox accounting
    // is unchanged: the window reorders execution, not the data
    // dependencies, so each scheduled round still costs the same
    // cross-shard row exchanges, metered from the matchings as drawn.
    matching::WindowPlan plan;
    plan.window = window;
    plan.tile_cols = resolve_tile_cols(config().hot_path, n, s);
    plan.pool = &pool;
    plan.checkpoint_every = config().checkpoint.every;
    plan.stop_after_round = config().checkpoint.stop_after_round;
    plan.weighted_graph = state.weighted() ? &g : nullptr;
    matching::ProcessPhaseTimes phases;
    plan.phases = &phases;
    const std::span<const std::uint32_t> shard_of{report.partition.shard_of};
    result.process = matching::run_process_windowed(
        generator, state, start, result.rounds, plan,
        [&](std::size_t, const matching::Matching& m) {
          std::size_t cross = 0;
          for (const auto& [u, v] : m.edges) cross += shard_of[u] != shard_of[v];
          report.words_per_round.push_back(mailbox.exchange(cross));
          report.intra_pairs += m.edges.size() - cross;
          report.cross_pairs += cross;
        },
        [&](std::size_t t) { return ckpt.after_round(t, state); });
    result.phase_seconds.schedule = phases.schedule_seconds;
    result.phase_seconds.apply = phases.apply_seconds;
  } else {
  matching::ShardSplit split;  // hoisted: rounds reuse its capacity
  result.process = matching::run_process_range(
      generator, start, result.rounds,
      [&](std::size_t, const matching::Matching& m) {
        // Round boundary: take the (deterministic) sparse→dense switch
        // and pre-reserve this round's slot capacity before fanning out,
        // so the parallel phases below never reallocate row storage.
        state.update_mode();
        matching::split_by_shard(m, report.partition.shard_of, P, split);

        // Phase 1 — every shard applies its own pairs in parallel.  Rows
        // are pair-disjoint (matching) and pairs are shard-partitioned, so
        // no two workers ever touch the same row.
        pool.parallel_for(P, [&](std::size_t shard) {
          state.apply_pairs(split.intra[shard]);
        });

        // Phase 2 — cross-shard pairs: rows cross the mailbox (metered),
        // then both sides hold both rows and compute the identical
        // average.  Rows are still pair-disjoint, so this phase
        // parallelises too — in ~P contiguous blocks rather than per
        // pair, so high-cut partitions don't pay a dispatch per average.
        const std::size_t cross = split.cross.size();
        report.words_per_round.push_back(mailbox.exchange(cross));
        if (cross > 0) {
          const std::size_t blocks = std::min<std::size_t>(P, cross);
          pool.parallel_for(blocks, [&](std::size_t b) {
            const std::size_t begin = b * cross / blocks;
            const std::size_t end = (b + 1) * cross / blocks;
            state.apply_pairs({split.cross.data() + begin, end - begin});
          });
        }

        report.intra_pairs += split.intra_pairs();
        report.cross_pairs += split.cross.size();
      },
      [&](std::size_t t, const matching::Matching&) { return ckpt.after_round(t, state); });
  }
  ckpt.finish(result);
  report.traffic = mailbox.traffic();

  // --- Query procedure, each shard labelling its own nodes -----------
  const util::Timer query_timer;
  result.labels.resize(n);
  pool.parallel_for(P, [&](std::size_t shard) {
    for (const graph::NodeId v : members[shard]) {
      result.labels[v] = query_label(std::as_const(state).row(v), seed_ids,
                                     result.threshold, config().query_rule);
    }
  });
  result.phase_seconds.query = query_timer.seconds();

  return report;
}

}  // namespace dgc::core
