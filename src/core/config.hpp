// Configuration for the distributed clustering algorithm (§3).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "matching/load_state.hpp"
#include "matching/protocol.hpp"

namespace dgc::core {

/// How the query procedure turns final loads into labels.
enum class QueryRule : std::uint8_t {
  /// The paper's rule: smallest seed ID whose load clears the threshold
  /// τ = threshold_scale / (sqrt(2β)·n); nodes with no qualifying load
  /// get metrics::kUnclustered (the paper assigns an arbitrary ID; the
  /// sentinel is the pessimistic choice — it always counts as an error).
  kPaperMinId = 0,
  /// Practical variant: the seed ID with the largest load, no threshold.
  kArgmax = 1,
};

/// Round-loop execution knobs shared by every engine.  These change how
/// the per-round work is scheduled, never what is computed: labels are
/// bit-identical across every combination (asserted by the
/// EngineEquivalence grid).
struct HotPathOptions {
  /// Flip coins and resolve matchings block-parallel on a thread pool.
  bool parallel_coins = true;
  /// Worker threads for the coin pool (0 = hardware concurrency; a pool
  /// is only spun up when this resolves to > 1).  The sharded engine
  /// ignores this and reuses its shard pool.
  std::size_t coin_threads = 0;
  /// Skip averaging matched pairs whose two load rows are both all-zero
  /// (exact: the average of two zero rows is the zeros already stored).
  bool skip_zero_rows = true;
  /// Load-matrix storage: kAuto starts the run on the packed sparse
  /// active-row representation and densifies once active_rows·2 > n (a
  /// pure function of the support, so every engine/thread count switches
  /// on the same round); kOn stays sparse, kOff stays dense.
  matching::SparseMode sparse_mode = matching::SparseMode::kAuto;
  /// AVX2 kernels for λ-averaging and the batched coin advance (runtime
  /// CPU dispatch; the scalar fallback is bit-identical, see
  /// matching/simd_kernels.hpp).
  bool simd = true;
  /// Rounds scheduled ahead per window (matching/schedule.hpp): the
  /// matchings of W rounds are precomputed in one fused pass, then the
  /// load updates replay per dimension stripe so a stripe stays
  /// cache-resident across the whole window.  0 = auto (the default
  /// window, currently 8; forced to 1 while round_sleep_ms widens
  /// per-round signal windows); 1 = the classic per-round driver; >= 2 =
  /// windowed.  The message-passing engine has nothing to schedule ahead
  /// (it is the per-round fidelity path) and ignores this.
  std::size_t schedule_window = 0;
  /// Dimension-stripe width of the tiled window apply.  0 = auto-sized
  /// from the L2 cache so an n × tile stripe stays resident; otherwise
  /// clamped to [1, s].
  std::size_t tile_cols = 0;
};

/// Checkpoint/restart knobs (core/checkpoint.hpp).  The run state at a
/// round boundary is just (round counter, load matrix): coins re-derive
/// from (seed, round), so a saved checkpoint resumes bit-identically on
/// any engine.  Like HotPathOptions these never change what is computed
/// — an interrupted-and-resumed run produces the same labels as an
/// uninterrupted one (asserted by checkpoint_test and the kill-and-
/// resume CI harness).
struct CheckpointOptions {
  /// Checkpoint file (.dgcc).  Empty disables checkpointing entirely.
  std::string path;
  /// Save every `every` completed rounds (0 = only when stopping).
  std::size_t every = 0;
  /// Resume from `path` if it exists (a missing file starts fresh; a
  /// corrupt or mismatching file is an error, never silently ignored).
  bool resume = false;
  /// Cooperative stop flag, typically set by a SIGTERM handler.  When it
  /// reads true at a round boundary the engine writes a checkpoint to
  /// `path`, marks the result interrupted, and returns early.
  const std::atomic<bool>* stop = nullptr;
  /// Stop (checkpoint + early return, as if `stop` fired) after this
  /// completed round; 0 = run to the end.  Bounded work chunks for job
  /// schedulers, and the deterministic save-at-round-r hook the
  /// checkpoint tests are built on.
  std::size_t stop_after_round = 0;
  /// Testing aid: sleep this long after every completed round, giving
  /// the kill-and-resume harness a deterministic window to land signals
  /// in.  Leave 0 in production.
  std::size_t round_sleep_ms = 0;
};

struct ClusterConfig {
  /// Known lower bound on min_i |S_i| / n (the paper's β).  Drives the
  /// number of seeding trials and the query threshold.
  double beta = 0.25;

  /// Averaging rounds T.  0 = derive T = ceil(rounds_multiplier · ln n /
  /// (1 − λ_{k+1})) with λ_{k+1} estimated by Lanczos using k_hint (the
  /// paper assumes T is known to the nodes; the estimate stands in for
  /// that out-of-band knowledge and is computed once, centrally).
  std::size_t rounds = 0;
  std::uint32_t k_hint = 0;
  double rounds_multiplier = 1.0;

  /// Scale on the query threshold τ = threshold_scale / (sqrt(2β)·n).
  double threshold_scale = 1.0;

  QueryRule query_rule = QueryRule::kPaperMinId;

  /// Seeding trials s̄.  0 = the paper's ceil((3/β)·ln(1/β)).
  std::size_t seeding_trials = 0;

  /// Master seed; every coin in the run derives from it deterministically.
  std::uint64_t seed = 42;

  /// Matching protocol options (virtual degree for §4.5 etc.).
  matching::ProtocolOptions protocol{};

  /// Round-loop scheduling knobs (perf only; labels are invariant).
  HotPathOptions hot_path{};

  /// Checkpoint/restart knobs (labels invariant under interrupt+resume).
  CheckpointOptions checkpoint{};
};

}  // namespace dgc::core
