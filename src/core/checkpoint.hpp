// Checkpoint/restart for the averaging procedure (our extension; the
// paper assumes failure-free synchronous rounds).
//
// Why this is cheap and exact: the protocol is deterministic given
// (seed, round).  Every coin of round t derives from the per-node RNG
// streams, which are a pure function of the master seed and of how many
// rounds have been flipped before t — so the entire run state at a
// round boundary is the n×s load matrix plus the round counter.  A
// checkpoint stores exactly that; resume re-derives seeds, node IDs,
// T and the query threshold from the config (Engine::prepare is
// deterministic) and fast-forwards the matching generator by re-flipping
// the first r rounds' coins (MatchingGenerator::skip_rounds).  No RNG
// state is ever serialised.  The same replayability gives fault
// *detection* for free: verify_checkpoint re-runs rounds 0..r from the
// coins alone and compares matrices bit for bit.
//
// On-disk format (.dgcc, version 1, native byte order):
//   header   magic "DGCC", endian marker, version, storage mode,
//            config/graph fingerprint, round counter r, total rounds T,
//            n, s, payload row count
//   payload  dense:  n·s doubles (row-major, node-major)
//            sparse: per active row, u64 node id + s doubles (rows in
//            increasing node order) — chosen automatically when the
//            active-row bound makes it smaller (early rounds touch
//            O(s·2^t) of the n rows)
//   trailer  CRC-32 of header + payload
//
// Writes are crash-safe: the image goes to `path + ".tmp"`, is fsynced,
// and is renamed over `path` (util/binary_file.hpp) — a SIGKILL at any
// instant leaves either the previous complete checkpoint or the new
// one, never a torn file.  The kill-and-resume CI harness proves both
// properties end to end.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "graph/graph.hpp"

namespace dgc::matching {
class MultiLoadState;
}

namespace dgc::core {

struct ClusterResult;

/// Exit code a driver should use when a run was interrupted by the stop
/// flag and a checkpoint was written: the job is not failed, it is
/// resumable (EX_TEMPFAIL, the sysexits convention for "try again").
inline constexpr int kResumableExitCode = 75;

/// One snapshot of the averaging procedure at a round boundary.
struct Checkpoint {
  /// checkpoint_fingerprint(graph, config) of the run that wrote it.
  std::uint64_t fingerprint = 0;
  /// Completed rounds r: the matrix is x^(r,·).
  std::uint64_t round = 0;
  /// Total rounds T of the run (sanity-checked on resume).
  std::uint64_t total_rounds = 0;
  std::uint64_t num_nodes = 0;
  /// Load dimensions s (the seed count).
  std::uint64_t dimensions = 0;
  /// Dense row-major n×s load matrix.
  std::vector<double> matrix;
};

/// Fingerprint binding a checkpoint to its run: hashes the graph's CSR
/// arrays (and weights) and every config field that influences the
/// computed values — seed, beta, rounds/k_hint/rounds_multiplier,
/// threshold_scale, query_rule, seeding_trials, protocol options.
/// HotPathOptions and CheckpointOptions are pure scheduling, so a run
/// may legally resume with different thread counts, skip-zeros setting,
/// or checkpoint cadence and still be bit-identical.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(const graph::Graph& g,
                                                   const ClusterConfig& config);

/// Serialises `cp` in the .dgcc layout (dense or sparse payload,
/// whichever is smaller).
void write_checkpoint(std::ostream& os, const Checkpoint& cp);

/// Parses and validates a .dgcc stream: magic, endianness, version,
/// header sanity, truncation, and the CRC over everything it read.
/// Throws contract_error naming the failure.
[[nodiscard]] Checkpoint read_checkpoint(std::istream& is);

/// Atomic file save: temp file + fsync + rename (see header comment).
void save_checkpoint_file(const std::string& path, const Checkpoint& cp);

/// Loads a .dgcc file (same validation as read_checkpoint).
[[nodiscard]] Checkpoint load_checkpoint_file(const std::string& path);

/// verify_checkpoint outcome.  When `ok` is false and `error` is empty,
/// the replay itself succeeded but diverged from the stored matrix at
/// (node, dimension) — the stored value is `found`, the replayed truth
/// is `expected`, and `mismatches` counts every differing entry.  A
/// non-empty `error` reports a structural failure (fingerprint, shape,
/// or round-count mismatch) before any replay ran.
struct CheckpointVerification {
  bool ok = false;
  std::string error;
  graph::NodeId node = 0;
  std::uint64_t dimension = 0;
  double expected = 0.0;
  double found = 0.0;
  std::uint64_t mismatches = 0;
};

/// Replays rounds 1..cp.round from (config.seed) coins alone on a fresh
/// load matrix and compares against cp.matrix bit for bit.  Because all
/// engines are bit-identical, a checkpoint written by any engine
/// verifies against the (dense) replay; a single corrupted entry is
/// pinpointed by (node, dimension).  Doubles as a fault-detection tool
/// for long jobs.
[[nodiscard]] CheckpointVerification verify_checkpoint(const graph::Graph& g,
                                                       const ClusterConfig& config,
                                                       const Checkpoint& cp);

/// Per-round checkpoint driver shared by the three engines.  Inert
/// (zero overhead beyond a branch) when the config enables nothing.
///
/// Usage inside an engine's round loop:
///   RoundCheckpointer ckpt(graph, config);
///   const std::size_t start = ckpt.prepare_resume(T, s);
///   if (ckpt.loaded()) { restore state from ckpt.loaded()->matrix; }
///   generator.skip_rounds(start);
///   ... after each completed global round t:
///   if (!ckpt.after_round(t, state)) break;   // stop requested: saved
///   ... after the loop:
///   ckpt.finish(result);
class RoundCheckpointer {
 public:
  RoundCheckpointer(const graph::Graph& g, const ClusterConfig& config);

  /// When resume is requested and the file exists, loads + validates it
  /// (fingerprint, n, s, T) and returns its completed-round count; 0
  /// otherwise (fresh start).  Must be called before the round loop.
  [[nodiscard]] std::size_t prepare_resume(std::size_t total_rounds,
                                           std::size_t dimensions);

  /// The loaded checkpoint to restore the matrix from (null = fresh).
  [[nodiscard]] const Checkpoint* loaded() const noexcept {
    return resumed_ ? &loaded_ : nullptr;
  }

  /// Called after completed global round t with the current state.
  /// Saves on the cadence and on a stop request; returns false when the
  /// engine must stop now (checkpoint already written).
  [[nodiscard]] bool after_round(std::size_t t, const matching::MultiLoadState& state);

  /// Overload for engines without a MultiLoadState (message-passing):
  /// `dump` fills the dense n×s matrix only when a save actually fires.
  template <typename DumpFn>
  [[nodiscard]] bool after_round_with(std::size_t t, DumpFn&& dump) {
    if (!should_act(t)) return true;
    Checkpoint cp = make_frame(t);
    dump(cp.matrix);
    return commit(t, std::move(cp));
  }

  /// Stamps the checkpoint/restart fields of the result (resumed,
  /// resume_round, interrupted, checkpoint_round).
  void finish(ClusterResult& result) const;

  [[nodiscard]] bool interrupted() const noexcept { return interrupted_; }

 private:
  /// Sleeps the test window, then decides whether round t saves/stops.
  bool should_act(std::size_t t);
  [[nodiscard]] Checkpoint make_frame(std::size_t t) const;
  /// Saves `cp` if due and records the stop decision; false = stop.
  bool commit(std::size_t t, Checkpoint cp);

  const graph::Graph* graph_;
  const ClusterConfig* config_;
  std::uint64_t fingerprint_ = 0;  ///< computed once, lazily
  std::size_t total_rounds_ = 0;
  std::size_t dimensions_ = 0;
  Checkpoint loaded_;
  bool resumed_ = false;
  bool interrupted_ = false;
  bool stop_pending_ = false;
  std::size_t checkpoint_round_ = 0;  ///< last round saved (0 = none)
};

}  // namespace dgc::core
