// The paper's algorithm, sharded parallel engine.
//
// P shards simulate machines: graph::partition_graph assigns every node
// (and its load-vector row) to one shard.  Each round the global matching
// is drawn once — from the same matching::MatchingGenerator streams as
// the other engines, so the coins are identical — and split by shard:
//   * intra-shard pairs (both endpoints on one shard) are applied by the
//     P shards in parallel on a persistent util::ThreadPool;
//   * cross-shard pairs first exchange their two rows through the shard
//     mailbox — each endpoint's machine ships its row to the other, and
//     the mailbox meters that traffic in words (1 header + 2 words per
//     entry, net::Network's words_of formula applied to the dense
//     s-entry row; an upper bound on, not directly comparable to, the
//     sparse State messages of E4) — then both sides compute the same
//     average.
// Every matched pair touches two rows no other pair of the round touches
// (a matching is node-disjoint), so the parallel application is race-free
// and the result is bit-identical to the dense engine's sequential sweep
// — same coins, same pairs, same two-operand averages.  EngineEquivalence
// asserts label-for-label equality across P and both query rules.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "graph/partitioner.hpp"

namespace dgc::core {

struct ShardOptions {
  /// Number of shards P.  0 = hardware concurrency (capped at n).
  std::uint32_t shards = 0;
  graph::PartitionMode mode = graph::PartitionMode::kRange;
  /// Externally supplied node partition (a partition file, or
  /// graph::refine_partition with non-default options).  When set it
  /// wins outright: `shards` and `mode` are ignored and P =
  /// partition->num_shards.  Validated against the graph at
  /// construction (graph::validate_partition — any valid assignment is
  /// accepted, balanced or not; labels stay bit-identical either way).
  /// Must outlive the clusterer.
  const graph::Partition* partition = nullptr;
  /// Worker threads backing the shards.  0 = one per shard.
  std::size_t threads = 0;
};

/// Inter-shard traffic metered by the shard mailbox.
struct ShardTraffic {
  std::uint64_t messages = 0;  ///< row exchanges (2 per cross-shard pair)
  std::uint64_t words = 0;     ///< 1 header + 2 words per load entry each
};

struct ShardedReport {
  ClusterResult result;
  /// The node partition actually used (shards resolved, mode applied).
  graph::Partition partition;
  /// Static edge cut of the partition (metrics::edge_cut).
  std::uint64_t partition_edge_cut = 0;
  /// Cut weight of the partition (= partition_edge_cut when unweighted).
  double partition_cut_weight = 0.0;
  /// metrics::partition_imbalance of the partition (1.0 = perfect).
  double partition_imbalance = 0.0;
  /// Matched pairs applied shard-locally / via the mailbox, over all rounds.
  std::uint64_t intra_pairs = 0;
  std::uint64_t cross_pairs = 0;
  ShardTraffic traffic;
  /// Per-round mailbox words, for the shard-scaling experiment (E15).
  std::vector<std::uint64_t> words_per_round;
};

class ShardedClusterer : public Engine {
 public:
  ShardedClusterer(const graph::Graph& g, ClusterConfig config,
                   ShardOptions options = {});

  /// Runs the pipeline with full shard accounting.
  [[nodiscard]] ShardedReport run() const;

  [[nodiscard]] std::string_view name() const noexcept override { return "sharded"; }
  [[nodiscard]] ClusterResult cluster() const override { return run().result; }

  [[nodiscard]] const ShardOptions& options() const noexcept { return options_; }
  /// P after resolving options().shards == 0 against the hardware.
  [[nodiscard]] std::uint32_t resolved_shards() const noexcept { return shards_; }

 private:
  ShardOptions options_;
  std::uint32_t shards_;
};

}  // namespace dgc::core
