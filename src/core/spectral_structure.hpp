// Spectral structure diagnostics for well-clustered graphs — the
// quantities in §1.1 and Lemmas 4.2–4.3:
//
//   * λ_k, λ_{k+1}, the gap 1−λ_{k+1}, ρ(k) of the planted partition,
//     and ϒ = (1−λ_{k+1}) / ρ(k);
//   * χ̂_1 … χ̂_k — the orthonormal set in span{χ_{S_1} … χ_{S_k}}
//     obtained by projecting the eigenvectors f_i onto that span and
//     Gram–Schmidt-ing (the Lemma 4.2 construction), with the measured
//     errors ‖χ̂_i − f_i‖;
//   * α_v = sqrt(Σ_i (f_i(v) − χ̂_i(v))²) per node (eq. 4) and the
//     good-node threshold k·E·sqrt(C·log n·log(1/β) / (βn)).
//
// These are *analysis* tools: the distributed algorithm never computes
// them.  Benches E7/E8 and the property tests use them to check that the
// instances exercised really are in the paper's regime.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::core {

struct SpectralStructure {
  /// λ_1 … λ_{k+1} of P, descending.
  std::vector<double> eigenvalues;
  /// f_1 … f_k (unit vectors).
  std::vector<std::vector<double>> eigenvectors;
  double lambda_k = 0.0;
  double lambda_k1 = 0.0;
  /// ρ(k) witnessed by the planted partition (paper conductance).
  double rho_k = 0.0;
  /// ϒ = (1 − λ_{k+1}) / ρ(k); infinity when the partition has no cut.
  double upsilon = 0.0;
  /// Lemma 4.2's error scale E = k·sqrt(k/ϒ).
  double error_bound = 0.0;
  /// Orthonormal χ̂_i in span{χ_S}; chi_hat[i] pairs with eigenvectors[i].
  std::vector<std::vector<double>> chi_hat;
  /// Measured ‖χ̂_i − f_i‖ per i.
  std::vector<double> chi_hat_errors;
  /// α_v per node (eq. 4).
  std::vector<double> alpha;
  /// Good-node threshold with the given constant C.
  double good_threshold = 0.0;
  /// good[v] = α_v ≤ good_threshold.
  std::vector<char> good;

  [[nodiscard]] std::size_t num_good() const {
    std::size_t count = 0;
    for (const char flag : good) count += flag != 0;
    return count;
  }
};

/// Computes the structure for a planted instance.  `constant_c` is the C
/// in the good-node definition; `seed` feeds the Lanczos start vector.
[[nodiscard]] SpectralStructure analyze_structure(const graph::PlantedGraph& planted,
                                                  double constant_c = 0.5,
                                                  std::uint64_t seed = 29);

}  // namespace dgc::core
