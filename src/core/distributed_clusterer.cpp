#include "core/distributed_clusterer.hpp"

#include <algorithm>
#include <memory>

#include "core/seeding.hpp"
#include "matching/protocol.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace dgc::core {

namespace {

using SparseState = std::vector<std::pair<std::uint64_t, double>>;  // sorted by id

/// The averaging rule of §3.1: shared prefixes average, unshared halve.
/// Equivalently: elementwise mean with missing entries read as 0.  Both
/// endpoints of a matched pair compute exactly this same result.
SparseState merge_states(const SparseState& a, const SparseState& b) {
  SparseState out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      out.emplace_back(a[i].first, 0.5 * (a[i].second + 0.0));
      ++i;
    } else if (i == a.size() || b[j].first < a[i].first) {
      out.emplace_back(b[j].first, 0.5 * (b[j].second + 0.0));
      ++j;
    } else {
      out.emplace_back(a[i].first, 0.5 * (a[i].second + b[j].second));
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

DistributedClusterer::DistributedClusterer(const graph::Graph& g, ClusterConfig config)
    : Engine(g, config) {}

DistributedReport DistributedClusterer::run(double drop_probability) const {
  const graph::Graph& g = graph();
  const graph::NodeId n = g.num_nodes();
  const ClusterConfig& cfg = config();

  DistributedReport report;
  ClusterResult& result = report.result;

  // Rounds, IDs, seeding, threshold (shared plumbing); the sparse states
  // carry the IDs themselves, so the returned seed-ID list is unused.
  (void)prepare(result);

  // Local node states: seed nodes start with {(own id, 1)}.
  std::vector<SparseState> state(n);
  for (const graph::NodeId v : result.seeds) {
    state[v].emplace_back(result.node_ids[v], 1.0);
  }

  net::Network network(g);
  if (drop_probability > 0.0) {
    network.set_drop_probability(drop_probability,
                                 derive_seed(cfg.seed, Stream::kTieBreak));
  }

  matching::MatchingGenerator generator(
      g, derive_seed(cfg.seed, Stream::kMatching), cfg.protocol);
  const std::unique_ptr<util::ThreadPool> coin_pool = make_coin_pool(cfg.hot_path, n);
  generator.use_thread_pool(coin_pool.get());

  std::vector<graph::NodeId> pending_partner(n, graph::kInvalidNode);
  matching::MatchingGenerator::Coins coins;  // hoisted: refilled in place per round
  for (std::size_t t = 1; t <= result.rounds; ++t) {
    const std::uint64_t words_before = network.stats().words;
    generator.flip_round_coins(coins);

    // Phase 1 — active nodes probe their chosen neighbour.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (coins.probe[v] != graph::kInvalidNode) {
        network.send({v, coins.probe[v], net::MsgKind::kProbe, {}});
      }
    }
    network.deliver();
    ++report.phases;

    // Phase 2 — non-active nodes probed exactly once accept, shipping
    // their state along with the accept.
    std::size_t matched_pairs = 0;
    std::fill(pending_partner.begin(), pending_partner.end(), graph::kInvalidNode);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (coins.active[v]) continue;
      const auto& inbox = network.inbox(v);
      std::size_t probes = 0;
      graph::NodeId prober = graph::kInvalidNode;
      for (const auto& message : inbox) {
        if (message.kind == net::MsgKind::kProbe) {
          ++probes;
          prober = message.from;
        }
      }
      if (probes == 1) {
        pending_partner[v] = prober;
        ++matched_pairs;
        network.send({v, prober, net::MsgKind::kAccept, state[v]});
      }
    }
    network.deliver();
    ++report.phases;

    // Phase 3 — probers that received an accept merge and reply with
    // their pre-merge state; acceptors merge on receipt.
    for (graph::NodeId u = 0; u < n; ++u) {
      const auto& inbox = network.inbox(u);
      for (const auto& message : inbox) {
        if (message.kind != net::MsgKind::kAccept) continue;
        // u probed exactly one neighbour, so at most one accept arrives.
        network.send({u, message.from, net::MsgKind::kState, state[u]});
        state[u] = merge_states(state[u], message.payload);
        break;
      }
    }
    network.deliver();
    ++report.phases;

    for (graph::NodeId v = 0; v < n; ++v) {
      if (pending_partner[v] == graph::kInvalidNode) continue;
      for (const auto& message : network.inbox(v)) {
        if (message.kind == net::MsgKind::kState &&
            message.from == pending_partner[v]) {
          state[v] = merge_states(state[v], message.payload);
          break;
        }
      }
    }
    report.words_per_round.push_back(network.stats().words - words_before);
    result.process.total_matched_edges += matched_pairs;
    result.process.mean_matched_fraction +=
        static_cast<double>(matched_pairs) / (static_cast<double>(n) / 2.0);
  }
  result.process.rounds = result.rounds;
  if (result.rounds > 0) {
    result.process.mean_matched_fraction /= static_cast<double>(result.rounds);
  }

  // Query procedure, evaluated locally on the sparse state.
  result.labels.resize(n);
  std::vector<double> values;
  std::vector<std::uint64_t> ids;
  for (graph::NodeId v = 0; v < n; ++v) {
    values.clear();
    ids.clear();
    for (const auto& [id, value] : state[v]) {
      ids.push_back(id);
      values.push_back(value);
    }
    result.labels[v] =
        query_label(values, ids, result.threshold, cfg.query_rule);
    report.max_state_entries = std::max(report.max_state_entries, state[v].size());
  }

  report.traffic = network.stats();
  return report;
}

}  // namespace dgc::core
