#include "core/distributed_clusterer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/seeding.hpp"
#include "matching/protocol.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace dgc::core {

namespace {

using SparseState = std::vector<std::pair<std::uint64_t, double>>;  // sorted by id

/// One merged entry: x_own' = (1-λ)·x_own + λ·x_other, with missing
/// entries read as 0.  λ = 0.5 evaluates the unweighted 0.5·(a+b)
/// expression so unweighted (and all-equal-weight) runs stay bit-
/// identical to the dense engine's averaging loop.
double mix(double own, double other, double lambda, double keep) {
  if (lambda == 0.5) return 0.5 * (own + other);
  return keep * own + lambda * other;
}

/// The averaging rule of §3.1: shared prefixes average, unshared halve
/// (λ-partially on weighted graphs — matching/load_state.hpp documents
/// the weighted step).  Both endpoints of a matched pair compute their
/// own side of this same exchange.
SparseState merge_states(const SparseState& own, const SparseState& other,
                         double lambda) {
  const double keep = 1.0 - lambda;
  SparseState out;
  out.reserve(own.size() + other.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < own.size() || j < other.size()) {
    if (j == other.size() || (i < own.size() && own[i].first < other[j].first)) {
      out.emplace_back(own[i].first, mix(own[i].second, 0.0, lambda, keep));
      ++i;
    } else if (i == own.size() || other[j].first < own[i].first) {
      out.emplace_back(other[j].first, mix(0.0, other[j].second, lambda, keep));
      ++j;
    } else {
      out.emplace_back(own[i].first, mix(own[i].second, other[j].second, lambda, keep));
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

DistributedClusterer::DistributedClusterer(const graph::Graph& g, ClusterConfig config)
    : Engine(g, config) {}

DistributedReport DistributedClusterer::run(double drop_probability,
                                            const graph::Partition* partition) const {
  const graph::Graph& g = graph();
  const graph::NodeId n = g.num_nodes();
  const ClusterConfig& cfg = config();
  if (partition != nullptr) graph::validate_partition(*partition, n);

  DistributedReport report;
  ClusterResult& result = report.result;

  // Rounds, IDs, seeding, threshold (shared plumbing).  The sparse
  // states carry the IDs themselves; the seed-ID list is only needed to
  // translate between them and a checkpoint's dense frame.
  const std::vector<std::uint64_t> seed_ids = prepare(result);
  const std::size_t s = result.seeds.size();

  // Local node states: seed nodes start with {(own id, 1)}.
  std::vector<SparseState> state(n);
  for (const graph::NodeId v : result.seeds) {
    state[v].emplace_back(result.node_ids[v], 1.0);
  }

  net::Network network(g);
  if (drop_probability > 0.0) {
    network.set_drop_probability(drop_probability,
                                 derive_seed(cfg.seed, Stream::kTieBreak));
  }
  // Wire-traffic accounting only: messages whose endpoints live on
  // different shards of the supplied partition are what a multi-process
  // deployment would serialise.  Metered at send time (a dropped message
  // still cost its bytes).
  const auto send = [&](net::Message message) {
    if (partition != nullptr &&
        partition->shard_of[message.from] != partition->shard_of[message.to]) {
      report.cross_partition_words += net::Network::words_of(message);
      ++report.cross_partition_messages;
    }
    network.send(std::move(message));
  };

  matching::MatchingGenerator generator(
      g, derive_seed(cfg.seed, Stream::kMatching), cfg.protocol);
  // This engine's per-node State maps are natively sparse, so
  // hot_path.sparse_mode has nothing to pick here; likewise
  // schedule_window — the per-message round loop IS the fidelity being
  // simulated, so there is nothing to schedule ahead (labels stay
  // bit-identical to the windowed engines either way, asserted by the
  // EngineEquivalence grid).  The SIMD coin batch still applies
  // (bit-identical draws either way).
  generator.use_simd(cfg.hot_path.simd);
  const std::unique_ptr<util::ThreadPool> coin_pool = make_coin_pool(cfg.hot_path, n);
  generator.use_thread_pool(coin_pool.get());

  // Weighted graphs average λ-partially along the matched edge; both
  // endpoints derive the same λ from the (symmetric) edge weight.
  const bool weighted = g.is_weighted() && g.max_weight() > 0.0;
  const double two_max_weight = 2.0 * g.max_weight();
  const auto pair_lambda = [&](graph::NodeId u, graph::NodeId v) {
    return weighted ? g.edge_weight(u, v) / two_max_weight : 0.5;
  };

  // Checkpoint frames are the engines' shared dense n×s layout
  // (dimension i = seed i in node order); the sparse rows translate
  // through the id ↔ dimension map.  Entries are strictly positive once
  // created (λ ∈ (0, 0.5], keep ≥ 0.5), so "row has an entry for id" ⇔
  // "dense cell is nonzero" and the translation is lossless.
  std::vector<std::pair<std::uint64_t, std::size_t>> dim_of_id(s);
  for (std::size_t i = 0; i < s; ++i) dim_of_id[i] = {seed_ids[i], i};
  std::sort(dim_of_id.begin(), dim_of_id.end());
  const auto dim_index = [&](std::uint64_t id) {
    const auto it = std::lower_bound(
        dim_of_id.begin(), dim_of_id.end(), id,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    DGC_REQUIRE(it != dim_of_id.end() && it->first == id, "unknown seed id in state");
    return it->second;
  };

  const CheckpointOptions& ck = cfg.checkpoint;
  const bool checkpointing =
      !ck.path.empty() || ck.resume || ck.stop != nullptr || ck.stop_after_round > 0;
  // Dropped-message randomness is drawn from the network as rounds
  // execute and is not replayed on resume, so a lossy run can never be
  // checkpointed bit-identically.
  DGC_REQUIRE(!checkpointing || drop_probability == 0.0,
              "checkpoint/restart requires a lossless network (drop_probability 0)");
  RoundCheckpointer ckpt(g, cfg);
  const std::size_t start = ckpt.prepare_resume(result.rounds, s);
  if (const Checkpoint* loaded = ckpt.loaded()) {
    for (graph::NodeId v = 0; v < n; ++v) {
      SparseState& row = state[v];
      row.clear();
      const double* src = loaded->matrix.data() + static_cast<std::size_t>(v) * s;
      // dim_of_id is sorted by id, so the rebuilt row is too.
      for (const auto& [id, dim] : dim_of_id) {
        const double value = src[dim];
        if (value != 0.0 || std::signbit(value)) row.emplace_back(id, value);
      }
    }
  }
  generator.skip_rounds(start);

  std::size_t executed = 0;
  std::vector<graph::NodeId> pending_partner(n, graph::kInvalidNode);
  matching::MatchingGenerator::Coins coins;  // hoisted: refilled in place per round
  for (std::size_t t = start + 1; t <= result.rounds; ++t) {
    const std::uint64_t words_before = network.stats().words;
    generator.flip_round_coins(coins);

    // Phase 1 — active nodes probe their chosen neighbour.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (coins.probe[v] != graph::kInvalidNode) {
        send({v, coins.probe[v], net::MsgKind::kProbe, {}});
      }
    }
    network.deliver();
    ++report.phases;

    // Phase 2 — non-active nodes probed exactly once accept, shipping
    // their state along with the accept.
    std::size_t matched_pairs = 0;
    std::fill(pending_partner.begin(), pending_partner.end(), graph::kInvalidNode);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (coins.active[v]) continue;
      const auto& inbox = network.inbox(v);
      std::size_t probes = 0;
      graph::NodeId prober = graph::kInvalidNode;
      for (const auto& message : inbox) {
        if (message.kind == net::MsgKind::kProbe) {
          ++probes;
          prober = message.from;
        }
      }
      if (probes == 1) {
        pending_partner[v] = prober;
        ++matched_pairs;
        send({v, prober, net::MsgKind::kAccept, state[v]});
      }
    }
    network.deliver();
    ++report.phases;

    // Phase 3 — probers that received an accept merge and reply with
    // their pre-merge state; acceptors merge on receipt.
    for (graph::NodeId u = 0; u < n; ++u) {
      const auto& inbox = network.inbox(u);
      for (const auto& message : inbox) {
        if (message.kind != net::MsgKind::kAccept) continue;
        // u probed exactly one neighbour, so at most one accept arrives.
        send({u, message.from, net::MsgKind::kState, state[u]});
        state[u] = merge_states(state[u], message.payload, pair_lambda(u, message.from));
        break;
      }
    }
    network.deliver();
    ++report.phases;

    for (graph::NodeId v = 0; v < n; ++v) {
      if (pending_partner[v] == graph::kInvalidNode) continue;
      for (const auto& message : network.inbox(v)) {
        if (message.kind == net::MsgKind::kState &&
            message.from == pending_partner[v]) {
          state[v] = merge_states(state[v], message.payload, pair_lambda(v, message.from));
          break;
        }
      }
    }
    report.words_per_round.push_back(network.stats().words - words_before);
    result.process.total_matched_edges += matched_pairs;
    result.process.mean_matched_fraction +=
        static_cast<double>(matched_pairs) / (static_cast<double>(n) / 2.0);
    ++executed;

    if (!ckpt.after_round_with(t, [&](std::vector<double>& matrix) {
          for (graph::NodeId v = 0; v < n; ++v) {
            double* dst = matrix.data() + static_cast<std::size_t>(v) * s;
            for (const auto& [id, value] : state[v]) dst[dim_index(id)] = value;
          }
        })) {
      break;
    }
  }
  ckpt.finish(result);
  // Like the other engines' range driver, stats cover the rounds this
  // invocation actually executed (a resumed run reports its own window).
  result.process.rounds = executed;
  if (executed > 0) {
    result.process.mean_matched_fraction /= static_cast<double>(executed);
  }

  // Query procedure, evaluated locally on the sparse state.
  result.labels.resize(n);
  std::vector<double> values;
  std::vector<std::uint64_t> ids;
  for (graph::NodeId v = 0; v < n; ++v) {
    values.clear();
    ids.clear();
    for (const auto& [id, value] : state[v]) {
      ids.push_back(id);
      values.push_back(value);
    }
    result.labels[v] =
        query_label(values, ids, result.threshold, cfg.query_rule);
    report.max_state_entries = std::max(report.max_state_entries, state[v].size());
  }

  report.traffic = network.stats();
  return report;
}

}  // namespace dgc::core
