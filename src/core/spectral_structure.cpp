#include "core/spectral_structure.hpp"

#include <cmath>
#include <limits>

#include "graph/analysis.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"

namespace dgc::core {

SpectralStructure analyze_structure(const graph::PlantedGraph& planted, double constant_c,
                                    std::uint64_t seed) {
  const graph::Graph& g = planted.graph;
  const std::uint32_t k = planted.num_clusters;
  const std::size_t n = g.num_nodes();
  DGC_REQUIRE(k >= 1, "planted partition has no clusters");
  DGC_REQUIRE(n > k + 1, "graph too small");

  SpectralStructure st;

  // --- Eigenpairs -----------------------------------------------------
  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = k + 1;
  options.seed = seed;
  options.max_iterations = 6 * (k + 1) + 80;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      n,
      [&](std::span<const double> in, std::span<double> out) {
        if (g.is_regular()) {
          op.apply_walk(in, out);
        } else {
          op.apply_normalized(in, out);
        }
      },
      options);
  st.eigenvalues = pairs.values;
  st.eigenvectors.assign(pairs.vectors.begin(), pairs.vectors.begin() + k);
  st.lambda_k = pairs.values[k - 1];
  st.lambda_k1 = pairs.values[k];

  // --- ϒ ----------------------------------------------------------------
  st.rho_k = graph::rho(g, planted.membership, k);
  st.upsilon = st.rho_k > 0.0 ? (1.0 - st.lambda_k1) / st.rho_k
                              : std::numeric_limits<double>::infinity();
  st.error_bound = static_cast<double>(k) * std::sqrt(static_cast<double>(k) / st.upsilon);

  // --- Lemma 4.2 construction ------------------------------------------
  // Unit-norm cluster indicators χ_{S_j} / ‖χ_{S_j}‖ (value 1/sqrt|S_j|).
  const auto sizes = planted.cluster_sizes();
  std::vector<std::vector<double>> indicator(k, std::vector<double>(n, 0.0));
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto c = planted.membership[v];
    indicator[c][v] = 1.0 / std::sqrt(static_cast<double>(sizes[c]));
  }
  // χ̃_i = projection of f_i on span{χ_S}; then Gram–Schmidt.
  st.chi_hat.assign(k, std::vector<double>(n, 0.0));
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = 0; j < k; ++j) {
      const double coeff = linalg::dot(st.eigenvectors[i], indicator[j]);
      linalg::axpy(coeff, indicator[j], st.chi_hat[i]);
    }
  }
  const std::size_t kept = linalg::gram_schmidt(st.chi_hat);
  DGC_REQUIRE(kept == k, "projections of f_1..f_k were not independent; graph is not "
                         "in the well-clustered regime");

  st.chi_hat_errors.resize(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    st.chi_hat_errors[i] = linalg::norm_diff(st.chi_hat[i], st.eigenvectors[i]);
  }

  // --- α_v and good nodes (eq. 4) ---------------------------------------
  st.alpha.assign(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    double acc = 0.0;
    for (std::uint32_t i = 0; i < k; ++i) {
      const double diff = st.eigenvectors[i][v] - st.chi_hat[i][v];
      acc += diff * diff;
    }
    st.alpha[v] = std::sqrt(acc);
  }
  const double beta = planted.beta();
  DGC_REQUIRE(beta > 0.0, "degenerate planted partition");
  const double log_term = std::log(static_cast<double>(n)) * std::log(1.0 / beta);
  st.good_threshold = static_cast<double>(k) * st.error_bound *
                      std::sqrt(constant_c * log_term / (beta * static_cast<double>(n)));
  st.good.assign(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) st.good[v] = st.alpha[v] <= st.good_threshold;
  return st;
}

}  // namespace dgc::core
