#include "core/summary.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/analysis.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/require.hpp"

namespace dgc::core {

PartitionSummary summarize_partition(const graph::Graph& g,
                                     std::span<const std::uint64_t> labels) {
  DGC_REQUIRE(labels.size() == g.num_nodes(), "labels size mismatch");

  PartitionSummary summary;
  std::unordered_map<std::uint64_t, std::uint32_t> remap;
  std::vector<std::uint32_t> compacted(labels.size(), 0);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == metrics::kUnclustered) {
      ++summary.unclustered;
      continue;
    }
    const auto [it, inserted] =
        remap.emplace(labels[v], static_cast<std::uint32_t>(remap.size()));
    compacted[v] = it->second;
  }
  summary.num_clusters = static_cast<std::uint32_t>(remap.size());
  if (summary.num_clusters == 0) return summary;

  // Unclustered nodes get a phantom extra label so conductances of real
  // clusters are computed against everything else, including them.
  const std::uint32_t phantom = summary.num_clusters;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == metrics::kUnclustered) compacted[v] = phantom;
  }
  const auto phis = graph::partition_conductances(
      g, compacted, summary.num_clusters + (summary.unclustered > 0 ? 1 : 0));

  std::vector<std::size_t> sizes(summary.num_clusters, 0);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] != metrics::kUnclustered) ++sizes[compacted[v]];
  }

  summary.clusters.resize(summary.num_clusters);
  for (const auto& [label, idx] : remap) {
    summary.clusters[idx].label = label;
    summary.clusters[idx].size = sizes[idx];
    summary.clusters[idx].conductance = phis[idx];
  }
  std::sort(summary.clusters.begin(), summary.clusters.end(),
            [](const ClusterSummary& a, const ClusterSummary& b) {
              return a.size > b.size;
            });

  std::size_t min_size = labels.size();
  for (const auto& cluster : summary.clusters) {
    min_size = std::min(min_size, cluster.size);
    summary.rho_hat = std::max(summary.rho_hat, cluster.conductance);
  }
  summary.beta_hat =
      static_cast<double>(min_size) / static_cast<double>(labels.size());
  return summary;
}

}  // namespace dgc::core
