#include "core/summary.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <unordered_map>

#include "graph/analysis.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/require.hpp"

namespace dgc::core {

PartitionSummary summarize_partition(const graph::Graph& g,
                                     std::span<const std::uint64_t> labels) {
  DGC_REQUIRE(labels.size() == g.num_nodes(), "labels size mismatch");

  PartitionSummary summary;
  std::unordered_map<std::uint64_t, std::uint32_t> remap;
  std::vector<std::uint32_t> compacted(labels.size(), 0);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == metrics::kUnclustered) {
      ++summary.unclustered;
      continue;
    }
    const auto [it, inserted] =
        remap.emplace(labels[v], static_cast<std::uint32_t>(remap.size()));
    compacted[v] = it->second;
  }
  summary.num_clusters = static_cast<std::uint32_t>(remap.size());
  if (summary.num_clusters == 0) return summary;

  // Unclustered nodes get a phantom extra label so conductances of real
  // clusters are computed against everything else, including them.
  const std::uint32_t phantom = summary.num_clusters;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == metrics::kUnclustered) compacted[v] = phantom;
  }
  // Weighted graphs report weighted conductances (cut weight over
  // touching weight); on unweighted graphs the weighted variant equals
  // the counting one, but the integer path is kept for exactness.
  const std::uint32_t parts =
      summary.num_clusters + (summary.unclustered > 0 ? 1 : 0);
  const auto phis = g.is_weighted()
                        ? graph::weighted_partition_conductances(g, compacted, parts)
                        : graph::partition_conductances(g, compacted, parts);

  std::vector<std::size_t> sizes(summary.num_clusters, 0);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] != metrics::kUnclustered) ++sizes[compacted[v]];
  }

  summary.clusters.resize(summary.num_clusters);
  for (const auto& [label, idx] : remap) {
    summary.clusters[idx].label = label;
    summary.clusters[idx].size = sizes[idx];
    summary.clusters[idx].conductance = phis[idx];
  }
  std::sort(summary.clusters.begin(), summary.clusters.end(),
            [](const ClusterSummary& a, const ClusterSummary& b) {
              return a.size > b.size;
            });

  std::size_t min_size = labels.size();
  for (const auto& cluster : summary.clusters) {
    min_size = std::min(min_size, cluster.size);
    summary.rho_hat = std::max(summary.rho_hat, cluster.conductance);
  }
  summary.beta_hat =
      static_cast<double>(min_size) / static_cast<double>(labels.size());
  return summary;
}

void save_labels(const std::string& file_path, std::span<const std::uint64_t> labels) {
  std::string out;
  out.reserve(labels.size() * 8);
  char buf[24];
  for (const auto label : labels) {
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, label);
    (void)ec;
    out.append(buf, ptr);
    out += '\n';
  }
  std::ofstream os(file_path, std::ios::binary | std::ios::trunc);
  DGC_REQUIRE(os.good(), "cannot open for writing: " + file_path);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  DGC_REQUIRE(os.good(), "failed to write: " + file_path);
}

std::vector<std::uint64_t> load_labels(const std::string& file_path) {
  std::ifstream is(file_path);
  DGC_REQUIRE(is.good(), "cannot open for reading: " + file_path);
  std::vector<std::uint64_t> labels;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(line.data(), line.data() + line.size(), value);
    DGC_REQUIRE(ec == std::errc() && ptr == line.data() + line.size(),
                "malformed label line: " + line);
    labels.push_back(value);
  }
  return labels;
}

}  // namespace dgc::core
