#include "core/seeding.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dgc::core {

std::uint64_t derive_seed(std::uint64_t master, Stream stream) {
  util::SplitMix64 sm(master ^ (0xA3C59AC2B7F1D3E5ULL * static_cast<std::uint64_t>(stream)));
  return sm.next();
}

std::vector<std::uint64_t> assign_node_ids(graph::NodeId n, std::uint64_t master_seed) {
  DGC_REQUIRE(n > 0, "need at least one node");
  util::Rng rng(derive_seed(master_seed, Stream::kNodeIds));
  const std::uint64_t universe =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
  // Fast path: one draw per node, then a sort-based duplicate check — no
  // per-node hashing on the prepare() critical path.  A collision among n
  // draws from [1, n^3] has probability ~ 1/(2n); when there is none the
  // rejection-sampling loop below would consume exactly one draw per node
  // too, so this output is bit-identical to it.
  std::vector<std::uint64_t> ids(n);
  for (auto& id : ids) id = 1 + rng.next_below(universe);
  std::vector<std::uint64_t> sorted(ids);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end()) return ids;
  // Rare slow path: replay rejection sampling from a fresh stream so the
  // result matches what the draw-until-unused loop has always produced.
  util::Rng replay(derive_seed(master_seed, Stream::kNodeIds));
  std::unordered_set<std::uint64_t> used;
  used.reserve(n * 2);
  for (graph::NodeId v = 0; v < n; ++v) {
    std::uint64_t id = 0;
    do {
      id = 1 + replay.next_below(universe);
    } while (!used.insert(id).second);
    ids[v] = id;
  }
  return ids;
}

std::size_t default_seeding_trials(double beta) {
  DGC_REQUIRE(beta > 0.0 && beta <= 0.5, "beta must be in (0, 0.5]");
  return static_cast<std::size_t>(std::ceil((3.0 / beta) * std::log(1.0 / beta)));
}

std::vector<graph::NodeId> run_seeding(graph::NodeId n, std::size_t trials,
                                       std::uint64_t master_seed) {
  DGC_REQUIRE(n > 0, "need at least one node");
  DGC_REQUIRE(trials > 0, "need at least one trial");
  const std::uint64_t base = derive_seed(master_seed, Stream::kSeeding);
  const double p = 1.0 / static_cast<double>(n);
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId v = 0; v < n; ++v) {
    util::SplitMix64 sm(base ^ (0x9E3779B97F4A7C15ULL * (v + 1)));
    util::Rng rng(sm.next());
    bool active = false;
    for (std::size_t t = 0; t < trials; ++t) {
      // Every node evaluates all s̄ trials (no early exit) so the stream
      // consumption is the same whether or not it activates early.
      active = rng.next_bool(p) || active;
    }
    if (active) seeds.push_back(v);
  }
  return seeds;
}

}  // namespace dgc::core
