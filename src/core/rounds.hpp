// Round count T = Θ(log n / (1 − λ_{k+1})) (Theorem 1.1).
//
// The paper assumes T is known to every node.  Operationally we estimate
// λ_{k+1} once with Lanczos on the (normalised) walk matrix; callers can
// also fix `rounds` explicitly in ClusterConfig and skip this entirely.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace dgc::core {

struct RoundEstimate {
  std::size_t rounds = 0;
  double lambda_k = 0.0;    ///< k-th largest eigenvalue of P
  double lambda_k1 = 0.0;   ///< (k+1)-th largest eigenvalue of P
  double spectral_gap = 0.0;  ///< 1 − λ_{k+1}
};

/// T = max(1, ceil(multiplier · ln n / (1 − λ_{k+1}))).
[[nodiscard]] RoundEstimate recommended_rounds(const graph::Graph& g, std::uint32_t k,
                                               double multiplier = 1.0,
                                               std::uint64_t seed = 13);

}  // namespace dgc::core
