// The paper's algorithm, in-memory engine.
//
// This engine executes the exact protocol of §3 — seeding, T rounds of
// multi-dimensional load balancing over random matchings, then the local
// query — but keeps all s load vectors in one dense n x s matrix so that
// large-n sweeps are fast.  It flips the *same coins* as the
// message-passing engine (core/distributed_clusterer.hpp): given equal
// configs, the two produce identical labels (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "graph/graph.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"

namespace dgc::core {

struct ClusterResult {
  /// Per-node label: the ID of a seed node, or metrics::kUnclustered.
  std::vector<std::uint64_t> labels;
  /// The active (seed) nodes v_1 … v_s in increasing node order.
  std::vector<graph::NodeId> seeds;
  /// ID(v) for every node.
  std::vector<std::uint64_t> node_ids;
  /// Number of rounds T actually run.
  std::size_t rounds = 0;
  /// Query threshold τ used by the paper rule.
  double threshold = 0.0;
  /// Matching process statistics.
  matching::ProcessStats process;
  /// λ_{k+1} estimate when rounds were auto-derived (0 otherwise).
  double lambda_k1 = 0.0;
};

class Clusterer {
 public:
  /// The graph must outlive the clusterer.
  Clusterer(const graph::Graph& g, ClusterConfig config);

  /// Runs the full pipeline.  Deterministic in config.seed.
  [[nodiscard]] ClusterResult run() const;

  /// Runs and additionally exposes the final load state (for analysis
  /// benches that inspect x^(T,i)).
  [[nodiscard]] ClusterResult run(matching::MultiLoadState* final_state) const;

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  /// τ = threshold_scale / (sqrt(2β)·n) — exposed for tests/benches.
  [[nodiscard]] static double query_threshold(double threshold_scale, double beta,
                                              std::size_t n);

  /// The query procedure on one node's loads (values[i] pairs with
  /// seed_ids[i]); shared by both engines.
  [[nodiscard]] static std::uint64_t query_label(std::span<const double> values,
                                                 std::span<const std::uint64_t> seed_ids,
                                                 double threshold, QueryRule rule);

 private:
  const graph::Graph* graph_;
  ClusterConfig config_;
};

}  // namespace dgc::core
