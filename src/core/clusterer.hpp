// The paper's algorithm, in-memory engine.
//
// This engine executes the exact protocol of §3 — seeding, T rounds of
// multi-dimensional load balancing over random matchings, then the local
// query — but keeps all s load vectors in one dense n x s matrix so that
// large-n sweeps are fast.  It flips the *same coins* as the other
// engines (core/engine.hpp): given equal configs, all engines produce
// identical labels (tested).
#pragma once

#include <string_view>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "matching/load_state.hpp"

namespace dgc::core {

class Clusterer : public Engine {
 public:
  /// The graph must outlive the clusterer.
  Clusterer(const graph::Graph& g, ClusterConfig config);

  /// Runs the full pipeline.  Deterministic in config.seed.
  [[nodiscard]] ClusterResult run() const;

  /// Runs and additionally exposes the final load state (for analysis
  /// benches that inspect x^(T,i)).
  [[nodiscard]] ClusterResult run(matching::MultiLoadState* final_state) const;

  [[nodiscard]] std::string_view name() const noexcept override { return "dense"; }
  [[nodiscard]] ClusterResult cluster() const override { return run(); }
};

}  // namespace dgc::core
