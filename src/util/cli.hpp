// Tiny `--flag=value` command-line parser used by bench and example
// binaries so every experiment is re-runnable with different parameters
// without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dgc::util {

class Cli {
 public:
  /// Parses `--name=value` and bare `--name` (value "1") arguments.
  /// Unrecognised positional arguments raise contract_error.
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  /// get_int clamped to >= 0 and widened — for seeds and counts that
  /// feed std::uint64_t APIs (a negative flag value raises contract_error
  /// instead of silently wrapping to a huge unsigned value).
  [[nodiscard]] std::uint64_t get_uint64(const std::string& name, std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dgc::util
