// `--flag=value` command-line parser used by the bench, example, and
// tool binaries so every experiment is re-runnable with different
// parameters without recompiling.
//
// Two layers:
//  * the getters (`get`, `get_int`, …) read a flag with a fallback, as
//    the bench harness always has; every getter also records the flag
//    name as *known*, so a final `reject_unknown()` call turns typos
//    like `--seeed=7` (silently ignored before) into contract errors;
//  * `describe()` + `print_help()` + `command()` support multi-verb
//    tools (`dgc <verb> --flags`): the verb is the first non-flag
//    argument, described flags are listed by `--help`, and unknown
//    flags are rejected against the described/read set.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dgc::util {

class Cli {
 public:
  /// Parses `--name=value` and bare `--name` (value "1") arguments.
  /// With `allow_command`, a first argument that does not start with
  /// `-` is captured as the subcommand verb instead.  `--help` / `-h`
  /// anywhere sets help_requested() and is never an unknown flag.
  /// Other non-flag positionals raise contract_error.
  Cli(int argc, const char* const* argv, bool allow_command = false);

  /// The subcommand verb ("" when none was given).
  [[nodiscard]] const std::string& command() const noexcept { return command_; }

  /// True when --help or -h was passed; callers print help and exit.
  [[nodiscard]] bool help_requested() const noexcept { return help_; }

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  /// get_int clamped to >= 0 and widened — for seeds and counts that
  /// feed std::uint64_t APIs (a negative flag value raises contract_error
  /// instead of silently wrapping to a huge unsigned value).
  [[nodiscard]] std::uint64_t get_uint64(const std::string& name, std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Registers a flag in the --help table (and as known).  `fallback`
  /// is shown as the default; pass "" for pure switches.
  void describe(const std::string& name, const std::string& fallback,
                const std::string& help_text);

  /// Prints the described flags as an aligned `--name=default  help`
  /// table (in description order).
  void print_help(std::ostream& os) const;

  /// Throws contract_error naming every provided `--flag` that was
  /// neither described nor read by a getter.  Call after all flags have
  /// been read so typos fail loudly instead of silently using defaults.
  void reject_unknown() const;

 private:
  struct FlagDoc {
    std::string name;
    std::string fallback;
    std::string help;
  };

  std::map<std::string, std::string> values_;
  std::string command_;
  bool help_ = false;
  std::vector<FlagDoc> docs_;
  // Getters are const but still mark the flag known: "known" tracks how
  // the binary *reads* flags, not parser state.
  mutable std::set<std::string> known_;
};

}  // namespace dgc::util
