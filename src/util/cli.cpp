#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

#include "util/require.hpp"

namespace dgc::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    DGC_REQUIRE(arg.starts_with("--"), "arguments must look like --name[=value]: " +
                                           std::string(arg));
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

}  // namespace dgc::util
