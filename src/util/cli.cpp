#include "util/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <ostream>
#include <string_view>

#include "util/require.hpp"

namespace dgc::util {

// GCC 12 emits a bogus -Wrestrict for inlined std::string concatenation
// at -O3 (GCC PR 105329); scope it out around the message construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

Cli::Cli(int argc, const char* const* argv, bool allow_command) {
  int i = 1;
  if (allow_command && argc > 1) {
    const std::string_view first(argv[1]);
    if (!first.empty() && first.front() != '-') {
      command_ = first;
      i = 2;
    }
  }
  for (; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    DGC_REQUIRE(arg.starts_with("--"),
                std::string("arguments must look like --name[=value]: ").append(arg));
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

bool Cli::has(const std::string& name) const {
  known_.insert(name);
  return values_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Cli::get_uint64(const std::string& name, std::uint64_t fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  // strtoull wraps negative input instead of failing, so reject it up front.
  DGC_REQUIRE(it->second.find('-') == std::string::npos,
              std::string("--").append(name).append(" must be non-negative"));
  errno = 0;
  const auto value = std::strtoull(it->second.c_str(), nullptr, 10);
  DGC_REQUIRE(errno != ERANGE,
              std::string("--").append(name).append(" is out of range for uint64"));
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  known_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

void Cli::describe(const std::string& name, const std::string& fallback,
                   const std::string& help_text) {
  known_.insert(name);
  docs_.push_back({name, fallback, help_text});
}

void Cli::print_help(std::ostream& os) const {
  std::size_t width = 0;
  std::vector<std::string> lhs;
  lhs.reserve(docs_.size());
  for (const auto& doc : docs_) {
    std::string item = "--" + doc.name;
    if (!doc.fallback.empty()) item += "=" + doc.fallback;
    width = std::max(width, item.size());
    lhs.push_back(std::move(item));
  }
  for (std::size_t i = 0; i < docs_.size(); ++i) {
    os << "  " << lhs[i] << std::string(width - lhs[i].size() + 2, ' ')
       << docs_[i].help << '\n';
  }
}

void Cli::reject_unknown() const {
  std::string unknown;
  for (const auto& [name, value] : values_) {
    if (known_.count(name) != 0) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "--" + name;
  }
  DGC_REQUIRE(unknown.empty(), "unknown flags: " + unknown);
}

}  // namespace dgc::util
