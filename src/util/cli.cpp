#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "util/require.hpp"

namespace dgc::util {

// GCC 12 emits a bogus -Wrestrict for inlined std::string concatenation
// at -O3 (GCC PR 105329); scope it out around the message construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    DGC_REQUIRE(arg.starts_with("--"),
                std::string("arguments must look like --name[=value]: ").append(arg));
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

bool Cli::has(const std::string& name) const { return values_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Cli::get_uint64(const std::string& name, std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  // strtoull wraps negative input instead of failing, so reject it up front.
  DGC_REQUIRE(it->second.find('-') == std::string::npos,
              std::string("--").append(name).append(" must be non-negative"));
  errno = 0;
  const auto value = std::strtoull(it->second.c_str(), nullptr, 10);
  DGC_REQUIRE(errno != ERANGE,
              std::string("--").append(name).append(" is out of range for uint64"));
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

}  // namespace dgc::util
