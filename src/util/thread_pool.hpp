// Minimal work-stealing-free thread pool used by the experiment harness to
// run independent Monte-Carlo trials in parallel.
//
// The *algorithms* in this library are single-threaded by design (they
// simulate a distributed protocol whose rounds are globally synchronous);
// parallelism lives only at the trial level, which keeps every run
// bit-reproducible: each trial owns its seed and its outputs slot.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dgc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  /// Convenience wrapper for embarrassingly parallel trial sweeps.
  static void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                           std::size_t threads = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace dgc::util
