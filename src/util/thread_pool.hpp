// Minimal thread pool with persistent workers.
//
// Two users with different shapes of parallelism:
//   * the experiment harness runs independent Monte-Carlo trials via the
//     one-shot static parallel_for — each trial owns its seed and its
//     output slot, so runs stay bit-reproducible;
//   * the sharded engine (core/sharded_clusterer.hpp) runs many short
//     parallel phases per round, so it keeps one pool alive and calls the
//     *member* parallel_for repeatedly — no thread churn between rounds.
// Barrier is the matching reusable (cyclic) rendezvous for code that
// keeps long-lived per-worker loops instead of per-phase task lists;
// no engine uses it yet — it ships (tested) as the building block for
// that persistent-worker alternative.
//
// Determinism note: work distribution across workers is nondeterministic,
// so callers must only run index-disjoint work (each index writes its own
// slot).  The algorithms keep bit-reproducibility on top of that by
// deriving every coin from per-index seeds, never from thread order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dgc::util {

/// Reusable (cyclic) barrier: `parties` threads block in arrive_and_wait
/// until all have arrived, then the barrier resets for the next phase.
class Barrier {
 public:
  explicit Barrier(std::size_t parties);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait();

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) on the persistent workers and blocks
  /// until all indices are done.  Reusable every phase without thread
  /// churn; indices are claimed dynamically, so fn must only touch
  /// index-owned state.  Must not be called while other tasks are in
  /// flight (it waits for the pool to go fully idle).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// One-shot variant for trial sweeps: spins up a temporary pool of
  /// `threads` workers (0 = hardware concurrency) and runs fn over it.
  static void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                           std::size_t threads);

  /// Number of contiguous blocks parallel_blocks would split [0, total)
  /// into: at least `grain` indices per block, at most 4 blocks per
  /// worker.  Depends only on (total, grain, size()) — never on
  /// scheduling — so callers can pre-size per-block scratch.
  [[nodiscard]] std::size_t blocks_for(std::size_t total, std::size_t grain) const;

  /// Runs fn(block, begin, end) over the blocks_for(total, grain)
  /// contiguous blocks of [0, total).  Block boundaries are a pure
  /// function of (total, grain, size()), and blocks cover increasing
  /// disjoint ranges, so per-block results concatenated in block order
  /// are identical for every worker count — the hook the matching
  /// protocol uses to keep parallel rounds bit-deterministic.
  void parallel_blocks(
      std::size_t total, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace dgc::util
