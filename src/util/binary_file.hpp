// Shared binary file writing for the repo's on-disk formats (.dgcg
// graphs, .dgcc checkpoints).
//
// A binary file here is the concatenation of a few already-materialised
// arrays (a header struct, raw CSR arrays, a load matrix).  On POSIX the
// writer sizes the file up front with ftruncate and copies each part
// straight into a shared mapping of the destination — one pass, no
// stream buffering — mirroring the zero-copy mmap *load* path in
// graph/io.cpp.  When mmap is unavailable (or fails, e.g. on a
// filesystem without mmap-write support) it falls back to plain
// buffered ofstream writes; both paths produce byte-identical files.
//
// The atomic variant is the crash-safety primitive the checkpoint
// subsystem builds on: it writes `path + ".tmp"`, fsyncs, and renames
// over `path`.  rename(2) is atomic on POSIX, so a reader (or a process
// killed mid-write and later resumed) only ever observes either the old
// complete file or the new complete file — never a torn one.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace dgc::util {

/// One contiguous piece of the file image, in write order.
struct ConstBytes {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// Writes the concatenation of `parts` to `path`, truncating any
/// existing file.  mmap fast path with ofstream fallback (see above).
/// Throws contract_error on any IO failure.
void write_binary_file(const std::string& path, std::span<const ConstBytes> parts);

/// Crash-safe variant: writes `path + ".tmp"`, flushes it to stable
/// storage, and atomically renames it over `path`.
void write_binary_file_atomic(const std::string& path,
                              std::span<const ConstBytes> parts);

}  // namespace dgc::util
