#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/require.hpp"

namespace dgc::util {

Barrier::Barrier(std::size_t parties) : parties_(parties) {
  DGC_REQUIRE(parties > 0, "barrier needs at least one party");
}

void Barrier::arrive_and_wait() {
  std::unique_lock lock(mutex_);
  const std::uint64_t generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != generation; });
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t helpers = std::min(workers_.size(), count);
  if (helpers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Dynamic index claiming: short phases stay balanced even when per-index
  // cost varies (e.g. shards with different cut sizes).  &next and &fn are
  // safe to capture by reference — wait_idle() outlives every task.
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < helpers; ++w) {
    submit([&next, &fn, count] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

std::size_t ThreadPool::blocks_for(std::size_t total, std::size_t grain) const {
  if (total == 0) return 0;
  const std::size_t by_grain = std::max<std::size_t>(total / std::max<std::size_t>(grain, 1), 1);
  return std::min({by_grain, workers_.size() * 4, total});
}

void ThreadPool::parallel_blocks(
    std::size_t total, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t blocks = blocks_for(total, grain);
  if (blocks == 0) return;
  parallel_for(blocks, [&](std::size_t b) {
    fn(b, b * total / blocks, (b + 1) * total / blocks);
  });
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                              std::size_t threads) {
  if (count == 0) return;
  ThreadPool pool(threads == 0 ? std::min<std::size_t>(
                                     count, std::max<std::size_t>(
                                                1, std::thread::hardware_concurrency()))
                               : threads);
  pool.parallel_for(count, fn);
}

}  // namespace dgc::util
