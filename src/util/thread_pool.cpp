#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace dgc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                              std::size_t threads) {
  if (count == 0) return;
  ThreadPool pool(threads == 0 ? std::min<std::size_t>(
                                     count, std::max<std::size_t>(
                                                1, std::thread::hardware_concurrency()))
                               : threads);
  std::atomic<std::size_t> next{0};
  const std::size_t workers = pool.size();
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace dgc::util
