#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/require.hpp"

namespace dgc::util {

namespace {

std::string format_double(double v) {
  char buf[64];
  if (v == 0.0) return "0";
  const double av = std::abs(v);
  if (av >= 1e6 || av < 1e-4) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  } else if (std::floor(v) == v && av < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.5f", v);
  }
  return buf;
}

std::string format_cell(const Table::Cell& cell) {
  if (std::holds_alternative<std::string>(cell)) return std::get<std::string>(cell);
  if (std::holds_alternative<double>(cell)) return format_double(std::get<double>(cell));
  return std::to_string(std::get<std::int64_t>(cell));
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  DGC_REQUIRE(!columns_.empty(), "table needs at least one column");
}

Table& Table::row(std::vector<Cell> cells) {
  DGC_REQUIRE(cells.size() == columns_.size(), "row width must match header");
  cells_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(cells_.size());
  for (const auto& r : cells_) {
    std::vector<std::string> out;
    out.reserve(r.size());
    for (const auto& cell : r) out.push_back(format_cell(cell));
    rendered.push_back(std::move(out));
  }
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& r : rendered) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  os << "# " << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        for (std::size_t pad = cells[c].size(); pad < width[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& r : rendered) emit(r);
  os << '\n';
}

}  // namespace dgc::util
