// Deterministic, fast pseudo-random number generation.
//
// The distributed algorithm needs one independent RNG stream *per node*
// (every node flips its own coins in the matching protocol and in the
// seeding procedure).  We use xoshiro256++ seeded through splitmix64, the
// standard recipe: distinct seeds give statistically independent streams,
// and the whole simulation is reproducible from a single master seed.
#pragma once

#include <array>
#include <cstdint>
#include <iterator>
#include <limits>

namespace dgc::util {

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state, and as a
/// tiny standalone generator for hashing-style use.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — the workhorse generator.  Satisfies the
/// UniformRandomBitGenerator concept so it can drive <random>
/// distributions, but we provide the hot-path helpers directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1DULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift: maps a 64-bit uniform x to floor(x*bound / 2^64).
    // The rejection loop removes the O(bound/2^64) bias, which matters for
    // statistical tests even though it almost never triggers.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) coin flip.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Fair coin consuming one draw, bit-identical to next_bool(0.5):
  /// (x >> 11) · 2^-53 < 0.5  ⇔  x >> 11 < 2^52  ⇔  x < 2^63.  Skips the
  /// int→double conversion on the matching protocol's hot path.
  bool next_bool_half() noexcept { return next() < (1ULL << 63); }

  /// Fair coin.
  bool next_bit() noexcept { return (next() >> 63) != 0; }

  /// Derives an independent child stream (for per-node RNGs).
  Rng fork(std::uint64_t stream_id) noexcept {
    SplitMix64 sm(next() ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1)));
    Rng child(sm.next());
    return child;
  }

  /// Raw view of the four 256-bit state words, in the order next()
  /// advances them.  Exists for the batched SIMD advance
  /// (matching/simd_kernels.hpp), which transposes several streams into
  /// lanes, steps them with the identical integer ops, and stores the
  /// states back; any other mutation through this pointer voids the
  /// stream-reproducibility contract.
  [[nodiscard]] std::uint64_t* raw_state() noexcept { return state_.data(); }
  [[nodiscard]] const std::uint64_t* raw_state() const noexcept { return state_.data(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle driven by Rng (std::shuffle requires a
/// distribution object per call; this is the allocation-free hot path).
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  using Diff = typename std::iterator_traits<RandomIt>::difference_type;
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.next_below(i);
    using std::swap;
    swap(first[static_cast<Diff>(i - 1)], first[static_cast<Diff>(j)]);
  }
}

}  // namespace dgc::util
