#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace dgc::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
  DGC_REQUIRE(!sample.empty(), "quantile of empty sample");
  DGC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order out of range");
  // Nearest-rank with linear interpolation (type-7, the numpy default).
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  std::nth_element(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(lo),
                   sample.end());
  const double vlo = sample[lo];
  std::nth_element(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(hi),
                   sample.end());
  const double vhi = sample[hi];
  const double frac = pos - static_cast<double>(lo);
  return vlo + frac * (vhi - vlo);
}

double median(std::vector<double> sample) { return quantile(std::move(sample), 0.5); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  DGC_REQUIRE(hi > lo, "histogram range must be non-empty");
  DGC_REQUIRE(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  DGC_REQUIRE(bin < counts_.size(), "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  DGC_REQUIRE(bin < counts_.size(), "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

}  // namespace dgc::util
