#include "util/binary_file.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DGC_HAS_MMAP_WRITE 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace dgc::util {

namespace {

std::size_t total_size(std::span<const ConstBytes> parts) {
  std::size_t total = 0;
  for (const ConstBytes& part : parts) total += part.size;
  return total;
}

/// Buffered fallback shared by both entry points.
void write_stream(const std::string& path, std::span<const ConstBytes> parts) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DGC_REQUIRE(os.good(), "cannot open for writing: " + path);
  for (const ConstBytes& part : parts) {
    os.write(static_cast<const char*>(part.data),
             static_cast<std::streamsize>(part.size));
  }
  os.flush();
  DGC_REQUIRE(os.good(), "failed to write: " + path);
}

#ifdef DGC_HAS_MMAP_WRITE

/// mmap fast path; returns false when the file should be (re)written via
/// the stream fallback instead.  `sync` additionally flushes file data
/// to stable storage before returning (the atomic rename protocol needs
/// the temp file durable *before* it replaces the destination).
bool write_mapped(const std::string& path, std::span<const ConstBytes> parts,
                  bool sync) {
  const std::size_t size = total_size(parts);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = size == 0 || ::ftruncate(fd, static_cast<off_t>(size)) == 0;
  if (ok && size > 0) {
    void* base = ::mmap(nullptr, size, PROT_WRITE, MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      ok = false;
    } else {
      unsigned char* cursor = static_cast<unsigned char*>(base);
      for (const ConstBytes& part : parts) {
        std::memcpy(cursor, part.data, part.size);
        cursor += part.size;
      }
      ok = ::munmap(base, size) == 0;
    }
  }
  if (ok && sync) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) ::unlink(path.c_str());  // never leave a half-written file behind
  return ok;
}

#endif  // DGC_HAS_MMAP_WRITE

}  // namespace

void write_binary_file(const std::string& path, std::span<const ConstBytes> parts) {
#ifdef DGC_HAS_MMAP_WRITE
  if (write_mapped(path, parts, /*sync=*/false)) return;
#endif
  write_stream(path, parts);
}

void write_binary_file_atomic(const std::string& path,
                              std::span<const ConstBytes> parts) {
  const std::string tmp = path + ".tmp";
#ifdef DGC_HAS_MMAP_WRITE
  if (!write_mapped(tmp, parts, /*sync=*/true)) {
    write_stream(tmp, parts);
    // Stream fallback: re-open to fsync so the rename still only ever
    // publishes durable bytes.
    const int fd = ::open(tmp.c_str(), O_RDONLY | O_CLOEXEC);
    DGC_REQUIRE(fd >= 0, "cannot reopen for sync: " + tmp);
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    DGC_REQUIRE(synced, "failed to sync: " + tmp);
  }
  DGC_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "failed to atomically rename " + tmp + " -> " + path);
#else
  write_stream(tmp, parts);
  DGC_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "failed to atomically rename " + tmp + " -> " + path);
#endif
}

}  // namespace dgc::util
