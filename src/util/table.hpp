// Column-aligned plain-text table printer for the experiment harness.
//
// Every bench binary prints one or more of these tables; the format is
// stable and machine-parsable: a `#`-prefixed title, a header row, and
// whitespace-separated data rows.  Cells stay typed until rendering so
// the same table can also be serialised losslessly (see the BENCH_*.json
// writer in bench/common.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace dgc::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  /// `title` becomes a `# title` comment line above the header.
  explicit Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; cells are stringified with sensible float formatting
  /// when the table is printed.
  Table& row(std::vector<Cell> cells);

  /// Renders the aligned table.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  /// The typed cells, row-major — for machine-readable exports.
  [[nodiscard]] const std::vector<std::vector<Cell>>& cell_rows() const noexcept {
    return cells_;
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> cells_;
};

}  // namespace dgc::util
