// Column-aligned plain-text table printer for the experiment harness.
//
// Every bench binary prints one or more of these tables; the format is
// stable and machine-parsable: a `#`-prefixed title, a header row, and
// whitespace-separated data rows.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace dgc::util {

class Table {
 public:
  /// `title` becomes a `# title` comment line above the header.
  explicit Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; cells are stringified with sensible float formatting.
  Table& row(std::vector<std::variant<std::string, double, std::int64_t>> cells);

  /// Renders the aligned table.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dgc::util
