// Precondition / invariant checking.
//
// DGC_REQUIRE is used at public API boundaries: it is always on (also in
// release builds) and throws std::invalid_argument so callers can test
// error paths.  DGC_ASSERT guards internal invariants and compiles away in
// release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dgc::util {

/// Thrown by DGC_REQUIRE on contract violation at a public API boundary.
class contract_error : public std::invalid_argument {
 public:
  explicit contract_error(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "requirement violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace dgc::util

#define DGC_REQUIRE(expr, msg)                                                   \
  do {                                                                           \
    if (!(expr)) ::dgc::util::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define DGC_ASSERT(expr) ((void)0)
#else
#define DGC_ASSERT(expr)                                                         \
  do {                                                                           \
    if (!(expr)) ::dgc::util::detail::require_failed(#expr, __FILE__, __LINE__, "assert"); \
  } while (false)
#endif
