// Small statistics helpers for the experiment harness: online mean /
// variance (Welford), quantiles, and a fixed-width histogram.
#pragma once

#include <cstddef>
#include <vector>

namespace dgc::util {

/// Welford online accumulator: numerically stable mean and variance.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample (copies and partially sorts).  q in [0,1].
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Median shorthand.
[[nodiscard]] double median(std::vector<double> sample);

/// Fixed-bin histogram over [lo, hi); values outside are clamped to the
/// boundary bins.  Used for the alpha_v "good node" distribution (E8).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dgc::util
