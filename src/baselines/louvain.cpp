#include "baselines/louvain.hpp"

#include <numeric>
#include <unordered_map>

#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dgc::baselines {

namespace {

/// Weighted multigraph in adjacency-list form for the aggregation levels.
struct WeightedGraph {
  // adjacency[v] = (neighbour, weight); self-loops carry internal weight
  // (counted once, contributing weight to the loop's community).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
  std::vector<double> self_loop;  // weight of v's self-loop
  double total_weight = 0.0;      // sum of edge weights (loops count once)

  [[nodiscard]] std::size_t size() const { return adjacency.size(); }
};

WeightedGraph lift(const graph::Graph& g) {
  WeightedGraph wg;
  wg.adjacency.resize(g.num_nodes());
  wg.self_loop.assign(g.num_nodes(), 0.0);
  // The aggregation levels are weighted multigraphs anyway, so a
  // weighted input just seeds level 0 with the real edge weights
  // (1.0 everywhere on unweighted graphs — the old behaviour).
  g.for_each_weighted_edge([&](graph::NodeId u, graph::NodeId v, double w) {
    wg.adjacency[u].emplace_back(v, w);
    wg.adjacency[v].emplace_back(u, w);
  });
  wg.total_weight = g.total_weight();
  return wg;
}

/// One level of local moving; returns (community of every node, #moves).
std::pair<std::vector<std::uint32_t>, std::size_t> local_moving(
    const WeightedGraph& wg, std::size_t max_sweeps, util::Rng& rng) {
  const std::size_t n = wg.size();
  std::vector<std::uint32_t> community(n);
  std::iota(community.begin(), community.end(), 0);

  // degree (weighted, loops count twice) and community degree sums.
  std::vector<double> degree(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& [u, w] : wg.adjacency[v]) degree[v] += w;
    degree[v] += 2.0 * wg.self_loop[v];
  }
  std::vector<double> community_degree = degree;

  const double m2 = 2.0 * wg.total_weight;
  if (m2 == 0.0) return {community, 0};

  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::size_t total_moves = 0;
  std::unordered_map<std::uint32_t, double> weight_to;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    util::shuffle(order.begin(), order.end(), rng);
    std::size_t moves = 0;
    for (const auto v : order) {
      const std::uint32_t old_community = community[v];
      weight_to.clear();
      for (const auto& [u, w] : wg.adjacency[v]) weight_to[community[u]] += w;

      community_degree[old_community] -= degree[v];
      // Gain of joining community c: w(v->c)/m − deg(v)·deg(c)/(2m²)
      // (constant terms dropped; staying put is gain of old community).
      std::uint32_t best = old_community;
      double best_gain = weight_to.count(old_community) != 0
                             ? weight_to[old_community] / wg.total_weight -
                                   degree[v] * community_degree[old_community] /
                                       (m2 * wg.total_weight)
                             : -degree[v] * community_degree[old_community] /
                                   (m2 * wg.total_weight);
      for (const auto& [c, w] : weight_to) {
        if (c == old_community) continue;
        const double gain = w / wg.total_weight -
                            degree[v] * community_degree[c] / (m2 * wg.total_weight);
        if (gain > best_gain + 1e-15) {
          best_gain = gain;
          best = c;
        }
      }
      community_degree[best] += degree[v];
      if (best != old_community) {
        community[v] = best;
        ++moves;
      }
    }
    total_moves += moves;
    if (moves == 0) break;
  }
  return {community, total_moves};
}

/// Contracts communities into super-nodes.
WeightedGraph aggregate(const WeightedGraph& wg, std::vector<std::uint32_t>& community) {
  // Compact community ids.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (auto& c : community) {
    const auto [it, inserted] = remap.emplace(c, static_cast<std::uint32_t>(remap.size()));
    c = it->second;
  }
  const auto k = static_cast<std::uint32_t>(remap.size());

  WeightedGraph out;
  out.adjacency.resize(k);
  out.self_loop.assign(k, 0.0);
  out.total_weight = wg.total_weight;
  std::unordered_map<std::uint64_t, double> edge_weight;
  for (std::size_t v = 0; v < wg.size(); ++v) {
    const std::uint32_t cv = community[v];
    out.self_loop[cv] += wg.self_loop[v];
    for (const auto& [u, w] : wg.adjacency[v]) {
      const std::uint32_t cu = community[u];
      if (cu == cv) {
        out.self_loop[cv] += w / 2.0;  // each internal edge visited twice
      } else if (v < u) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(cu, cv)) << 32) | std::max(cu, cv);
        edge_weight[key] += w;
      }
    }
  }
  for (const auto& [key, w] : edge_weight) {
    const auto a = static_cast<std::uint32_t>(key >> 32);
    const auto b = static_cast<std::uint32_t>(key & 0xffffffffu);
    out.adjacency[a].emplace_back(b, w);
    out.adjacency[b].emplace_back(a, w);
  }
  return out;
}

}  // namespace

LouvainResult louvain(const graph::Graph& g, const LouvainOptions& options) {
  DGC_REQUIRE(g.num_nodes() > 0, "empty graph");
  util::Rng rng(options.seed);

  WeightedGraph level_graph = lift(g);
  // membership[v] = community of original node v at the current level.
  std::vector<std::uint32_t> membership(g.num_nodes());
  std::iota(membership.begin(), membership.end(), 0);

  LouvainResult result;
  for (std::size_t level = 0; level < options.max_levels; ++level) {
    auto [community, moves] = local_moving(level_graph, options.max_sweeps_per_level, rng);
    result.levels = level + 1;
    if (moves == 0 && level > 0) break;
    const WeightedGraph next = aggregate(level_graph, community);
    for (auto& label : membership) label = community[label];
    if (next.size() == level_graph.size()) break;  // no contraction: done
    level_graph = next;
    if (level_graph.size() <= 1) break;
  }

  // Compact final labels.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (auto& label : membership) {
    const auto [it, inserted] =
        remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  result.num_communities = static_cast<std::uint32_t>(remap.size());
  result.labels = std::move(membership);
  result.modularity = metrics::modularity(g, result.labels, result.num_communities);
  return result;
}

}  // namespace dgc::baselines
