// Power-iteration clustering (Lin & Cohen, ICML'10): run a few power
// iterations of the walk matrix from a random start; the slowly-converging
// low-order components embed the clusters on a line; k-means the 1-D
// embedding.  Cheap centralised baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::baselines {

struct PicOptions {
  std::uint32_t clusters = 2;
  std::size_t max_iterations = 200;
  double convergence_tol = 1e-7;  ///< on the per-node acceleration
  std::uint64_t seed = 31;
};

struct PicResult {
  std::vector<std::uint32_t> labels;
  std::size_t iterations = 0;
};

[[nodiscard]] PicResult power_iteration_clustering(const graph::Graph& g,
                                                   const PicOptions& options);

}  // namespace dgc::baselines
