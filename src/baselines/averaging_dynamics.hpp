// Averaging dynamics of Becchetti, Clementi, Natale, Pasquale, Trevisan
// ("Find your place", SODA'17) — the distributed comparison the paper
// makes in §1.3.
//
// Protocol (their Algorithm 1, 2-community form): every node draws a
// Rademacher value x(0)(v) ∈ {−1, +1}; each round every node replaces its
// value by  x(t+1) = ( x(t) + average of ALL neighbours' x(t) ) / 2,
// i.e. x(t+1) = (I + P)/2 · x(t).  After T rounds nodes cluster by the
// sign of x(T) − x(T+1), in which the second eigenvector's sign pattern
// dominates.  Every node talks to every neighbour each round, so the
// communication cost is Θ(m) messages per round — the contrast to the
// matching model's ≤ ⌊n/2⌋ (experiment E4).
//
// k > 2 (our natural extension): run h
// independent Rademacher vectors, embed every node by its h difference
// values, k-means the embedding.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::baselines {

struct AveragingOptions {
  std::uint32_t clusters = 2;
  std::size_t rounds = 0;       ///< 0 = ceil(c·log n) with c = 8
  std::size_t sketches = 0;     ///< h; 0 = max(1, ceil(log2 k)) + 2
  std::uint64_t seed = 23;
};

struct AveragingResult {
  std::vector<std::uint32_t> labels;
  std::size_t rounds = 0;
  std::uint64_t messages = 0;  ///< 2m per round per sketch
};

[[nodiscard]] AveragingResult averaging_dynamics(const graph::Graph& g,
                                                 const AveragingOptions& options);

}  // namespace dgc::baselines
