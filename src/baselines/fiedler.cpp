#include "baselines/fiedler.hpp"

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"

namespace dgc::baselines {

SweepCutResult fiedler_sweep_cut(const graph::Graph& g, std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  DGC_REQUIRE(n >= 2, "graph too small");
  DGC_REQUIRE(g.min_degree() > 0, "graph has isolated nodes");

  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 2;
  options.seed = seed;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      n,
      [&](std::span<const double> in, std::span<double> out) {
        if (g.is_regular()) {
          op.apply_walk(in, out);
        } else {
          op.apply_normalized(in, out);
        }
      },
      options);
  const auto& fiedler = pairs.vectors[1];

  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    return fiedler[a] < fiedler[b];
  });

  // Scan prefix cuts, maintaining cut and internal-edge counts
  // incrementally: O(m) total.  The score of a prefix S is the paper
  // conductance of the side with fewer touching edges,
  //   phi = cut / min(touching(S), touching(V\S)),
  // which is what "S is a cluster" means — without the min, shaving one
  // node off the big side would always look optimal.
  const auto m = static_cast<std::uint64_t>(g.num_edges());
  std::vector<char> in_prefix(n, 0);
  std::uint64_t cut = 0;
  std::uint64_t internal = 0;
  double best_phi = 1.0;
  std::size_t best_prefix = 1;
  bool best_side_is_prefix = true;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const graph::NodeId v = order[i];
    in_prefix[v] = 1;
    for (const graph::NodeId u : g.neighbors(v)) {
      if (in_prefix[u]) {
        --cut;
        ++internal;
      } else {
        ++cut;
      }
    }
    const std::uint64_t touching_prefix = internal + cut;   // edges touching S
    const std::uint64_t touching_rest = m - internal;       // edges touching V\S
    const std::uint64_t denom = std::min(touching_prefix, touching_rest);
    const double phi =
        denom == 0 ? 1.0 : static_cast<double>(cut) / static_cast<double>(denom);
    if (phi < best_phi) {
      best_phi = phi;
      best_prefix = i + 1;
      best_side_is_prefix = touching_prefix <= touching_rest;
    }
  }

  SweepCutResult result;
  result.lambda_2 = pairs.values[1];
  result.conductance = best_phi;
  result.in_cut.assign(n, best_side_is_prefix ? 0 : 1);
  for (std::size_t i = 0; i < best_prefix; ++i) {
    result.in_cut[order[i]] = best_side_is_prefix ? 1 : 0;
  }
  return result;
}

namespace {

/// Sweep-cuts the induced subgraph on `nodes`; returns the two sides, or
/// an empty pair when the part cannot be split (degenerate subgraph or a
/// trivial cut).
std::pair<std::vector<graph::NodeId>, std::vector<graph::NodeId>> split_part(
    const graph::Graph& g, const std::vector<graph::NodeId>& nodes, std::uint64_t seed) {
  if (nodes.size() < 4) return {};
  std::vector<graph::NodeId> local_id(g.num_nodes(), graph::kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    local_id[nodes[i]] = static_cast<graph::NodeId>(i);
  }
  graph::GraphBuilder builder(static_cast<graph::NodeId>(nodes.size()));
  for (const auto v : nodes) {
    for (const auto u : g.neighbors(v)) {
      if (local_id[u] != graph::kInvalidNode && v < u) {
        builder.add_edge(local_id[v], local_id[u]);
      }
    }
  }
  if (builder.edges_added() == 0) return {};
  const graph::Graph sub = builder.build();
  if (sub.min_degree() == 0) return {};

  const auto cut = fiedler_sweep_cut(sub, seed);
  std::pair<std::vector<graph::NodeId>, std::vector<graph::NodeId>> sides;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    (cut.in_cut[i] ? sides.first : sides.second).push_back(nodes[i]);
  }
  if (sides.first.empty() || sides.second.empty()) return {};
  return sides;
}

}  // namespace

std::vector<std::uint32_t> recursive_bisection(const graph::Graph& g, std::uint32_t parts,
                                               std::uint64_t seed) {
  DGC_REQUIRE(parts >= 1 && parts <= 1024, "parts must be in [1, 1024]");
  std::vector<std::vector<graph::NodeId>> partition;
  {
    std::vector<graph::NodeId> all(g.num_nodes());
    std::iota(all.begin(), all.end(), 0);
    partition.push_back(std::move(all));
  }
  std::vector<char> unsplittable(1, 0);
  while (partition.size() < parts) {
    // Split the largest part that is still splittable.
    std::size_t target = partition.size();
    std::size_t target_size = 0;
    for (std::size_t i = 0; i < partition.size(); ++i) {
      if (!unsplittable[i] && partition[i].size() > target_size) {
        target = i;
        target_size = partition[i].size();
      }
    }
    if (target == partition.size()) break;  // nothing splittable left
    auto sides = split_part(g, partition[target], seed + partition.size());
    if (sides.first.empty()) {
      unsplittable[target] = 1;
      continue;
    }
    partition[target] = std::move(sides.first);
    unsplittable[target] = 0;
    partition.push_back(std::move(sides.second));
    unsplittable.push_back(0);
  }

  std::vector<std::uint32_t> labels(g.num_nodes(), 0);
  for (std::uint32_t p = 0; p < partition.size(); ++p) {
    for (const auto v : partition[p]) labels[v] = p;
  }
  return labels;
}

}  // namespace dgc::baselines
