#include "baselines/label_propagation.hpp"

#include <numeric>
#include <unordered_map>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dgc::baselines {

LabelPropagationResult label_propagation(const graph::Graph& g,
                                         const LabelPropagationOptions& options) {
  const graph::NodeId n = g.num_nodes();
  DGC_REQUIRE(n > 0, "empty graph");

  std::vector<std::uint32_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(options.seed);

  LabelPropagationResult result;
  // Votes are edge-weight sums; on unweighted graphs every vote is
  // exactly 1.0, so the doubles reproduce the old integer tallies (and
  // their tie-breaks) exactly.
  std::unordered_map<std::uint32_t, double> votes;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    util::shuffle(order.begin(), order.end(), rng);
    bool changed = false;
    for (const graph::NodeId v : order) {
      votes.clear();
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        votes[label[nbrs[i]]] += ws.empty() ? 1.0 : ws[i];
      }
      // Heaviest neighbour label; ties broken towards the smallest
      // label for determinism.
      std::uint32_t best = label[v];
      double best_count = 0.0;
      for (const auto& [lab, count] : votes) {
        if (count > best_count || (count == best_count && lab < best)) {
          best = lab;
          best_count = count;
        }
      }
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    result.messages += 2 * static_cast<std::uint64_t>(g.num_edges());
    result.rounds = round + 1;
    if (!changed) break;
  }

  // Compact labels.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (auto& lab : label) {
    const auto [it, inserted] = remap.emplace(lab, static_cast<std::uint32_t>(remap.size()));
    lab = it->second;
  }
  result.labels = std::move(label);
  result.num_labels = static_cast<std::uint32_t>(remap.size());
  return result;
}

}  // namespace dgc::baselines
