#include "baselines/averaging_dynamics.hpp"

#include <cmath>

#include "linalg/kmeans.hpp"
#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dgc::baselines {

AveragingResult averaging_dynamics(const graph::Graph& g, const AveragingOptions& options) {
  const std::size_t n = g.num_nodes();
  DGC_REQUIRE(n > 1, "graph too small");
  DGC_REQUIRE(options.clusters >= 2, "need at least two clusters");

  std::size_t rounds = options.rounds;
  if (rounds == 0) {
    rounds = static_cast<std::size_t>(std::ceil(8.0 * std::log(static_cast<double>(n))));
  }
  std::size_t sketches = options.sketches;
  if (sketches == 0) {
    sketches = static_cast<std::size_t>(
                   std::ceil(std::log2(static_cast<double>(options.clusters)))) +
               2;
    sketches = std::max<std::size_t>(sketches, 3);
  }

  const linalg::WalkOperator op(g);
  util::Rng rng(options.seed);

  // Embedding row v = (x_h(T)(v) − x_h(T+1)(v))_h — the signal in which
  // the community structure (eigenvectors 2..k) dominates.
  std::vector<double> embedding(n * sketches, 0.0);
  std::vector<double> x(n);
  std::vector<double> next(n);
  AveragingResult result;
  result.rounds = rounds;

  for (std::size_t h = 0; h < sketches; ++h) {
    for (auto& value : x) value = rng.next_bit() ? 1.0 : -1.0;
    // x ← (x + D^{-1}A x)/2: every node averages with all neighbours.
    auto lazy_step = [&]() {
      op.apply_row_stochastic(x, next);
      for (std::size_t v = 0; v < n; ++v) next[v] = 0.5 * (x[v] + next[v]);
      x.swap(next);
      result.messages += 2 * static_cast<std::uint64_t>(g.num_edges());
    };
    for (std::size_t t = 0; t < rounds; ++t) lazy_step();
    const std::vector<double> at_t = x;  // x(T)
    lazy_step();                         // x now holds x(T+1)
    for (std::size_t v = 0; v < n; ++v) {
      embedding[v * sketches + h] = at_t[v] - x[v];
    }
  }

  // Scale rows to unit norm so k-means sees the sign/direction pattern
  // rather than the exponentially shrunk magnitudes.
  for (std::size_t v = 0; v < n; ++v) {
    double norm = 0.0;
    for (std::size_t h = 0; h < sketches; ++h) {
      norm += embedding[v * sketches + h] * embedding[v * sketches + h];
    }
    norm = std::sqrt(norm);
    if (norm > 1e-300) {
      for (std::size_t h = 0; h < sketches; ++h) embedding[v * sketches + h] /= norm;
    }
  }

  linalg::KMeansOptions km;
  km.clusters = options.clusters;
  km.restarts = 5;
  km.seed = options.seed;
  result.labels = linalg::kmeans(embedding, n, sketches, km).assignment;
  return result;
}

}  // namespace dgc::baselines
