// Louvain modularity maximisation (Blondel et al. 2008) — the de-facto
// practical community-detection method in OSS graph stacks, included so
// the evaluation compares against what practitioners actually run (the
// reproduction brief notes load-balancing clustering is absent from OSS
// while modularity/spectral methods dominate).
//
// Standard two-phase scheme: (1) local moving — greedily relocate nodes
// to the neighbouring community with the best modularity gain until no
// move helps; (2) aggregation — contract communities into super-nodes
// (self-loops keep internal weight) and recurse.  Unweighted input;
// internal levels use weighted multigraphs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::baselines {

struct LouvainOptions {
  std::size_t max_levels = 10;
  std::size_t max_sweeps_per_level = 32;  ///< local-moving passes
  std::uint64_t seed = 37;                ///< node visiting order
};

struct LouvainResult {
  std::vector<std::uint32_t> labels;  ///< compacted to [0, num_communities)
  std::uint32_t num_communities = 0;
  double modularity = 0.0;
  std::size_t levels = 0;
};

[[nodiscard]] LouvainResult louvain(const graph::Graph& g, const LouvainOptions& options);

}  // namespace dgc::baselines
