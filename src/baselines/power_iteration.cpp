#include "baselines/power_iteration.hpp"

#include <cmath>

#include "linalg/kmeans.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dgc::baselines {

PicResult power_iteration_clustering(const graph::Graph& g, const PicOptions& options) {
  const std::size_t n = g.num_nodes();
  DGC_REQUIRE(n > options.clusters, "graph too small");

  util::Rng rng(options.seed);
  std::vector<double> x(n);
  for (auto& value : x) value = rng.next_double();
  {
    // Remove the stationary component so the cluster signal dominates.
    const double mean = linalg::sum(x) / static_cast<double>(n);
    for (auto& value : x) value -= mean;
  }
  double norm = linalg::normalize(x);
  DGC_REQUIRE(norm > 0.0, "degenerate start vector");

  const linalg::WalkOperator op(g);
  std::vector<double> next(n);
  std::vector<double> prev_delta(n, 0.0);
  PicResult result;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (g.is_regular()) {
      op.apply_walk(x, next);
    } else {
      op.apply_normalized(x, next);
    }
    linalg::normalize(next);
    // Per-node velocity; stop when it stabilises (acceleration ~ 0).
    double accel = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double delta = std::abs(next[v] - x[v]);
      accel = std::max(accel, std::abs(delta - prev_delta[v]));
      prev_delta[v] = delta;
    }
    x.swap(next);
    result.iterations = it + 1;
    if (accel < options.convergence_tol) break;
  }

  linalg::KMeansOptions km;
  km.clusters = options.clusters;
  km.restarts = 5;
  km.seed = options.seed;
  result.labels = linalg::kmeans(x, n, 1, km).assignment;
  return result;
}

}  // namespace dgc::baselines
