// Label propagation (Raghavan et al. 2007) — the standard cheap
// distributed community-detection heuristic; every node repeatedly adopts
// the most frequent label among its neighbours.  Included as the
// practical point of comparison for accuracy and communication (each
// round costs Θ(m) messages, like Becchetti et al., versus the paper's
// ≤ n/2 matched edges per round).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::baselines {

struct LabelPropagationOptions {
  std::size_t max_rounds = 100;
  std::uint64_t seed = 19;  ///< random node order per round
};

struct LabelPropagationResult {
  std::vector<std::uint32_t> labels;  ///< compacted to [0, num_labels)
  std::uint32_t num_labels = 0;
  std::size_t rounds = 0;             ///< rounds until fixpoint (or max)
  std::uint64_t messages = 0;         ///< 2m per round metered
};

[[nodiscard]] LabelPropagationResult label_propagation(
    const graph::Graph& g, const LabelPropagationOptions& options);

}  // namespace dgc::baselines
