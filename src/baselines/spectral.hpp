// Centralised spectral clustering — the "complicated" method the paper
// positions itself against (§1): top-k eigenvectors of the normalised
// adjacency, rows optionally normalised (Ng–Jordan–Weiss), k-means on the
// n x k embedding.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::baselines {

struct SpectralOptions {
  std::uint32_t clusters = 2;
  bool normalize_rows = true;   ///< NJW row normalisation of the embedding
  std::size_t kmeans_restarts = 5;
  std::uint64_t seed = 17;
};

struct SpectralResult {
  std::vector<std::uint32_t> labels;  ///< in [0, clusters)
  std::vector<double> eigenvalues;    ///< top `clusters` of the walk matrix
  double kmeans_inertia = 0.0;
};

[[nodiscard]] SpectralResult spectral_clustering(const graph::Graph& g,
                                                 const SpectralOptions& options);

}  // namespace dgc::baselines
