#include "baselines/spectral.hpp"

#include <cmath>

#include "linalg/kmeans.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"

namespace dgc::baselines {

SpectralResult spectral_clustering(const graph::Graph& g, const SpectralOptions& options) {
  const std::size_t n = g.num_nodes();
  const std::uint32_t k = options.clusters;
  DGC_REQUIRE(k >= 1, "need at least one cluster");
  DGC_REQUIRE(n > k, "graph too small");

  const linalg::WalkOperator op(g);
  linalg::LanczosOptions lanczos;
  lanczos.num_eigenpairs = k;
  lanczos.seed = options.seed;
  lanczos.max_iterations = 6 * k + 80;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      n,
      [&](std::span<const double> in, std::span<double> out) {
        if (g.is_regular()) {
          op.apply_walk(in, out);
        } else {
          op.apply_normalized(in, out);
        }
      },
      lanczos);

  // Build the n x k embedding (row v = (f_1(v), …, f_k(v))).
  std::vector<double> points(n * k);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint32_t j = 0; j < k; ++j) points[v * k + j] = pairs.vectors[j][v];
  }
  if (options.normalize_rows) {
    for (std::size_t v = 0; v < n; ++v) {
      double norm = 0.0;
      for (std::uint32_t j = 0; j < k; ++j) norm += points[v * k + j] * points[v * k + j];
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (std::uint32_t j = 0; j < k; ++j) points[v * k + j] /= norm;
      }
    }
  }

  linalg::KMeansOptions km;
  km.clusters = k;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  const auto clustering = linalg::kmeans(points, n, k, km);

  SpectralResult result;
  result.labels = clustering.assignment;
  result.eigenvalues = pairs.values;
  result.kmeans_inertia = clustering.inertia;
  return result;
}

}  // namespace dgc::baselines
