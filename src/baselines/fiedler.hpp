// Fiedler sweep cut — the classical spectral bisection that the Cheeger
// inequality (the k=2 case of the paper's eq. (1)) makes rigorous:
// sort nodes by the second eigenvector of the walk matrix, scan the n−1
// prefix cuts, return the one with minimum conductance.  Recursing gives
// a simple k-way partitioner; we expose the single cut (the primitive)
// and a recursive driver for k = 2^j.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dgc::baselines {

struct SweepCutResult {
  /// in_cut[v] = 1 if v is on the small-conductance side.
  std::vector<char> in_cut;
  double conductance = 0.0;  ///< paper conductance of the returned side
  double lambda_2 = 0.0;     ///< second eigenvalue of the walk matrix
};

/// Best prefix cut of the Fiedler ordering (connected graphs).
[[nodiscard]] SweepCutResult fiedler_sweep_cut(const graph::Graph& g,
                                               std::uint64_t seed = 61);

/// Recursive bisection into (up to) `parts` parts: repeatedly sweep-cuts
/// the currently largest part until the target count is reached or no
/// part can be split.  Labels are compact in [0, returned count).
[[nodiscard]] std::vector<std::uint32_t> recursive_bisection(const graph::Graph& g,
                                                             std::uint32_t parts,
                                                             std::uint64_t seed = 61);

}  // namespace dgc::baselines
