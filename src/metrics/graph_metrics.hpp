// Partition quality metrics that need the graph (not just the labels).
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace dgc::metrics {

/// Newman modularity Q = sum_c (e_c/m - (deg_c/(2m))^2) of a labelling.
[[nodiscard]] double modularity(const graph::Graph& g,
                                std::span<const std::uint32_t> membership,
                                std::uint32_t num_clusters);

/// Number of undirected edges whose endpoints lie in different parts —
/// the shard-assignment quality the sharded engine's cross-shard traffic
/// scales with.
[[nodiscard]] std::uint64_t edge_cut(const graph::Graph& g,
                                     std::span<const std::uint32_t> part);

/// max_p |part p| / (n / num_parts): 1.0 is perfectly balanced; the
/// sharded engine's parallel speedup degrades with this factor.
[[nodiscard]] double partition_imbalance(std::span<const std::uint32_t> part,
                                         std::uint32_t num_parts);

}  // namespace dgc::metrics
