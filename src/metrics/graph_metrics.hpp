// Partition quality metrics that need the graph (not just the labels).
//
// Every metric here is weight-aware: on weighted graphs, edge counts
// become edge-weight sums and degrees become strengths (weighted
// degrees).  On unweighted graphs the weighted variants reduce exactly
// to the counting versions (every weight reads as 1.0).
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace dgc::metrics {

/// Newman modularity Q = sum_c (w_c/W - (S_c/(2W))^2) of a labelling,
/// with w_c the intra-cluster edge weight, S_c the cluster strength sum,
/// and W the total edge weight (the classic e_c/m - (deg_c/2m)^2 on
/// unweighted graphs).
[[nodiscard]] double modularity(const graph::Graph& g,
                                std::span<const std::uint32_t> membership,
                                std::uint32_t num_clusters);

/// Number of undirected edges whose endpoints lie in different parts —
/// the shard-assignment quality the sharded engine's cross-shard traffic
/// scales with.
[[nodiscard]] std::uint64_t edge_cut(const graph::Graph& g,
                                     std::span<const std::uint32_t> part);

/// Total weight of the cut edges (= edge_cut on unweighted graphs).
[[nodiscard]] double edge_cut_weight(const graph::Graph& g,
                                     std::span<const std::uint32_t> part);

/// max_p |part p| / (n / num_parts): 1.0 is perfectly balanced; the
/// sharded engine's parallel speedup degrades with this factor.
[[nodiscard]] double partition_imbalance(std::span<const std::uint32_t> part,
                                         std::uint32_t num_parts);

/// Weighted-volume imbalance: max_p strength(p) / (total_strength /
/// num_parts).  Equals the degree-volume imbalance on unweighted
/// graphs; 0.0 for edgeless graphs.
[[nodiscard]] double partition_imbalance_volume(const graph::Graph& g,
                                                std::span<const std::uint32_t> part,
                                                std::uint32_t num_parts);

/// Per-shard quality breakdown of a partition (the `dgc partition`
/// summary and the E15 bench both report from this).
struct ShardProfile {
  std::uint64_t nodes = 0;
  double volume = 0.0;           ///< strength sum (degree sum unweighted)
  std::uint64_t boundary_nodes = 0;  ///< nodes with a neighbour elsewhere
  std::uint64_t internal_edges = 0;  ///< both endpoints in this shard
  std::uint64_t cut_edges = 0;       ///< edges leaving this shard
  double cut_weight = 0.0;           ///< weight of those edges
};

struct PartitionProfile {
  std::vector<ShardProfile> shards;
  std::uint64_t cut_edges = 0;  ///< total cut (each edge counted once)
  double cut_weight = 0.0;
  std::uint64_t boundary_nodes = 0;
  double imbalance = 0.0;         ///< partition_imbalance
  double imbalance_volume = 0.0;  ///< partition_imbalance_volume
};

/// One-pass computation of the per-shard stats plus the aggregates the
/// scalar metrics above report.  A shard's cut_edges counts every edge
/// leaving it, so sum_p cut_edges(p) = 2 * total cut_edges.
[[nodiscard]] PartitionProfile partition_profile(const graph::Graph& g,
                                                 std::span<const std::uint32_t> part,
                                                 std::uint32_t num_parts);

}  // namespace dgc::metrics
