// Partition quality metrics that need the graph (not just the labels).
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace dgc::metrics {

/// Newman modularity Q = sum_c (e_c/m - (deg_c/(2m))^2) of a labelling.
[[nodiscard]] double modularity(const graph::Graph& g,
                                std::span<const std::uint32_t> membership,
                                std::uint32_t num_clusters);

}  // namespace dgc::metrics
