// Partition quality metrics that need the graph (not just the labels).
//
// Every metric here is weight-aware: on weighted graphs, edge counts
// become edge-weight sums and degrees become strengths (weighted
// degrees).  On unweighted graphs the weighted variants reduce exactly
// to the counting versions (every weight reads as 1.0).
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace dgc::metrics {

/// Newman modularity Q = sum_c (w_c/W - (S_c/(2W))^2) of a labelling,
/// with w_c the intra-cluster edge weight, S_c the cluster strength sum,
/// and W the total edge weight (the classic e_c/m - (deg_c/2m)^2 on
/// unweighted graphs).
[[nodiscard]] double modularity(const graph::Graph& g,
                                std::span<const std::uint32_t> membership,
                                std::uint32_t num_clusters);

/// Number of undirected edges whose endpoints lie in different parts —
/// the shard-assignment quality the sharded engine's cross-shard traffic
/// scales with.
[[nodiscard]] std::uint64_t edge_cut(const graph::Graph& g,
                                     std::span<const std::uint32_t> part);

/// Total weight of the cut edges (= edge_cut on unweighted graphs).
[[nodiscard]] double edge_cut_weight(const graph::Graph& g,
                                     std::span<const std::uint32_t> part);

/// max_p |part p| / (n / num_parts): 1.0 is perfectly balanced; the
/// sharded engine's parallel speedup degrades with this factor.
[[nodiscard]] double partition_imbalance(std::span<const std::uint32_t> part,
                                         std::uint32_t num_parts);

/// Weighted-volume imbalance: max_p strength(p) / (total_strength /
/// num_parts).  Equals the degree-volume imbalance on unweighted
/// graphs; 0.0 for edgeless graphs.
[[nodiscard]] double partition_imbalance_volume(const graph::Graph& g,
                                                std::span<const std::uint32_t> part,
                                                std::uint32_t num_parts);

}  // namespace dgc::metrics
