// Clustering quality metrics.
//
// Theorem 1.1's guarantee is stated as: there exists a permutation σ of
// the output labels such that |{v in S_i with ℓ_v ≠ σ(i)}| = o(n).
// `misclassified_nodes` computes exactly that optimum — the confusion
// matrix is built and the best label-to-cluster assignment is found with
// the exact Hungarian algorithm (k is small, so this is cheap).
// ARI and NMI are included because the baselines (spectral clustering,
// label propagation) can emit more or fewer clusters than planted, where
// permutation accuracy alone is too blunt.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dgc::metrics {

/// Sentinel label for nodes the query procedure could not classify.
/// Always counted as misclassified (metrics never match it to a cluster).
inline constexpr std::uint64_t kUnclustered = ~std::uint64_t{0};

/// Renumbers arbitrary labels (e.g. seed IDs) to dense 0..c-1; the
/// kUnclustered sentinel maps to its own dedicated label.
struct CompactLabels {
  std::vector<std::uint32_t> labels;
  std::uint32_t num_labels = 0;
};
[[nodiscard]] CompactLabels compact(std::span<const std::uint64_t> raw);

/// Confusion matrix: rows = ground-truth clusters, cols = predicted.
[[nodiscard]] std::vector<std::uint64_t> confusion_matrix(
    std::span<const std::uint32_t> truth, std::uint32_t truth_k,
    std::span<const std::uint32_t> predicted, std::uint32_t predicted_k);

/// Minimum number of misclassified nodes over all injective mappings of
/// ground-truth clusters to predicted labels (Theorem 1.1's criterion).
/// If predicted_k < truth_k the deficit clusters count fully.
[[nodiscard]] std::uint64_t misclassified_nodes(std::span<const std::uint32_t> truth,
                                                std::uint32_t truth_k,
                                                std::span<const std::uint32_t> predicted,
                                                std::uint32_t predicted_k);

/// misclassified_nodes / n.
[[nodiscard]] double misclassification_rate(std::span<const std::uint32_t> truth,
                                            std::uint32_t truth_k,
                                            std::span<const std::uint32_t> predicted,
                                            std::uint32_t predicted_k);

/// Convenience overloads that take raw uint64 labels (with sentinel).
[[nodiscard]] std::uint64_t misclassified_nodes(std::span<const std::uint32_t> truth,
                                                std::uint32_t truth_k,
                                                std::span<const std::uint64_t> raw_predicted);
[[nodiscard]] double misclassification_rate(std::span<const std::uint32_t> truth,
                                            std::uint32_t truth_k,
                                            std::span<const std::uint64_t> raw_predicted);

/// Adjusted Rand index in [-1, 1]; 1 = identical partitions.
[[nodiscard]] double adjusted_rand_index(std::span<const std::uint32_t> a,
                                         std::span<const std::uint32_t> b);

/// Normalised mutual information in [0, 1] (arithmetic-mean normalised).
[[nodiscard]] double normalized_mutual_information(std::span<const std::uint32_t> a,
                                                   std::span<const std::uint32_t> b);

}  // namespace dgc::metrics
