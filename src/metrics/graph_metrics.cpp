#include "metrics/graph_metrics.hpp"

#include <vector>

#include "util/require.hpp"

namespace dgc::metrics {

double modularity(const graph::Graph& g, std::span<const std::uint32_t> membership,
                  std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) return 0.0;
  std::vector<std::uint64_t> internal(num_clusters, 0);
  std::vector<std::uint64_t> degree_sum(num_clusters, 0);
  g.for_each_edge([&](graph::NodeId u, graph::NodeId v) {
    DGC_REQUIRE(membership[u] < num_clusters && membership[v] < num_clusters,
                "label out of range");
    if (membership[u] == membership[v]) ++internal[membership[u]];
  });
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    degree_sum[membership[v]] += g.degree(v);
  }
  double q = 0.0;
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    const double ec = static_cast<double>(internal[c]) / m;
    const double dc = static_cast<double>(degree_sum[c]) / (2.0 * m);
    q += ec - dc * dc;
  }
  return q;
}

}  // namespace dgc::metrics
