#include "metrics/graph_metrics.hpp"

#include <algorithm>
#include <vector>

#include "util/require.hpp"

namespace dgc::metrics {

double modularity(const graph::Graph& g, std::span<const std::uint32_t> membership,
                  std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) return 0.0;
  std::vector<std::uint64_t> internal(num_clusters, 0);
  std::vector<std::uint64_t> degree_sum(num_clusters, 0);
  g.for_each_edge([&](graph::NodeId u, graph::NodeId v) {
    DGC_REQUIRE(membership[u] < num_clusters && membership[v] < num_clusters,
                "label out of range");
    if (membership[u] == membership[v]) ++internal[membership[u]];
  });
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    degree_sum[membership[v]] += g.degree(v);
  }
  double q = 0.0;
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    const double ec = static_cast<double>(internal[c]) / m;
    const double dc = static_cast<double>(degree_sum[c]) / (2.0 * m);
    q += ec - dc * dc;
  }
  return q;
}

std::uint64_t edge_cut(const graph::Graph& g, std::span<const std::uint32_t> part) {
  DGC_REQUIRE(part.size() == g.num_nodes(), "partition size mismatch");
  std::uint64_t cut = 0;
  g.for_each_edge([&](graph::NodeId u, graph::NodeId v) {
    if (part[u] != part[v]) ++cut;
  });
  return cut;
}

double partition_imbalance(std::span<const std::uint32_t> part, std::uint32_t num_parts) {
  DGC_REQUIRE(num_parts > 0, "need at least one part");
  DGC_REQUIRE(!part.empty(), "empty partition");
  std::vector<std::size_t> sizes(num_parts, 0);
  for (const std::uint32_t p : part) {
    DGC_REQUIRE(p < num_parts, "part id out of range");
    ++sizes[p];
  }
  std::size_t largest = 0;
  for (const std::size_t s : sizes) largest = std::max(largest, s);
  return static_cast<double>(largest) * static_cast<double>(num_parts) /
         static_cast<double>(part.size());
}

}  // namespace dgc::metrics
