#include "metrics/graph_metrics.hpp"

#include <algorithm>
#include <vector>

#include "util/require.hpp"

namespace dgc::metrics {

double modularity(const graph::Graph& g, std::span<const std::uint32_t> membership,
                  std::uint32_t num_clusters) {
  DGC_REQUIRE(membership.size() == g.num_nodes(), "membership size mismatch");
  const double w_total = g.total_weight();
  if (w_total == 0.0) return 0.0;
  // Doubles, not counters: on unweighted graphs every weight is exactly
  // 1.0 and the sums are integers below 2^53, so this reproduces the
  // counting formula bit for bit.
  std::vector<double> internal(num_clusters, 0.0);
  std::vector<double> strength_sum(num_clusters, 0.0);
  g.for_each_weighted_edge([&](graph::NodeId u, graph::NodeId v, double w) {
    DGC_REQUIRE(membership[u] < num_clusters && membership[v] < num_clusters,
                "label out of range");
    if (membership[u] == membership[v]) internal[membership[u]] += w;
  });
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    strength_sum[membership[v]] += g.strength(v);
  }
  double q = 0.0;
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    const double ec = internal[c] / w_total;
    const double dc = strength_sum[c] / (2.0 * w_total);
    q += ec - dc * dc;
  }
  return q;
}

std::uint64_t edge_cut(const graph::Graph& g, std::span<const std::uint32_t> part) {
  DGC_REQUIRE(part.size() == g.num_nodes(), "partition size mismatch");
  std::uint64_t cut = 0;
  g.for_each_edge([&](graph::NodeId u, graph::NodeId v) {
    if (part[u] != part[v]) ++cut;
  });
  return cut;
}

double edge_cut_weight(const graph::Graph& g, std::span<const std::uint32_t> part) {
  DGC_REQUIRE(part.size() == g.num_nodes(), "partition size mismatch");
  double cut = 0.0;
  g.for_each_weighted_edge([&](graph::NodeId u, graph::NodeId v, double w) {
    if (part[u] != part[v]) cut += w;
  });
  return cut;
}

double partition_imbalance(std::span<const std::uint32_t> part, std::uint32_t num_parts) {
  DGC_REQUIRE(num_parts > 0, "need at least one part");
  DGC_REQUIRE(!part.empty(), "empty partition");
  std::vector<std::size_t> sizes(num_parts, 0);
  for (const std::uint32_t p : part) {
    DGC_REQUIRE(p < num_parts, "part id out of range");
    ++sizes[p];
  }
  std::size_t largest = 0;
  for (const std::size_t s : sizes) largest = std::max(largest, s);
  return static_cast<double>(largest) * static_cast<double>(num_parts) /
         static_cast<double>(part.size());
}

double partition_imbalance_volume(const graph::Graph& g,
                                  std::span<const std::uint32_t> part,
                                  std::uint32_t num_parts) {
  DGC_REQUIRE(num_parts > 0, "need at least one part");
  DGC_REQUIRE(part.size() == g.num_nodes(), "partition size mismatch");
  std::vector<double> volumes(num_parts, 0.0);
  double total = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    DGC_REQUIRE(part[v] < num_parts, "part id out of range");
    const double s = g.strength(v);
    volumes[part[v]] += s;
    total += s;
  }
  if (total == 0.0) return 0.0;
  double largest = 0.0;
  for (const double v : volumes) largest = std::max(largest, v);
  return largest * static_cast<double>(num_parts) / total;
}

PartitionProfile partition_profile(const graph::Graph& g,
                                   std::span<const std::uint32_t> part,
                                   std::uint32_t num_parts) {
  DGC_REQUIRE(num_parts > 0, "need at least one part");
  DGC_REQUIRE(part.size() == g.num_nodes(), "partition size mismatch");
  PartitionProfile profile;
  profile.shards.resize(num_parts);
  const auto weights = g.weights();
  const auto offsets = g.offsets();
  const auto adjacency = g.adjacency();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint32_t p = part[v];
    DGC_REQUIRE(p < num_parts, "part id out of range");
    ShardProfile& shard = profile.shards[p];
    ++shard.nodes;
    bool boundary = false;
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const graph::NodeId u = adjacency[i];
      const double w = weights.empty() ? 1.0 : weights[i];
      shard.volume += w;
      if (part[u] != p) {
        boundary = true;
        ++shard.cut_edges;
        shard.cut_weight += w;
        if (u > v) {  // count each cut edge once in the totals
          ++profile.cut_edges;
          profile.cut_weight += w;
        }
      } else if (u > v) {
        ++shard.internal_edges;
      }
    }
    if (boundary) {
      ++shard.boundary_nodes;
      ++profile.boundary_nodes;
    }
  }
  // Aggregates.
  std::uint64_t largest_nodes = 0;
  double largest_volume = 0.0;
  double total_volume = 0.0;
  for (const ShardProfile& shard : profile.shards) {
    largest_nodes = std::max(largest_nodes, shard.nodes);
    largest_volume = std::max(largest_volume, shard.volume);
    total_volume += shard.volume;
  }
  profile.imbalance = static_cast<double>(largest_nodes) *
                      static_cast<double>(num_parts) /
                      static_cast<double>(part.size());
  profile.imbalance_volume =
      total_volume == 0.0
          ? 0.0
          : largest_volume * static_cast<double>(num_parts) / total_volume;
  return profile;
}

}  // namespace dgc::metrics
