#include "metrics/clustering_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "linalg/hungarian.hpp"
#include "util/require.hpp"

namespace dgc::metrics {

CompactLabels compact(std::span<const std::uint64_t> raw) {
  CompactLabels out;
  out.labels.resize(raw.size());
  std::unordered_map<std::uint64_t, std::uint32_t> remap;
  bool has_unclustered = false;
  for (const auto label : raw) {
    if (label == kUnclustered) {
      has_unclustered = true;
      continue;
    }
    remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
  }
  std::uint32_t next = static_cast<std::uint32_t>(remap.size());
  const std::uint32_t unclustered_label = next;
  if (has_unclustered) ++next;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out.labels[i] = raw[i] == kUnclustered ? unclustered_label : remap.at(raw[i]);
  }
  out.num_labels = next;
  return out;
}

std::vector<std::uint64_t> confusion_matrix(std::span<const std::uint32_t> truth,
                                            std::uint32_t truth_k,
                                            std::span<const std::uint32_t> predicted,
                                            std::uint32_t predicted_k) {
  DGC_REQUIRE(truth.size() == predicted.size(), "label vectors must have equal length");
  std::vector<std::uint64_t> confusion(static_cast<std::size_t>(truth_k) * predicted_k, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    DGC_REQUIRE(truth[i] < truth_k, "truth label out of range");
    DGC_REQUIRE(predicted[i] < predicted_k, "predicted label out of range");
    ++confusion[static_cast<std::size_t>(truth[i]) * predicted_k + predicted[i]];
  }
  return confusion;
}

std::uint64_t misclassified_nodes(std::span<const std::uint32_t> truth,
                                  std::uint32_t truth_k,
                                  std::span<const std::uint32_t> predicted,
                                  std::uint32_t predicted_k) {
  DGC_REQUIRE(truth_k >= 1, "need at least one ground-truth cluster");
  const std::size_t n = truth.size();
  // Pad predicted labels so the assignment is always feasible; phantom
  // columns have zero agreement.
  const std::uint32_t cols = std::max(truth_k, predicted_k);
  const auto confusion = confusion_matrix(truth, truth_k, predicted, predicted_k);
  // Hungarian minimises cost; we want to maximise agreement, so cost =
  // row_total - agreement (non-negative).
  std::vector<double> cost(static_cast<std::size_t>(truth_k) * cols, 0.0);
  std::vector<std::uint64_t> row_total(truth_k, 0);
  for (std::uint32_t r = 0; r < truth_k; ++r) {
    for (std::uint32_t c = 0; c < predicted_k; ++c) {
      row_total[r] += confusion[static_cast<std::size_t>(r) * predicted_k + c];
    }
  }
  for (std::uint32_t r = 0; r < truth_k; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const std::uint64_t agree =
          c < predicted_k ? confusion[static_cast<std::size_t>(r) * predicted_k + c] : 0;
      cost[static_cast<std::size_t>(r) * cols + c] =
          static_cast<double>(row_total[r]) - static_cast<double>(agree);
    }
  }
  const auto assignment = linalg::hungarian_min_cost(cost, truth_k, cols);
  std::uint64_t agreement = 0;
  for (std::uint32_t r = 0; r < truth_k; ++r) {
    const std::size_t c = assignment.row_to_col[r];
    if (c < predicted_k) {
      agreement += confusion[static_cast<std::size_t>(r) * predicted_k + c];
    }
  }
  return static_cast<std::uint64_t>(n) - agreement;
}

double misclassification_rate(std::span<const std::uint32_t> truth, std::uint32_t truth_k,
                              std::span<const std::uint32_t> predicted,
                              std::uint32_t predicted_k) {
  if (truth.empty()) return 0.0;
  return static_cast<double>(misclassified_nodes(truth, truth_k, predicted, predicted_k)) /
         static_cast<double>(truth.size());
}

std::uint64_t misclassified_nodes(std::span<const std::uint32_t> truth,
                                  std::uint32_t truth_k,
                                  std::span<const std::uint64_t> raw_predicted) {
  DGC_REQUIRE(truth.size() == raw_predicted.size(),
              "label vectors must have equal length");
  // Sentinel nodes are unconditional errors: the paper's fallback is an
  // *arbitrary per-node* ID, so a shared "unclustered" bucket must never
  // be creditable as a cluster.  Run the optimal assignment on the
  // clustered nodes only.
  std::vector<std::uint32_t> masked_truth;
  std::vector<std::uint64_t> masked_predicted;
  masked_truth.reserve(truth.size());
  masked_predicted.reserve(truth.size());
  std::uint64_t unclustered = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (raw_predicted[i] == kUnclustered) {
      ++unclustered;
    } else {
      masked_truth.push_back(truth[i]);
      masked_predicted.push_back(raw_predicted[i]);
    }
  }
  if (masked_truth.empty()) return unclustered;
  const CompactLabels compacted = compact(masked_predicted);
  return unclustered + misclassified_nodes(masked_truth, truth_k, compacted.labels,
                                           std::max<std::uint32_t>(1, compacted.num_labels));
}

double misclassification_rate(std::span<const std::uint32_t> truth, std::uint32_t truth_k,
                              std::span<const std::uint64_t> raw_predicted) {
  if (truth.empty()) return 0.0;
  return static_cast<double>(misclassified_nodes(truth, truth_k, raw_predicted)) /
         static_cast<double>(truth.size());
}

namespace {

std::uint32_t max_label_plus_one(std::span<const std::uint32_t> labels) {
  std::uint32_t k = 0;
  for (const auto label : labels) k = std::max(k, label + 1);
  return k;
}

double comb2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

double adjusted_rand_index(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b) {
  DGC_REQUIRE(a.size() == b.size(), "label vectors must have equal length");
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  const std::uint32_t ka = max_label_plus_one(a);
  const std::uint32_t kb = max_label_plus_one(b);
  const auto confusion = confusion_matrix(a, ka, b, kb);
  std::vector<std::uint64_t> row(ka, 0);
  std::vector<std::uint64_t> col(kb, 0);
  double sum_cells = 0.0;
  for (std::uint32_t i = 0; i < ka; ++i) {
    for (std::uint32_t j = 0; j < kb; ++j) {
      const auto nij = confusion[static_cast<std::size_t>(i) * kb + j];
      row[i] += nij;
      col[j] += nij;
      sum_cells += comb2(static_cast<double>(nij));
    }
  }
  double sum_row = 0.0;
  double sum_col = 0.0;
  for (const auto r : row) sum_row += comb2(static_cast<double>(r));
  for (const auto c : col) sum_col += comb2(static_cast<double>(c));
  const double expected = sum_row * sum_col / comb2(static_cast<double>(n));
  const double maximum = 0.5 * (sum_row + sum_col);
  if (maximum == expected) return 1.0;
  return (sum_cells - expected) / (maximum - expected);
}

double normalized_mutual_information(std::span<const std::uint32_t> a,
                                     std::span<const std::uint32_t> b) {
  DGC_REQUIRE(a.size() == b.size(), "label vectors must have equal length");
  const std::size_t n = a.size();
  if (n == 0) return 1.0;
  const std::uint32_t ka = max_label_plus_one(a);
  const std::uint32_t kb = max_label_plus_one(b);
  const auto confusion = confusion_matrix(a, ka, b, kb);
  std::vector<std::uint64_t> row(ka, 0);
  std::vector<std::uint64_t> col(kb, 0);
  for (std::uint32_t i = 0; i < ka; ++i) {
    for (std::uint32_t j = 0; j < kb; ++j) {
      const auto nij = confusion[static_cast<std::size_t>(i) * kb + j];
      row[i] += nij;
      col[j] += nij;
    }
  }
  const double nd = static_cast<double>(n);
  double mi = 0.0;
  for (std::uint32_t i = 0; i < ka; ++i) {
    for (std::uint32_t j = 0; j < kb; ++j) {
      const auto nij = confusion[static_cast<std::size_t>(i) * kb + j];
      if (nij == 0) continue;
      const double pij = static_cast<double>(nij) / nd;
      const double pi = static_cast<double>(row[i]) / nd;
      const double pj = static_cast<double>(col[j]) / nd;
      mi += pij * std::log(pij / (pi * pj));
    }
  }
  auto entropy = [&](const std::vector<std::uint64_t>& counts) {
    double h = 0.0;
    for (const auto c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / nd;
      h -= p * std::log(p);
    }
    return h;
  };
  const double ha = entropy(row);
  const double hb = entropy(col);
  if (ha == 0.0 && hb == 0.0) return 1.0;
  const double denom = 0.5 * (ha + hb);
  return denom == 0.0 ? 0.0 : mi / denom;
}

}  // namespace dgc::metrics
