// Functional-module discovery in a synthetic protein–protein interaction
// network — the paper's second motivating application ("proteins having
// the same specific function within the cell").
//
//   build/examples/example_protein_modules [--proteins=800] [--modules=5]
//
// PPI networks are only *almost* regular, so this example exercises the
// §4.5 machinery: virtual-degree padding, degree-biased activation, and
// per-module conductance reporting.  It also round-trips the network
// through the edge-list format to show the IO path.
#include <cstdio>
#include <sstream>

#include "core/clusterer.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dgc;
  const util::Cli cli(argc, argv);
  const auto proteins = static_cast<graph::NodeId>(cli.get_int("proteins", 800));
  const auto modules = static_cast<std::uint32_t>(cli.get_int("modules", 5));

  // Synthetic PPI: dense interaction modules, sparse crosstalk, degrees
  // thinned irregularly (experimental coverage is never uniform).
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(modules, proteins / modules);
  spec.degree = 18;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.015);
  util::Rng rng(cli.get_uint64("seed", 13));
  const auto planted =
      graph::almost_regular_clusters(spec, cli.get_double("dropout", 0.15), rng);
  const auto& g = planted.graph;

  // Round-trip through the serialisation layer (what a pipeline that
  // reads STRING/BioGRID exports would do).
  std::stringstream archive;
  graph::write_edge_list(archive, g);
  const graph::Graph loaded = graph::read_edge_list(archive);

  std::printf("PPI network: %u proteins, %zu interactions, degrees %zu..%zu\n",
              loaded.num_nodes(), loaded.num_edges(), loaded.min_degree(),
              loaded.max_degree());

  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(modules + 1);
  config.k_hint = modules;
  config.rounds_multiplier = 2.0;
  config.query_rule = core::QueryRule::kArgmax;
  config.protocol.virtual_degree = loaded.max_degree();        // §4.5 padding
  config.protocol.degree_biased_activation = true;             // §4.5 literal
  config.seed = cli.get_uint64("seed", 13);
  cli.reject_unknown();
  const auto result = core::Clusterer(loaded, config).run();

  const auto compacted = metrics::compact(result.labels);
  std::printf("recovered %u candidate modules in T=%zu rounds\n",
              compacted.num_labels, result.rounds);
  std::printf("misclassified proteins: %.2f%%   ARI: %.4f\n\n",
              100.0 * metrics::misclassification_rate(planted.membership, modules,
                                                      result.labels),
              metrics::adjusted_rand_index(planted.membership, compacted.labels));

  // Per-module quality report: size and outer conductance of each
  // *recovered* module (what a biologist would sanity-check first).
  const auto phis =
      graph::partition_conductances(loaded, compacted.labels, compacted.num_labels);
  std::printf("%-10s %10s %16s\n", "module", "proteins", "conductance");
  std::vector<std::size_t> sizes(compacted.num_labels, 0);
  for (const auto label : compacted.labels) ++sizes[label];
  for (std::uint32_t c = 0; c < compacted.num_labels; ++c) {
    if (sizes[c] == 0) continue;
    std::printf("%-10u %10zu %16.4f\n", c, sizes[c], phis[c]);
  }
  return 0;
}
