// Quickstart: cluster a planted graph with the paper's algorithm in
// ~30 lines of user code.
//
//   build/examples/example_quickstart [--n=4000] [--k=4] [--seed=1]
//
// Walks through the whole public API surface a first-time user needs:
// generate (or load) a graph, configure, run, inspect labels, score.
#include <cstdio>

#include "core/clusterer.hpp"
#include "core/seeding.hpp"
#include "core/summary.hpp"
#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dgc;
  const util::Cli cli(argc, argv);
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 4));
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 4000));

  // 1. A graph with k planted clusters (use graph::load_edge_list to read
  //    your own file instead).
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, n / k);
  spec.degree = 16;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, /*phi=*/0.02);
  util::Rng rng(cli.get_uint64("seed", 1));
  const graph::PlantedGraph planted = graph::clustered_regular(spec, rng);

  // 2. Configure: the algorithm only needs a lower bound β on the
  //    balance of the smallest cluster; T is derived from the spectrum
  //    (or set config.rounds yourself).
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k);
  config.k_hint = k;                 // used only for the T estimate
  config.rounds_multiplier = 2.0;
  config.seed = cli.get_uint64("seed", 1);
  // The paper's s̄ trials cover every cluster only with constant
  // probability; real deployments cheaply boost that by raising
  // seeding_trials (set --trials=1 to run the bare s̄ and occasionally
  // watch a cluster miss its seed and come back unclustered).
  const auto s_bar = core::default_seeding_trials(config.beta);
  config.seeding_trials = cli.get_uint64("trials", 2) * s_bar;
  const std::string labels_out = cli.get("labels_out", "");
  cli.reject_unknown();

  // 3. Run the three procedures (seeding -> averaging -> query).
  const core::ClusterResult result = core::Clusterer(planted.graph, config).run();
  // The CLI smoke test diffs these against `dgc cluster` on the same
  // instance saved to a file: ingestion must not change a single label.
  if (!labels_out.empty()) core::save_labels(labels_out, result.labels);

  // 4. Labels are seed IDs; compact them to 0..c-1 for downstream use.
  const auto compacted = metrics::compact(result.labels);

  std::printf("nodes             %u\n", planted.graph.num_nodes());
  std::printf("planted clusters  %u\n", k);
  std::printf("seeds drawn       %zu\n", result.seeds.size());
  std::printf("rounds T          %zu\n", result.rounds);
  std::printf("labels found      %u\n", compacted.num_labels);
  std::printf("misclassified     %.3f%%\n",
              100.0 * metrics::misclassification_rate(planted.membership, k,
                                                      result.labels));
  std::printf("ARI               %.4f\n",
              metrics::adjusted_rand_index(planted.membership, compacted.labels));

  // 5. Post-hoc diagnostics: the number of clusters is an *output* of
  //    the algorithm (only beta was an input).
  const auto summary = core::summarize_partition(planted.graph, result.labels);
  std::printf("\nrecovered k       %u (beta_hat=%.3f, rho_hat=%.4f, unclustered=%zu)\n",
              summary.num_clusters, summary.beta_hat, summary.rho_hat,
              summary.unclustered);
  for (const auto& cluster : summary.clusters) {
    const bool spurious =
        static_cast<double>(cluster.size) < config.beta * n / 2.0;
    std::printf("  cluster id=%llu  size=%zu  conductance=%.4f%s\n",
                static_cast<unsigned long long>(cluster.label), cluster.size,
                cluster.conductance,
                spurious ? "  (spurious boundary artifact: size << beta*n)" : "");
  }
  return 0;
}
