// Distributed deployment study: run the message-passing engine on a
// multi-site graph, inspect the full communication ledger, and stress it
// with message loss — the operational questions someone deploying the
// protocol across datacentres would ask first.
//
//   build/examples/example_distributed_deployment [--sites=4] [--size=500]
//                                                 [--loss=0.1]
#include <cstdio>

#include "core/distributed_clusterer.hpp"
#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dgc;
  const util::Cli cli(argc, argv);
  const auto sites = static_cast<std::uint32_t>(cli.get_int("sites", 4));
  const auto size = static_cast<graph::NodeId>(cli.get_int("size", 500));
  const double loss = cli.get_double("loss", 0.1);

  // "Sites" = clusters: machines within a site are densely connected,
  // cross-site links are scarce — exactly the cluster structure the
  // algorithm exploits.
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(sites, size);
  spec.degree = 16;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.02);
  util::Rng rng(cli.get_uint64("seed", 5));
  const auto planted = graph::clustered_regular(spec, rng);

  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(sites);
  config.k_hint = sites;
  config.rounds_multiplier = 2.0;
  config.seed = cli.get_uint64("seed", 5);
  cli.reject_unknown();

  std::printf("network: %u nodes over %u sites, %zu links\n\n",
              planted.graph.num_nodes(), sites, planted.graph.num_edges());
  std::printf("%-14s %10s %12s %14s %12s %10s\n", "condition", "rounds", "messages",
              "words", "dropped", "misclass");

  for (const double drop : {0.0, loss, 2 * loss}) {
    const auto report = core::DistributedClusterer(planted.graph, config).run(drop);
    const double err = metrics::misclassification_rate(
        planted.membership, sites, report.result.labels);
    std::printf("loss=%-8.2f %10zu %12llu %14llu %12llu %9.2f%%\n", drop,
                report.result.rounds,
                static_cast<unsigned long long>(report.traffic.messages),
                static_cast<unsigned long long>(report.traffic.words),
                static_cast<unsigned long long>(report.traffic.dropped_messages),
                100.0 * err);
  }

  // Per-round word profile of the fault-free run (first/median/last) —
  // shows the state payloads growing as loads spread, then saturating.
  const auto report = core::DistributedClusterer(planted.graph, config).run();
  const auto& per_round = report.words_per_round;
  std::printf("\nper-round words: first=%llu  t=T/2: %llu  last=%llu  "
              "(max state entries: %zu of s=%zu)\n",
              static_cast<unsigned long long>(per_round.front()),
              static_cast<unsigned long long>(per_round[per_round.size() / 2]),
              static_cast<unsigned long long>(per_round.back()),
              report.max_state_entries, report.result.seeds.size());
  std::printf("\nNOTE: losing a Probe or Accept only cancels that pair's exchange;\n"
              "losing the final State reply leaves the pair asymmetric — the\n"
              "two-generals limit any real lossy deployment hits (see docs/architecture.md).\n");
  return 0;
}
