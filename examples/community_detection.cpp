// Community detection in a synthetic social network (stochastic block
// model), the scenario the paper's introduction motivates: "finding
// communities in social networks".
//
//   build/examples/example_community_detection [--members=1500] [--k=3]
//
// Shows: SBM generation, the argmax query variant for non-regular
// graphs, and a comparison against the centralised spectral method and
// label propagation — with the communication ledger that motivates the
// distributed algorithm in the first place.
#include <cstdio>

#include "baselines/label_propagation.hpp"
#include "baselines/spectral.hpp"
#include "core/clusterer.hpp"
#include "core/distributed_clusterer.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dgc;
  const util::Cli cli(argc, argv);
  const auto members = static_cast<graph::NodeId>(cli.get_int("members", 1500));
  const auto k = static_cast<std::uint32_t>(cli.get_int("k", 3));

  // A k-community social graph: dense friendships inside a community,
  // sparse across.
  graph::SbmSpec spec;
  spec.nodes_per_cluster = members;
  spec.clusters = k;
  spec.p_in = cli.get_double("p_in", 0.02);
  spec.p_out = cli.get_double("p_out", 0.0008);
  util::Rng rng(cli.get_uint64("seed", 7));
  const auto planted = graph::stochastic_block_model(spec, rng);
  const auto& g = planted.graph;

  std::printf("social network: %u people, %zu friendships, communities=%u\n",
              g.num_nodes(), g.num_edges(), k);
  std::printf("degrees %zu..%zu, planted rho(k)=%.4f\n\n", g.min_degree(),
              g.max_degree(), graph::rho(g, planted.membership, k));

  // --- the paper's algorithm (distributed; argmax query since the SBM is
  // only almost-regular) --------------------------------------------------
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k + 1);
  config.k_hint = k;
  config.rounds_multiplier = 2.0;
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = cli.get_uint64("seed", 7);
  cli.reject_unknown();
  util::Timer timer;
  const auto report = core::DistributedClusterer(g, config).run();
  const double dgc_seconds = timer.seconds();
  const double dgc_err =
      metrics::misclassification_rate(planted.membership, k, report.result.labels);

  // --- baselines ---------------------------------------------------------
  timer.reset();
  baselines::SpectralOptions spectral_options;
  spectral_options.clusters = k;
  const auto spectral = baselines::spectral_clustering(g, spectral_options);
  const double spectral_seconds = timer.seconds();

  timer.reset();
  const auto lp = baselines::label_propagation(g, {});
  const double lp_seconds = timer.seconds();

  std::printf("%-22s %12s %10s %16s\n", "method", "misclass", "seconds",
              "messages");
  std::printf("%-22s %11.2f%% %10.3f %16llu\n", "load-balancing (dgc)",
              100.0 * dgc_err, dgc_seconds,
              static_cast<unsigned long long>(report.traffic.messages));
  std::printf("%-22s %11.2f%% %10.3f %16s\n", "spectral (centralised)",
              100.0 * metrics::misclassification_rate(planted.membership, k,
                                                      spectral.labels, k),
              spectral_seconds, "n/a (global)");
  std::printf("%-22s %11.2f%% %10.3f %16llu\n", "label propagation",
              100.0 * metrics::misclassification_rate(
                          planted.membership, k, lp.labels,
                          std::max(1u, lp.num_labels)),
              lp_seconds, static_cast<unsigned long long>(lp.messages));

  std::printf("\ncommunication ledger (dgc): %llu words over %zu rounds "
              "(%.1f words/person/round)\n",
              static_cast<unsigned long long>(report.traffic.words),
              report.result.rounds,
              static_cast<double>(report.traffic.words) /
                  static_cast<double>(g.num_nodes()) /
                  static_cast<double>(report.result.rounds));
  return 0;
}
