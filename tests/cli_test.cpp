// util::Cli: subcommand capture, flag lookup, unknown-flag rejection,
// and --help plumbing for the multi-verb `dgc` tool.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/require.hpp"

namespace {

using namespace dgc;

util::Cli make_cli(std::vector<const char*> args, bool allow_command = false) {
  args.insert(args.begin(), "prog");
  return {static_cast<int>(args.size()), args.data(), allow_command};
}

TEST(Cli, ParsesFlagsAndFallbacks) {
  const auto cli = make_cli({"--n=42", "--phi=0.5", "--verbose", "--name=x"});
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("phi", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get("name", ""), "x");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing2"));
}

TEST(Cli, CapturesSubcommand) {
  const auto cli = make_cli({"generate", "--n=8"}, /*allow_command=*/true);
  EXPECT_EQ(cli.command(), "generate");
  EXPECT_EQ(cli.get_int("n", 0), 8);
}

TEST(Cli, NoSubcommandLeavesVerbEmpty) {
  const auto cli = make_cli({"--n=8"}, /*allow_command=*/true);
  EXPECT_EQ(cli.command(), "");
}

TEST(Cli, PositionalWithoutCommandSupportThrows) {
  EXPECT_THROW(make_cli({"generate"}), util::contract_error);
}

TEST(Cli, HelpIsRecognisedEverywhere) {
  EXPECT_TRUE(make_cli({"--help"}).help_requested());
  EXPECT_TRUE(make_cli({"cluster", "-h"}, true).help_requested());
  EXPECT_FALSE(make_cli({"--n=1"}).help_requested());
}

TEST(Cli, RejectUnknownCatchesTypos) {
  const auto cli = make_cli({"--seed=3", "--seeed=7"});
  EXPECT_EQ(cli.get_uint64("seed", 0), 3u);
  // "seeed" was provided but never read or described.
  EXPECT_THROW(cli.reject_unknown(), util::contract_error);
}

TEST(Cli, RejectUnknownPassesWhenAllFlagsAreRead) {
  const auto cli = make_cli({"--seed=3", "--json=o.json"});
  EXPECT_EQ(cli.get_uint64("seed", 0), 3u);
  EXPECT_TRUE(cli.has("json"));
  EXPECT_NO_THROW(cli.reject_unknown());
}

TEST(Cli, DescribeMarksKnownAndPrintsHelp) {
  auto cli = make_cli({"--out=g.dgcg"});
  cli.describe("out", "graph.dgcg", "output file");
  cli.describe("quiet", "", "suppress progress output");
  EXPECT_NO_THROW(cli.reject_unknown());
  std::ostringstream help;
  cli.print_help(help);
  EXPECT_NE(help.str().find("--out=graph.dgcg"), std::string::npos);
  EXPECT_NE(help.str().find("suppress progress"), std::string::npos);
}

TEST(Cli, NegativeUint64Throws) {
  const auto cli = make_cli({"--seed=-1"});
  EXPECT_THROW((void)cli.get_uint64("seed", 0), util::contract_error);
}

}  // namespace
