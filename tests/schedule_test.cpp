// Tests for the schedule-ahead window subsystem (matching/schedule.hpp):
// packed schedules reproduce the generator's draws verbatim; the
// windowed executor run_process_windowed is bit-identical to the
// per-round driver across window sizes, stripe widths, storage modes,
// SIMD toggles and thread pools; the structural pre-pass filters
// both-zero pairs exactly and is the identity on saturated dense
// states; windows close at checkpoint cadence and stop rounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"
#include "matching/protocol.hpp"
#include "matching/schedule.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dgc;
using graph::NodeId;

/// A weighted graph with genuinely varied weights (λ != 1/2 on most
/// edges), built over a random-regular topology.
graph::Graph make_weighted(NodeId n, std::size_t degree, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto plain = graph::random_regular(n, degree, rng);
  std::vector<graph::WeightedEdge> edges;
  plain.for_each_edge([&](NodeId u, NodeId v) {
    edges.push_back({u, v, 0.25 + static_cast<double>((u * 7 + v * 13) % 8)});
  });
  return graph::Graph::from_weighted_edges(n, std::move(edges));
}

/// Seeds `count` rows of `state` the way the engines do: row i gets a
/// 1.0 in dimension i mod s.
void seed_state(matching::MultiLoadState& state, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    state.set(static_cast<NodeId>(i * 17 % state.num_nodes()), i % state.dimensions(),
              1.0);
  }
}

std::vector<double> dense_of(const matching::MultiLoadState& state) {
  std::vector<double> out;
  state.snapshot_dense(out);
  return out;
}

// ---------------------------------------------------------------------------
// ScheduleBuilder: the packed CSR is the generator's draw stream.

TEST(ScheduleBuild, PacksTheGeneratorsDrawsVerbatim) {
  util::Rng rng(11);
  const auto g = graph::random_regular(128, 6, rng);
  const std::size_t window = 7;
  const std::size_t first_round = 5;

  // Reference stream: the same seed, drawn round by round.
  matching::MatchingGenerator reference(g, 42);
  reference.skip_rounds(first_round);
  std::vector<std::vector<std::pair<NodeId, NodeId>>> drawn;
  matching::Matching m;
  for (std::size_t w = 0; w < window; ++w) {
    reference.next(m);
    drawn.push_back(m.edges);
  }

  matching::MatchingGenerator generator(g, 42);
  generator.skip_rounds(first_round);
  matching::RoundSchedule sched;
  matching::ScheduleBuilder builder;
  std::vector<std::size_t> seen_rounds;
  builder.build(generator, first_round, window, nullptr, sched,
                [&](std::size_t t, const matching::Matching& round) {
                  seen_rounds.push_back(t);
                  EXPECT_EQ(round.edges, drawn[t - first_round - 1]);
                });

  EXPECT_EQ(sched.first_round, first_round);
  EXPECT_EQ(sched.rounds(), window);
  ASSERT_EQ(sched.offsets.size(), window + 1);
  EXPECT_TRUE(sched.lambda.empty());  // unweighted: λ = 1/2 implied
  ASSERT_EQ(seen_rounds.size(), window);
  for (std::size_t w = 0; w < window; ++w) {
    EXPECT_EQ(seen_rounds[w], first_round + w + 1);
    EXPECT_EQ(sched.matched[w], drawn[w].size());
    ASSERT_EQ(sched.offsets[w + 1] - sched.offsets[w], drawn[w].size());
    for (std::size_t i = 0; i < drawn[w].size(); ++i) {
      const std::size_t p = sched.offsets[w] + i;
      EXPECT_EQ(sched.pairs[2 * p], drawn[w][i].first);
      EXPECT_EQ(sched.pairs[2 * p + 1], drawn[w][i].second);
    }
  }
}

TEST(ScheduleBuild, WeightedLambdaMatchesAveragePairExpression) {
  const auto g = make_weighted(96, 4, 3);
  matching::MatchingGenerator generator(g, 9);
  matching::RoundSchedule sched;
  matching::ScheduleBuilder builder;
  builder.build(generator, 0, 5, &g, sched);

  ASSERT_EQ(sched.lambda.size(), sched.pair_count());
  ASSERT_GT(sched.pair_count(), 0u);
  const double two_max_weight = 2.0 * g.max_weight();
  for (std::size_t p = 0; p < sched.pair_count(); ++p) {
    const NodeId u = sched.pairs[2 * p];
    const NodeId v = sched.pairs[2 * p + 1];
    // The exact expression average_pair evaluates — bitwise, not approx.
    EXPECT_EQ(sched.lambda[p], g.edge_weight(u, v) / two_max_weight);
  }
}

TEST(ScheduleBuild, RestoresGeneratorPartnerMaintenance) {
  util::Rng rng(4);
  const auto g = graph::random_regular(64, 4, rng);
  matching::RoundSchedule sched;
  matching::ScheduleBuilder builder;

  matching::MatchingGenerator generator(g, 1);
  ASSERT_FALSE(generator.edges_only());
  builder.build(generator, 0, 3, nullptr, sched);
  EXPECT_FALSE(generator.edges_only()) << "build must restore partner maintenance";

  matching::MatchingGenerator edges_only_gen(g, 1);
  edges_only_gen.set_edges_only(true);
  builder.build(edges_only_gen, 0, 3, nullptr, sched);
  EXPECT_TRUE(edges_only_gen.edges_only());
}

// ---------------------------------------------------------------------------
// The windowed executor: bit-identical to the per-round driver for
// every plan — window size, stripe width, storage mode, skip toggle,
// SIMD toggle, pool — including stats.

TEST(WindowedProcess, BitIdenticalToPerRoundAcrossPlans) {
  util::Rng rng(21);
  const NodeId n = 96;
  const std::size_t s = 5;
  const std::size_t rounds = 25;
  const auto g = graph::random_regular(n, 6, rng);

  for (const auto mode : {matching::SparseMode::kOff, matching::SparseMode::kAuto}) {
    for (const bool skip : {false, true}) {
      for (const bool simd : {false, true}) {
        // Per-round reference for this storage/skip/simd cell.
        matching::MatchingGenerator ref_gen(g, 7);
        matching::MultiLoadState ref_state(n, s, mode);
        ref_state.set_skip_zeros(skip);
        ref_state.set_simd(simd);
        seed_state(ref_state, s);
        const auto ref_stats = matching::run_process(ref_gen, ref_state, rounds);
        const auto ref_matrix = dense_of(ref_state);

        for (const std::size_t window :
             {std::size_t{1}, std::size_t{3}, std::size_t{8}, rounds}) {
          for (const std::size_t tile :
               {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
            SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                         " skip=" + std::to_string(skip) +
                         " simd=" + std::to_string(simd) +
                         " window=" + std::to_string(window) +
                         " tile=" + std::to_string(tile));
            matching::MatchingGenerator generator(g, 7);
            matching::MultiLoadState state(n, s, mode);
            state.set_skip_zeros(skip);
            state.set_simd(simd);
            seed_state(state, s);
            matching::WindowPlan plan;
            plan.window = window;
            plan.tile_cols = tile;
            const auto stats =
                matching::run_process_windowed(generator, state, 0, rounds, plan);
            EXPECT_EQ(stats.rounds, ref_stats.rounds);
            EXPECT_EQ(stats.total_matched_edges, ref_stats.total_matched_edges);
            EXPECT_EQ(stats.mean_matched_fraction, ref_stats.mean_matched_fraction);
            EXPECT_EQ(dense_of(state), ref_matrix);
          }
        }
      }
    }
  }
}

TEST(WindowedProcess, PooledStripeOwnershipIsBitIdentical) {
  util::Rng rng(33);
  const NodeId n = 128;
  const std::size_t s = 7;
  const std::size_t rounds = 30;
  const auto g = graph::random_regular(n, 8, rng);

  matching::MatchingGenerator ref_gen(g, 13);
  matching::MultiLoadState ref_state(n, s);
  seed_state(ref_state, s);
  matching::run_process(ref_gen, ref_state, rounds);
  const auto ref_matrix = dense_of(ref_state);

  util::ThreadPool pool(4);
  for (const std::size_t tile : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    SCOPED_TRACE("tile=" + std::to_string(tile));
    matching::MatchingGenerator generator(g, 13);
    matching::MultiLoadState state(n, s);
    seed_state(state, s);
    matching::WindowPlan plan;
    plan.window = 6;
    plan.tile_cols = tile;
    plan.pool = &pool;
    matching::run_process_windowed(generator, state, 0, rounds, plan);
    EXPECT_EQ(dense_of(state), ref_matrix);
  }
}

TEST(WindowedProcess, WeightedGraphBitIdentical) {
  const auto g = make_weighted(80, 6, 17);
  const std::size_t s = 4;
  const std::size_t rounds = 20;

  matching::MatchingGenerator ref_gen(g, 23);
  matching::MultiLoadState ref_state(g.num_nodes(), s);
  ref_state.set_weighted_graph(&g);
  seed_state(ref_state, s);
  matching::run_process(ref_gen, ref_state, rounds);
  const auto ref_matrix = dense_of(ref_state);

  for (const std::size_t window : {std::size_t{1}, std::size_t{4}, rounds}) {
    for (const std::size_t tile : {std::size_t{0}, std::size_t{2}}) {
      SCOPED_TRACE("window=" + std::to_string(window) + " tile=" + std::to_string(tile));
      matching::MatchingGenerator generator(g, 23);
      matching::MultiLoadState state(g.num_nodes(), s);
      state.set_weighted_graph(&g);
      seed_state(state, s);
      matching::WindowPlan plan;
      plan.window = window;
      plan.tile_cols = tile;
      plan.weighted_graph = &g;
      matching::run_process_windowed(generator, state, 0, rounds, plan);
      EXPECT_EQ(dense_of(state), ref_matrix);
    }
  }
}

TEST(WindowedProcess, ResumedRangeMatchesPerRoundRange) {
  // first_round > 0 (a resumed run): the schedule carries global round
  // numbers and the stats cover only the executed window.
  util::Rng rng(8);
  const NodeId n = 64;
  const std::size_t s = 3;
  const auto g = graph::random_regular(n, 4, rng);

  matching::MatchingGenerator ref_gen(g, 31);
  matching::MultiLoadState ref_state(n, s);
  seed_state(ref_state, s);
  const auto ref_stats = matching::run_process_range(ref_gen, ref_state, 0, 18);

  matching::MatchingGenerator generator(g, 31);
  matching::MultiLoadState state(n, s);
  seed_state(state, s);
  matching::WindowPlan plan;
  plan.window = 5;
  matching::run_process_windowed(generator, state, 0, 7, plan);
  const auto tail = matching::run_process_windowed(generator, state, 7, 18, plan);

  EXPECT_EQ(tail.rounds, 11u);
  EXPECT_EQ(ref_stats.rounds, 18u);
  EXPECT_EQ(dense_of(state), dense_of(ref_state));
}

TEST(WindowedProcess, WindowsCloseAtCadenceAndStopRound) {
  util::Rng rng(55);
  const NodeId n = 64;
  const std::size_t s = 3;
  const std::size_t rounds = 23;
  const auto g = graph::random_regular(n, 4, rng);

  // Cadence 5 with window 4: every multiple of 5 must appear as a window
  // boundary (on_window fires exactly where the per-round checkpoint
  // hook would save).
  {
    matching::MatchingGenerator generator(g, 3);
    matching::MultiLoadState state(n, s);
    seed_state(state, s);
    matching::WindowPlan plan;
    plan.window = 4;
    plan.checkpoint_every = 5;
    std::vector<std::size_t> boundaries;
    matching::run_process_windowed(generator, state, 0, rounds, plan, {},
                                   [&](std::size_t t) {
                                     boundaries.push_back(t);
                                     return true;
                                   });
    for (std::size_t t = 5; t <= rounds; t += 5) {
      EXPECT_NE(std::find(boundaries.begin(), boundaries.end(), t), boundaries.end())
          << "cadence round " << t << " not a window boundary";
    }
    EXPECT_EQ(boundaries.back(), rounds);
  }

  // stop_after_round 13 with window 8: the window must close at 13 and a
  // false return there stops the run with round 13 complete.
  {
    matching::MatchingGenerator generator(g, 3);
    matching::MultiLoadState state(n, s);
    seed_state(state, s);
    matching::WindowPlan plan;
    plan.window = 8;
    plan.stop_after_round = 13;
    const auto stats = matching::run_process_windowed(
        generator, state, 0, rounds, plan, {},
        [&](std::size_t t) { return t != 13; });
    EXPECT_EQ(stats.rounds, 13u);

    matching::MatchingGenerator ref_gen(g, 3);
    matching::MultiLoadState ref_state(n, s);
    seed_state(ref_state, s);
    matching::run_process(ref_gen, ref_state, 13);
    EXPECT_EQ(dense_of(state), dense_of(ref_state));
  }
}

// ---------------------------------------------------------------------------
// The structural pre-pass.

TEST(PrepareWindow, DropsBothZeroPairsAndTracksFlagsExactly) {
  util::Rng rng(66);
  const NodeId n = 128;
  const std::size_t s = 4;
  const std::size_t window = 6;
  const auto g = graph::random_regular(n, 6, rng);

  // One active row: almost every early pair is both-zero and must be
  // dropped; `matched` keeps the as-drawn counts regardless.
  matching::MultiLoadState state(n, s);
  state.set(3, 0, 1.0);
  state.update_mode();

  matching::MatchingGenerator generator(g, 19);
  matching::RoundSchedule sched;
  matching::ScheduleBuilder builder;
  builder.build(generator, 0, window, nullptr, sched);
  const auto as_drawn_matched = sched.matched;
  const std::size_t as_drawn_pairs = sched.pair_count();

  state.prepare_window(sched);
  EXPECT_EQ(sched.matched, as_drawn_matched);
  EXPECT_LT(sched.pair_count(), as_drawn_pairs)
      << "a 1-active-row state must drop both-zero pairs";

  // The flags prepare_window advanced must equal the per-round path's.
  matching::MatchingGenerator ref_gen(g, 19);
  matching::MultiLoadState ref_state(n, s);
  ref_state.set(3, 0, 1.0);
  matching::run_process(ref_gen, ref_state, window);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(state.row_active(v), ref_state.row_active(v)) << "node " << v;
  }

  // And replaying the filtered schedule reproduces the matrix bitwise.
  state.apply_window_stripe(sched, 0, s);
  EXPECT_EQ(dense_of(state), dense_of(ref_state));
}

TEST(PrepareWindow, SaturatedDenseStateIsIdentity) {
  util::Rng rng(77);
  const NodeId n = 64;
  const std::size_t s = 3;
  const auto g = graph::random_regular(n, 4, rng);

  matching::MultiLoadState state(n, s, matching::SparseMode::kOff);
  for (NodeId v = 0; v < n; ++v) state.set(v, v % s, 0.5);
  state.update_mode();
  ASSERT_EQ(state.active_rows(), n);

  matching::MatchingGenerator generator(g, 29);
  matching::RoundSchedule sched;
  matching::ScheduleBuilder builder;
  builder.build(generator, 0, 4, nullptr, sched);
  const auto pairs_before = sched.pairs;
  const auto offsets_before = sched.offsets;

  state.prepare_window(sched);
  // Every pair survives, flags are already saturated, and dense storage
  // rows are the node ids the schedule carries — exact identity.
  EXPECT_EQ(sched.pairs, pairs_before);
  EXPECT_EQ(sched.offsets, offsets_before);
}

}  // namespace
