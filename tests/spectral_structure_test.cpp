// Tests for the Lemma 4.2 / 4.3 structure diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/spectral_structure.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  double phi, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

TEST(SpectralStructure, EigenvalueLayoutForKClusters) {
  const auto planted = make_instance(3, 300, 12, 0.01, 1);
  const auto st = core::analyze_structure(planted);
  // k eigenvalues near 1, then a gap.
  EXPECT_NEAR(st.eigenvalues[0], 1.0, 1e-6);
  EXPECT_GT(st.lambda_k, 0.9);
  EXPECT_LT(st.lambda_k1, st.lambda_k);
  EXPECT_GT(st.lambda_k - st.lambda_k1, 0.05);
}

TEST(SpectralStructure, UpsilonGrowsAsCutShrinks) {
  const auto loose = make_instance(2, 250, 12, 0.08, 2);
  const auto tight = make_instance(2, 250, 12, 0.01, 3);
  const auto st_loose = core::analyze_structure(loose);
  const auto st_tight = core::analyze_structure(tight);
  EXPECT_GT(st_tight.upsilon, 2.0 * st_loose.upsilon);
}

TEST(SpectralStructure, ChiHatIsOrthonormal) {
  const auto planted = make_instance(4, 200, 10, 0.02, 4);
  const auto st = core::analyze_structure(planted);
  ASSERT_EQ(st.chi_hat.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(linalg::dot(st.chi_hat[i], st.chi_hat[j]), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SpectralStructure, ChiHatIsConstantOnClusters) {
  const auto planted = make_instance(3, 200, 10, 0.01, 5);
  const auto st = core::analyze_structure(planted);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      const auto members = planted.cluster(c);
      const double first = st.chi_hat[i][members[0]];
      for (const auto v : members) {
        EXPECT_NEAR(st.chi_hat[i][v], first, 1e-9);
      }
    }
  }
}

TEST(SpectralStructure, ChiHatErrorsShrinkWithUpsilon) {
  // Lemma 4.2: ||chi_hat_i - f_i|| = O(k sqrt(k / Upsilon)).
  const auto loose = make_instance(2, 250, 12, 0.08, 6);
  const auto tight = make_instance(2, 250, 12, 0.005, 7);
  const auto st_loose = core::analyze_structure(loose);
  const auto st_tight = core::analyze_structure(tight);
  double worst_loose = 0.0;
  double worst_tight = 0.0;
  for (const double e : st_loose.chi_hat_errors) worst_loose = std::max(worst_loose, e);
  for (const double e : st_tight.chi_hat_errors) worst_tight = std::max(worst_tight, e);
  EXPECT_LT(worst_tight, worst_loose);
  EXPECT_LT(worst_tight, st_tight.error_bound + 1e-9);
}

TEST(SpectralStructure, AlphaSumMatchesTotalError) {
  // sum_v alpha_v^2 = sum_i ||f_i - chi_hat_i||^2 by definition.
  const auto planted = make_instance(2, 200, 10, 0.02, 8);
  const auto st = core::analyze_structure(planted);
  double alpha_sq = 0.0;
  for (const double a : st.alpha) alpha_sq += a * a;
  double err_sq = 0.0;
  for (const double e : st.chi_hat_errors) err_sq += e * e;
  EXPECT_NEAR(alpha_sq, err_sq, 1e-9);
}

TEST(SpectralStructure, MostNodesAreGood) {
  const auto planted = make_instance(4, 250, 14, 0.01, 9);
  const auto st = core::analyze_structure(planted);
  EXPECT_GT(st.num_good(), planted.graph.num_nodes() * 9 / 10);
}

TEST(SpectralStructure, DisconnectedClustersGiveInfiniteUpsilon) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {100, 100};
  spec.degree = 8;
  spec.inter_cluster_swaps = 0;
  util::Rng rng(10);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto st = core::analyze_structure(planted);
  EXPECT_TRUE(std::isinf(st.upsilon));
  EXPECT_NEAR(st.lambda_k, 1.0, 1e-8);  // two components -> eigenvalue 1 twice
  // With a perfectly clustered graph the indicators *are* eigenvectors.
  for (const double e : st.chi_hat_errors) EXPECT_LT(e, 1e-5);
}

}  // namespace
