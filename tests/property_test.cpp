// Cross-cutting property tests: algebraic identities, invariances, and
// statistical laws checked over parameter sweeps (TEST_P).  These are
// the "does the system obey its own math" suite, complementing the
// per-module unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "core/clusterer.hpp"
#include "core/distributed_clusterer.hpp"
#include "core/seeding.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/tridiag.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/walk_matrix.hpp"
#include "matching/gossip.hpp"
#include "matching/process.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;
using graph::NodeId;

// ---------------------------------------------------------------------
// Full pipeline over a (k, phi, rule) grid.
// ---------------------------------------------------------------------
class PipelineGrid
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double, core::QueryRule>> {
};

TEST_P(PipelineGrid, RecoversPlantedPartition) {
  const auto [k, phi, rule] = GetParam();
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, 250);
  spec.degree = 14;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
  util::Rng rng(5 * k + static_cast<std::uint64_t>(phi * 1000));
  const auto planted = graph::clustered_regular(spec, rng);

  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k);
  config.k_hint = k;
  config.rounds_multiplier = 2.0;
  config.query_rule = rule;
  config.seed = 1234 + k;
  const auto result = core::Clusterer(planted.graph, config).run();
  const double rate =
      metrics::misclassification_rate(planted.membership, k, result.labels);
  EXPECT_LT(rate, 0.08) << "k=" << k << " phi=" << phi;
}

INSTANTIATE_TEST_SUITE_P(
    KPhiRule, PipelineGrid,
    ::testing::Combine(::testing::Values(2u, 3u, 4u), ::testing::Values(0.01, 0.04),
                       ::testing::Values(core::QueryRule::kPaperMinId,
                                         core::QueryRule::kArgmax)));

// ---------------------------------------------------------------------
// Engine equivalence under protocol variants.
// ---------------------------------------------------------------------
class EngineVariantEquivalence : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(EngineVariantEquivalence, DenseEqualsDistributed) {
  const auto [padded, biased] = GetParam();
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {120, 120};
  spec.degree = 10;
  spec.inter_cluster_swaps = 10;
  util::Rng rng(17);
  auto planted = graph::almost_regular_clusters(spec, 0.1, rng);

  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 50;
  config.seed = 77;
  config.query_rule = core::QueryRule::kArgmax;
  if (padded) config.protocol.virtual_degree = planted.graph.max_degree();
  if (biased) {
    config.protocol.virtual_degree = planted.graph.max_degree();
    config.protocol.degree_biased_activation = true;
  }
  const auto dense = core::Clusterer(planted.graph, config).run();
  const auto distributed = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_EQ(dense.labels, distributed.result.labels);
}

INSTANTIATE_TEST_SUITE_P(ProtocolVariants, EngineVariantEquivalence,
                         ::testing::Values(std::make_tuple(false, false),
                                           std::make_tuple(true, false),
                                           std::make_tuple(true, true)));

// ---------------------------------------------------------------------
// Walk operator identities.
// ---------------------------------------------------------------------
class WalkOperatorLaws : public ::testing::TestWithParam<std::tuple<NodeId, std::size_t>> {};

TEST_P(WalkOperatorLaws, RowStochasticRowsSumToOne) {
  const auto [n, d] = GetParam();
  util::Rng rng(3 + n);
  const auto g = graph::random_regular(n, d, rng);
  const linalg::WalkOperator op(g);
  std::vector<double> ones(n, 1.0);
  std::vector<double> out(n);
  op.apply_row_stochastic(ones, out);
  for (const double x : out) EXPECT_NEAR(x, 1.0, 1e-12);
}

TEST_P(WalkOperatorLaws, NormalizedOperatorIsSymmetric) {
  const auto [n, d] = GetParam();
  util::Rng rng(5 + n);
  const auto g = graph::random_regular(n, d, rng);
  const linalg::WalkOperator op(g);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (auto& v : x) v = rng.next_double() - 0.5;
  for (auto& v : y) v = rng.next_double() - 0.5;
  std::vector<double> nx(n);
  std::vector<double> ny(n);
  op.apply_normalized(x, nx);
  op.apply_normalized(y, ny);
  EXPECT_NEAR(linalg::dot(nx, y), linalg::dot(x, ny), 1e-9);
}

TEST_P(WalkOperatorLaws, UniformIsLazyWalkFixedPoint) {
  const auto [n, d] = GetParam();
  util::Rng rng(7 + n);
  const auto g = graph::random_regular(n, d, rng);
  const linalg::WalkOperator op(g);
  std::vector<double> uniform(n, 1.0 / n);
  std::vector<double> out(n);
  op.apply_lazy_walk(uniform, out, op.d_bar() / 4.0);
  for (std::size_t v = 0; v < n; ++v) EXPECT_NEAR(out[v], uniform[v], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WalkOperatorLaws,
                         ::testing::Values(std::make_tuple(32u, 4u),
                                           std::make_tuple(100u, 6u),
                                           std::make_tuple(256u, 16u)));

// ---------------------------------------------------------------------
// Metric invariances over random labelings.
// ---------------------------------------------------------------------
class MetricLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricLaws, AriAndNmiAreSymmetric) {
  util::Rng rng(GetParam());
  std::vector<std::uint32_t> a(200);
  std::vector<std::uint32_t> b(200);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.next_below(4));
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.next_below(3));
  EXPECT_NEAR(metrics::adjusted_rand_index(a, b), metrics::adjusted_rand_index(b, a),
              1e-12);
  EXPECT_NEAR(metrics::normalized_mutual_information(a, b),
              metrics::normalized_mutual_information(b, a), 1e-12);
}

TEST_P(MetricLaws, SelfComparisonIsPerfect) {
  util::Rng rng(GetParam() * 31 + 1);
  std::vector<std::uint32_t> a(150);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.next_below(5));
  EXPECT_NEAR(metrics::adjusted_rand_index(a, a), 1.0, 1e-12);
  EXPECT_NEAR(metrics::normalized_mutual_information(a, a), 1.0, 1e-12);
  EXPECT_EQ(metrics::misclassified_nodes(a, 5, a, 5), 0u);
}

TEST_P(MetricLaws, MisclassificationInvariantUnderLabelPermutation) {
  util::Rng rng(GetParam() * 17 + 3);
  const std::uint32_t k = 4;
  std::vector<std::uint32_t> truth(120);
  std::vector<std::uint32_t> predicted(120);
  for (auto& x : truth) x = static_cast<std::uint32_t>(rng.next_below(k));
  for (auto& x : predicted) x = static_cast<std::uint32_t>(rng.next_below(k));
  const auto base = metrics::misclassified_nodes(truth, k, predicted, k);
  // Apply a random permutation to the predicted labels.
  std::vector<std::uint32_t> perm{0, 1, 2, 3};
  util::shuffle(perm.begin(), perm.end(), rng);
  std::vector<std::uint32_t> permuted(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) permuted[i] = perm[predicted[i]];
  EXPECT_EQ(metrics::misclassified_nodes(truth, k, permuted, k), base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricLaws, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------
// IO round-trips across graph families and both formats.
// ---------------------------------------------------------------------
class IoRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundtrip, EdgeListAndMetisPreserveTheGraph) {
  util::Rng rng(23 + static_cast<std::uint64_t>(GetParam()));
  graph::Graph g;
  switch (GetParam()) {
    case 0:
      g = graph::random_regular(80, 6, rng);
      break;
    case 1: {
      graph::SbmSpec spec;
      spec.nodes_per_cluster = 40;
      spec.clusters = 3;
      spec.p_in = 0.2;
      spec.p_out = 0.01;
      g = graph::stochastic_block_model(spec, rng).graph;
      break;
    }
    case 2:
      g = graph::ring_of_cliques(5, 6).graph;
      break;
    default:
      g = graph::star(30);
  }
  for (const bool metis : {false, true}) {
    std::stringstream buffer;
    if (metis) {
      graph::write_metis(buffer, g);
    } else {
      graph::write_edge_list(buffer, g);
    }
    const graph::Graph back =
        metis ? graph::read_metis(buffer) : graph::read_edge_list(buffer);
    ASSERT_EQ(back.num_nodes(), g.num_nodes());
    ASSERT_EQ(back.num_edges(), g.num_edges());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto na = g.neighbors(v);
      const auto nb = back.neighbors(v);
      ASSERT_EQ(na.size(), nb.size());
      for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, IoRoundtrip, ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------
// Seeding concentration across beta values.
// ---------------------------------------------------------------------
class SeedingLaw : public ::testing::TestWithParam<double> {};

TEST_P(SeedingLaw, SeedCountConcentratesAroundTrials) {
  const double beta = GetParam();
  const NodeId n = 3000;
  const std::size_t trials = core::default_seeding_trials(beta);
  double total = 0.0;
  const int runs = 150;
  for (int run = 0; run < runs; ++run) {
    total += static_cast<double>(core::run_seeding(n, trials, 40000 + static_cast<std::uint64_t>(run)).size());
  }
  const double mean = total / runs;
  // E[s] = n(1-(1-1/n)^trials) ~ trials for trials << n.
  EXPECT_NEAR(mean, static_cast<double>(trials), 0.15 * static_cast<double>(trials) + 1.5);
}

INSTANTIATE_TEST_SUITE_P(Betas, SeedingLaw, ::testing::Values(0.5, 0.25, 0.125));

// ---------------------------------------------------------------------
// Lanczos laws over random regular graphs.
// ---------------------------------------------------------------------
class LanczosLaws : public ::testing::TestWithParam<std::tuple<NodeId, std::size_t>> {};

TEST_P(LanczosLaws, TopPairIsOneWithConstantVector) {
  const auto [n, d] = GetParam();
  util::Rng rng(29 + n);
  const auto g = graph::random_regular(n, d, rng);
  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 2;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      n, [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
      options);
  EXPECT_NEAR(pairs.values[0], 1.0, 1e-7);
  EXPECT_LT(pairs.values[1], 1.0 - 1e-4);  // connected: simple top eigenvalue
  const double c = pairs.vectors[0][0];
  for (const double entry : pairs.vectors[0]) EXPECT_NEAR(entry, c, 1e-5);
}

TEST_P(LanczosLaws, EigenvaluesAreSortedAndBounded) {
  const auto [n, d] = GetParam();
  util::Rng rng(31 + n);
  const auto g = graph::random_regular(n, d, rng);
  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 4;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      n, [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
      options);
  for (std::size_t i = 0; i + 1 < pairs.values.size(); ++i) {
    EXPECT_GE(pairs.values[i], pairs.values[i + 1] - 1e-12);
  }
  for (const double lambda : pairs.values) {
    EXPECT_LE(lambda, 1.0 + 1e-9);
    EXPECT_GE(lambda, -1.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LanczosLaws,
                         ::testing::Values(std::make_tuple(64u, 6u),
                                           std::make_tuple(128u, 8u),
                                           std::make_tuple(300u, 10u)));

// ---------------------------------------------------------------------
// Tridiagonal solver laws.
// ---------------------------------------------------------------------
class TridiagLaws : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TridiagLaws, EigenvalueSumEqualsTrace) {
  const std::size_t n = GetParam();
  util::Rng rng(37 + n);
  std::vector<double> diag(n);
  std::vector<double> off(n - 1);
  double trace = 0.0;
  for (auto& x : diag) {
    x = rng.next_double() * 2 - 1;
    trace += x;
  }
  for (auto& x : off) x = rng.next_double() - 0.5;
  const auto eig = linalg::tridiagonal_eigen(diag, off);
  double sum = 0.0;
  for (const double v : eig.values) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST_P(TridiagLaws, EigenvectorsAreOrthonormal) {
  const std::size_t n = GetParam();
  util::Rng rng(41 + n);
  std::vector<double> diag(n);
  std::vector<double> off(n - 1);
  for (auto& x : diag) x = rng.next_double();
  for (auto& x : off) x = rng.next_double();
  const auto eig = linalg::tridiagonal_eigen(diag, off);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += eig.vectors[i * n + a] * eig.vectors[i * n + b];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9) << "pair " << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagLaws, ::testing::Values(2u, 5u, 12u, 25u));

// ---------------------------------------------------------------------
// Conservation across all load-moving processes.
// ---------------------------------------------------------------------
class ConservationLaw : public ::testing::TestWithParam<std::tuple<NodeId, std::size_t>> {};

TEST_P(ConservationLaw, EveryProcessConservesMass) {
  const auto [n, dims] = GetParam();
  util::Rng rng(43 + n);
  const auto g = graph::random_regular(n, 8, rng);

  matching::MultiLoadState state(n, dims);
  std::vector<double> totals(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(n));
    const double mass = 1.0 + rng.next_double();
    state.set(v, i, state.at(v, i) + mass);
  }
  for (std::size_t i = 0; i < dims; ++i) totals[i] = state.total(i);

  matching::MatchingGenerator generator(g, 47);
  matching::run_process(generator, state, 120);
  matching::AsyncGossip gossip(g, 53);
  gossip.run(state, 1000);

  for (std::size_t i = 0; i < dims; ++i) {
    EXPECT_NEAR(state.total(i), totals[i], 1e-9) << "dimension " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConservationLaw,
                         ::testing::Values(std::make_tuple(50u, 1u),
                                           std::make_tuple(100u, 4u),
                                           std::make_tuple(200u, 16u)));

// ---------------------------------------------------------------------
// Planted-instance structural laws.
// ---------------------------------------------------------------------
class PlantedLaw : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PlantedLaw, RhoTracksSwapBudget) {
  const std::uint32_t k = GetParam();
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, 150);
  spec.degree = 12;
  spec.inter_cluster_swaps = 10;
  util::Rng rng(59 + k);
  const auto sparse = graph::clustered_regular(spec, rng);
  spec.inter_cluster_swaps = 60;
  const auto dense = graph::clustered_regular(spec, rng);
  EXPECT_LT(graph::rho(sparse.graph, sparse.membership, k),
            graph::rho(dense.graph, dense.membership, k));
}

INSTANTIATE_TEST_SUITE_P(Ks, PlantedLaw, ::testing::Values(2u, 3u, 5u));

}  // namespace
