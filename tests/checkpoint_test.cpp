// Tests for the checkpoint/restart subsystem (core/checkpoint.hpp):
// the round-boundary snapshot/restore bit-identity property across
// engines, seeds and hot-path knobs; the .dgcc format's corruption,
// truncation, version and fingerprint defences; and verify_checkpoint's
// coin-replay fault detection.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/clusterer.hpp"
#include "core/distributed_clusterer.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"
#include "matching/protocol.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, 100);
  spec.degree = 8;
  spec.inter_cluster_swaps = 12;
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

core::ClusterConfig base_config(std::uint32_t k, std::uint64_t seed) {
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k + 1);
  config.rounds = 24;
  config.seed = seed;
  return config;
}

/// Unique scratch path per call (tests run single-threaded per binary).
std::string scratch_path(const std::string& tag) {
  static int counter = 0;
  return testing::TempDir() + "dgc_ckpt_" + tag + "_" + std::to_string(counter++) +
         ".dgcc";
}

std::vector<char> read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_load_fails_with(const std::string& path, const std::string& needle) {
  try {
    (void)core::load_checkpoint_file(path);
    FAIL() << "expected load to reject " << path;
  } catch (const util::contract_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

/// Writes the round-0 checkpoint by hand: the initial matrix is public
/// knowledge (seed rows are 1.0, everything else 0) and prepare_run
/// re-derives the seeds — so round 0 needs no engine run at all.
std::string write_round0_checkpoint(const graph::Graph& g,
                                    const core::ClusterConfig& config,
                                    const std::string& tag) {
  core::ClusterResult derived;
  (void)core::prepare_run(g, config, derived);
  const std::size_t s = derived.seeds.size();
  core::Checkpoint cp;
  cp.fingerprint = core::checkpoint_fingerprint(g, config);
  cp.round = 0;
  cp.total_rounds = derived.rounds;
  cp.num_nodes = g.num_nodes();
  cp.dimensions = s;
  cp.matrix.assign(static_cast<std::size_t>(g.num_nodes()) * s, 0.0);
  for (std::size_t i = 0; i < s; ++i) cp.matrix[derived.seeds[i] * s + i] = 1.0;
  const std::string path = scratch_path(tag);
  core::save_checkpoint_file(path, cp);
  return path;
}

/// Runs `kind` until `stop_round` completes, checkpointing there.
std::string write_engine_checkpoint(core::EngineKind kind, const graph::Graph& g,
                                    core::ClusterConfig config, std::size_t stop_round,
                                    const std::string& tag) {
  const std::string path = scratch_path(tag);
  config.checkpoint.path = path;
  config.checkpoint.stop_after_round = stop_round;
  const auto result = core::make_engine(kind, g, config)->cluster();
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.checkpoint_round, stop_round);
  return path;
}

core::ClusterResult resume_from(core::EngineKind kind, const graph::Graph& g,
                                core::ClusterConfig config, const std::string& path) {
  config.checkpoint.path = path;
  config.checkpoint.resume = true;
  return core::make_engine(kind, g, config)->cluster();
}

// ---------------------------------------------------------------------------
// The property grid: snapshot at r, restore, finish — bit-identical
// labels to the uninterrupted run, for every engine, seed, hot-path
// combination and checkpoint round r in {0, 1, T/2, T-1}.

TEST(Checkpoint, SnapshotRestoreBitIdentityGrid) {
  const std::array<core::EngineKind, 3> kinds = {core::EngineKind::kDense,
                                                 core::EngineKind::kMessagePassing,
                                                 core::EngineKind::kSharded};
  for (const std::uint32_t k : {2u, 3u}) {
    const auto planted = make_instance(k, 7 + k);
    for (const std::uint64_t seed : {1ull, 99ull}) {
      for (const bool fast_path : {false, true}) {
        core::ClusterConfig config = base_config(k, seed);
        config.hot_path.skip_zero_rows = fast_path;
        config.hot_path.parallel_coins = fast_path;
        const auto baseline = core::Clusterer(planted.graph, config).run();
        ASSERT_FALSE(baseline.interrupted);

        for (const core::EngineKind kind : kinds) {
          const std::size_t T = baseline.rounds;
          for (const std::size_t r : {std::size_t{0}, std::size_t{1}, T / 2, T - 1}) {
            SCOPED_TRACE("k=" + std::to_string(k) + " seed=" + std::to_string(seed) +
                         " fast=" + std::to_string(fast_path) +
                         " engine=" + std::to_string(static_cast<int>(kind)) +
                         " r=" + std::to_string(r));
            const std::string path =
                r == 0 ? write_round0_checkpoint(planted.graph, config, "grid")
                       : write_engine_checkpoint(kind, planted.graph, config, r, "grid");
            const auto resumed = resume_from(kind, planted.graph, config, path);
            EXPECT_TRUE(resumed.resumed);
            EXPECT_EQ(resumed.resume_round, r);
            EXPECT_FALSE(resumed.interrupted);
            EXPECT_EQ(resumed.labels, baseline.labels);
            std::remove(path.c_str());
          }
        }
      }
    }
  }
}

// A checkpoint is engine-neutral: written by one engine, resumed by
// another, still bit-identical to the uninterrupted run.
TEST(Checkpoint, CrossEngineResume) {
  const auto planted = make_instance(3, 5);
  const core::ClusterConfig config = base_config(3, 21);
  const auto baseline = core::Clusterer(planted.graph, config).run();
  const std::array<core::EngineKind, 3> kinds = {core::EngineKind::kDense,
                                                 core::EngineKind::kMessagePassing,
                                                 core::EngineKind::kSharded};
  for (const core::EngineKind writer : kinds) {
    const std::string path =
        write_engine_checkpoint(writer, planted.graph, config, 9, "cross");
    for (const core::EngineKind reader : kinds) {
      SCOPED_TRACE("writer=" + std::to_string(static_cast<int>(writer)) +
                   " reader=" + std::to_string(static_cast<int>(reader)));
      const auto resumed = resume_from(reader, planted.graph, config, path);
      EXPECT_TRUE(resumed.resumed);
      EXPECT_EQ(resumed.labels, baseline.labels);
    }
    std::remove(path.c_str());
  }
}

// The schedule-ahead window never moves where a checkpoint can land:
// windows close early at stop rounds, so a run may be interrupted at
// ANY round — mid-window, at a window boundary, or at T−1 with a
// partial final window — and the resumed run (which re-windows from the
// resume round, a different window phase than the baseline's) stays bit-
// identical, on every engine.  Window 5 against rounds 24 exercises
// round 3 (mid-window), round 10 (a window boundary of the baseline's
// phase) and round 23 (inside the last partial window).
TEST(Checkpoint, ResumeMidWindowBitIdentityGrid) {
  const std::array<core::EngineKind, 3> kinds = {core::EngineKind::kDense,
                                                 core::EngineKind::kMessagePassing,
                                                 core::EngineKind::kSharded};
  const auto planted = make_instance(3, 9);
  core::ClusterConfig config = base_config(3, 17);
  config.hot_path.schedule_window = 5;
  config.hot_path.tile_cols = 2;
  const auto baseline = core::Clusterer(planted.graph, config).run();
  ASSERT_FALSE(baseline.interrupted);
  const std::size_t T = baseline.rounds;

  for (const core::EngineKind kind : kinds) {
    for (const std::size_t r : {std::size_t{0}, std::size_t{3}, std::size_t{10}, T - 1}) {
      SCOPED_TRACE("engine=" + std::to_string(static_cast<int>(kind)) +
                   " r=" + std::to_string(r));
      const std::string path =
          r == 0 ? write_round0_checkpoint(planted.graph, config, "midwin")
                 : write_engine_checkpoint(kind, planted.graph, config, r, "midwin");
      const auto resumed = resume_from(kind, planted.graph, config, path);
      EXPECT_TRUE(resumed.resumed);
      EXPECT_EQ(resumed.resume_round, r);
      EXPECT_FALSE(resumed.interrupted);
      EXPECT_EQ(resumed.labels, baseline.labels);
      std::remove(path.c_str());
    }
  }
}

// Resume may legally change the scheduling knobs — now including the
// window and stripe geometry: they are excluded from the fingerprint
// and never change computed values.
TEST(Checkpoint, ResumeWithDifferentHotPathKnobs) {
  const auto planted = make_instance(2, 31);
  core::ClusterConfig config = base_config(2, 8);
  config.hot_path.skip_zero_rows = true;
  config.hot_path.parallel_coins = true;
  config.hot_path.schedule_window = 1;
  const auto baseline = core::Clusterer(planted.graph, config).run();
  const std::string path = write_engine_checkpoint(core::EngineKind::kDense,
                                                   planted.graph, config, 11, "knobs");
  core::ClusterConfig other = config;
  other.hot_path.skip_zero_rows = false;
  other.hot_path.parallel_coins = false;
  other.hot_path.schedule_window = 6;
  other.hot_path.tile_cols = 1;
  const auto resumed = resume_from(core::EngineKind::kDense, planted.graph, other, path);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.labels, baseline.labels);
  std::remove(path.c_str());
}

// A checkpoint is storage-neutral: a run checkpointed while the load
// matrix is still in sparse packed form may resume dense (and vice
// versa), because save_checkpoint always snapshots the dense image and
// load_matrix re-derives the representation from the resumed config.
// The stop round (5 of 24) is early enough that a forced-sparse run is
// still below the densify crossover when it writes the file.
TEST(Checkpoint, ResumeAcrossSparseModeBoundary) {
  const auto planted = make_instance(2, 47);
  core::ClusterConfig config = base_config(2, 14);
  config.hot_path.sparse_mode = matching::SparseMode::kOff;
  const auto baseline = core::Clusterer(planted.graph, config).run();

  const std::array<matching::SparseMode, 3> modes = {
      matching::SparseMode::kOff, matching::SparseMode::kOn,
      matching::SparseMode::kAuto};
  for (const matching::SparseMode writer_mode : modes) {
    core::ClusterConfig writer = config;
    writer.hot_path.sparse_mode = writer_mode;
    const std::string path = write_engine_checkpoint(core::EngineKind::kDense,
                                                     planted.graph, writer, 5, "mode");
    for (const matching::SparseMode reader_mode : modes) {
      SCOPED_TRACE("writer=" + std::to_string(static_cast<int>(writer_mode)) +
                   " reader=" + std::to_string(static_cast<int>(reader_mode)));
      core::ClusterConfig reader = config;
      reader.hot_path.sparse_mode = reader_mode;
      const auto resumed =
          resume_from(core::EngineKind::kDense, planted.graph, reader, path);
      EXPECT_TRUE(resumed.resumed);
      EXPECT_EQ(resumed.resume_round, 5u);
      EXPECT_EQ(resumed.labels, baseline.labels);
    }
    std::remove(path.c_str());
  }
}

// --checkpoint-every leaves a resumable file behind even when the run
// finishes; resuming it replays only the tail and agrees.
TEST(Checkpoint, PeriodicCadenceCheckpointsAndResumes) {
  const auto planted = make_instance(2, 13);
  core::ClusterConfig config = base_config(2, 3);
  const std::string path = scratch_path("cadence");
  config.checkpoint.path = path;
  config.checkpoint.every = 5;
  const auto full = core::Clusterer(planted.graph, config).run();
  EXPECT_FALSE(full.interrupted);
  // Saves fire at completed rounds 5, 10, 15, 20 (24 rounds total; the
  // final round never saves — the run is finishing anyway).
  EXPECT_EQ(full.checkpoint_round, 20u);
  const auto resumed =
      resume_from(core::EngineKind::kDense, planted.graph, config, path);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resume_round, 20u);
  EXPECT_EQ(resumed.labels, full.labels);
  std::remove(path.c_str());
}

// --resume with no file yet is a fresh start, not an error (the first
// run of a restart chain).
TEST(Checkpoint, ResumeWithMissingFileStartsFresh) {
  const auto planted = make_instance(2, 17);
  core::ClusterConfig config = base_config(2, 4);
  const auto baseline = core::Clusterer(planted.graph, config).run();
  const auto resumed = resume_from(core::EngineKind::kDense, planted.graph, config,
                                   scratch_path("missing"));
  EXPECT_FALSE(resumed.resumed);
  EXPECT_EQ(resumed.labels, baseline.labels);
}

// ---------------------------------------------------------------------------
// Generator fast-forward: the primitive resume is built on.

TEST(Checkpoint, SkipRoundsMatchesLiveGenerator) {
  const auto planted = make_instance(2, 23);
  const std::uint64_t seed = 77;
  matching::MatchingGenerator live(planted.graph, seed);
  for (int t = 0; t < 9; ++t) (void)live.next();
  matching::MatchingGenerator skipped(planted.graph, seed);
  skipped.skip_rounds(9);
  for (int t = 0; t < 3; ++t) {
    const auto a = live.next();
    const auto b = skipped.next();
    EXPECT_EQ(a.edges, b.edges) << "diverged at post-skip round " << t;
  }
}

// ---------------------------------------------------------------------------
// Format defences: corruption, truncation, version, fingerprint.

class CheckpointFormat : public testing::Test {
 protected:
  void SetUp() override {
    planted_ = make_instance(2, 3);
    config_ = base_config(2, 12);
    path_ = write_engine_checkpoint(core::EngineKind::kDense, planted_.graph, config_,
                                    7, "format");
    bytes_ = read_file_bytes(path_);
    ASSERT_GT(bytes_.size(), 80u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  graph::PlantedGraph planted_;
  core::ClusterConfig config_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(CheckpointFormat, CleanFileLoadsAndMatchesShape) {
  const core::Checkpoint cp = core::load_checkpoint_file(path_);
  EXPECT_EQ(cp.round, 7u);
  EXPECT_EQ(cp.total_rounds, 24u);
  EXPECT_EQ(cp.num_nodes, planted_.graph.num_nodes());
  EXPECT_EQ(cp.matrix.size(), cp.num_nodes * cp.dimensions);
}

TEST_F(CheckpointFormat, CorruptMagicIsRejected) {
  bytes_[1] = 'X';
  write_file_bytes(path_, bytes_);
  expect_load_fails_with(path_, "bad magic");
}

TEST_F(CheckpointFormat, CorruptPayloadFailsCrc) {
  bytes_[bytes_.size() - 16] ^= 0x40;  // inside the payload, before the trailer
  write_file_bytes(path_, bytes_);
  expect_load_fails_with(path_, "CRC mismatch");
}

TEST_F(CheckpointFormat, CorruptTrailerFailsCrc) {
  bytes_.back() = static_cast<char>(bytes_.back() ^ 0x01);
  write_file_bytes(path_, bytes_);
  expect_load_fails_with(path_, "CRC mismatch");
}

TEST_F(CheckpointFormat, TruncatedHeaderIsRejected) {
  bytes_.resize(10);
  write_file_bytes(path_, bytes_);
  expect_load_fails_with(path_, "truncated checkpoint header");
}

TEST_F(CheckpointFormat, TruncatedPayloadIsRejected) {
  bytes_.resize(bytes_.size() - 9);
  write_file_bytes(path_, bytes_);
  expect_load_fails_with(path_, "truncated checkpoint");
}

TEST_F(CheckpointFormat, FutureVersionIsRejectedBeforeCrc) {
  // The version word sits after magic (4) + endian (4).  Bumping it
  // also breaks the CRC, so this asserts the validation *order*: a
  // v-next file must be reported as a version problem, not as corrupt.
  bytes_[8] = 2;
  write_file_bytes(path_, bytes_);
  expect_load_fails_with(path_, "unsupported checkpoint version 2");
}

TEST_F(CheckpointFormat, ForeignConfigFingerprintIsRejectedOnResume) {
  core::ClusterConfig other = config_;
  other.seed += 1;  // a value-affecting field
  other.checkpoint.path = path_;
  other.checkpoint.resume = true;
  EXPECT_THROW((void)core::Clusterer(planted_.graph, other).run(),
               util::contract_error);
  // The Engine-level loader agrees.
  const core::Clusterer engine(planted_.graph, other);
  EXPECT_THROW((void)engine.load_checkpoint(path_), util::contract_error);
}

TEST_F(CheckpointFormat, SaveOverExistingFileLeavesNoTempBehind) {
  // Overwriting goes through the temp-file + rename protocol; after a
  // successful save only the final file exists and it loads cleanly.
  const core::Checkpoint cp = core::load_checkpoint_file(path_);
  core::save_checkpoint_file(path_, cp);
  EXPECT_FALSE(std::ifstream(path_ + ".tmp").good());
  const core::Checkpoint again = core::load_checkpoint_file(path_);
  EXPECT_EQ(again.matrix, cp.matrix);
}

TEST(CheckpointFormat2, DenseAndSparseStreamRoundTrip) {
  // Sparse: few active rows.  Dense: every row active.  Both must
  // round-trip bit for bit, including -0.0.
  for (const bool dense : {false, true}) {
    core::Checkpoint cp;
    cp.fingerprint = 0xFEEDFACE;
    cp.round = 3;
    cp.total_rounds = 10;
    cp.num_nodes = 64;
    cp.dimensions = 4;
    cp.matrix.assign(64 * 4, 0.0);
    if (dense) {
      for (std::size_t i = 0; i < cp.matrix.size(); ++i) {
        cp.matrix[i] = 1.0 / static_cast<double>(i + 1);
      }
    } else {
      cp.matrix[5] = 0.25;
      cp.matrix[200] = -0.0;  // negative zero must survive sparsification
    }
    std::stringstream ss;
    core::write_checkpoint(ss, cp);
    const core::Checkpoint back = core::read_checkpoint(ss);
    ASSERT_EQ(back.matrix.size(), cp.matrix.size());
    for (std::size_t i = 0; i < cp.matrix.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.matrix[i]),
                std::bit_cast<std::uint64_t>(cp.matrix[i]))
          << "entry " << i << " dense=" << dense;
    }
    EXPECT_EQ(back.round, cp.round);
    EXPECT_EQ(back.fingerprint, cp.fingerprint);
  }
}

// ---------------------------------------------------------------------------
// verify_checkpoint: coin replay as fault detection.

TEST(CheckpointVerify, CleanCheckpointsVerifyOnAllEngines) {
  const auto planted = make_instance(2, 29);
  const core::ClusterConfig config = base_config(2, 6);
  for (const core::EngineKind kind :
       {core::EngineKind::kDense, core::EngineKind::kMessagePassing,
        core::EngineKind::kSharded}) {
    const std::string path =
        write_engine_checkpoint(kind, planted.graph, config, 13, "verify");
    const core::Checkpoint cp = core::load_checkpoint_file(path);
    const auto v = core::verify_checkpoint(planted.graph, config, cp);
    EXPECT_TRUE(v.ok) << v.error << " engine=" << static_cast<int>(kind);
    EXPECT_EQ(v.mismatches, 0u);
    std::remove(path.c_str());
  }
}

TEST(CheckpointVerify, SingleCorruptEntryIsPinpointed) {
  const auto planted = make_instance(2, 37);
  const core::ClusterConfig config = base_config(2, 9);
  const std::string path = write_engine_checkpoint(core::EngineKind::kDense,
                                                   planted.graph, config, 13, "pin");
  core::Checkpoint cp = core::load_checkpoint_file(path);
  // Corrupt one nonzero entry (a zero entry could collide with a
  // legitimately-zero replay value only if we flipped it to zero).
  std::size_t victim = 0;
  while (cp.matrix[victim] == 0.0) ++victim;
  const double original = cp.matrix[victim];
  cp.matrix[victim] = original * 1.0000001;
  const auto v = core::verify_checkpoint(planted.graph, config, cp);
  EXPECT_FALSE(v.ok);
  EXPECT_TRUE(v.error.empty()) << v.error;
  EXPECT_EQ(v.mismatches, 1u);
  EXPECT_EQ(v.node, victim / cp.dimensions);
  EXPECT_EQ(v.dimension, victim % cp.dimensions);
  EXPECT_EQ(v.expected, original);
  EXPECT_EQ(v.found, cp.matrix[victim]);
  std::remove(path.c_str());
}

TEST(CheckpointVerify, ForeignFingerprintIsAStructuralError) {
  const auto planted = make_instance(2, 41);
  const core::ClusterConfig config = base_config(2, 10);
  const std::string path = write_engine_checkpoint(core::EngineKind::kDense,
                                                   planted.graph, config, 5, "fp");
  const core::Checkpoint cp = core::load_checkpoint_file(path);
  core::ClusterConfig other = config;
  other.beta = 0.4;
  const auto v = core::verify_checkpoint(planted.graph, other, cp);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("fingerprint"), std::string::npos) << v.error;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Engine guard rails.

TEST(Checkpoint, LossyMessagePassingRunRefusesToCheckpoint) {
  const auto planted = make_instance(2, 43);
  core::ClusterConfig config = base_config(2, 2);
  config.checkpoint.path = scratch_path("lossy");
  config.checkpoint.stop_after_round = 3;
  const core::DistributedClusterer engine(planted.graph, config);
  EXPECT_THROW((void)engine.run(/*drop_probability=*/0.1), util::contract_error);
  // Lossless runs of the same engine checkpoint fine.
  const auto report = engine.run(0.0);
  EXPECT_TRUE(report.result.interrupted);
  std::remove(config.checkpoint.path.c_str());
}

// Restoring a matrix recomputes the activity flags exactly: an engine
// resumed with skipping on sees the same support a live run would.
TEST(Checkpoint, LoadMatrixRecomputesActivityFlags) {
  matching::MultiLoadState state(8, 2);
  state.set(3, 1, 0.5);
  state.set(6, 0, -0.0);
  std::vector<double> snapshot(state.values().begin(), state.values().end());
  matching::MultiLoadState restored(8, 2);
  restored.load_matrix(snapshot);
  EXPECT_EQ(restored.active_rows(), 2u);
  EXPECT_TRUE(restored.row_active(3));
  EXPECT_TRUE(restored.row_active(6));  // -0.0 has set bits: must stay active
  EXPECT_FALSE(restored.row_active(0));
}

}  // namespace
