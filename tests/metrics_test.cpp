// Tests for clustering metrics: compaction, permutation-optimal
// misclassification (vs brute force), ARI, NMI, modularity.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

TEST(Compact, RenumbersAndHandlesSentinel) {
  const std::vector<std::uint64_t> raw{900, 7, 900, metrics::kUnclustered, 7};
  const auto compacted = metrics::compact(raw);
  EXPECT_EQ(compacted.num_labels, 3u);
  EXPECT_EQ(compacted.labels[0], compacted.labels[2]);
  EXPECT_EQ(compacted.labels[1], compacted.labels[4]);
  EXPECT_NE(compacted.labels[0], compacted.labels[1]);
  EXPECT_EQ(compacted.labels[3], 2u);  // sentinel gets its own label
}

TEST(Confusion, CountsPairs) {
  const std::vector<std::uint32_t> truth{0, 0, 1, 1};
  const std::vector<std::uint32_t> pred{1, 1, 0, 1};
  const auto confusion = metrics::confusion_matrix(truth, 2, pred, 2);
  EXPECT_EQ(confusion[0 * 2 + 1], 2u);
  EXPECT_EQ(confusion[1 * 2 + 0], 1u);
  EXPECT_EQ(confusion[1 * 2 + 1], 1u);
  EXPECT_EQ(confusion[0 * 2 + 0], 0u);
}

TEST(Misclassified, PermutationInvariant) {
  const std::vector<std::uint32_t> truth{0, 0, 0, 1, 1, 1};
  const std::vector<std::uint32_t> swapped{1, 1, 1, 0, 0, 0};
  EXPECT_EQ(metrics::misclassified_nodes(truth, 2, swapped, 2), 0u);
}

TEST(Misclassified, CountsMinorityErrors) {
  const std::vector<std::uint32_t> truth{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::uint32_t> pred{0, 0, 0, 1, 1, 1, 1, 1};
  EXPECT_EQ(metrics::misclassified_nodes(truth, 2, pred, 2), 1u);
  EXPECT_NEAR(metrics::misclassification_rate(truth, 2, pred, 2), 0.125, 1e-12);
}

TEST(Misclassified, FewerPredictedLabelsCountsDeficit) {
  const std::vector<std::uint32_t> truth{0, 0, 1, 1, 2, 2};
  const std::vector<std::uint32_t> pred{0, 0, 1, 1, 1, 1};  // only 2 labels
  EXPECT_EQ(metrics::misclassified_nodes(truth, 3, pred, 2), 2u);
}

TEST(Misclassified, SentinelAlwaysCounts) {
  const std::vector<std::uint32_t> truth{0, 0, 1, 1};
  const std::vector<std::uint64_t> raw{5, 5, metrics::kUnclustered, 9};
  // 5 -> cluster 0 (2 right), 9 -> cluster 1 (1 right), sentinel wrong.
  EXPECT_EQ(metrics::misclassified_nodes(truth, 2, raw), 1u);
}

TEST(Misclassified, MatchesBruteForceOnRandomLabelings) {
  util::Rng rng(47);
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.next_below(3));
    const std::size_t n = 30;
    std::vector<std::uint32_t> truth(n);
    std::vector<std::uint32_t> pred(n);
    for (auto& t : truth) t = static_cast<std::uint32_t>(rng.next_below(k));
    for (auto& p : pred) p = static_cast<std::uint32_t>(rng.next_below(k));
    const auto fast = metrics::misclassified_nodes(truth, k, pred, k);
    // Brute force over all injective label maps sigma: truth -> pred.
    std::vector<std::uint32_t> perm(k);
    std::iota(perm.begin(), perm.end(), 0);
    std::uint64_t best = n;
    do {
      std::uint64_t errors = 0;
      for (std::size_t i = 0; i < n; ++i) errors += perm[truth[i]] != pred[i];
      best = std::min(best, errors);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(fast, best) << "trial " << trial;
  }
}

TEST(Ari, IdenticalPartitionsScoreOne) {
  const std::vector<std::uint32_t> labels{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(metrics::adjusted_rand_index(labels, labels), 1.0, 1e-12);
}

TEST(Ari, PermutedPartitionsScoreOne) {
  const std::vector<std::uint32_t> a{0, 0, 1, 1};
  const std::vector<std::uint32_t> b{1, 1, 0, 0};
  EXPECT_NEAR(metrics::adjusted_rand_index(a, b), 1.0, 1e-12);
}

TEST(Ari, IndependentPartitionsScoreNearZero) {
  util::Rng rng(53);
  std::vector<std::uint32_t> a(2000);
  std::vector<std::uint32_t> b(2000);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.next_below(4));
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.next_below(4));
  EXPECT_NEAR(metrics::adjusted_rand_index(a, b), 0.0, 0.05);
}

TEST(Nmi, BoundsAndKnownValues) {
  const std::vector<std::uint32_t> labels{0, 0, 1, 1};
  EXPECT_NEAR(metrics::normalized_mutual_information(labels, labels), 1.0, 1e-12);
  const std::vector<std::uint32_t> all_same{0, 0, 0, 0};
  // One partition is trivial: MI = 0, normalisation keeps it in [0,1].
  const double nmi = metrics::normalized_mutual_information(labels, all_same);
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1e-9);
}

TEST(Nmi, IndependentPartitionsScoreNearZero) {
  util::Rng rng(59);
  std::vector<std::uint32_t> a(2000);
  std::vector<std::uint32_t> b(2000);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.next_below(3));
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.next_below(3));
  EXPECT_NEAR(metrics::normalized_mutual_information(a, b), 0.0, 0.05);
}

TEST(Modularity, PlantedPartitionBeatsRandomLabels) {
  const auto planted = graph::ring_of_cliques(4, 6);
  const double planted_q =
      metrics::modularity(planted.graph, planted.membership, 4);
  util::Rng rng(61);
  std::vector<std::uint32_t> random_labels(planted.graph.num_nodes());
  for (auto& x : random_labels) x = static_cast<std::uint32_t>(rng.next_below(4));
  const double random_q = metrics::modularity(planted.graph, random_labels, 4);
  EXPECT_GT(planted_q, 0.5);
  EXPECT_GT(planted_q, random_q + 0.3);
}

TEST(Modularity, SingleClusterIsZero) {
  const auto g = graph::complete(6);
  const std::vector<std::uint32_t> one(6, 0);
  EXPECT_NEAR(metrics::modularity(g, one, 1), 0.0, 1e-12);
}

// Square 0-1-2-3-0 with heavy edges {0,1} and {2,3}: weighted metrics
// by hand.  Partition {0,1} vs {2,3} cuts the two light edges.
graph::Graph weighted_square() {
  return graph::Graph::from_weighted_edges(
      4, {{0, 1, 4.0}, {1, 2, 1.0}, {2, 3, 4.0}, {3, 0, 1.0}});
}

TEST(WeightedMetrics, EdgeCutWeightSumsCutEdges) {
  const auto g = weighted_square();
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  EXPECT_EQ(metrics::edge_cut(g, part), 2u);
  EXPECT_EQ(metrics::edge_cut_weight(g, part), 2.0);
  const std::vector<std::uint32_t> bad_part{0, 1, 0, 1};
  EXPECT_EQ(metrics::edge_cut_weight(g, bad_part), 10.0);
}

TEST(WeightedMetrics, EdgeCutWeightEqualsCountWhenUnweighted) {
  const auto g = graph::ring_of_cliques(3, 5);
  std::vector<std::uint32_t> part(g.graph.num_nodes());
  util::Rng rng(3);
  for (auto& p : part) p = static_cast<std::uint32_t>(rng.next_below(2));
  EXPECT_EQ(metrics::edge_cut_weight(g.graph, part),
            static_cast<double>(metrics::edge_cut(g.graph, part)));
}

TEST(WeightedMetrics, ModularityUsesWeights) {
  const auto g = weighted_square();
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  // W = 10; w_in per cluster = 4, strengths: every node 5 -> S_c = 10.
  // Q = 2 * (4/10 - (10/20)^2) = 0.3.
  EXPECT_NEAR(metrics::modularity(g, part, 2), 0.3, 1e-12);
}

TEST(WeightedMetrics, ModularityAllOnesMatchesUnweighted) {
  const auto planted = graph::ring_of_cliques(4, 6);
  std::vector<graph::WeightedEdge> edges;
  planted.graph.for_each_edge(
      [&](graph::NodeId u, graph::NodeId v) { edges.push_back({u, v, 1.0}); });
  const auto ones =
      graph::Graph::from_weighted_edges(planted.graph.num_nodes(), std::move(edges));
  EXPECT_EQ(metrics::modularity(ones, planted.membership, 4),
            metrics::modularity(planted.graph, planted.membership, 4));
}

TEST(WeightedMetrics, PartitionImbalanceVolume) {
  const auto g = weighted_square();
  const std::vector<std::uint32_t> balanced{0, 0, 1, 1};
  // Strengths are 5 everywhere: both parts carry 10 of 20.
  EXPECT_NEAR(metrics::partition_imbalance_volume(g, balanced, 2), 1.0, 1e-12);
  const std::vector<std::uint32_t> skewed{0, 0, 0, 1};
  EXPECT_NEAR(metrics::partition_imbalance_volume(g, skewed, 2), 1.5, 1e-12);
}

}  // namespace
