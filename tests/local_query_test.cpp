// Tests for the local same-cluster query extension (§1.2's sub-linear /
// property-testing observation).
#include <gtest/gtest.h>

#include "core/local_query.hpp"
#include "core/rounds.hpp"
#include "graph/generators.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {400, 400};
  spec.degree = 14;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.01);
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

TEST(LocalQuery, SameClusterPairsAccepted) {
  const auto planted = make_instance(1);
  core::LocalQueryConfig config;
  config.beta = 0.5;
  config.rounds = core::recommended_rounds(planted.graph, 2, 1.5).rounds;
  int correct = 0;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    config.seed = 100 + trial;
    const auto u = static_cast<graph::NodeId>(trial * 17 % 400);
    const auto v = static_cast<graph::NodeId>(200 + trial * 13 % 200);
    const auto result = core::same_cluster_query(planted.graph, u, v, config);
    correct += result.same_cluster;
    EXPECT_GT(result.profile_similarity, 0.5) << "trial " << trial;
  }
  EXPECT_GE(correct, 9);
}

TEST(LocalQuery, CrossClusterPairsRejected) {
  const auto planted = make_instance(2);
  core::LocalQueryConfig config;
  config.beta = 0.5;
  config.rounds = core::recommended_rounds(planted.graph, 2, 1.5).rounds;
  int correct = 0;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    config.seed = 200 + trial;
    const auto u = static_cast<graph::NodeId>(trial * 19 % 400);        // cluster 0
    const auto v = static_cast<graph::NodeId>(400 + trial * 23 % 400);  // cluster 1
    const auto result = core::same_cluster_query(planted.graph, u, v, config);
    correct += !result.same_cluster;
    EXPECT_LT(result.profile_similarity, 0.5) << "trial " << trial;
  }
  EXPECT_GE(correct, 9);
}

TEST(LocalQuery, CrossMassMatchesVerdict) {
  const auto planted = make_instance(3);
  core::LocalQueryConfig config;
  config.beta = 0.5;
  config.rounds = core::recommended_rounds(planted.graph, 2, 1.5).rounds;
  const auto result = core::same_cluster_query(planted.graph, 3, 77, config);
  EXPECT_EQ(result.same_cluster, result.cross_mass >= result.threshold);
}

TEST(LocalQuery, ValidatesArguments) {
  const auto planted = make_instance(4);
  core::LocalQueryConfig config;
  config.beta = 0.5;
  config.rounds = 0;  // must be set
  EXPECT_THROW((void)core::same_cluster_query(planted.graph, 0, 1, config),
               util::contract_error);
  config.rounds = 10;
  EXPECT_THROW((void)core::same_cluster_query(planted.graph, 5, 5, config),
               util::contract_error);
  EXPECT_THROW((void)core::same_cluster_query(planted.graph, 0, 1 << 20, config),
               util::contract_error);
}

TEST(LocalQuery, NoClusterStructureRejectsMostPairs) {
  util::Rng rng(5);
  const auto g = graph::random_regular(600, 12, rng);
  core::LocalQueryConfig config;
  config.beta = 0.125;  // pretend clusters of >= n/8 exist
  config.rounds = 150;
  int accepted = 0;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    config.seed = 300 + trial;
    const auto result = core::same_cluster_query(
        g, static_cast<graph::NodeId>(trial), static_cast<graph::NodeId>(599 - trial),
        config);
    accepted += result.same_cluster;
  }
  // Loads mix to 1/n < tau = 1/(0.5 n): nothing should clear the bar.
  EXPECT_LE(accepted, 1);
}

}  // namespace
