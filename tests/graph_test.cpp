// Unit tests for the CSR graph container and planted-graph helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"

namespace {

using namespace dgc;
using graph::Graph;
using graph::NodeId;

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, TriangleBasics) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DeduplicatesParallelEdges) {
  const Graph g = Graph::from_edges(2, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsSelfLoops) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 0}}), util::contract_error);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 5}}), util::contract_error);
}

TEST(Graph, NeighborsAreSorted) {
  const Graph g = Graph::from_edges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) EXPECT_LT(nbrs[i], nbrs[i + 1]);
}

TEST(Graph, DegreeExtremes) {
  const Graph g = graph::star(5);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_FALSE(g.is_regular());
}

TEST(Graph, VolumeSumsDegrees) {
  const Graph g = graph::cycle(6);
  const std::vector<NodeId> set{0, 1, 2};
  EXPECT_EQ(g.volume(set), 6u);
}

TEST(Graph, ForEachEdgeVisitsEachOnce) {
  const Graph g = graph::complete(5);
  std::size_t count = 0;
  g.for_each_edge([&](NodeId u, NodeId v) {
    EXPECT_LT(u, v);
    ++count;
  });
  EXPECT_EQ(count, 10u);
}

TEST(Graph, NodeOutOfRangeThrows) {
  const Graph g = graph::path(3);
  EXPECT_THROW((void)g.degree(3), util::contract_error);
  EXPECT_THROW((void)g.neighbors(7), util::contract_error);
}

TEST(WeightedGraph, UnweightedGraphActsAsAllOnes) {
  const Graph g = graph::cycle(4);
  EXPECT_FALSE(g.is_weighted());
  EXPECT_TRUE(g.weights().empty());
  EXPECT_TRUE(g.weights(0).empty());
  EXPECT_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_EQ(g.max_weight(), 1.0);
  EXPECT_EQ(g.total_weight(), 4.0);
  EXPECT_EQ(g.strength(0), 2.0);
  const std::vector<NodeId> set{0, 1};
  EXPECT_EQ(g.weighted_volume(set), 4.0);
}

TEST(WeightedGraph, FromWeightedEdgesBasics) {
  const Graph g =
      Graph::from_weighted_edges(3, {{0, 1, 2.5}, {1, 2, 0.5}, {0, 2, 4.0}});
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.weights().size(), g.adjacency().size());
  EXPECT_EQ(g.edge_weight(0, 1), 2.5);
  EXPECT_EQ(g.edge_weight(1, 0), 2.5);
  EXPECT_EQ(g.edge_weight(2, 1), 0.5);
  EXPECT_EQ(g.max_weight(), 4.0);
  EXPECT_EQ(g.total_weight(), 7.0);
  EXPECT_EQ(g.strength(0), 6.5);
  double sum = 0.0;
  g.for_each_weighted_edge([&](NodeId u, NodeId v, double w) {
    EXPECT_LT(u, v);
    EXPECT_EQ(g.edge_weight(u, v), w);
    sum += w;
  });
  EXPECT_EQ(sum, 7.0);
}

TEST(WeightedGraph, DuplicateEdgesSumWeights) {
  const Graph g = Graph::from_weighted_edges(2, {{0, 1, 1.5}, {1, 0, 2.0}, {0, 1, 0.5}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0, 1), 1.5 + 2.0 + 0.5);
}

TEST(WeightedGraph, RejectsNonPositiveOrNonFiniteWeights) {
  EXPECT_THROW(Graph::from_weighted_edges(2, {{0, 1, 0.0}}), util::contract_error);
  EXPECT_THROW(Graph::from_weighted_edges(2, {{0, 1, -2.0}}), util::contract_error);
  EXPECT_THROW(Graph::from_weighted_edges(2, {{0, 1, std::nan("")}}),
               util::contract_error);
  EXPECT_THROW(Graph::from_weighted_edges(
                   2, {{0, 1, std::numeric_limits<double>::infinity()}}),
               util::contract_error);
}

TEST(WeightedGraph, EdgeWeightOfNonEdgeThrows) {
  const Graph g = Graph::from_weighted_edges(3, {{0, 1, 1.0}});
  EXPECT_THROW((void)g.edge_weight(0, 2), util::contract_error);
}

TEST(WeightedGraph, FromCsrValidatesWeights) {
  // Path 0-1-2 with weights 2 and 3.
  const std::vector<std::uint64_t> offsets{0, 1, 3, 4};
  const std::vector<NodeId> adjacency{1, 0, 2, 1};
  EXPECT_NO_THROW(Graph::from_csr(offsets, adjacency, {2.0, 2.0, 3.0, 3.0}));
  // Wrong length.
  EXPECT_THROW(Graph::from_csr(offsets, adjacency, {2.0, 2.0, 3.0}),
               util::contract_error);
  // Asymmetric weights.
  EXPECT_THROW(Graph::from_csr(offsets, adjacency, {2.0, 2.5, 3.0, 3.0}),
               util::contract_error);
  // Non-positive weight.
  EXPECT_THROW(Graph::from_csr(offsets, adjacency, {2.0, 2.0, 0.0, 0.0}),
               util::contract_error);
}

TEST(WeightedGraph, CopiesShareImmutableStorage) {
  const Graph g = Graph::from_weighted_edges(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  const Graph copy = g;  // shallow: shares the immutable backing block
  EXPECT_EQ(copy.adjacency().data(), g.adjacency().data());
  EXPECT_EQ(copy.weights().data(), g.weights().data());
  EXPECT_EQ(copy.edge_weight(1, 2), 3.0);
}

TEST(PlantedGraph, ClusterHelpers) {
  graph::PlantedGraph planted;
  planted.membership = {0, 0, 1, 1, 1, 2};
  planted.num_clusters = 3;
  EXPECT_EQ(planted.cluster(1), (std::vector<NodeId>{2, 3, 4}));
  EXPECT_EQ(planted.cluster_sizes(), (std::vector<std::size_t>{2, 3, 1}));
  EXPECT_NEAR(planted.beta(), 1.0 / 6.0, 1e-12);
}

TEST(PlantedGraph, RejectsLabelOutOfRange) {
  graph::PlantedGraph planted;
  planted.membership = {0, 5};
  planted.num_clusters = 2;
  EXPECT_THROW(planted.cluster_sizes(), util::contract_error);
}

}  // namespace
