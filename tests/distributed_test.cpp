// Tests for the message-passing engine: equivalence of all three engines
// (dense, message-passing, sharded), message accounting, and failure
// injection.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/clusterer.hpp"
#include "core/distributed_clusterer.hpp"
#include "core/sharded_clusterer.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "metrics/clustering_metrics.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  std::size_t swaps, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = swaps;
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

// The coin-flip equivalence contract, over a k × seed × P × hot-path
// grid: the dense, message-passing, and sharded engines must produce
// identical runs — seeds, IDs and labels, bit for bit — for both query
// rules and for every combination of {parallel coins, skip-zeros}.  The
// reference is the dense engine with the whole hot path off (the PR 2
// round loop): the overhaul is pure scheduling and must never move a
// label.
class EngineEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<std::uint32_t, std::uint64_t>, std::uint32_t,
                     std::tuple<bool, bool>>> {};

TEST_P(EngineEquivalence, AllEnginesProduceIdenticalRuns) {
  const auto [k_seed, shards, hot_path] = GetParam();
  const auto [k, seed] = k_seed;
  const auto [parallel_coins, skip_zeros] = hot_path;
  // 256 nodes per cluster keeps every instance (k >= 2 -> n >= 512) above
  // the engines' coin-pool threshold, so the parallel_coins cells really
  // exercise the pooled flip/resolve paths in every grid family.
  const auto planted = make_instance(k, 256, 10, 10 * k, seed);
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k + 1);
  config.rounds = 60;
  config.seed = seed * 1000 + 1;
  core::ShardOptions options;
  options.shards = shards;
  // The partition mode rides the shard axis (range at P=1, bfs at P=2,
  // refined at P=4/8), so every mode crosses the whole hot-path grid —
  // and the TSan leg — without tripling the cell count.  Partitioning
  // must never move a label, so the assertions below are unchanged.
  options.mode = shards == 1   ? graph::PartitionMode::kRange
                 : shards == 2 ? graph::PartitionMode::kBfs
                               : graph::PartitionMode::kRefined;
  // Reference: everything off (the pre-overhaul schedule).  It depends
  // only on (k, seed, rule), so cache it across the shard/hot-path grid
  // instead of recomputing it 16x per (k, seed) — this suite also runs
  // under TSan, where full cluster runs are expensive.
  static std::map<std::tuple<std::uint32_t, std::uint64_t, core::QueryRule>,
                  core::ClusterResult>
      reference_cache;
  for (const auto rule : {core::QueryRule::kPaperMinId, core::QueryRule::kArgmax}) {
    config.query_rule = rule;
    auto it = reference_cache.find({k, seed, rule});
    if (it == reference_cache.end()) {
      config.hot_path.parallel_coins = false;
      config.hot_path.skip_zero_rows = false;
      config.hot_path.sparse_mode = matching::SparseMode::kOff;
      config.hot_path.simd = false;
      it = reference_cache
               .emplace(std::make_tuple(k, seed, rule),
                        core::Clusterer(planted.graph, config).run())
               .first;
    }
    const core::ClusterResult& reference = it->second;

    config.hot_path.parallel_coins = parallel_coins;
    // Force a real pool even on 1-core CI machines so the parallel
    // flip/resolve paths are exercised, not just compiled.
    config.hot_path.coin_threads = parallel_coins ? 4 : 0;
    config.hot_path.skip_zero_rows = skip_zeros;
    // The test cells keep the sparse-storage and SIMD defaults (kAuto,
    // on), so this grid also asserts those against the all-off reference.
    config.hot_path.sparse_mode = matching::SparseMode::kAuto;
    config.hot_path.simd = true;
    const auto dense = core::Clusterer(planted.graph, config).run();
    const auto distributed = core::DistributedClusterer(planted.graph, config).run();
    const auto sharded =
        core::ShardedClusterer(planted.graph, config, options).run();
    // Same coins, same protocol -> identical seeds, IDs and labels.
    EXPECT_EQ(reference.seeds, dense.seeds);
    EXPECT_EQ(reference.node_ids, dense.node_ids);
    EXPECT_EQ(reference.labels, dense.labels);
    EXPECT_EQ(dense.seeds, distributed.result.seeds);
    EXPECT_EQ(dense.node_ids, distributed.result.node_ids);
    EXPECT_EQ(dense.labels, distributed.result.labels);
    EXPECT_EQ(dense.seeds, sharded.result.seeds);
    EXPECT_EQ(dense.node_ids, sharded.result.node_ids);
    EXPECT_EQ(dense.labels, sharded.result.labels);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KSeedShardHotPathGrid, EngineEquivalence,
    ::testing::Combine(::testing::Values(std::make_tuple(2u, 1u),
                                         std::make_tuple(2u, 2u),
                                         std::make_tuple(3u, 3u),
                                         std::make_tuple(4u, 4u),
                                         std::make_tuple(5u, 5u)),
                       ::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(std::make_tuple(false, false),
                                         std::make_tuple(false, true),
                                         std::make_tuple(true, false),
                                         std::make_tuple(true, true))));

// The sparse-storage knob through the engines: with SparseMode::kAuto
// the load matrix starts sparse and densifies mid-run (support crosses
// n/2 well before round 60 on these expanders), and every cell of
// {auto, on, off} x {simd on, off} must reproduce the dense-only,
// everything-off reference bit for bit on all three engines.  This is
// the mid-run representation switch exercised end to end, not just at
// the MultiLoadState unit level.
class SparseModeEquivalence
    : public ::testing::TestWithParam<std::tuple<matching::SparseMode, bool>> {};

TEST_P(SparseModeEquivalence, MidRunSwitchMatchesDenseOnlyReference) {
  const auto [sparse_mode, simd] = GetParam();
  const auto planted = make_instance(3, 256, 10, 30, 11);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 60;
  config.seed = 2024;
  config.query_rule = core::QueryRule::kPaperMinId;
  config.hot_path.parallel_coins = false;
  config.hot_path.skip_zero_rows = false;
  config.hot_path.sparse_mode = matching::SparseMode::kOff;
  config.hot_path.simd = false;
  static core::ClusterResult reference;
  static bool have_reference = false;
  if (!have_reference) {
    reference = core::Clusterer(planted.graph, config).run();
    have_reference = true;
  }

  config.hot_path.skip_zero_rows = true;
  config.hot_path.sparse_mode = sparse_mode;
  config.hot_path.simd = simd;
  core::ShardOptions options;
  options.shards = 4;
  const auto dense = core::Clusterer(planted.graph, config).run();
  const auto distributed = core::DistributedClusterer(planted.graph, config).run();
  const auto sharded = core::ShardedClusterer(planted.graph, config, options).run();
  EXPECT_EQ(reference.labels, dense.labels);
  EXPECT_EQ(reference.labels, distributed.result.labels);
  EXPECT_EQ(reference.labels, sharded.result.labels);
  EXPECT_EQ(reference.seeds, dense.seeds);
  EXPECT_EQ(reference.node_ids, dense.node_ids);
}

INSTANTIATE_TEST_SUITE_P(
    SparseSimdGrid, SparseModeEquivalence,
    ::testing::Combine(::testing::Values(matching::SparseMode::kAuto,
                                         matching::SparseMode::kOn,
                                         matching::SparseMode::kOff),
                       ::testing::Bool()));

// The schedule-ahead window axis through the engines: schedule_window
// and tile_cols are pure scheduling (matching/schedule.hpp carries the
// bit-identity argument), so every window size × stripe width × coin
// pool cell must reproduce the per-round-fidelity reference — window 1,
// one full-width stripe — bit for bit on the dense and sharded engines
// (the message-passing engine has no window to schedule; it rides along
// as a third independent derivation of the same labels).
class ScheduleWindowEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, bool>> {};

TEST_P(ScheduleWindowEquivalence, WindowAndTileNeverMoveALabel) {
  const auto [window, tile, parallel_coins] = GetParam();
  const auto planted = make_instance(3, 256, 10, 30, 11);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 60;
  config.seed = 4096;
  config.query_rule = core::QueryRule::kArgmax;
  config.hot_path.schedule_window = 1;
  config.hot_path.tile_cols = 0;
  config.hot_path.parallel_coins = false;
  static core::ClusterResult reference;
  static bool have_reference = false;
  if (!have_reference) {
    reference = core::Clusterer(planted.graph, config).run();
    have_reference = true;
  }

  config.hot_path.schedule_window = window;
  config.hot_path.tile_cols = tile;
  config.hot_path.parallel_coins = parallel_coins;
  // Force a real pool even on 1-core CI machines, so the pooled stripe
  // ownership path runs, not just compiles.
  config.hot_path.coin_threads = parallel_coins ? 4 : 0;
  core::ShardOptions options;
  options.shards = 4;
  const auto dense = core::Clusterer(planted.graph, config).run();
  const auto distributed = core::DistributedClusterer(planted.graph, config).run();
  const auto sharded = core::ShardedClusterer(planted.graph, config, options).run();
  EXPECT_EQ(reference.labels, dense.labels);
  EXPECT_EQ(reference.labels, distributed.result.labels);
  EXPECT_EQ(reference.labels, sharded.result.labels);
  EXPECT_EQ(reference.seeds, dense.seeds);
  EXPECT_EQ(reference.node_ids, dense.node_ids);
}

INSTANTIATE_TEST_SUITE_P(
    WindowTileCoinGrid, ScheduleWindowEquivalence,
    ::testing::Combine(
        // Window 60 = the full run in one schedule; 0 = the auto default.
        ::testing::Values(std::size_t{2}, std::size_t{8}, std::size_t{60},
                          std::size_t{0}),
        // Stripe widths: single column, a ragged middle, auto full width.
        ::testing::Values(std::size_t{1}, std::size_t{5}, std::size_t{0}),
        ::testing::Bool()));

/// Re-weights a graph with a constant weight on every edge.
graph::Graph with_uniform_weights(const graph::Graph& g, double w) {
  std::vector<graph::WeightedEdge> edges;
  edges.reserve(g.num_edges());
  g.for_each_edge(
      [&](graph::NodeId u, graph::NodeId v) { edges.push_back({u, v, w}); });
  return graph::Graph::from_weighted_edges(g.num_nodes(), std::move(edges));
}

// The weighted-protocol equivalence contract: (1) an all-ones (in fact,
// any all-equal) weighting reproduces the unweighted run bit for bit on
// every engine — λ = w/(2·w_max) = 1/2 routes through the unweighted
// averaging expression; (2) on genuinely weighted graphs all three
// engines still agree label for label across the hot-path grid.
class WeightedEngineEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<std::uint32_t, std::uint64_t>, std::tuple<bool, bool>>> {};

TEST_P(WeightedEngineEquivalence, AllOnesMatchesUnweightedAndEnginesAgree) {
  const auto [k_seed, hot_path] = GetParam();
  const auto [k, seed] = k_seed;
  const auto [parallel_coins, skip_zeros] = hot_path;
  const auto planted = make_instance(k, 256, 10, 10 * k, seed);
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k + 1);
  config.rounds = 60;
  config.seed = seed * 1000 + 1;
  config.hot_path.parallel_coins = parallel_coins;
  config.hot_path.coin_threads = parallel_coins ? 4 : 0;
  config.hot_path.skip_zero_rows = skip_zeros;
  core::ShardOptions options;
  options.shards = 4;

  const graph::Graph all_ones = with_uniform_weights(planted.graph, 1.0);
  // A heavier intra / lighter inter weighting on the same structure.
  std::vector<graph::WeightedEdge> edges;
  planted.graph.for_each_edge([&](graph::NodeId u, graph::NodeId v) {
    edges.push_back(
        {u, v, planted.membership[u] == planted.membership[v] ? 3.0 : 0.5});
  });
  const graph::Graph weighted =
      graph::Graph::from_weighted_edges(planted.graph.num_nodes(), std::move(edges));

  for (const auto rule : {core::QueryRule::kPaperMinId, core::QueryRule::kArgmax}) {
    config.query_rule = rule;
    const auto unweighted_run = core::Clusterer(planted.graph, config).run();

    // (1) all-ones == unweighted, bit for bit, on all three engines.
    const auto dense_ones = core::Clusterer(all_ones, config).run();
    EXPECT_EQ(unweighted_run.seeds, dense_ones.seeds);
    EXPECT_EQ(unweighted_run.node_ids, dense_ones.node_ids);
    EXPECT_EQ(unweighted_run.labels, dense_ones.labels);
    const auto mp_ones = core::DistributedClusterer(all_ones, config).run();
    EXPECT_EQ(unweighted_run.labels, mp_ones.result.labels);
    const auto sharded_ones = core::ShardedClusterer(all_ones, config, options).run();
    EXPECT_EQ(unweighted_run.labels, sharded_ones.result.labels);

    // (2) genuinely weighted: the engines agree with each other.
    const auto dense_w = core::Clusterer(weighted, config).run();
    const auto mp_w = core::DistributedClusterer(weighted, config).run();
    const auto sharded_w = core::ShardedClusterer(weighted, config, options).run();
    EXPECT_EQ(dense_w.seeds, mp_w.result.seeds);
    EXPECT_EQ(dense_w.labels, mp_w.result.labels);
    EXPECT_EQ(dense_w.seeds, sharded_w.result.seeds);
    EXPECT_EQ(dense_w.labels, sharded_w.result.labels);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KSeedHotPathGrid, WeightedEngineEquivalence,
    ::testing::Combine(::testing::Values(std::make_tuple(2u, 21u),
                                         std::make_tuple(3u, 22u),
                                         std::make_tuple(4u, 23u)),
                       ::testing::Values(std::make_tuple(false, false),
                                         std::make_tuple(true, true))));

TEST(Weighted, UniformNonUnitWeightsAreBitIdenticalToUnweighted) {
  // Scale invariance: every edge at weight 0.3 still gives λ = 1/2.
  const auto planted = make_instance(3, 150, 8, 24, 41);
  const graph::Graph scaled = with_uniform_weights(planted.graph, 0.3);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 50;
  config.seed = 57;
  const auto a = core::Clusterer(planted.graph, config).run();
  const auto b = core::Clusterer(scaled, config).run();
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Weighted, HeavyIntraWeightsStillRecoverThePlanting) {
  // Sanity for the weighted semantics: up-weighting intra-cluster edges
  // must not hurt recovery on an instance the unweighted run solves.
  const auto planted = make_instance(4, 200, 14, 40, 17);
  std::vector<graph::WeightedEdge> edges;
  planted.graph.for_each_edge([&](graph::NodeId u, graph::NodeId v) {
    edges.push_back(
        {u, v, planted.membership[u] == planted.membership[v] ? 4.0 : 1.0});
  });
  const graph::Graph weighted =
      graph::Graph::from_weighted_edges(planted.graph.num_nodes(), std::move(edges));
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 220;  // λ ≤ 1/2 mixes no faster than full averaging
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = 29;
  const auto result = core::Clusterer(weighted, config).run();
  const double rate =
      metrics::misclassification_rate(planted.membership, 4, result.labels);
  EXPECT_LT(rate, 0.05);
}

TEST(Distributed, ArgmaxRuleAlsoMatchesDense) {
  const auto planted = make_instance(3, 120, 8, 20, 77);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 50;
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = 31;
  const auto dense = core::Clusterer(planted.graph, config).run();
  const auto distributed = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_EQ(dense.labels, distributed.result.labels);
}

TEST(Distributed, TrafficAccountingIsConsistent) {
  const auto planted = make_instance(2, 200, 10, 16, 5);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 40;
  config.seed = 7;
  const auto report = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_EQ(report.phases, 3u * 40u);
  EXPECT_EQ(report.words_per_round.size(), 40u);
  std::uint64_t sum = 0;
  for (const auto w : report.words_per_round) sum += w;
  EXPECT_EQ(sum, report.traffic.words);
  EXPECT_GT(report.traffic.messages, 0u);
  EXPECT_EQ(report.traffic.dropped_messages, 0u);
}

TEST(Distributed, CrossPartitionMeteringIsPureAccounting) {
  // Supplying a partition to run() must not move a label or a word of
  // total traffic — it only splits the existing traffic into the
  // cross-shard subset a multi-process deployment would serialise.
  const auto planted = make_instance(3, 120, 8, 24, 19);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 40;
  config.seed = 23;
  const auto baseline = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_EQ(baseline.cross_partition_words, 0u);
  EXPECT_EQ(baseline.cross_partition_messages, 0u);

  for (const auto mode : {graph::PartitionMode::kRange, graph::PartitionMode::kBfs,
                          graph::PartitionMode::kRefined}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      const auto partition = graph::partition_graph(planted.graph, shards, mode);
      const auto report =
          core::DistributedClusterer(planted.graph, config).run(0.0, &partition);
      EXPECT_EQ(report.result.labels, baseline.result.labels);
      EXPECT_EQ(report.traffic.words, baseline.traffic.words);
      EXPECT_EQ(report.traffic.messages, baseline.traffic.messages);
      if (shards == 1) {
        EXPECT_EQ(report.cross_partition_words, 0u);
        EXPECT_EQ(report.cross_partition_messages, 0u);
      } else {
        EXPECT_LE(report.cross_partition_words, report.traffic.words);
        EXPECT_LE(report.cross_partition_messages, report.traffic.messages);
        EXPECT_GT(report.cross_partition_words, 0u);  // 4 shards on 3 clusters must cut
      }
    }
  }

  // A lower-cut partition meters fewer cross words on the same run: the
  // whole point of the refined mode.
  const auto bfs_part = graph::partition_graph(planted.graph, 4, graph::PartitionMode::kBfs);
  const auto refined_part =
      graph::partition_graph(planted.graph, 4, graph::PartitionMode::kRefined);
  const auto bfs_words =
      core::DistributedClusterer(planted.graph, config).run(0.0, &bfs_part);
  const auto refined_words =
      core::DistributedClusterer(planted.graph, config).run(0.0, &refined_part);
  EXPECT_LE(metrics::edge_cut(planted.graph, refined_part.shard_of),
            metrics::edge_cut(planted.graph, bfs_part.shard_of));
  EXPECT_LE(refined_words.cross_partition_words, bfs_words.cross_partition_words);
}

TEST(Distributed, PartitionIsValidatedAtRun) {
  const auto planted = make_instance(2, 60, 6, 8, 21);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 5;
  config.seed = 29;
  graph::Partition bad;
  bad.num_shards = 2;
  bad.shard_of.assign(10, 0);  // wrong size
  EXPECT_THROW((void)core::DistributedClusterer(planted.graph, config).run(0.0, &bad),
               util::contract_error);
}

TEST(Distributed, StateNeverExceedsSeedCount) {
  const auto planted = make_instance(3, 150, 10, 20, 9);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 80;
  config.seed = 13;
  const auto report = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_LE(report.max_state_entries, report.result.seeds.size());
  EXPECT_GT(report.max_state_entries, 0u);
}

TEST(Distributed, ProbeTrafficBoundedByHalfNPlusMatches) {
  // Per round: ≤ n probes, ≤ n/2 accepts, ≤ n/2 state replies.
  const auto planted = make_instance(2, 100, 8, 10, 11);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 30;
  config.seed = 17;
  const auto report = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_LE(report.traffic.messages, 30u * (200u + 100u + 100u));
}

TEST(Distributed, MessageLossDegradesGracefully) {
  const auto planted = make_instance(2, 250, 12, 20, 13);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 250;
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = 19;
  const auto clean = core::DistributedClusterer(planted.graph, config).run(0.0);
  const auto lossy = core::DistributedClusterer(planted.graph, config).run(0.2);
  EXPECT_GT(lossy.traffic.dropped_messages, 0u);
  const double clean_rate =
      metrics::misclassification_rate(planted.membership, 2, clean.result.labels);
  const double lossy_rate =
      metrics::misclassification_rate(planted.membership, 2, lossy.result.labels);
  // Losing 20% of messages just slows mixing; with extra rounds the
  // result stays usable.
  EXPECT_LT(clean_rate, 0.02);
  EXPECT_LT(lossy_rate, 0.15);
}

TEST(Distributed, HeavyLossStillTerminates) {
  const auto planted = make_instance(2, 80, 8, 8, 15);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 40;
  config.seed = 23;
  const auto report = core::DistributedClusterer(planted.graph, config).run(0.7);
  EXPECT_EQ(report.result.labels.size(), planted.graph.num_nodes());
  EXPECT_GT(report.traffic.dropped_messages, 100u);
}

TEST(Distributed, AccuracyOnPlantedInstance) {
  const auto planted = make_instance(4, 200, 14, 40, 17);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.k_hint = 4;
  config.rounds_multiplier = 2.0;
  config.seed = 29;
  const auto report = core::DistributedClusterer(planted.graph, config).run();
  const double rate =
      metrics::misclassification_rate(planted.membership, 4, report.result.labels);
  EXPECT_LT(rate, 0.05);
}

}  // namespace
