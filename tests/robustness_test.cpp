// Robustness suite: adversarial inputs, degenerate shapes, and
// worst-case topologies across the whole library surface.
#include <gtest/gtest.h>

#include <sstream>

#include "core/clusterer.hpp"
#include "core/distributed_clusterer.hpp"
#include "core/summary.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "linalg/hungarian.hpp"
#include "linalg/kmeans.hpp"
#include "linalg/tridiag.hpp"
#include "matching/process.hpp"
#include "matching/protocol.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;
using graph::NodeId;

TEST(Robustness, EdgeListWithSelfLoopThrows) {
  std::stringstream buffer;
  buffer << "0 1\n2 2\n";
  EXPECT_THROW(graph::read_edge_list(buffer), util::contract_error);
}

TEST(Robustness, ClusteredRegularWithImpossibleSwapBudgetThrows) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {10, 10};
  spec.degree = 4;
  // Far more swaps than intra edges exist: the rewiring cannot converge.
  spec.inter_cluster_swaps = 1000;
  util::Rng rng(1);
  EXPECT_THROW(graph::clustered_regular(spec, rng), util::contract_error);
}

TEST(Robustness, MatchingOnStarNeverDoubleMatchesHub) {
  // The hub is every leaf's only neighbour — maximal probe contention.
  const auto g = graph::star(64);
  matching::MatchingGenerator generator(g, 3);
  for (int round = 0; round < 200; ++round) {
    const auto m = generator.next();
    EXPECT_TRUE(m.valid(g));
    EXPECT_LE(m.edges.size(), 1u);  // only the hub can be matched, once
  }
}

TEST(Robustness, LoadBalancingOnPathConservesDespiteSlowMixing) {
  const auto g = graph::path(200);
  matching::MatchingGenerator generator(g, 5);
  matching::MultiLoadState state(200, 1);
  state.set(0, 0, 1.0);
  matching::run_process(generator, state, 500);
  EXPECT_NEAR(state.total(0), 1.0, 1e-9);
  // A path mixes in Ω(n^2): after 500 rounds the far end has seen ~none.
  EXPECT_LT(state.at(199, 0), 1.0 / 200.0);
  EXPECT_GT(state.at(0, 0), 1.0 / 200.0);
}

TEST(Robustness, ClustererRejectsGraphWithIsolatedNode) {
  graph::GraphBuilder builder(3);
  builder.add_edge(0, 1);
  const auto g = builder.build();  // node 2 isolated
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 5;
  EXPECT_THROW(core::Clusterer(g, config), util::contract_error);
  EXPECT_THROW(core::DistributedClusterer(g, config), util::contract_error);
}

TEST(Robustness, EnginesAgreeOnIrregularRingOfCliques) {
  const auto planted = graph::ring_of_cliques(4, 8);  // not regular
  core::ClusterConfig config;
  config.beta = 0.25;
  config.rounds = 60;
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = 9;
  const auto dense = core::Clusterer(planted.graph, config).run();
  const auto distributed = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_EQ(dense.labels, distributed.result.labels);
  const double rate =
      metrics::misclassification_rate(planted.membership, 4, dense.labels);
  EXPECT_LT(rate, 0.10);
}

TEST(Robustness, SummaryWithSingleLabelIsOneCluster) {
  const auto g = graph::cycle(12);
  const std::vector<std::uint64_t> labels(12, 42);
  const auto summary = core::summarize_partition(g, labels);
  EXPECT_EQ(summary.num_clusters, 1u);
  EXPECT_EQ(summary.clusters[0].size, 12u);
  EXPECT_EQ(summary.clusters[0].conductance, 0.0);
  EXPECT_NEAR(summary.beta_hat, 1.0, 1e-12);
}

TEST(Robustness, HungarianOneByOne) {
  const auto result = linalg::hungarian_min_cost({3.5}, 1, 1);
  EXPECT_EQ(result.row_to_col[0], 0u);
  EXPECT_NEAR(result.total_cost, 3.5, 1e-12);
}

TEST(Robustness, KMeansWithAsManyClustersAsPoints) {
  const std::vector<double> points{0.0, 10.0, 20.0, 30.0};
  linalg::KMeansOptions options;
  options.clusters = 4;
  const auto result = linalg::kmeans(points, 4, 1, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
  std::vector<char> used(4, 0);
  for (const auto a : result.assignment) used[a] = 1;
  for (const char u : used) EXPECT_TRUE(u);
}

TEST(Robustness, TridiagonalOneByOne) {
  const auto eig = linalg::tridiagonal_eigen({7.0}, {});
  ASSERT_EQ(eig.values.size(), 1u);
  EXPECT_NEAR(eig.values[0], 7.0, 1e-12);
  EXPECT_NEAR(eig.vectors[0], 1.0, 1e-12);
}

TEST(Robustness, MisclassificationWithAllSentinelsIsTotal) {
  const std::vector<std::uint32_t> truth{0, 0, 1, 1};
  const std::vector<std::uint64_t> raw(4, metrics::kUnclustered);
  EXPECT_EQ(metrics::misclassified_nodes(truth, 2, raw), 4u);
}

TEST(Robustness, MisclassificationSentinelNeverCreditsACluster) {
  // A whole cluster left unclustered must count fully even though the
  // sentinel bucket aligns perfectly with it.
  const std::vector<std::uint32_t> truth{0, 0, 0, 1, 1, 1};
  const std::vector<std::uint64_t> raw{9, 9, 9, metrics::kUnclustered,
                                       metrics::kUnclustered, metrics::kUnclustered};
  EXPECT_EQ(metrics::misclassified_nodes(truth, 2, raw), 3u);
}

TEST(Robustness, ZeroDropProbabilityIsExactlyFaultFree) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {60, 60};
  spec.degree = 8;
  spec.inter_cluster_swaps = 6;
  util::Rng rng(11);
  const auto planted = graph::clustered_regular(spec, rng);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 30;
  config.seed = 13;
  const auto a = core::DistributedClusterer(planted.graph, config).run(0.0);
  const auto b = core::DistributedClusterer(planted.graph, config).run();
  EXPECT_EQ(a.result.labels, b.result.labels);
  EXPECT_EQ(a.traffic.words, b.traffic.words);
}

TEST(Robustness, TinyCompleteGraphStillProducesValidLabels) {
  // No cluster structure at all: on K8 every load converges to 1/8, so
  // argmax ties are broken by floating-point noise and label count is
  // arbitrary — but every node must get *some* seed label and the
  // summary must stay consistent.
  const auto g = graph::complete(8);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 80;
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = 17;
  const auto result = core::Clusterer(g, config).run();
  for (const auto label : result.labels) EXPECT_NE(label, metrics::kUnclustered);
  const auto summary = core::summarize_partition(g, result.labels);
  EXPECT_GE(summary.num_clusters, 1u);
  EXPECT_LE(summary.num_clusters, 8u);
  std::size_t total = summary.unclustered;
  for (const auto& c : summary.clusters) total += c.size;
  EXPECT_EQ(total, 8u);
}

TEST(Robustness, MetisZeroEdgeGraphRoundTrips) {
  std::stringstream buffer;
  buffer << "3 0\n\n\n\n";
  const auto g = graph::read_metis(buffer);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
