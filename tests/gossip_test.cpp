// Tests for the extension gossip processes (async pairwise averaging,
// push–pull rumour spreading) and the discrete-token variant.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "matching/discrete.hpp"
#include "matching/gossip.hpp"
#include "matching/protocol.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;
using graph::NodeId;

TEST(AsyncGossip, ConservesLoad) {
  util::Rng rng(1);
  const auto g = graph::random_regular(60, 6, rng);
  matching::AsyncGossip gossip(g, 11);
  matching::MultiLoadState state(60, 2);
  state.set(0, 0, 1.0);
  state.set(30, 1, 4.0);
  gossip.run(state, 5000);
  EXPECT_NEAR(state.total(0), 1.0, 1e-9);
  EXPECT_NEAR(state.total(1), 4.0, 1e-9);
  EXPECT_EQ(gossip.total_exchanges(), 5000u);
}

TEST(AsyncGossip, ConvergesToUniformOnExpander) {
  util::Rng rng(2);
  const auto g = graph::random_regular(100, 8, rng);
  matching::AsyncGossip gossip(g, 13);
  matching::MultiLoadState state(100, 1);
  state.set(0, 0, 1.0);
  gossip.run(state, 100 * 200);  // 200 "rounds"
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_NEAR(state.at(v, 0), 0.01, 0.005) << "node " << v;
  }
}

TEST(AsyncGossip, RejectsMismatchedState) {
  util::Rng rng(3);
  const auto g = graph::random_regular(20, 4, rng);
  matching::AsyncGossip gossip(g, 1);
  matching::MultiLoadState state(10, 1);
  EXPECT_THROW(gossip.tick(state), util::contract_error);
}

TEST(Rumor, SourceStartsInformed) {
  const auto g = graph::cycle(10);
  matching::RumorSpreading rumor(g, 5);
  rumor.start(3);
  EXPECT_TRUE(rumor.informed(3));
  EXPECT_FALSE(rumor.informed(4));
  EXPECT_EQ(rumor.informed_count(), 1u);
}

TEST(Rumor, RoundRequiresStart) {
  const auto g = graph::cycle(10);
  matching::RumorSpreading rumor(g, 5);
  EXPECT_THROW(rumor.round(), util::contract_error);
}

TEST(Rumor, SaturatesExpanderInLogarithmicRounds) {
  util::Rng rng(7);
  const auto g = graph::random_regular(512, 8, rng);
  const std::size_t rounds =
      matching::RumorSpreading::rounds_to_saturation(g, 0, 17, 1000);
  // Push-pull on an expander: O(log n) — generous envelope.
  EXPECT_LT(rounds, 8 * static_cast<std::size_t>(std::log2(512.0)));
  EXPECT_GE(rounds, 5u);
}

TEST(Rumor, InformedCountIsMonotone) {
  util::Rng rng(9);
  const auto g = graph::random_regular(128, 6, rng);
  matching::RumorSpreading rumor(g, 23);
  rumor.start(0);
  std::size_t previous = 1;
  for (int t = 0; t < 50; ++t) {
    rumor.round();
    EXPECT_GE(rumor.informed_count(), previous);
    previous = rumor.informed_count();
  }
  EXPECT_EQ(previous, 128u);
}

TEST(Rumor, ClusterSaturatesBeforeGraph) {
  // On a clustered graph, the source's cluster is informed well before
  // the other cluster — the early/late split the paper exploits.
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {300, 300};
  spec.degree = 12;
  spec.inter_cluster_swaps = 3;
  util::Rng rng(11);
  const auto planted = graph::clustered_regular(spec, rng);
  matching::RumorSpreading rumor(planted.graph, 29);
  rumor.start(0);
  const auto home = planted.cluster(planted.membership[0]);
  const auto away = planted.cluster(1 - planted.membership[0]);
  // Run until the home cluster is 95% informed.
  std::size_t rounds = 0;
  while (rumor.informed_within(home) < 285 && rounds < 500) {
    rumor.round();
    ++rounds;
  }
  ASSERT_LT(rounds, 500u);
  EXPECT_LT(rumor.informed_within(away), away.size() / 2);
}

TEST(Discrete, ConservesTokens) {
  util::Rng rng(13);
  const auto g = graph::random_regular(64, 6, rng);
  matching::MatchingGenerator generator(g, 31);
  matching::DiscreteLoadState state(64, 7);
  state.set(0, 1000);
  state.set(1, -50);
  for (int t = 0; t < 300; ++t) state.apply(generator.next());
  EXPECT_EQ(state.total(), 950);
}

TEST(Discrete, DiscrepancyShrinksToConstant) {
  util::Rng rng(17);
  const auto g = graph::random_regular(128, 8, rng);
  matching::MatchingGenerator generator(g, 37);
  matching::DiscreteLoadState state(128, 9);
  // All tokens at one node; 1285 = 10·128 + 5 is NOT divisible by n, so
  // the discrepancy provably cannot reach 0 (a divisible total like 1280
  // can converge to all-equal under a lucky coin sequence).
  state.set(0, 1285);
  const auto initial = state.discrepancy();
  for (int t = 0; t < 600; ++t) state.apply(generator.next());
  EXPECT_EQ(initial, 1285);
  // Average is ~10 tokens/node; randomized rounding leaves O(1) spread.
  EXPECT_LE(state.discrepancy(), 6);
  EXPECT_GE(state.discrepancy(), 1);  // indivisibility: cannot vanish
  EXPECT_EQ(state.total(), 1285);
}

TEST(Discrete, ExactlyDivisiblePairSplitsEvenly) {
  const auto g = graph::path(2);
  matching::Matching m;
  m.partner = {1, 0};
  m.edges = {{0, 1}};
  matching::DiscreteLoadState state(2, 3);
  state.set(0, 6);
  state.set(1, 2);
  state.apply(m);
  EXPECT_EQ(state.at(0), 4);
  EXPECT_EQ(state.at(1), 4);
}

TEST(Discrete, OddSumGoesToOneSideByCoin) {
  const auto g = graph::path(2);
  matching::Matching m;
  m.partner = {1, 0};
  m.edges = {{0, 1}};
  int high_to_zero = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    matching::DiscreteLoadState state(2, seed);
    state.set(0, 5);
    state.set(1, 0);
    state.apply(m);
    EXPECT_EQ(state.at(0) + state.at(1), 5);
    EXPECT_EQ(std::abs(state.at(0) - state.at(1)), 1);
    high_to_zero += state.at(0) == 3;
  }
  // Fair coin: roughly half the seeds give node 0 the extra token.
  EXPECT_GT(high_to_zero, 60);
  EXPECT_LT(high_to_zero, 140);
}

TEST(Discrete, NegativeTokensFloorCorrectly) {
  const auto g = graph::path(2);
  matching::Matching m;
  m.partner = {1, 0};
  m.edges = {{0, 1}};
  matching::DiscreteLoadState state(2, 5);
  state.set(0, -3);
  state.set(1, 0);
  state.apply(m);
  EXPECT_EQ(state.at(0) + state.at(1), -3);
  EXPECT_EQ(std::abs(state.at(0) - state.at(1)), 1);
}

}  // namespace
