// Tests for cuts, conductance (paper definition), rho, connectivity.
#include <gtest/gtest.h>

#include <vector>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace {

using namespace dgc;
using graph::Graph;
using graph::NodeId;

TEST(Analysis, CutOfHalfCycle) {
  const Graph g = graph::cycle(8);
  const std::vector<NodeId> half{0, 1, 2, 3};
  EXPECT_EQ(graph::cut_size(g, half), 2u);
}

TEST(Analysis, PaperConductanceCountsTouchingEdges) {
  // K4 + K4 joined by one edge: for one clique, cut = 1, touching
  // edges = 6 internal + 1 cut = 7.
  const auto planted = graph::ring_of_cliques(2, 4);
  const auto cluster0 = planted.cluster(0);
  // ring_of_cliques(2, s) adds two bridges.
  const double phi = graph::conductance(planted.graph, cluster0);
  EXPECT_NEAR(phi, 2.0 / (6.0 + 2.0), 1e-12);
}

TEST(Analysis, DegreeVolumeConductanceDiffersByBoundedFactor) {
  const auto planted = graph::ring_of_cliques(3, 5);
  const auto cluster0 = planted.cluster(0);
  const double paper = graph::conductance(planted.graph, cluster0);
  const double standard = graph::conductance_degree_volume(planted.graph, cluster0);
  EXPECT_GT(paper, 0.0);
  EXPECT_GT(standard, 0.0);
  EXPECT_LE(standard, paper);
  EXPECT_LE(paper, 2.0 * standard);
}

TEST(Analysis, ConductanceOfWholeGraphIsZero) {
  const Graph g = graph::complete(5);
  std::vector<NodeId> all{0, 1, 2, 3, 4};
  EXPECT_EQ(graph::conductance(g, all), 0.0);
}

TEST(Analysis, CutSizesPerCluster) {
  const auto planted = graph::ring_of_cliques(3, 4);
  const auto cuts = graph::cut_sizes(planted.graph, planted.membership, 3);
  for (const auto c : cuts) EXPECT_EQ(c, 2u);  // one bridge to each side
}

TEST(Analysis, RhoIsMaxClusterConductance) {
  const auto planted = graph::ring_of_cliques(4, 5);
  const auto phis =
      graph::partition_conductances(planted.graph, planted.membership, 4);
  double expected = 0.0;
  for (const double phi : phis) expected = std::max(expected, phi);
  EXPECT_NEAR(graph::rho(planted.graph, planted.membership, 4), expected, 1e-12);
  EXPECT_GT(expected, 0.0);
}

TEST(Analysis, Connectivity) {
  EXPECT_TRUE(graph::is_connected(graph::cycle(10)));
  graph::GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const Graph disconnected = builder.build();
  EXPECT_FALSE(graph::is_connected(disconnected));
  EXPECT_EQ(graph::num_components(disconnected), 2u);
}

TEST(Analysis, SingletonSetConductanceIsOne) {
  const Graph g = graph::cycle(5);
  const std::vector<NodeId> single{0};
  // A singleton in a cycle touches 2 edges, both cut.
  EXPECT_NEAR(graph::conductance(g, single), 1.0, 1e-12);
}

TEST(WeightedAnalysis, CutWeightAndConductance) {
  // Square 0-1-2-3-0, heavy {0,1} and {2,3}: S = {0,1} cuts the two
  // light edges (weight 2 of 10 total); touching weight = 4 + 2.
  const Graph g = Graph::from_weighted_edges(
      4, {{0, 1, 4.0}, {1, 2, 1.0}, {2, 3, 4.0}, {3, 0, 1.0}});
  const std::vector<NodeId> set{0, 1};
  EXPECT_NEAR(graph::cut_weight(g, set), 2.0, 1e-12);
  EXPECT_NEAR(graph::weighted_conductance(g, set), 2.0 / 6.0, 1e-12);
  const std::vector<std::uint32_t> membership{0, 0, 1, 1};
  const auto phis = graph::weighted_partition_conductances(g, membership, 2);
  EXPECT_NEAR(phis[0], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(phis[1], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(graph::weighted_rho(g, membership, 2), 2.0 / 6.0, 1e-12);
}

TEST(WeightedAnalysis, ReducesToCountsOnUnweightedGraphs) {
  const auto planted = graph::ring_of_cliques(3, 5);
  const auto cluster0 = planted.cluster(0);
  EXPECT_EQ(graph::cut_weight(planted.graph, cluster0),
            static_cast<double>(graph::cut_size(planted.graph, cluster0)));
  EXPECT_NEAR(graph::weighted_conductance(planted.graph, cluster0),
              graph::conductance(planted.graph, cluster0), 1e-12);
  EXPECT_NEAR(graph::weighted_rho(planted.graph, planted.membership, 3),
              graph::rho(planted.graph, planted.membership, 3), 1e-12);
}

TEST(DropIsolated, StripsAndRemapsPreservingWeights) {
  // Nodes 0, 3 and 5 are isolated; 1-2 and 2-4 carry weights.
  graph::GraphBuilder builder;
  builder.add_edge(1, 2, 2.5);
  builder.add_edge(2, 4, 0.5);
  builder.ensure_nodes(6);
  const Graph g = builder.build();
  const auto compacted = graph::drop_isolated(g);
  EXPECT_EQ(compacted.graph.num_nodes(), 3u);
  EXPECT_EQ(compacted.graph.num_edges(), 2u);
  EXPECT_EQ(compacted.original_of, (std::vector<NodeId>{1, 2, 4}));
  EXPECT_TRUE(compacted.graph.is_weighted());
  EXPECT_EQ(compacted.graph.edge_weight(0, 1), 2.5);
  EXPECT_EQ(compacted.graph.edge_weight(1, 2), 0.5);
  EXPECT_EQ(compacted.graph.min_degree(), 1u);
}

TEST(DropIsolated, NoOpOnFullyConnectedGraphs) {
  const Graph g = graph::cycle(6);
  const auto compacted = graph::drop_isolated(g);
  EXPECT_EQ(compacted.graph.num_nodes(), 6u);
  EXPECT_EQ(compacted.original_of.size(), 6u);
  EXPECT_EQ(compacted.graph.adjacency().size(), g.adjacency().size());
}

TEST(DropIsolated, AllIsolatedYieldsEmptyGraph) {
  const Graph g = Graph::from_edges(4, {});
  const auto compacted = graph::drop_isolated(g);
  EXPECT_EQ(compacted.graph.num_nodes(), 0u);
  EXPECT_TRUE(compacted.original_of.empty());
}

}  // namespace
