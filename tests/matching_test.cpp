// Tests for the random matching protocol and the load-balancing
// processes, including the statistical validation of Lemma 2.1.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "matching/load_state.hpp"
#include "matching/process.hpp"
#include "matching/protocol.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;
using graph::NodeId;

TEST(MatchingProtocol, RejectsBadInputs) {
  util::Rng rng(1);
  const auto g = graph::random_regular(16, 4, rng);
  matching::ProtocolOptions options;
  options.virtual_degree = 2;  // below max degree
  EXPECT_THROW(matching::MatchingGenerator(g, 1, options), util::contract_error);
  options.virtual_degree = 0;
  options.degree_biased_activation = true;  // needs a virtual degree
  EXPECT_THROW(matching::MatchingGenerator(g, 1, options), util::contract_error);
}

TEST(MatchingProtocol, DeterministicForEqualSeeds) {
  util::Rng rng(2);
  const auto g = graph::random_regular(64, 6, rng);
  matching::MatchingGenerator gen_a(g, 77);
  matching::MatchingGenerator gen_b(g, 77);
  for (int round = 0; round < 10; ++round) {
    const auto ma = gen_a.next();
    const auto mb = gen_b.next();
    EXPECT_EQ(ma.edges, mb.edges);
  }
}

class MatchingSweep
    : public ::testing::TestWithParam<std::tuple<NodeId, std::size_t, std::uint64_t>> {};

TEST_P(MatchingSweep, EveryRoundYieldsAValidMatching) {
  const auto [n, d, seed] = GetParam();
  util::Rng rng(seed);
  const auto g = graph::random_regular(n, d, rng);
  matching::MatchingGenerator generator(g, seed * 31 + 1);
  for (int round = 0; round < 20; ++round) {
    const auto m = generator.next();
    EXPECT_TRUE(m.valid(g)) << "round " << round;
    EXPECT_LE(m.edges.size(), n / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MatchingSweep,
                         ::testing::Values(std::make_tuple(16u, 3u, 1u),
                                           std::make_tuple(32u, 4u, 2u),
                                           std::make_tuple(64u, 8u, 3u),
                                           std::make_tuple(128u, 6u, 4u),
                                           std::make_tuple(256u, 16u, 5u),
                                           std::make_tuple(100u, 5u, 6u)));

TEST(MatchingProtocol, Lemma21OffDiagonalExpectation) {
  // Empirical P[{u,v} matched] should be d_bar/(2d) for every edge
  // (Lemma 2.1 gives E[M_uv] = d_bar/4 * P_uv = d_bar/(4d), and M_uv =
  // 1/2 on matched edges, so P[matched] = d_bar/(2d)).
  util::Rng rng(3);
  const std::size_t d = 6;
  const auto g = graph::random_regular(48, d, rng);
  matching::MatchingGenerator generator(g, 99);
  constexpr int kRounds = 60000;
  std::vector<std::uint32_t> matched_count(g.num_nodes(), 0);
  double total_edges = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    const auto m = generator.next();
    total_edges += static_cast<double>(m.edges.size());
    for (const auto& [u, v] : m.edges) {
      ++matched_count[u];
      ++matched_count[v];
    }
  }
  const double d_bar = std::pow(1.0 - 1.0 / (2.0 * d), d - 1.0);
  // Per-node: P[v matched] = d * d_bar/(2d) = d_bar/2.
  const double expected_node = d_bar / 2.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double freq = static_cast<double>(matched_count[v]) / kRounds;
    EXPECT_NEAR(freq, expected_node, 0.02) << "node " << v;
  }
  // Global edge count per round: n * d_bar/4.
  const double expected_edges = 48.0 * d_bar / 4.0;
  EXPECT_NEAR(total_edges / kRounds, expected_edges, 0.2);
}

TEST(MatchingProtocol, CoinsResolveConsistently) {
  util::Rng rng(4);
  const auto g = graph::random_regular(32, 4, rng);
  matching::MatchingGenerator gen_a(g, 55);
  matching::MatchingGenerator gen_b(g, 55);
  for (int round = 0; round < 5; ++round) {
    const auto coins = gen_a.flip_round_coins();
    const auto resolved = matching::MatchingGenerator::resolve(g, coins);
    const auto direct = gen_b.next();
    EXPECT_EQ(resolved.edges, direct.edges);
  }
}

TEST(MatchingProtocol, VirtualDegreeReducesProbeRate) {
  // With D = 4d, an active node probes a real neighbour only 1/4 of the
  // time, so matchings are about 4x smaller.
  util::Rng rng(5);
  const std::size_t d = 8;
  const auto g = graph::random_regular(256, d, rng);
  matching::MatchingGenerator plain(g, 7);
  matching::ProtocolOptions options;
  options.virtual_degree = 4 * d;
  matching::MatchingGenerator padded(g, 7, options);
  double plain_edges = 0.0;
  double padded_edges = 0.0;
  for (int round = 0; round < 3000; ++round) {
    plain_edges += static_cast<double>(plain.next().edges.size());
    padded_edges += static_cast<double>(padded.next().edges.size());
  }
  EXPECT_GT(plain_edges, 2.5 * padded_edges);
  EXPECT_LT(plain_edges, 6.0 * padded_edges);
}

TEST(LoadState, AveragePairAndConservation) {
  matching::MultiLoadState state(4, 2);
  state.set(0, 0, 1.0);
  state.set(1, 0, 3.0);
  state.set(0, 1, 2.0);
  state.average_pair(0, 1);
  EXPECT_NEAR(state.at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(state.at(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(state.at(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(state.at(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(state.total(0), 4.0, 1e-12);
  EXPECT_NEAR(state.total(1), 2.0, 1e-12);
}

TEST(LoadState, RejectsSelfAverage) {
  matching::MultiLoadState state(3, 1);
  EXPECT_THROW(state.average_pair(1, 1), util::contract_error);
}

TEST(LoadState, WeightedAveragePairMovesLambdaFraction) {
  // Path 0-1-2: w(0,1)=1, w(1,2)=4 (the max).  λ = w/(2·w_max): the
  // light edge mixes an eighth, the heavy edge averages fully.
  const auto g = graph::Graph::from_weighted_edges(3, {{0, 1, 1.0}, {1, 2, 4.0}});
  matching::MultiLoadState state(3, 1);
  state.set_weighted_graph(&g);
  EXPECT_TRUE(state.weighted());
  state.set(0, 0, 8.0);
  state.average_pair(0, 1);  // λ = 1/8
  EXPECT_EQ(state.at(0, 0), 7.0);
  EXPECT_EQ(state.at(1, 0), 1.0);
  state.average_pair(1, 2);  // λ = 1/2: full averaging
  EXPECT_EQ(state.at(1, 0), 0.5);
  EXPECT_EQ(state.at(2, 0), 0.5);
  // The λ-step is doubly stochastic: totals are conserved.
  EXPECT_NEAR(state.total(0), 8.0, 1e-12);
}

TEST(LoadState, AllEqualWeightsAreBitIdenticalToUnweighted) {
  // λ = w/(2w) is exactly 0.5 for every equal weighting, which routes
  // through the unweighted averaging expression — bits must match.
  util::Rng rng(77);
  const NodeId n = 60;
  std::vector<std::pair<NodeId, NodeId>> edges;
  const auto plain = graph::random_regular(n, 4, rng);
  plain.for_each_edge([&](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  std::vector<graph::WeightedEdge> weighted_edges;
  for (const auto& [u, v] : edges) weighted_edges.push_back({u, v, 0.3});
  const auto weighted = graph::Graph::from_weighted_edges(n, std::move(weighted_edges));

  matching::MatchingGenerator gen_a(plain, 5);
  matching::MatchingGenerator gen_b(weighted, 5);
  matching::MultiLoadState state_a(n, 2);
  matching::MultiLoadState state_b(n, 2);
  state_b.set_weighted_graph(&weighted);
  for (const NodeId v : {NodeId{0}, NodeId{13}}) {
    state_a.set(v, v % 2, 1.0);
    state_b.set(v, v % 2, 1.0);
  }
  matching::run_process(gen_a, state_a, 40);
  matching::run_process(gen_b, state_b, 40);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t d = 0; d < 2; ++d) {
      ASSERT_EQ(state_a.at(v, d), state_b.at(v, d)) << "node " << v << " dim " << d;
    }
  }
}

TEST(LoadProcess, ConservesEveryDimension) {
  util::Rng rng(6);
  const auto g = graph::random_regular(100, 6, rng);
  matching::MatchingGenerator generator(g, 11);
  matching::MultiLoadState state(100, 3);
  state.set(0, 0, 1.0);
  state.set(50, 1, 1.0);
  state.set(99, 2, 2.5);
  matching::run_process(generator, state, 200);
  EXPECT_NEAR(state.total(0), 1.0, 1e-9);
  EXPECT_NEAR(state.total(1), 1.0, 1e-9);
  EXPECT_NEAR(state.total(2), 2.5, 1e-9);
}

TEST(LoadProcess, StaysNonNegative) {
  util::Rng rng(7);
  const auto g = graph::random_regular(64, 4, rng);
  matching::MatchingGenerator generator(g, 13);
  matching::MultiLoadState state(64, 1);
  state.set(5, 0, 1.0);
  matching::run_process(generator, state, 300);
  for (NodeId v = 0; v < 64; ++v) EXPECT_GE(state.at(v, 0), 0.0);
}

TEST(LoadProcess, ConvergesToUniformOnExpander) {
  util::Rng rng(8);
  const auto g = graph::random_regular(128, 8, rng);
  matching::MatchingGenerator generator(g, 17);
  matching::MultiLoadState state(128, 1);
  state.set(0, 0, 1.0);
  matching::run_process(generator, state, 600);
  const double uniform = 1.0 / 128.0;
  for (NodeId v = 0; v < 128; ++v) {
    EXPECT_NEAR(state.at(v, 0), uniform, uniform * 0.5) << "node " << v;
  }
}

TEST(LoadProcess, MatchedFractionStatIsSane) {
  util::Rng rng(9);
  const auto g = graph::random_regular(200, 8, rng);
  matching::MatchingGenerator generator(g, 19);
  matching::MultiLoadState state(200, 1);
  state.set(0, 0, 1.0);
  const auto stats = matching::run_process(generator, state, 100);
  EXPECT_EQ(stats.rounds, 100u);
  EXPECT_GT(stats.mean_matched_fraction, 0.1);
  EXPECT_LT(stats.mean_matched_fraction, 1.0);
  EXPECT_GT(stats.total_matched_edges, 0u);
}

TEST(LazyWalk, MatchesManualIteration) {
  const auto g = graph::cycle(6);
  std::vector<double> x{1, 0, 0, 0, 0, 0};
  const auto result = matching::run_lazy_walk(g, x, 1);
  // gamma = d_bar/4 with d = 2: d_bar = (1 - 1/4)^1 = 0.75, gamma = 0.1875.
  EXPECT_NEAR(result[0], 1.0 - 0.1875, 1e-12);
  EXPECT_NEAR(result[1], 0.1875 / 2.0, 1e-12);
  EXPECT_NEAR(result[5], 0.1875 / 2.0, 1e-12);
}

TEST(Trajectory1d, RecordsAllSnapshots) {
  util::Rng rng(10);
  const auto g = graph::random_regular(32, 4, rng);
  matching::MatchingGenerator generator(g, 23);
  std::vector<double> x(32, 0.0);
  x[3] = 1.0;
  const auto snapshots = matching::trajectory_1d(generator, x, 25);
  ASSERT_EQ(snapshots.size(), 26u);
  EXPECT_EQ(snapshots[0][3], 1.0);
  for (const auto& snap : snapshots) {
    EXPECT_NEAR(linalg::sum(snap), 1.0, 1e-9);
  }
}

TEST(MatchingProtocol, ParallelCoinsDeterministicAcrossThreadCounts) {
  // The same (graph, seed) must yield the same coin flips and the same
  // matching — partner vector AND edge order — for every worker count,
  // including the serial fused path (no pool) used by next().
  util::Rng rng(12);
  const auto g = graph::random_regular(700, 8, rng);
  matching::MatchingGenerator reference(g, 4242);
  std::vector<matching::Matching> expected;
  std::vector<matching::MatchingGenerator::Coins> expected_coins;
  matching::MatchingGenerator coin_reference(g, 4242);
  for (std::size_t round = 0; round < 6; ++round) {
    expected.push_back(reference.next());
    expected_coins.push_back(coin_reference.flip_round_coins());
  }
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    util::ThreadPool pool(threads);
    matching::MatchingGenerator generator(g, 4242);
    generator.use_thread_pool(&pool);
    matching::MatchingGenerator::Coins coins;
    matching::Matching m;
    for (std::size_t round = 0; round < 6; ++round) {
      generator.flip_round_coins(coins);
      EXPECT_EQ(coins.active, expected_coins[round].active) << threads << " threads";
      EXPECT_EQ(coins.probe, expected_coins[round].probe) << threads << " threads";
      generator.resolve(coins, m);
      EXPECT_EQ(m.partner, expected[round].partner) << threads << " threads";
      EXPECT_EQ(m.edges, expected[round].edges) << threads << " threads";
      EXPECT_TRUE(m.valid(g));
    }
  }
}

TEST(MatchingProtocol, PooledNextMatchesSerialNext) {
  // next() switches between the fused serial path and the pooled
  // flip+resolve path; both must produce identical matchings.
  util::Rng rng(13);
  const auto g = graph::random_regular(520, 6, rng);
  matching::MatchingGenerator serial(g, 99);
  matching::MatchingGenerator pooled(g, 99);
  util::ThreadPool pool(4);
  pooled.use_thread_pool(&pool);
  matching::Matching ms;
  matching::Matching mp;
  for (int round = 0; round < 8; ++round) {
    serial.next(ms);
    pooled.next(mp);
    EXPECT_EQ(ms.partner, mp.partner) << "round " << round;
    EXPECT_EQ(ms.edges, mp.edges) << "round " << round;
  }
}

TEST(LoadState, SkipZerosApplyBitIdenticalToDense) {
  // Property test: for random graphs, random sparse initial states
  // (including negative values and -0.0), and random matchings, the
  // skip-zeros apply must leave every stored double bit-identical to the
  // dense apply.
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    util::Rng rng(100 + trial);
    const auto n = static_cast<graph::NodeId>(64 + 32 * trial);
    const auto g = graph::random_regular(n, 6, rng);
    const std::size_t dims = 1 + trial % 5;
    matching::MultiLoadState dense(n, dims);
    matching::MultiLoadState sparse(n, dims);
    dense.set_skip_zeros(false);
    sparse.set_skip_zeros(true);
    // ~10% of rows start nonzero, with signed values and one -0.0 row.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (rng.next_bool(0.1)) {
        for (std::size_t d = 0; d < dims; ++d) {
          const double value = rng.next_double() * 2.0 - 1.0;
          dense.set(v, d, value);
          sparse.set(v, d, value);
        }
      }
    }
    dense.set(0, 0, -0.0);
    sparse.set(0, 0, -0.0);
    matching::MatchingGenerator gen_a(g, 7000 + trial);
    matching::MatchingGenerator gen_b(g, 7000 + trial);
    for (int round = 0; round < 30; ++round) {
      dense.apply(gen_a.next());
      sparse.apply(gen_b.next());
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      for (std::size_t d = 0; d < dims; ++d) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(dense.at(v, d)),
                  std::bit_cast<std::uint64_t>(sparse.at(v, d)))
            << "trial " << trial << " node " << v << " dim " << d;
      }
    }
  }
}

TEST(LoadState, ActiveRowsDoubleAtMostPerRound) {
  // §3.2 support growth: a zero row only becomes nonzero by averaging
  // with a nonzero one, and a matching pairs each row at most once, so
  // the flagged support can at most double per round (and never shrinks).
  util::Rng rng(14);
  const auto g = graph::random_regular(256, 8, rng);
  matching::MultiLoadState state(256, 3);
  state.set(5, 0, 1.0);
  state.set(100, 1, 1.0);
  state.set(200, 2, 1.0);
  EXPECT_EQ(state.active_rows(), 3u);
  matching::MatchingGenerator generator(g, 21);
  std::size_t previous = state.active_rows();
  for (int round = 0; round < 40; ++round) {
    state.apply(generator.next());
    const std::size_t active = state.active_rows();
    EXPECT_GE(active, previous);
    EXPECT_LE(active, 2 * previous);
    previous = active;
  }
  EXPECT_GT(previous, 3u);  // mass has spread
  // Flags are sound: every row with a nonzero value is flagged.
  for (graph::NodeId v = 0; v < 256; ++v) {
    for (std::size_t d = 0; d < 3; ++d) {
      if (state.at(v, d) != 0.0) {
        EXPECT_TRUE(state.row_active(v));
      }
    }
  }
}

TEST(LoadState, SkipZerosToggleKeepsValues) {
  matching::MultiLoadState state(4, 2);
  EXPECT_TRUE(state.skip_zeros());
  state.set(0, 0, 3.0);
  state.average_pair(0, 1);  // activates row 1
  state.set_skip_zeros(false);
  state.average_pair(2, 3);  // dense: averages two zero rows, stays zero
  EXPECT_EQ(state.active_rows(), 2u);
  EXPECT_NEAR(state.at(0, 0), 1.5, 1e-12);
  EXPECT_NEAR(state.at(1, 0), 1.5, 1e-12);
  EXPECT_EQ(state.at(2, 0), 0.0);
}

TEST(MatchingProtocol, ProjectionProperty) {
  // M(t) is a projection: applying the same matching twice equals once.
  util::Rng rng(11);
  const auto g = graph::random_regular(40, 4, rng);
  matching::MatchingGenerator generator(g, 29);
  const auto m = generator.next();
  matching::MultiLoadState once(40, 1);
  matching::MultiLoadState twice(40, 1);
  for (NodeId v = 0; v < 40; ++v) {
    const double value = static_cast<double>(v) * 0.37;
    once.set(v, 0, value);
    twice.set(v, 0, value);
  }
  once.apply(m);
  twice.apply(m);
  twice.apply(m);
  for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(once.at(v, 0), twice.at(v, 0));
}

// ---------------------------------------------------------------------------
// Sparse-active storage (SparseMode): the adaptive representation must be
// invisible in the values — bit-identical to dense storage everywhere.

TEST(SparseStorage, BitIdenticalToDenseAcrossModesAndKernels) {
  // Property grid: {kOn, kAuto} x {simd on, off} against a dense
  // everything-off reference, on random graphs with signed values, a
  // -0.0 row and a NaN row.  Every stored double must match bit for bit
  // after every round, through the kAuto densify crossover included.
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    util::Rng rng(500 + trial);
    const auto n = static_cast<graph::NodeId>(96 + 32 * trial);
    const auto g = graph::random_regular(n, 6, rng);
    const std::size_t dims = 1 + trial % 4;
    matching::MultiLoadState reference(n, dims, matching::SparseMode::kOff);
    reference.set_skip_zeros(false);
    reference.set_simd(false);
    struct Variant {
      matching::SparseMode mode;
      bool simd;
    };
    const Variant variants[] = {{matching::SparseMode::kOn, false},
                                {matching::SparseMode::kOn, true},
                                {matching::SparseMode::kAuto, false},
                                {matching::SparseMode::kAuto, true}};
    std::vector<matching::MultiLoadState> states;
    for (const auto& variant : variants) {
      states.emplace_back(n, dims, variant.mode);
      states.back().set_simd(variant.simd);
    }
    // ~6% of rows start nonzero; row 0 carries -0.0 and row 1 a NaN —
    // both must flag as active and survive every representation switch.
    auto seed_values = [&](matching::MultiLoadState& state, util::Rng& values_rng) {
      for (graph::NodeId v = 2; v < n; ++v) {
        if (values_rng.next_bool(0.06)) {
          for (std::size_t d = 0; d < dims; ++d) {
            state.set(v, d, values_rng.next_double() * 2.0 - 1.0);
          }
        }
      }
      state.set(0, 0, -0.0);
      state.set(1, 0, std::numeric_limits<double>::quiet_NaN());
    };
    {
      util::Rng values_rng(900 + trial);
      seed_values(reference, values_rng);
    }
    for (auto& state : states) {
      util::Rng values_rng(900 + trial);
      seed_values(state, values_rng);
      EXPECT_TRUE(state.row_active(0)) << "-0.0 must flag active";
      EXPECT_TRUE(state.row_active(1)) << "NaN must flag active";
    }
    matching::MatchingGenerator reference_gen(g, 7100 + trial);
    std::vector<matching::MatchingGenerator> gens;
    for (std::size_t i = 0; i < states.size(); ++i) gens.emplace_back(g, 7100 + trial);
    bool auto_switched = false;
    for (int round = 0; round < 40; ++round) {
      reference.apply(reference_gen.next());
      for (std::size_t i = 0; i < states.size(); ++i) {
        states[i].apply(gens[i].next());
        ASSERT_EQ(states[i].active_rows(), reference.active_rows())
            << "trial " << trial << " variant " << i << " round " << round;
        for (graph::NodeId v = 0; v < n; ++v) {
          for (std::size_t d = 0; d < dims; ++d) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(states[i].at(v, d)),
                      std::bit_cast<std::uint64_t>(reference.at(v, d)))
                << "trial " << trial << " variant " << i << " round " << round
                << " node " << v << " dim " << d;
          }
        }
      }
      if (!states[2].sparse_storage()) auto_switched = true;
    }
    // kAuto must actually cross over in a 40-round expander run (support
    // saturates), kOn must never densify on its own.
    EXPECT_TRUE(auto_switched);
    EXPECT_TRUE(states[0].sparse_storage());
    // The switch rule is a pure function of active_rows: both kAuto
    // variants (scalar and SIMD) are in the same mode now.
    EXPECT_EQ(states[2].sparse_storage(), states[3].sparse_storage());
  }
}

TEST(SparseStorage, PositiveZeroSetDoesNotMaterializeARow) {
  // Dense storage does not flag a row for set(v, d, +0.0); sparse
  // storage must mirror that exactly — no slot, no active flag — while
  // -0.0 (signbit set) materialises in both.
  matching::MultiLoadState sparse(8, 2, matching::SparseMode::kOn);
  matching::MultiLoadState dense(8, 2, matching::SparseMode::kOff);
  sparse.set(3, 0, 0.0);
  dense.set(3, 0, 0.0);
  EXPECT_EQ(sparse.active_rows(), 0u);
  EXPECT_EQ(dense.active_rows(), 0u);
  EXPECT_FALSE(sparse.row_active(3));
  sparse.set(4, 1, -0.0);
  dense.set(4, 1, -0.0);
  EXPECT_TRUE(sparse.row_active(4));
  EXPECT_TRUE(dense.row_active(4));
  EXPECT_EQ(sparse.active_rows(), dense.active_rows());
}

TEST(SparseStorage, SnapshotDenseAgreesAcrossModesAndValuesRequiresDense) {
  matching::MultiLoadState sparse(16, 3, matching::SparseMode::kOn);
  matching::MultiLoadState dense(16, 3, matching::SparseMode::kOff);
  util::Rng rng(77);
  for (graph::NodeId v = 0; v < 16; v += 3) {
    for (std::size_t d = 0; d < 3; ++d) {
      const double value = rng.next_double() - 0.5;
      sparse.set(v, d, value);
      dense.set(v, d, value);
    }
  }
  std::vector<double> from_sparse;
  std::vector<double> from_dense;
  sparse.snapshot_dense(from_sparse);
  dense.snapshot_dense(from_dense);
  ASSERT_EQ(from_sparse.size(), from_dense.size());
  for (std::size_t i = 0; i < from_sparse.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(from_sparse[i]),
              std::bit_cast<std::uint64_t>(from_dense[i]));
  }
  // values() views dense storage only; the sparse state must refuse.
  EXPECT_THROW((void)sparse.values(), util::contract_error);
  EXPECT_EQ(dense.values().size(), 48u);
  // Round-tripping the snapshot through load_matrix restores the values
  // and the representation choice (kOn stays sparse).
  matching::MultiLoadState reloaded(16, 3, matching::SparseMode::kOn);
  reloaded.load_matrix(from_sparse);
  EXPECT_TRUE(reloaded.sparse_storage());
  for (graph::NodeId v = 0; v < 16; ++v) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(reloaded.at(v, d)),
                std::bit_cast<std::uint64_t>(sparse.at(v, d)));
    }
  }
}

TEST(SparseStorage, UpdateModeSwitchesExactlyPastHalfActive) {
  // The densify trigger is active_rows * 2 > n, evaluated in
  // update_mode() only — a pure function of the active count, so every
  // engine and thread count flips representation on the same round.
  const graph::NodeId n = 10;
  matching::MultiLoadState state(n, 1, matching::SparseMode::kAuto);
  for (graph::NodeId v = 0; v < 5; ++v) state.set(v, 0, 1.0);
  state.update_mode();
  EXPECT_TRUE(state.sparse_storage()) << "5 of 10 active: 2*5 > 10 is false";
  state.set(5, 0, 1.0);
  EXPECT_TRUE(state.sparse_storage()) << "set() must not switch mid-round";
  state.update_mode();
  EXPECT_FALSE(state.sparse_storage()) << "6 of 10 active: 2*6 > 10 densifies";
  // One-way: dropping activity below the line never goes back.
  state.update_mode();
  EXPECT_FALSE(state.sparse_storage());
}

TEST(SparseStorage, SetSparseModeOffDensifiesInPlace) {
  matching::MultiLoadState state(12, 2, matching::SparseMode::kOn);
  state.set(7, 1, 2.5);
  EXPECT_TRUE(state.sparse_storage());
  state.set_sparse_mode(matching::SparseMode::kOff);
  EXPECT_FALSE(state.sparse_storage());
  EXPECT_EQ(state.at(7, 1), 2.5);
  EXPECT_EQ(state.active_rows(), 1u);
  // And back: kOn re-packs the dense matrix into slots.
  state.set_sparse_mode(matching::SparseMode::kOn);
  EXPECT_TRUE(state.sparse_storage());
  EXPECT_EQ(state.at(7, 1), 2.5);
  EXPECT_EQ(state.active_rows(), 1u);
}

}  // namespace
