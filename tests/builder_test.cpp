// GraphBuilder: bit-identity with Graph::from_edges (the equivalence
// suite gating the ingestion refactor), contract checks, and the
// parallel placement path.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dgc;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

void expect_bit_identical(const Graph& a, const Graph& b) {
  const auto ao = a.offsets();
  const auto bo = b.offsets();
  ASSERT_EQ(ao.size(), bo.size());
  for (std::size_t i = 0; i < ao.size(); ++i) ASSERT_EQ(ao[i], bo[i]) << "offset " << i;
  const auto aa = a.adjacency();
  const auto ba = b.adjacency();
  ASSERT_EQ(aa.size(), ba.size());
  for (std::size_t i = 0; i < aa.size(); ++i) ASSERT_EQ(aa[i], ba[i]) << "slot " << i;
  EXPECT_EQ(a.min_degree(), b.min_degree());
  EXPECT_EQ(a.max_degree(), b.max_degree());
}

std::vector<std::pair<NodeId, NodeId>> random_edges_with_duplicates(NodeId n,
                                                                    std::size_t count,
                                                                    util::Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(count);
  while (edges.size() < count) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    edges.emplace_back(u, v);
    // Repeat some edges verbatim and some in the flipped orientation so
    // both duplicate shapes are exercised.
    if (edges.size() < count && rng.next_bool(0.3)) edges.emplace_back(u, v);
    if (edges.size() < count && rng.next_bool(0.3)) edges.emplace_back(v, u);
  }
  return edges;
}

TEST(GraphBuilder, MatchesFromEdgesOnRandomDuplicateLists) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    util::Rng rng(seed);
    const NodeId n = static_cast<NodeId>(50 + rng.next_below(200));
    const auto edges = random_edges_with_duplicates(n, 60 + rng.next_below(900), rng);

    const Graph reference = Graph::from_edges(n, edges);
    GraphBuilder builder(n);
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
    expect_bit_identical(builder.build(), reference);
  }
}

TEST(GraphBuilder, ParallelBuildIsBitIdentical) {
  util::Rng rng(99);
  const NodeId n = 3000;
  const auto edges = random_edges_with_duplicates(n, 200000, rng);
  const Graph reference = Graph::from_edges(n, edges);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    util::ThreadPool pool(threads);
    GraphBuilder builder(n);
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
    expect_bit_identical(builder.build(&pool), reference);
  }
}

TEST(GraphBuilder, MatchesGeneratorOutput) {
  util::Rng rng(7);
  const Graph g = graph::random_regular(120, 6, rng);
  GraphBuilder builder(g.num_nodes());
  g.for_each_edge([&](NodeId u, NodeId v) { builder.add_edge(u, v); });
  expect_bit_identical(builder.build(), g);
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder builder;
  const Graph g = builder.build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  expect_bit_identical(g, Graph::from_edges(0, {}));
}

TEST(GraphBuilder, IsolatedTrailingNodes) {
  GraphBuilder builder;
  builder.add_edge(0, 1);
  builder.ensure_nodes(5);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
  expect_bit_identical(g, Graph::from_edges(5, {{0, 1}}));
}

TEST(GraphBuilder, AutoGrowsFromEndpoints) {
  GraphBuilder builder;
  builder.add_edge(4, 2);
  EXPECT_EQ(builder.num_nodes(), 5u);
  EXPECT_EQ(builder.edges_added(), 1u);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_TRUE(g.has_edge(2, 4));
}

TEST(GraphBuilder, FixedSizeRejectsOutOfRange) {
  GraphBuilder builder(3);
  EXPECT_THROW(builder.add_edge(0, 3), util::contract_error);
}

TEST(GraphBuilder, RejectsSelfLoops) {
  GraphBuilder builder;
  EXPECT_THROW(builder.add_edge(2, 2), util::contract_error);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  (void)builder.build();
  EXPECT_EQ(builder.edges_added(), 0u);
  EXPECT_EQ(builder.num_nodes(), 4u);  // fixed-size: n is the contract
  builder.add_edge(2, 3);
  const Graph g = builder.build();
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

std::vector<graph::WeightedEdge> random_weighted_edges_with_duplicates(
    NodeId n, std::size_t count, util::Rng& rng) {
  std::vector<graph::WeightedEdge> edges;
  edges.reserve(count);
  const auto weight = [&] { return 0.0625 + rng.next_double() * 7.5; };
  while (edges.size() < count) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    edges.push_back({u, v, weight()});
    // Duplicates in both orientations, with fresh weights, so the
    // weight-summing path sees both duplicate shapes.
    if (edges.size() < count && rng.next_bool(0.3)) edges.push_back({u, v, weight()});
    if (edges.size() < count && rng.next_bool(0.3)) edges.push_back({v, u, weight()});
  }
  return edges;
}

void expect_weights_bit_identical(const Graph& a, const Graph& b) {
  expect_bit_identical(a, b);
  const auto aw = a.weights();
  const auto bw = b.weights();
  ASSERT_EQ(aw.size(), bw.size());
  for (std::size_t i = 0; i < aw.size(); ++i) ASSERT_EQ(aw[i], bw[i]) << "weight " << i;
}

TEST(GraphBuilder, WeightedDuplicatesSumInSerialOrder) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 0.25);
  builder.add_edge(1, 0, 0.5);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(1, 2, 3.0);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge_weight(0, 1), ((0.25 + 0.5) + 1.0));
  EXPECT_EQ(g.edge_weight(1, 2), 3.0);
}

TEST(GraphBuilder, WeightedParallelBuildIsBitIdentical) {
  // The weight-summing bit-identity contract: duplicate weights sum in
  // serial arrival order for every thread count, so the weight arrays —
  // not just the adjacency — are identical doubles.
  util::Rng rng(41);
  const NodeId n = 2000;
  const auto edges = random_weighted_edges_with_duplicates(n, 150000, rng);
  const Graph reference = Graph::from_weighted_edges(n, edges);
  EXPECT_TRUE(reference.is_weighted());
  for (const std::size_t threads : {2u, 3u, 8u}) {
    util::ThreadPool pool(threads);
    GraphBuilder builder(n);
    for (const auto& e : edges) builder.add_edge(e.u, e.v, e.weight);
    expect_weights_bit_identical(builder.build(&pool), reference);
  }
}

TEST(GraphBuilder, WeightedAdjacencyMatchesUnweightedBuild) {
  // Same multiset of edges, with and without weights: the structural CSR
  // must be identical (weights ride along, never reorder).
  util::Rng rng(43);
  const NodeId n = 300;
  const auto weighted = random_weighted_edges_with_duplicates(n, 5000, rng);
  std::vector<std::pair<NodeId, NodeId>> plain;
  plain.reserve(weighted.size());
  for (const auto& e : weighted) plain.emplace_back(e.u, e.v);
  expect_bit_identical(Graph::from_weighted_edges(n, weighted),
                       Graph::from_edges(n, plain));
}

TEST(GraphBuilder, RejectsMixedWeightedAndUnweightedEdges) {
  GraphBuilder weighted_first;
  weighted_first.add_edge(0, 1, 2.0);
  EXPECT_THROW(weighted_first.add_edge(1, 2), util::contract_error);
  GraphBuilder unweighted_first;
  unweighted_first.add_edge(0, 1);
  EXPECT_THROW(unweighted_first.add_edge(1, 2, 2.0), util::contract_error);
}

TEST(GraphBuilder, WeightedBuilderResetsToUnweightedOnReuse) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 2.0);
  EXPECT_TRUE(builder.weighted());
  EXPECT_TRUE(builder.build().is_weighted());
  builder.add_edge(2, 3);  // the next graph may be unweighted again
  EXPECT_FALSE(builder.build().is_weighted());
}

TEST(GraphBuilder, AutoGrowingBuilderResetsOnReuse) {
  GraphBuilder builder;
  builder.add_edge(0, 999);
  EXPECT_EQ(builder.build().num_nodes(), 1000u);
  // The second graph must not inherit the first one's node count.
  builder.add_edge(0, 1);
  EXPECT_EQ(builder.build().num_nodes(), 2u);
}

}  // namespace
