// Tests for the partition summary diagnostics and the Fiedler sweep-cut
// baseline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baselines/fiedler.hpp"
#include "core/clusterer.hpp"
#include "core/summary.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, double phi,
                                  std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = 14;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

TEST(Summary, ReportsRecoveredPartition) {
  const auto planted = make_instance(3, 300, 0.01, 1);
  core::ClusterConfig config;
  config.beta = 1.0 / 3.0;
  config.k_hint = 3;
  config.rounds_multiplier = 2.0;
  config.seed = 7;
  const auto result = core::Clusterer(planted.graph, config).run();
  const auto summary = core::summarize_partition(planted.graph, result.labels);
  EXPECT_EQ(summary.num_clusters, 3u);
  EXPECT_NEAR(summary.beta_hat, 1.0 / 3.0, 0.05);
  EXPECT_LT(summary.rho_hat, 0.05);
  // Sorted by size, sums + unclustered = n.
  std::size_t total = summary.unclustered;
  for (std::size_t i = 0; i + 1 < summary.clusters.size(); ++i) {
    EXPECT_GE(summary.clusters[i].size, summary.clusters[i + 1].size);
  }
  for (const auto& c : summary.clusters) total += c.size;
  EXPECT_EQ(total, planted.graph.num_nodes());
}

TEST(Summary, CountsUnclusteredNodes) {
  const auto planted = make_instance(2, 200, 0.02, 2);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 1;  // nowhere near mixed: most nodes unclustered
  config.seed = 3;
  const auto result = core::Clusterer(planted.graph, config).run();
  const auto summary = core::summarize_partition(planted.graph, result.labels);
  EXPECT_GT(summary.unclustered, 300u);
}

TEST(Summary, EmptyLabellingIsHandled) {
  const auto g = graph::cycle(10);
  const std::vector<std::uint64_t> labels(10, metrics::kUnclustered);
  const auto summary = core::summarize_partition(g, labels);
  EXPECT_EQ(summary.num_clusters, 0u);
  EXPECT_EQ(summary.unclustered, 10u);
  EXPECT_TRUE(summary.clusters.empty());
}

TEST(Summary, RejectsSizeMismatch) {
  const auto g = graph::cycle(10);
  const std::vector<std::uint64_t> labels(5, 1);
  EXPECT_THROW(core::summarize_partition(g, labels), util::contract_error);
}

TEST(Labels, SaveLoadRoundTrip) {
  const std::vector<std::uint64_t> labels = {7, 0, metrics::kUnclustered, 42};
  const std::string file_path = ::testing::TempDir() + "/dgc_labels_test.txt";
  core::save_labels(file_path, labels);
  EXPECT_EQ(core::load_labels(file_path), labels);
  std::remove(file_path.c_str());
}

TEST(Labels, LoadToleratesCrLfAndRejectsJunk) {
  const std::string file_path = ::testing::TempDir() + "/dgc_labels_crlf.txt";
  {
    std::ofstream os(file_path, std::ios::binary);
    os << "3\r\n\r\n5\n";
  }
  EXPECT_EQ(core::load_labels(file_path), (std::vector<std::uint64_t>{3, 5}));
  {
    std::ofstream os(file_path, std::ios::binary);
    os << "3x\n";
  }
  EXPECT_THROW((void)core::load_labels(file_path), util::contract_error);
  std::remove(file_path.c_str());
}

TEST(Fiedler, FindsThePlantedBisection) {
  const auto planted = make_instance(2, 250, 0.01, 3);
  const auto cut = baselines::fiedler_sweep_cut(planted.graph);
  // The sweep side should be one planted cluster (up to a few nodes).
  std::size_t agree = 0;
  for (graph::NodeId v = 0; v < planted.graph.num_nodes(); ++v) {
    agree += (cut.in_cut[v] != 0) == (planted.membership[v] == planted.membership[0]);
  }
  const std::size_t n = planted.graph.num_nodes();
  const std::size_t score = std::max(agree, n - agree);
  EXPECT_GT(score, n - 10);
  EXPECT_LT(cut.conductance, 0.03);
  EXPECT_GT(cut.lambda_2, 0.9);
}

TEST(Fiedler, CheegerRelationHolds) {
  // k=2 case of eq. (1): (1 - lambda_2)/2 <= phi(sweep) — the sweep cut
  // cannot beat the spectral lower bound.
  const auto planted = make_instance(2, 200, 0.04, 4);
  const auto cut = baselines::fiedler_sweep_cut(planted.graph);
  EXPECT_GE(cut.conductance + 1e-9, (1.0 - cut.lambda_2) / 2.0);
}

TEST(Fiedler, RecursiveBisectionRecoversFourClusters) {
  const auto planted = make_instance(4, 200, 0.01, 5);
  const auto labels = baselines::recursive_bisection(planted.graph, 4);
  const double rate =
      metrics::misclassification_rate(planted.membership, 4, labels, 4);
  EXPECT_LT(rate, 0.05);
}

TEST(Fiedler, RecursiveBisectionHandlesOddPartCounts) {
  const auto planted = make_instance(3, 150, 0.01, 7);
  const auto labels = baselines::recursive_bisection(planted.graph, 3);
  const double rate =
      metrics::misclassification_rate(planted.membership, 3, labels, 3);
  EXPECT_LT(rate, 0.05);
}

TEST(Fiedler, RejectsDegenerateInput) {
  EXPECT_THROW(baselines::fiedler_sweep_cut(graph::Graph{}), util::contract_error);
  const auto g = graph::cycle(8);
  EXPECT_THROW(baselines::recursive_bisection(g, 0), util::contract_error);
}

TEST(Fiedler, SweepSideIsTheSmallerConductanceSide) {
  const auto planted = make_instance(2, 150, 0.02, 6);
  const auto cut = baselines::fiedler_sweep_cut(planted.graph);
  std::vector<graph::NodeId> side;
  for (graph::NodeId v = 0; v < planted.graph.num_nodes(); ++v) {
    if (cut.in_cut[v]) side.push_back(v);
  }
  EXPECT_NEAR(graph::conductance(planted.graph, side), cut.conductance, 1e-9);
}

}  // namespace
