// Tests for the sharded parallel engine: bit-equality with the dense
// engine across shard counts, partition modes and query rules, mailbox
// traffic accounting, and determinism of the parallel apply.
#include <gtest/gtest.h>

#include <tuple>

#include "core/clusterer.hpp"
#include "core/engine.hpp"
#include "core/sharded_clusterer.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  std::size_t swaps, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = swaps;
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

core::ClusterConfig base_config(std::uint32_t k, std::uint64_t seed) {
  core::ClusterConfig config;
  config.beta = 1.0 / static_cast<double>(k + 1);
  config.rounds = 50;
  config.seed = seed;
  return config;
}

TEST(Sharded, EveryPartitionModeMatchesDense) {
  const auto planted = make_instance(3, 120, 8, 20, 41);
  const auto config = base_config(3, 77);
  const auto dense = core::Clusterer(planted.graph, config).run();
  for (const auto mode : {graph::PartitionMode::kRange, graph::PartitionMode::kBfs,
                          graph::PartitionMode::kRefined}) {
    core::ShardOptions options;
    options.shards = 4;
    options.mode = mode;
    const auto report =
        core::ShardedClusterer(planted.graph, config, options).run();
    EXPECT_EQ(report.result.labels, dense.labels)
        << "mode=" << graph::partition_mode_name(mode);
    EXPECT_EQ(report.result.seeds, dense.seeds);
    EXPECT_EQ(report.result.node_ids, dense.node_ids);
  }
}

TEST(Sharded, MailboxAccountingIsConsistent) {
  const auto planted = make_instance(2, 150, 10, 16, 43);
  auto config = base_config(2, 11);
  core::ShardOptions options;
  options.shards = 4;
  const auto report = core::ShardedClusterer(planted.graph, config, options).run();

  // Per-round words sum to the total, and each word count is exactly
  // 2 messages x (1 header + 2 words per load entry) per cross pair.
  ASSERT_EQ(report.words_per_round.size(), config.rounds);
  std::uint64_t sum = 0;
  for (const auto w : report.words_per_round) sum += w;
  EXPECT_EQ(sum, report.traffic.words);
  const std::uint64_t words_per_row =
      1 + 2 * static_cast<std::uint64_t>(report.result.seeds.size());
  EXPECT_EQ(report.traffic.words, 2 * report.cross_pairs * words_per_row);
  EXPECT_EQ(report.traffic.messages, 2 * report.cross_pairs);

  // Every matched pair is either intra or cross.
  EXPECT_EQ(report.intra_pairs + report.cross_pairs,
            report.result.process.total_matched_edges);

  // The reported cut is the metrics one.
  EXPECT_EQ(report.partition_edge_cut,
            metrics::edge_cut(planted.graph, report.partition.shard_of));
  EXPECT_GE(report.partition_imbalance, 1.0);
}

TEST(Sharded, SingleShardSendsNothing) {
  const auto planted = make_instance(2, 100, 8, 10, 47);
  const auto config = base_config(2, 13);
  core::ShardOptions options;
  options.shards = 1;
  const auto report = core::ShardedClusterer(planted.graph, config, options).run();
  EXPECT_EQ(report.cross_pairs, 0u);
  EXPECT_EQ(report.traffic.words, 0u);
  EXPECT_EQ(report.traffic.messages, 0u);
  EXPECT_EQ(report.partition_edge_cut, 0u);
  EXPECT_EQ(report.result.labels, core::Clusterer(planted.graph, config).run().labels);
}

TEST(Sharded, RepeatedRunsAreBitIdentical) {
  // The parallel apply must be deterministic: work distribution varies
  // across runs, but rows are pair-disjoint, so labels cannot.
  const auto planted = make_instance(3, 130, 10, 30, 53);
  const auto config = base_config(3, 17);
  core::ShardOptions options;
  options.shards = 8;
  const core::ShardedClusterer engine(planted.graph, config, options);
  const auto first = engine.run();
  for (int i = 0; i < 3; ++i) {
    const auto again = engine.run();
    EXPECT_EQ(again.result.labels, first.result.labels);
    EXPECT_EQ(again.traffic.words, first.traffic.words);
  }
}

TEST(Sharded, ExternalPartitionIsUsedVerbatimAndMatchesDense) {
  // An externally supplied partition — even an unbalanced one — wins
  // outright over shards/mode and never changes a label (partitioning
  // only routes pairs between mailbox and local apply).
  const auto planted = make_instance(3, 100, 8, 18, 67);
  const auto config = base_config(3, 29);
  const auto dense = core::Clusterer(planted.graph, config).run();

  graph::Partition external;
  external.num_shards = 3;
  external.shard_of.resize(planted.graph.num_nodes());
  for (graph::NodeId v = 0; v < planted.graph.num_nodes(); ++v) {
    external.shard_of[v] = v < 20 ? 0u : (v % 2 == 0 ? 1u : 2u);  // skewed on purpose
  }
  core::ShardOptions options;
  options.shards = 99;                              // ignored
  options.mode = graph::PartitionMode::kRefined;    // ignored
  options.partition = &external;
  const core::ShardedClusterer engine(planted.graph, config, options);
  EXPECT_EQ(engine.resolved_shards(), 3u);
  const auto report = engine.run();
  EXPECT_EQ(report.result.labels, dense.labels);
  EXPECT_EQ(report.partition.shard_of, external.shard_of);
  EXPECT_EQ(report.partition_edge_cut,
            metrics::edge_cut(planted.graph, external.shard_of));
}

TEST(Sharded, ExternalPartitionIsValidatedAtConstruction) {
  const auto planted = make_instance(2, 60, 6, 8, 71);
  const auto config = base_config(2, 31);
  graph::Partition bad;
  bad.num_shards = 2;
  bad.shard_of.assign(10, 0);  // wrong size for the graph
  core::ShardOptions options;
  options.partition = &bad;
  EXPECT_THROW((void)core::ShardedClusterer(planted.graph, config, options),
               util::contract_error);
  graph::Partition out_of_range;
  out_of_range.num_shards = 2;
  out_of_range.shard_of.assign(planted.graph.num_nodes(), 0);
  out_of_range.shard_of[5] = 7;  // >= num_shards
  options.partition = &out_of_range;
  EXPECT_THROW((void)core::ShardedClusterer(planted.graph, config, options),
               util::contract_error);
}

TEST(Sharded, RefinedModeDeterministicAcrossThreadCounts) {
  // The partitioner is serial and the parallel apply is race-free, so
  // the report — labels, partition, traffic — cannot depend on the
  // worker count.
  const auto planted = make_instance(4, 80, 8, 24, 73);
  const auto config = base_config(4, 37);
  core::ShardOptions options;
  options.shards = 8;
  options.mode = graph::PartitionMode::kRefined;
  options.threads = 1;
  const auto one = core::ShardedClusterer(planted.graph, config, options).run();
  for (const std::size_t threads : {2u, 5u, 16u}) {
    options.threads = threads;
    const auto many = core::ShardedClusterer(planted.graph, config, options).run();
    EXPECT_EQ(many.result.labels, one.result.labels) << "threads=" << threads;
    EXPECT_EQ(many.partition.shard_of, one.partition.shard_of);
    EXPECT_EQ(many.traffic.words, one.traffic.words);
  }
}

TEST(Sharded, MoreThreadsThanShardsStillMatches) {
  const auto planted = make_instance(2, 90, 8, 12, 59);
  const auto config = base_config(2, 19);
  core::ShardOptions options;
  options.shards = 2;
  options.threads = 6;
  const auto report = core::ShardedClusterer(planted.graph, config, options).run();
  EXPECT_EQ(report.result.labels, core::Clusterer(planted.graph, config).run().labels);
}

TEST(Sharded, DefaultShardCountIsCappedAtN) {
  // A tiny graph must not get more shards than nodes.
  graph::GraphBuilder builder(4);
  for (const auto& [u, v] : {std::pair<graph::NodeId, graph::NodeId>{0, 1}, {1, 2}, {2, 3}, {3, 0}}) {
    builder.add_edge(u, v);
  }
  const auto g = builder.build();
  core::ClusterConfig config;
  config.rounds = 5;
  config.seed = 3;
  const core::ShardedClusterer engine(g, config);
  EXPECT_GE(engine.resolved_shards(), 1u);
  EXPECT_LE(engine.resolved_shards(), 4u);
  const auto report = engine.run();
  EXPECT_EQ(report.result.labels.size(), 4u);
}

TEST(Sharded, EngineFactoryCoversAllThree) {
  const auto planted = make_instance(2, 80, 8, 10, 61);
  const auto config = base_config(2, 23);
  const auto dense = core::make_engine(core::EngineKind::kDense, planted.graph, config);
  const auto message =
      core::make_engine(core::EngineKind::kMessagePassing, planted.graph, config);
  const auto sharded = core::make_engine(core::EngineKind::kSharded, planted.graph, config);
  EXPECT_EQ(dense->name(), "dense");
  EXPECT_EQ(message->name(), "message-passing");
  EXPECT_EQ(sharded->name(), "sharded");
  const auto reference = dense->cluster();
  EXPECT_EQ(message->cluster().labels, reference.labels);
  EXPECT_EQ(sharded->cluster().labels, reference.labels);
}

}  // namespace
