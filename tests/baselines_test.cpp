// Tests for the baseline algorithms.
#include <gtest/gtest.h>

#include "baselines/averaging_dynamics.hpp"
#include "baselines/label_propagation.hpp"
#include "baselines/power_iteration.hpp"
#include "baselines/spectral.hpp"
#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  std::size_t swaps, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = swaps;
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

TEST(Spectral, RecoversPlantedPartition) {
  const auto planted = make_instance(3, 300, 12, 30, 1);
  baselines::SpectralOptions options;
  options.clusters = 3;
  const auto result = baselines::spectral_clustering(planted.graph, options);
  const double rate =
      metrics::misclassification_rate(planted.membership, 3, result.labels, 3);
  EXPECT_LT(rate, 0.02);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-6);
}

TEST(Spectral, WorksOnSbmInstances) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 250;
  spec.clusters = 2;
  spec.p_in = 0.06;
  spec.p_out = 0.004;
  util::Rng rng(3);
  const auto planted = graph::stochastic_block_model(spec, rng);
  baselines::SpectralOptions options;
  options.clusters = 2;
  const auto result = baselines::spectral_clustering(planted.graph, options);
  const double rate =
      metrics::misclassification_rate(planted.membership, 2, result.labels, 2);
  EXPECT_LT(rate, 0.05);
}

TEST(Spectral, DeterministicGivenSeed) {
  const auto planted = make_instance(2, 150, 10, 15, 5);
  baselines::SpectralOptions options;
  options.clusters = 2;
  const auto a = baselines::spectral_clustering(planted.graph, options);
  const auto b = baselines::spectral_clustering(planted.graph, options);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(LabelPropagation, SeparatesRingOfCliques) {
  const auto planted = graph::ring_of_cliques(5, 8);
  baselines::LabelPropagationOptions options;
  const auto result = baselines::label_propagation(planted.graph, options);
  const double rate = metrics::misclassification_rate(
      planted.membership, 5, result.labels, std::max(1u, result.num_labels));
  EXPECT_LT(rate, 0.05);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GT(result.messages, 0u);
}

TEST(LabelPropagation, ReachesFixpointOnDisconnectedCliques) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 20;
  spec.clusters = 3;
  spec.p_in = 1.0;
  spec.p_out = 0.0;
  util::Rng rng(7);
  const auto planted = graph::stochastic_block_model(spec, rng);
  const auto result = baselines::label_propagation(planted.graph, {});
  EXPECT_EQ(result.num_labels, 3u);
  EXPECT_EQ(metrics::misclassified_nodes(planted.membership, 3, result.labels, 3), 0u);
}

TEST(LabelPropagation, AllOnesWeightsMatchUnweighted) {
  const auto planted = graph::ring_of_cliques(5, 8);
  std::vector<graph::WeightedEdge> edges;
  planted.graph.for_each_edge(
      [&](graph::NodeId u, graph::NodeId v) { edges.push_back({u, v, 1.0}); });
  const auto ones =
      graph::Graph::from_weighted_edges(planted.graph.num_nodes(), std::move(edges));
  const auto plain = baselines::label_propagation(planted.graph, {});
  const auto weighted = baselines::label_propagation(ones, {});
  EXPECT_EQ(plain.labels, weighted.labels);
  EXPECT_EQ(plain.rounds, weighted.rounds);
}

TEST(LabelPropagation, WeightedVotesSplitAClique) {
  // One clique whose weights hide two heavy halves: unweighted LP sees a
  // single community, weighted LP follows the heavy edges.
  const graph::NodeId n = 16;
  std::vector<graph::WeightedEdge> edges;
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      const bool same = (u < n / 2) == (v < n / 2);
      edges.push_back({u, v, same ? 20.0 : 0.05});
    }
  }
  const auto g = graph::Graph::from_weighted_edges(n, std::move(edges));
  const auto result = baselines::label_propagation(g, {});
  EXPECT_EQ(result.num_labels, 2u);
  std::vector<std::uint32_t> truth(n);
  for (graph::NodeId v = 0; v < n; ++v) truth[v] = v < n / 2 ? 0 : 1;
  EXPECT_EQ(metrics::misclassified_nodes(truth, 2, result.labels, 2), 0u);
}

TEST(AveragingDynamics, TwoCommunities) {
  const auto planted = make_instance(2, 400, 14, 30, 9);
  baselines::AveragingOptions options;
  options.clusters = 2;
  const auto result = baselines::averaging_dynamics(planted.graph, options);
  const double rate =
      metrics::misclassification_rate(planted.membership, 2, result.labels, 2);
  EXPECT_LT(rate, 0.05);
  // Message cost: 2m per round per sketch — necessarily ≥ rounds * 2m.
  EXPECT_GE(result.messages,
            result.rounds * 2 * planted.graph.num_edges());
}

TEST(AveragingDynamics, FourCommunitiesViaSketches) {
  const auto planted = make_instance(4, 250, 14, 40, 11);
  baselines::AveragingOptions options;
  options.clusters = 4;
  const auto result = baselines::averaging_dynamics(planted.graph, options);
  const double rate =
      metrics::misclassification_rate(planted.membership, 4, result.labels, 4);
  EXPECT_LT(rate, 0.15);  // the k>2 extension is heuristic
}

TEST(PowerIteration, TwoClusters) {
  const auto planted = make_instance(2, 300, 12, 20, 13);
  baselines::PicOptions options;
  options.clusters = 2;
  const auto result = baselines::power_iteration_clustering(planted.graph, options);
  const double rate =
      metrics::misclassification_rate(planted.membership, 2, result.labels, 2);
  EXPECT_LT(rate, 0.05);
  EXPECT_GT(result.iterations, 0u);
}

TEST(PowerIteration, StopsBeforeMaxIterationsOnEasyInstance) {
  const auto planted = make_instance(2, 200, 10, 10, 15);
  baselines::PicOptions options;
  options.clusters = 2;
  options.max_iterations = 500;
  const auto result = baselines::power_iteration_clustering(planted.graph, options);
  EXPECT_LT(result.iterations, 500u);
}

}  // namespace
