// Tests for node ID assignment, the seeding procedure, and the round
// count estimate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rounds.hpp"
#include "core/seeding.hpp"
#include "graph/generators.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

TEST(Seeds, DeriveSeedStreamsDiffer) {
  const auto a = core::derive_seed(42, core::Stream::kNodeIds);
  const auto b = core::derive_seed(42, core::Stream::kSeeding);
  const auto c = core::derive_seed(42, core::Stream::kMatching);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, core::derive_seed(42, core::Stream::kNodeIds));
}

TEST(NodeIds, DistinctAndInRange) {
  const auto ids = core::assign_node_ids(1000, 7);
  std::set<std::uint64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 1000u);
  const std::uint64_t universe = 1000ULL * 1000ULL * 1000ULL;
  for (const auto id : ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, universe);
  }
}

TEST(NodeIds, DeterministicPerSeed) {
  EXPECT_EQ(core::assign_node_ids(100, 5), core::assign_node_ids(100, 5));
  EXPECT_NE(core::assign_node_ids(100, 5), core::assign_node_ids(100, 6));
}

TEST(SeedingTrials, MatchesPaperFormula) {
  // s̄ = ceil((3/β) ln(1/β)).
  EXPECT_EQ(core::default_seeding_trials(0.25), 17u);  // 12*1.386.. = 16.63
  EXPECT_EQ(core::default_seeding_trials(0.5), static_cast<std::size_t>(
                                                   std::ceil(6.0 * std::log(2.0))));
  EXPECT_THROW((void)core::default_seeding_trials(0.0), util::contract_error);
  EXPECT_THROW((void)core::default_seeding_trials(0.9), util::contract_error);
}

TEST(Seeding, ExpectedNumberOfSeeds) {
  // Each trial activates each node with probability 1/n, so E[s] ≈ s̄.
  const graph::NodeId n = 5000;
  const std::size_t trials = 20;
  double total = 0.0;
  constexpr int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    total += static_cast<double>(core::run_seeding(n, trials, 1000 + static_cast<std::uint64_t>(run)).size());
  }
  const double mean = total / kRuns;
  EXPECT_NEAR(mean, 20.0, 1.5);
}

TEST(Seeding, DeterministicPerSeed) {
  EXPECT_EQ(core::run_seeding(500, 10, 3), core::run_seeding(500, 10, 3));
}

TEST(Seeding, SortedAndUniqueNodeList) {
  const auto seeds = core::run_seeding(2000, 30, 17);
  for (std::size_t i = 0; i + 1 < seeds.size(); ++i) {
    EXPECT_LT(seeds[i], seeds[i + 1]);
  }
}

TEST(Seeding, EveryClusterSeededWithHighProbability) {
  // Theorem 1.1's proof: a cluster of size βn misses all s̄ trials with
  // probability ≤ e^{-3}.  With 4 clusters of size n/4 and β = 1/4 the
  // union bound gives ≥ 1 − 4e^{-3} ≈ 0.80; empirically it is higher.
  const graph::NodeId n = 4000;
  const std::size_t trials = core::default_seeding_trials(0.25);
  int all_hit = 0;
  constexpr int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    const auto seeds = core::run_seeding(n, trials, 50 + static_cast<std::uint64_t>(run));
    bool hit[4] = {false, false, false, false};
    for (const auto v : seeds) hit[v / 1000] = true;
    all_hit += hit[0] && hit[1] && hit[2] && hit[3];
  }
  EXPECT_GT(all_hit, static_cast<int>(0.80 * kRuns));
}

TEST(Rounds, LogOverGapFormula) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {256, 256};
  spec.degree = 12;
  spec.inter_cluster_swaps = 20;
  util::Rng rng(9);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto est = core::recommended_rounds(planted.graph, 2, 1.0);
  EXPECT_GT(est.lambda_k, est.lambda_k1);
  EXPECT_GT(est.spectral_gap, 0.05);
  // T = ceil((4/d̄)·ln n / (1−λ_{k+1})) with d̄ = (1−1/(2d))^{d−1}.
  const double d_bar = std::pow(1.0 - 1.0 / 24.0, 11.0);
  const double expected = std::ceil((4.0 / d_bar) * std::log(512.0) / est.spectral_gap);
  EXPECT_EQ(est.rounds, static_cast<std::size_t>(expected));
}

TEST(Rounds, MultiplierScalesLinearly) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {128, 128};
  spec.degree = 8;
  spec.inter_cluster_swaps = 10;
  util::Rng rng(11);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto one = core::recommended_rounds(planted.graph, 2, 1.0);
  const auto three = core::recommended_rounds(planted.graph, 2, 3.0);
  EXPECT_NEAR(static_cast<double>(three.rounds),
              3.0 * static_cast<double>(one.rounds), 3.0);
}

TEST(Rounds, RejectsDegenerateInput) {
  const auto g = graph::complete(4);
  EXPECT_THROW((void)core::recommended_rounds(g, 0, 1.0), util::contract_error);
  EXPECT_THROW((void)core::recommended_rounds(g, 5, 1.0), util::contract_error);
}

}  // namespace
