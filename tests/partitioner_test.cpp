// Property tests for graph::partition_graph: output is a partition
// (every node in exactly one shard), balanced within ±1 in both modes,
// deterministic, and scored correctly by the partition metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  std::size_t swaps, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = swaps;
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

void expect_valid_balanced(const graph::Partition& p, graph::NodeId n,
                           std::uint32_t shards) {
  // A partition: shard_of covers every node exactly once by construction,
  // so validity means every entry is a real shard id…
  ASSERT_EQ(p.shard_of.size(), n);
  ASSERT_EQ(p.num_shards, shards);
  for (const std::uint32_t s : p.shard_of) EXPECT_LT(s, shards);
  // …and the member lists are disjoint with union [0, n).
  const auto members = p.members();
  std::vector<char> seen(n, 0);
  std::size_t total = 0;
  for (const auto& shard : members) {
    for (const graph::NodeId v : shard) {
      EXPECT_EQ(seen[v], 0) << "node " << v << " in two shards";
      seen[v] = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, n);
  // Balance within ±1.
  const auto sizes = p.shard_sizes();
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*hi - *lo, 1u);
}

class PartitionerProperty
    : public ::testing::TestWithParam<std::tuple<graph::PartitionMode, std::uint32_t>> {};

TEST_P(PartitionerProperty, ValidBalancedDeterministic) {
  const auto [mode, shards] = GetParam();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto planted = make_instance(3, 100 + 7 * static_cast<graph::NodeId>(seed), 8,
                                       20, seed);
    const auto p = graph::partition_graph(planted.graph, shards, mode);
    expect_valid_balanced(p, planted.graph.num_nodes(), shards);
    // Deterministic: same inputs, same assignment.
    const auto q = graph::partition_graph(planted.graph, shards, mode);
    EXPECT_EQ(p.shard_of, q.shard_of);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModeShardGrid, PartitionerProperty,
    ::testing::Combine(::testing::Values(graph::PartitionMode::kRange,
                                         graph::PartitionMode::kBfs),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u)));

TEST(Partitioner, RangeModeIsContiguous) {
  const auto planted = make_instance(2, 150, 8, 10, 4);
  const auto p = graph::partition_graph(planted.graph, 4, graph::PartitionMode::kRange);
  // Contiguous blocks: shard ids are non-decreasing in node order.
  for (graph::NodeId v = 1; v < planted.graph.num_nodes(); ++v) {
    EXPECT_LE(p.shard_of[v - 1], p.shard_of[v]);
  }
}

TEST(Partitioner, SingleShardHasZeroCut) {
  const auto planted = make_instance(3, 90, 8, 15, 7);
  for (const auto mode : {graph::PartitionMode::kRange, graph::PartitionMode::kBfs}) {
    const auto p = graph::partition_graph(planted.graph, 1, mode);
    EXPECT_EQ(metrics::edge_cut(planted.graph, p.shard_of), 0u);
    EXPECT_DOUBLE_EQ(metrics::partition_imbalance(p.shard_of, 1), 1.0);
  }
}

TEST(Partitioner, BfsRespectsClusterLocality) {
  // Two well-separated clusters, two shards: BFS growth should align the
  // shards with the clusters and beat a cluster-agnostic worst case.
  const auto planted = make_instance(2, 200, 10, 4, 11);
  const auto p = graph::partition_graph(planted.graph, 2, graph::PartitionMode::kBfs);
  const std::uint64_t cut = metrics::edge_cut(planted.graph, p.shard_of);
  // Only a handful of inter-cluster edges exist (4 swaps = 8 cut edges max);
  // a locality-blind split would cut ~half of one cluster's edges (~500).
  EXPECT_LE(cut, 100u);
}

TEST(Partitioner, RejectsBadShardCounts) {
  const auto planted = make_instance(2, 50, 6, 5, 3);
  EXPECT_THROW((void)graph::partition_graph(planted.graph, 0, graph::PartitionMode::kRange),
               util::contract_error);
  EXPECT_THROW((void)graph::partition_graph(planted.graph, planted.graph.num_nodes() + 1,
                                            graph::PartitionMode::kBfs),
               util::contract_error);
}

TEST(PartitionMetrics, EdgeCutCountsCrossingEdges) {
  // Path 0-1-2-3 split {0,1} | {2,3}: only edge (1,2) crosses.
  graph::GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const auto g = builder.build();
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  EXPECT_EQ(metrics::edge_cut(g, part), 1u);
  const std::vector<std::uint32_t> all_same{0, 0, 0, 0};
  EXPECT_EQ(metrics::edge_cut(g, all_same), 0u);
}

TEST(PartitionMetrics, ImbalanceOfSkewedPartition) {
  // 6 nodes, 2 parts, sizes 4 and 2: imbalance = 4 / (6/2) = 4/3.
  const std::vector<std::uint32_t> part{0, 0, 0, 0, 1, 1};
  EXPECT_NEAR(metrics::partition_imbalance(part, 2), 4.0 / 3.0, 1e-12);
}

}  // namespace
