// Property tests for graph::partition_graph: output is a partition
// (every node in exactly one shard), balanced within ±1 in every mode,
// deterministic — including on disconnected graphs — and scored
// correctly by the partition metrics.  The refined multilevel mode
// additionally guarantees a cut no worse than the best of range/bfs
// (it ends in a best-of portfolio over FM-refined candidates).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  std::size_t swaps, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = swaps;
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

void expect_valid_balanced(const graph::Partition& p, graph::NodeId n,
                           std::uint32_t shards) {
  // A partition: shard_of covers every node exactly once by construction,
  // so validity means every entry is a real shard id…
  ASSERT_EQ(p.shard_of.size(), n);
  ASSERT_EQ(p.num_shards, shards);
  for (const std::uint32_t s : p.shard_of) EXPECT_LT(s, shards);
  // …and the member lists are disjoint with union [0, n).
  const auto members = p.members();
  std::vector<char> seen(n, 0);
  std::size_t total = 0;
  for (const auto& shard : members) {
    for (const graph::NodeId v : shard) {
      EXPECT_EQ(seen[v], 0) << "node " << v << " in two shards";
      seen[v] = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, n);
  // Balance within ±1.
  const auto sizes = p.shard_sizes();
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*hi - *lo, 1u);
}

class PartitionerProperty
    : public ::testing::TestWithParam<std::tuple<graph::PartitionMode, std::uint32_t>> {};

TEST_P(PartitionerProperty, ValidBalancedDeterministic) {
  const auto [mode, shards] = GetParam();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto planted = make_instance(3, 100 + 7 * static_cast<graph::NodeId>(seed), 8,
                                       20, seed);
    const auto p = graph::partition_graph(planted.graph, shards, mode);
    expect_valid_balanced(p, planted.graph.num_nodes(), shards);
    // Deterministic: same inputs, same assignment.
    const auto q = graph::partition_graph(planted.graph, shards, mode);
    EXPECT_EQ(p.shard_of, q.shard_of);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModeShardGrid, PartitionerProperty,
    ::testing::Combine(::testing::Values(graph::PartitionMode::kRange,
                                         graph::PartitionMode::kBfs,
                                         graph::PartitionMode::kRefined),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u)));

TEST(Partitioner, RangeModeIsContiguous) {
  const auto planted = make_instance(2, 150, 8, 10, 4);
  const auto p = graph::partition_graph(planted.graph, 4, graph::PartitionMode::kRange);
  // Contiguous blocks: shard ids are non-decreasing in node order.
  for (graph::NodeId v = 1; v < planted.graph.num_nodes(); ++v) {
    EXPECT_LE(p.shard_of[v - 1], p.shard_of[v]);
  }
}

TEST(Partitioner, SingleShardHasZeroCut) {
  const auto planted = make_instance(3, 90, 8, 15, 7);
  for (const auto mode : {graph::PartitionMode::kRange, graph::PartitionMode::kBfs}) {
    const auto p = graph::partition_graph(planted.graph, 1, mode);
    EXPECT_EQ(metrics::edge_cut(planted.graph, p.shard_of), 0u);
    EXPECT_DOUBLE_EQ(metrics::partition_imbalance(p.shard_of, 1), 1.0);
  }
}

TEST(Partitioner, BfsRespectsClusterLocality) {
  // Two well-separated clusters, two shards: BFS growth should align the
  // shards with the clusters and beat a cluster-agnostic worst case.
  const auto planted = make_instance(2, 200, 10, 4, 11);
  const auto p = graph::partition_graph(planted.graph, 2, graph::PartitionMode::kBfs);
  const std::uint64_t cut = metrics::edge_cut(planted.graph, p.shard_of);
  // Only a handful of inter-cluster edges exist (4 swaps = 8 cut edges max);
  // a locality-blind split would cut ~half of one cluster's edges (~500).
  EXPECT_LE(cut, 100u);
}

TEST(Partitioner, RefinedCutNeverWorseThanBaselines) {
  // The refined pipeline ends in a best-of portfolio over FM-refined
  // candidates seeded from range and bfs, and FM only ever commits
  // cut-decreasing prefixes — so refined ≤ min(range, bfs) always.
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const auto planted = make_instance(4, 96, 8, 40, seed);
    for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
      const auto range =
          graph::partition_graph(planted.graph, shards, graph::PartitionMode::kRange);
      const auto bfs =
          graph::partition_graph(planted.graph, shards, graph::PartitionMode::kBfs);
      const auto refined =
          graph::partition_graph(planted.graph, shards, graph::PartitionMode::kRefined);
      const auto cut = [&](const graph::Partition& p) {
        return metrics::edge_cut(planted.graph, p.shard_of);
      };
      EXPECT_LE(cut(refined), std::min(cut(range), cut(bfs)))
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

TEST(Partitioner, RefinedCutWeightNeverWorseOnWeightedGraphs) {
  // The portfolio metric is the *weighted* cut, so the guarantee holds
  // in cut weight on weighted graphs too.
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(3, 80);
  spec.degree = 8;
  spec.inter_cluster_swaps = 30;
  spec.weighted = true;
  spec.intra_weight = 8.0;
  spec.inter_weight = 1.0;
  util::Rng rng(31);
  const auto planted = graph::clustered_regular(spec, rng);
  for (const std::uint32_t shards : {2u, 3u, 6u}) {
    const auto cut_weight = [&](graph::PartitionMode mode) {
      const auto p = graph::partition_graph(planted.graph, shards, mode);
      return metrics::edge_cut_weight(planted.graph, p.shard_of);
    };
    EXPECT_LE(cut_weight(graph::PartitionMode::kRefined),
              std::min(cut_weight(graph::PartitionMode::kRange),
                       cut_weight(graph::PartitionMode::kBfs)) +
                  1e-9)
        << "shards=" << shards;
  }
}

TEST(Partitioner, RefinedRecoversNestedStructureBfsMisses) {
  // Two-tier instance: 4 sub-expanders paired into 2 parent groups.
  // BFS growth from one seed straddles sub-cluster boundaries; the
  // multilevel partitioner finds the planted sub-cuts.
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(4, 256);
  spec.degree = 12;
  spec.sibling_group_size = 2;
  spec.sibling_swaps = graph::swaps_for_conductance(spec, 0.04);
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.015);
  util::Rng rng(33);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto cut = [&](graph::PartitionMode mode) {
    const auto p = graph::partition_graph(planted.graph, 4, mode);
    return metrics::edge_cut(planted.graph, p.shard_of);
  };
  const auto refined = cut(graph::PartitionMode::kRefined);
  EXPECT_LE(refined, cut(graph::PartitionMode::kRange));
  EXPECT_LE(3 * refined, cut(graph::PartitionMode::kBfs));
}

TEST(Partitioner, DeterministicOnDisconnectedGraphs) {
  // Three components (cycle, triangle, path) plus an isolated node.
  // BFS restarts from the lowest unvisited id, so the visit order —
  // hence the assignment — is fully determined.
  graph::GraphBuilder builder(11);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(3, 0);
  builder.add_edge(4, 5);
  builder.add_edge(5, 6);
  builder.add_edge(6, 4);
  // node 7 is isolated
  builder.add_edge(8, 9);
  builder.add_edge(9, 10);
  const auto g = builder.build();
  for (const auto mode : {graph::PartitionMode::kBfs, graph::PartitionMode::kRefined}) {
    const auto p = graph::partition_graph(g, 3, mode);
    expect_valid_balanced(p, 11, 3);
    const auto q = graph::partition_graph(g, 3, mode);
    EXPECT_EQ(p.shard_of, q.shard_of) << graph::partition_mode_name(mode);
  }
  // The BFS assignment itself is pinned: component {0..3} fills shard 0
  // (target 4), {4,5,6} plus the isolated 7 fill shard 1, {8,9,10}
  // shard 2 — whatever the intra-component visit order.
  const auto bfs = graph::partition_graph(g, 3, graph::PartitionMode::kBfs);
  const std::vector<std::uint32_t> expected{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2};
  EXPECT_EQ(bfs.shard_of, expected);
}

TEST(Partitioner, VolumeObjectiveIsValidAndDeterministic) {
  // Skewed degrees: a star glued to a path stresses the volume variant
  // (node balance and volume balance disagree).
  graph::GraphBuilder builder(24);
  for (graph::NodeId v = 1; v < 12; ++v) builder.add_edge(0, v);
  for (graph::NodeId v = 11; v + 1 < 24; ++v) builder.add_edge(v, v + 1);
  const auto g = builder.build();
  graph::RefineOptions options;
  options.objective = graph::BalanceObjective::kVolume;
  const auto p = graph::refine_partition(g, 3, options);
  ASSERT_EQ(p.shard_of.size(), g.num_nodes());
  ASSERT_EQ(p.num_shards, 3u);
  for (const std::uint32_t s : p.shard_of) EXPECT_LT(s, 3u);
  const auto q = graph::refine_partition(g, 3, options);
  EXPECT_EQ(p.shard_of, q.shard_of);
}

TEST(Partitioner, ParsePartitionModeRoundTrips) {
  EXPECT_EQ(graph::parse_partition_mode("range"), graph::PartitionMode::kRange);
  EXPECT_EQ(graph::parse_partition_mode("bfs"), graph::PartitionMode::kBfs);
  EXPECT_EQ(graph::parse_partition_mode("refined"), graph::PartitionMode::kRefined);
  EXPECT_THROW((void)graph::parse_partition_mode("metis"), util::contract_error);
  for (const auto mode : {graph::PartitionMode::kRange, graph::PartitionMode::kBfs,
                          graph::PartitionMode::kRefined}) {
    EXPECT_EQ(graph::parse_partition_mode(graph::partition_mode_name(mode)), mode);
  }
}

TEST(Partitioner, ValidatePartitionEnforcesTheTrustBoundary) {
  graph::Partition p;
  p.num_shards = 2;
  p.shard_of = {0, 1, 0, 1};
  EXPECT_NO_THROW(graph::validate_partition(p, 4));
  // Unbalanced is fine — any valid assignment is accepted.
  const auto make = [](std::uint32_t shards, std::vector<std::uint32_t> ids) {
    graph::Partition out;
    out.num_shards = shards;
    out.shard_of = std::move(ids);
    return out;
  };
  EXPECT_NO_THROW(graph::validate_partition(make(2, {0, 0, 0, 1}), 4));
  // Size mismatch, out-of-range ids, and bad shard counts are not.
  EXPECT_THROW(graph::validate_partition(p, 5), util::contract_error);
  EXPECT_THROW(graph::validate_partition(make(2, {0, 1, 2, 1}), 4), util::contract_error);
  EXPECT_THROW(graph::validate_partition(make(0, {0, 0, 0, 0}), 4), util::contract_error);
  EXPECT_THROW(graph::validate_partition(make(5, {0, 1, 2, 3}), 4), util::contract_error);
}

TEST(PartitionMetrics, ProfileOnAPathSplitInTwo) {
  // Path 0-1-2-3 split {0,1} | {2,3}: one crossing edge, one boundary
  // node per side, volume 3 per side (degrees 1+2).
  graph::GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const auto g = builder.build();
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  const auto profile = metrics::partition_profile(g, part, 2);
  EXPECT_EQ(profile.cut_edges, 1u);
  EXPECT_DOUBLE_EQ(profile.cut_weight, 1.0);
  EXPECT_EQ(profile.boundary_nodes, 2u);
  EXPECT_DOUBLE_EQ(profile.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(profile.imbalance_volume, 1.0);
  ASSERT_EQ(profile.shards.size(), 2u);
  for (const auto& shard : profile.shards) {
    EXPECT_EQ(shard.nodes, 2u);
    EXPECT_DOUBLE_EQ(shard.volume, 3.0);
    EXPECT_EQ(shard.boundary_nodes, 1u);
    EXPECT_EQ(shard.internal_edges, 1u);
    EXPECT_EQ(shard.cut_edges, 1u);
    EXPECT_DOUBLE_EQ(shard.cut_weight, 1.0);
  }
  // Consistency with the scalar metrics on a real instance.
  const auto planted = make_instance(3, 60, 6, 12, 9);
  const auto p = graph::partition_graph(planted.graph, 4, graph::PartitionMode::kBfs);
  const auto full = metrics::partition_profile(planted.graph, p.shard_of, 4);
  EXPECT_EQ(full.cut_edges, metrics::edge_cut(planted.graph, p.shard_of));
  EXPECT_DOUBLE_EQ(full.cut_weight, metrics::edge_cut_weight(planted.graph, p.shard_of));
  EXPECT_DOUBLE_EQ(full.imbalance, metrics::partition_imbalance(p.shard_of, 4));
}

TEST(Partitioner, RejectsBadShardCounts) {
  const auto planted = make_instance(2, 50, 6, 5, 3);
  EXPECT_THROW((void)graph::partition_graph(planted.graph, 0, graph::PartitionMode::kRange),
               util::contract_error);
  EXPECT_THROW((void)graph::partition_graph(planted.graph, planted.graph.num_nodes() + 1,
                                            graph::PartitionMode::kBfs),
               util::contract_error);
}

TEST(PartitionMetrics, EdgeCutCountsCrossingEdges) {
  // Path 0-1-2-3 split {0,1} | {2,3}: only edge (1,2) crosses.
  graph::GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const auto g = builder.build();
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  EXPECT_EQ(metrics::edge_cut(g, part), 1u);
  const std::vector<std::uint32_t> all_same{0, 0, 0, 0};
  EXPECT_EQ(metrics::edge_cut(g, all_same), 0u);
}

TEST(PartitionMetrics, ImbalanceOfSkewedPartition) {
  // 6 nodes, 2 parts, sizes 4 and 2: imbalance = 4 / (6/2) = 4/3.
  const std::vector<std::uint32_t> part{0, 0, 0, 0, 1, 1};
  EXPECT_NEAR(metrics::partition_imbalance(part, 2), 4.0 / 3.0, 1e-12);
}

}  // namespace
