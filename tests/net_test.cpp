// Tests for the synchronous message-passing simulator.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "net/network.hpp"
#include "util/require.hpp"

namespace {

using namespace dgc;
using net::Message;
using net::MsgKind;

TEST(Network, DeliversWithinPhase) {
  const auto g = graph::path(3);
  net::Network network(g);
  network.send({0, 1, MsgKind::kProbe, {}});
  EXPECT_TRUE(network.inbox(1).empty());  // not delivered yet
  network.deliver();
  ASSERT_EQ(network.inbox(1).size(), 1u);
  EXPECT_EQ(network.inbox(1)[0].from, 0u);
}

TEST(Network, PhaseBoundariesDiscardOldMessages) {
  const auto g = graph::path(3);
  net::Network network(g);
  network.send({0, 1, MsgKind::kProbe, {}});
  network.deliver();
  network.deliver();  // next phase: inbox cleared
  EXPECT_TRUE(network.inbox(1).empty());
}

TEST(Network, RejectsNonNeighbourSend) {
  const auto g = graph::path(3);  // edges 0-1, 1-2
  net::Network network(g);
  EXPECT_THROW(network.send({0, 2, MsgKind::kProbe, {}}), util::contract_error);
  EXPECT_THROW(network.send({0, 0, MsgKind::kProbe, {}}), util::contract_error);
}

TEST(Network, RejectsOutOfRangeEndpoints) {
  const auto g = graph::path(3);
  net::Network network(g);
  EXPECT_THROW(network.send({0, 9, MsgKind::kProbe, {}}), util::contract_error);
}

TEST(Network, CountsMessagesAndWords) {
  const auto g = graph::path(3);
  net::Network network(g);
  network.send({0, 1, MsgKind::kProbe, {}});                      // 1 word
  network.send({1, 2, MsgKind::kState, {{7, 0.5}, {9, 0.25}}});   // 5 words
  network.deliver();
  EXPECT_EQ(network.stats().messages, 2u);
  EXPECT_EQ(network.stats().words, 6u);
}

TEST(Network, WordsOfFormula) {
  Message m;
  m.payload = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  EXPECT_EQ(net::Network::words_of(m), 7u);
}

TEST(Network, DropInjectionLosesRoughlyTheRightFraction) {
  const auto g = graph::complete(2);
  net::Network network(g);
  network.set_drop_probability(0.3, 123);
  constexpr int kMessages = 20000;
  int received = 0;
  for (int i = 0; i < kMessages; ++i) {
    network.send({0, 1, MsgKind::kProbe, {}});
    network.deliver();
    received += static_cast<int>(network.inbox(1).size());
  }
  EXPECT_NEAR(static_cast<double>(received) / kMessages, 0.7, 0.02);
  EXPECT_EQ(network.stats().dropped_messages + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(kMessages));
}

TEST(Network, RejectsBadDropProbability) {
  const auto g = graph::path(2);
  net::Network network(g);
  EXPECT_THROW(network.set_drop_probability(1.0, 1), util::contract_error);
  EXPECT_THROW(network.set_drop_probability(-0.1, 1), util::contract_error);
}

TEST(Network, PayloadSurvivesDelivery) {
  const auto g = graph::path(2);
  net::Network network(g);
  network.send({0, 1, MsgKind::kAccept, {{42, 0.125}}});
  network.deliver();
  const auto& inbox = network.inbox(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].kind, MsgKind::kAccept);
  ASSERT_EQ(inbox[0].payload.size(), 1u);
  EXPECT_EQ(inbox[0].payload[0].first, 42u);
  EXPECT_EQ(inbox[0].payload[0].second, 0.125);
}

}  // namespace
