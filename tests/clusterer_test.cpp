// End-to-end tests of the in-memory engine: accuracy on planted
// instances, query-rule behaviour, determinism, config validation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/clusterer.hpp"
#include "core/seeding.hpp"
#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  double phi, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

TEST(Clusterer, RecoversTwoClusters) {
  const auto planted = make_instance(2, 500, 16, 0.02, 1);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.rounds_multiplier = 2.0;
  config.seed = 7;
  const auto result = core::Clusterer(planted.graph, config).run();
  const double rate = metrics::misclassification_rate(planted.membership, 2, result.labels);
  EXPECT_LT(rate, 0.02);
}

TEST(Clusterer, RecoversFourClusters) {
  const auto planted = make_instance(4, 400, 16, 0.02, 2);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.k_hint = 4;
  config.rounds_multiplier = 2.0;
  // Double the seeding trials: the paper's s̄ only covers every cluster
  // with constant probability, and this test pins one seed.
  config.seeding_trials = 2 * core::default_seeding_trials(config.beta);
  config.seed = 11;
  const auto result = core::Clusterer(planted.graph, config).run();
  const double rate = metrics::misclassification_rate(planted.membership, 4, result.labels);
  EXPECT_LT(rate, 0.05);
}

TEST(Clusterer, LabelsAreClusterConsistent) {
  // All nodes of one planted cluster should receive the same label.
  const auto planted = make_instance(3, 300, 12, 0.01, 3);
  core::ClusterConfig config;
  config.beta = 1.0 / 3.0;
  config.k_hint = 3;
  config.rounds_multiplier = 2.0;
  config.seed = 13;
  const auto result = core::Clusterer(planted.graph, config).run();
  // Count the dominant label per cluster; dominance should be near-total.
  for (std::uint32_t c = 0; c < 3; ++c) {
    std::map<std::uint64_t, std::size_t> counts;
    for (const auto v : planted.cluster(c)) ++counts[result.labels[v]];
    std::size_t dominant = 0;
    for (const auto& [label, count] : counts) dominant = std::max(dominant, count);
    EXPECT_GT(dominant, 280u) << "cluster " << c;
  }
}

TEST(Clusterer, DeterministicGivenSeed) {
  const auto planted = make_instance(2, 200, 12, 0.03, 4);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.seed = 99;
  const auto a = core::Clusterer(planted.graph, config).run();
  const auto b = core::Clusterer(planted.graph, config).run();
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Clusterer, DifferentSeedsUsuallyDifferInSeeds) {
  const auto planted = make_instance(2, 200, 12, 0.03, 5);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.seed = 1;
  const auto a = core::Clusterer(planted.graph, config).run();
  config.seed = 2;
  const auto b = core::Clusterer(planted.graph, config).run();
  EXPECT_NE(a.seeds, b.seeds);
}

TEST(Clusterer, ExplicitRoundsAreRespected) {
  const auto planted = make_instance(2, 100, 8, 0.05, 6);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 37;
  config.seed = 3;
  const auto result = core::Clusterer(planted.graph, config).run();
  EXPECT_EQ(result.rounds, 37u);
  EXPECT_EQ(result.lambda_k1, 0.0);  // not estimated
}

TEST(Clusterer, ArgmaxRuleNeverLeavesNodesUnclustered) {
  const auto planted = make_instance(2, 300, 12, 0.03, 7);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.rounds_multiplier = 2.0;
  config.query_rule = core::QueryRule::kArgmax;
  config.seed = 5;
  const auto result = core::Clusterer(planted.graph, config).run();
  for (const auto label : result.labels) EXPECT_NE(label, metrics::kUnclustered);
  const double rate = metrics::misclassification_rate(planted.membership, 2, result.labels);
  EXPECT_LT(rate, 0.02);
}

TEST(Clusterer, TooFewRoundsLeavesManyNodesUnclustered) {
  const auto planted = make_instance(2, 500, 16, 0.02, 8);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 1;  // far below the mixing time
  config.seed = 5;
  const auto result = core::Clusterer(planted.graph, config).run();
  std::size_t unclustered = 0;
  for (const auto label : result.labels) unclustered += label == metrics::kUnclustered;
  EXPECT_GT(unclustered, 900u);
}

TEST(Clusterer, QueryThresholdFormula) {
  // τ = scale / (sqrt(2β) n).
  EXPECT_NEAR(core::query_threshold(1.0, 0.5, 100), 0.01, 1e-12);
  EXPECT_NEAR(core::query_threshold(2.0, 0.125, 1000),
              2.0 / (0.5 * 1000.0), 1e-12);
}

TEST(Clusterer, QueryLabelRules) {
  const std::vector<double> values{0.1, 0.5, 0.5};
  const std::vector<std::uint64_t> ids{10, 30, 20};
  // Paper rule with threshold 0.4: ids 30 and 20 qualify; min is 20.
  EXPECT_EQ(core::query_label(values, ids, 0.4, core::QueryRule::kPaperMinId),
            20u);
  // Threshold too high: unclustered.
  EXPECT_EQ(core::query_label(values, ids, 0.9, core::QueryRule::kPaperMinId),
            metrics::kUnclustered);
  // Argmax: tie between ids 30 and 20 at 0.5 — min id wins.
  EXPECT_EQ(core::query_label(values, ids, 0.0, core::QueryRule::kArgmax), 20u);
}

TEST(Clusterer, ArgmaxZeroAndNegativeLoadsAreUnclustered) {
  // The explicit argmax rule: only strictly positive loads are candidates.
  // A best value of exactly 0.0 is "no mass reached me" and must yield
  // kUnclustered no matter how a zero-value tie would break on seed IDs.
  const std::vector<std::uint64_t> ids_ascending{10, 20, 30};
  const std::vector<std::uint64_t> ids_descending{30, 20, 10};
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_EQ(core::query_label(zeros, ids_ascending, 0.0, core::QueryRule::kArgmax),
            metrics::kUnclustered);
  EXPECT_EQ(core::query_label(zeros, ids_descending, 0.0, core::QueryRule::kArgmax),
            metrics::kUnclustered);
  // All-negative loads are equally unclustered (no ID leaks through).
  const std::vector<double> negatives{-0.25, -0.5, -1.0};
  EXPECT_EQ(core::query_label(negatives, ids_ascending, 0.0, core::QueryRule::kArgmax),
            metrics::kUnclustered);
  // A single strictly positive load wins even when zeros carry smaller IDs.
  const std::vector<double> one_positive{0.0, 0.0, 1e-12};
  EXPECT_EQ(core::query_label(one_positive, ids_ascending, 0.0, core::QueryRule::kArgmax),
            30u);
  // Empty input is unclustered under both rules.
  EXPECT_EQ(core::query_label({}, {}, 0.0, core::QueryRule::kArgmax),
            metrics::kUnclustered);
  EXPECT_EQ(core::query_label({}, {}, 0.0, core::QueryRule::kPaperMinId),
            metrics::kUnclustered);
}

TEST(Clusterer, SeedsCarryLabelOfTheirCluster) {
  const auto planted = make_instance(2, 400, 12, 0.02, 9);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.rounds_multiplier = 2.0;
  config.seed = 21;
  const auto result = core::Clusterer(planted.graph, config).run();
  ASSERT_FALSE(result.seeds.empty());
  // The label a seed's own cluster adopted should be one of the seed IDs
  // planted in that cluster.
  std::set<std::uint64_t> seed_ids;
  for (const auto v : result.seeds) seed_ids.insert(result.node_ids[v]);
  for (const auto v : result.seeds) {
    if (result.labels[v] != metrics::kUnclustered) {
      EXPECT_TRUE(seed_ids.count(result.labels[v])) << "node " << v;
    }
  }
}

TEST(Clusterer, ConfigValidation) {
  const auto planted = make_instance(2, 100, 8, 0.05, 10);
  core::ClusterConfig config;
  config.beta = 0.0;  // invalid
  config.rounds = 10;
  EXPECT_THROW(core::Clusterer(planted.graph, config), util::contract_error);
  config.beta = 0.5;
  config.rounds = 0;
  config.k_hint = 0;  // neither rounds nor hint
  EXPECT_THROW(core::Clusterer(planted.graph, config), util::contract_error);
  config.threshold_scale = -1.0;
  config.rounds = 5;
  EXPECT_THROW(core::Clusterer(planted.graph, config), util::contract_error);
}

TEST(Clusterer, ExposesFinalState) {
  const auto planted = make_instance(2, 100, 8, 0.05, 11);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.rounds = 50;
  config.seed = 31;
  matching::MultiLoadState state(1, 1);
  const auto result = core::Clusterer(planted.graph, config).run(&state);
  EXPECT_EQ(state.num_nodes(), 200u);
  EXPECT_EQ(state.dimensions(), result.seeds.size());
  // Loads conserve: each dimension still sums to 1.
  for (std::size_t i = 0; i < state.dimensions(); ++i) {
    EXPECT_NEAR(state.total(i), 1.0, 1e-9);
  }
}

TEST(Clusterer, WorksOnRingTopologyInstances) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(4, 250);
  spec.degree = 14;
  spec.inter_cluster_swaps = 30;
  spec.topology = graph::ClusteredRegularSpec::Topology::kRing;
  util::Rng rng(33);
  const auto planted = graph::clustered_regular(spec, rng);
  core::ClusterConfig config;
  config.beta = 0.25;
  config.k_hint = 4;
  config.rounds_multiplier = 2.0;
  config.seed = 17;
  const auto result = core::Clusterer(planted.graph, config).run();
  const double rate = metrics::misclassification_rate(planted.membership, 4, result.labels);
  EXPECT_LT(rate, 0.08);
}

}  // namespace
