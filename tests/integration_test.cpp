// Cross-module integration tests: the full paper pipeline end to end,
// the Lemma 4.1 early-behaviour bound, Lemma 4.3 good-seed convergence,
// and the Theorem 1.1 message-complexity accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/clusterer.hpp"
#include "core/distributed_clusterer.hpp"
#include "core/rounds.hpp"
#include "core/spectral_structure.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "matching/process.hpp"
#include "metrics/clustering_metrics.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

graph::PlantedGraph make_instance(std::uint32_t k, graph::NodeId size, std::size_t degree,
                                  double phi, std::uint64_t seed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, size);
  spec.degree = degree;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
  util::Rng rng(seed);
  return graph::clustered_regular(spec, rng);
}

TEST(Integration, FullPipelineOnWellClusteredGraph) {
  const auto planted = make_instance(4, 500, 16, 0.01, 1);
  // Confirm the instance is in the paper's regime before clustering.
  const auto st = core::analyze_structure(planted);
  EXPECT_GT(st.upsilon, 10.0);

  core::ClusterConfig config;
  config.beta = 0.25;
  config.k_hint = 4;
  config.rounds_multiplier = 2.0;
  config.seed = 3;
  const auto result = core::Clusterer(planted.graph, config).run();

  const auto compacted = metrics::compact(result.labels);
  const double rate = metrics::misclassification_rate(
      planted.membership, 4, compacted.labels, std::max(1u, compacted.num_labels));
  EXPECT_LT(rate, 0.02);
  EXPECT_GT(metrics::adjusted_rand_index(planted.membership, compacted.labels), 0.9);
  EXPECT_GT(metrics::modularity(planted.graph, compacted.labels,
                                std::max(1u, compacted.num_labels)),
            0.5);
}

TEST(Integration, MessageComplexityWithinTheoremBound) {
  // Theorem 1.1: O(T · n · k log k) words.  Our accounting: per round at
  // most n probes (1 word) + n/2 accepts + n/2 replies carrying ≤ 2s+1
  // words each.  Check the measured total against the closed form.
  const auto planted = make_instance(3, 200, 12, 0.02, 5);
  core::ClusterConfig config;
  config.beta = 1.0 / 3.0;
  config.rounds = 50;
  config.seed = 7;
  const auto report = core::DistributedClusterer(planted.graph, config).run();
  const double n = 600.0;
  const double s = static_cast<double>(report.result.seeds.size());
  const double per_round_bound = n + 2.0 * (n / 2.0) * (2.0 * s + 1.0);
  EXPECT_LE(static_cast<double>(report.traffic.words), 50.0 * per_round_bound);
  // And the bound is not vacuous: traffic is within a small factor of it.
  EXPECT_GE(static_cast<double>(report.traffic.words), 50.0 * n * 0.3);
}

TEST(Integration, Lemma41EarlyBehaviourBound) {
  // Start the 1-D process at a good node; at t = T the distance
  // ||Q y(0) − y(t)|| must be small compared to ||Q y(0)||, and it grows
  // for t >> T (Remark 1).
  const auto planted = make_instance(2, 400, 14, 0.01, 9);
  const auto st = core::analyze_structure(planted);
  // Pick the best (smallest alpha) node as the seed.
  graph::NodeId seed_node = 0;
  for (graph::NodeId v = 0; v < planted.graph.num_nodes(); ++v) {
    if (st.alpha[v] < st.alpha[seed_node]) seed_node = v;
  }
  const std::size_t n = planted.graph.num_nodes();
  std::vector<double> y0(n, 0.0);
  y0[seed_node] = 1.0;
  // Q y(0) = sum_i <y0, f_i> f_i.
  std::vector<double> qy0(n, 0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    linalg::axpy(st.eigenvectors[i][seed_node], st.eigenvectors[i], qy0);
  }
  const double qnorm = linalg::norm(qy0);

  const auto est = core::recommended_rounds(planted.graph, 2, 1.0);
  matching::MatchingGenerator generator(planted.graph, 11);
  const auto snapshots = matching::trajectory_1d(generator, y0, est.rounds * 20);

  const double dist_at_T = linalg::norm_diff(qy0, snapshots[est.rounds]);
  const double dist_late = linalg::norm_diff(qy0, snapshots.back());
  EXPECT_LT(dist_at_T, 0.7 * qnorm);
  EXPECT_GT(dist_late, dist_at_T);  // Remark 1: error increases with t
}

TEST(Integration, Lemma43GoodSeedConvergesToIndicator) {
  const auto planted = make_instance(2, 300, 12, 0.01, 13);
  const auto st = core::analyze_structure(planted);
  graph::NodeId good_node = 0;
  for (graph::NodeId v = 0; v < planted.graph.num_nodes(); ++v) {
    if (st.alpha[v] < st.alpha[good_node]) good_node = v;
  }
  const std::uint32_t cluster = planted.membership[good_node];
  const auto members = planted.cluster(cluster);
  const std::size_t n = planted.graph.num_nodes();

  std::vector<double> chi_s(n, 0.0);
  for (const auto v : members) chi_s[v] = 1.0 / static_cast<double>(members.size());

  std::vector<double> y0(n, 0.0);
  y0[good_node] = 1.0;
  const auto est = core::recommended_rounds(planted.graph, 2, 1.5);
  matching::MatchingGenerator generator(planted.graph, 17);
  const auto snapshots = matching::trajectory_1d(generator, y0, est.rounds);
  const double dist = linalg::norm_diff(snapshots.back(), chi_s);
  // ||chi_S|| = 1/sqrt(|S|); the final distance should be well below it.
  EXPECT_LT(dist, 0.5 / std::sqrt(static_cast<double>(members.size())));
}

TEST(Integration, RoundsScaleLogarithmically) {
  // Same per-cluster structure at two sizes: T should grow like log n.
  const auto small = make_instance(2, 250, 12, 0.02, 21);
  const auto large = make_instance(2, 1000, 12, 0.02, 23);
  const auto est_small = core::recommended_rounds(small.graph, 2, 1.0);
  const auto est_large = core::recommended_rounds(large.graph, 2, 1.0);
  const double ratio = static_cast<double>(est_large.rounds) /
                       static_cast<double>(est_small.rounds);
  const double log_ratio = std::log(2000.0) / std::log(500.0);
  EXPECT_GT(ratio, 0.7 * log_ratio);
  EXPECT_LT(ratio, 2.0 * log_ratio);
}

TEST(Integration, SbmPipeline) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 400;
  spec.clusters = 2;
  spec.p_in = 0.05;
  spec.p_out = 0.002;
  util::Rng rng(25);
  const auto planted = graph::stochastic_block_model(spec, rng);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.rounds_multiplier = 2.0;
  config.query_rule = core::QueryRule::kArgmax;  // SBM is only almost-regular
  config.seed = 27;
  const auto result = core::Clusterer(planted.graph, config).run();
  const double rate = metrics::misclassification_rate(planted.membership, 2, result.labels);
  EXPECT_LT(rate, 0.1);
}

TEST(Integration, AlmostRegularVariantClustersDroppedEdgeGraph) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {400, 400};
  spec.degree = 16;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, 0.01);
  util::Rng rng(29);
  const auto planted = graph::almost_regular_clusters(spec, 0.08, rng);
  ASSERT_FALSE(planted.graph.is_regular());

  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.rounds_multiplier = 2.0;
  config.query_rule = core::QueryRule::kArgmax;
  config.protocol.virtual_degree = planted.graph.max_degree();
  config.seed = 31;
  const auto result = core::Clusterer(planted.graph, config).run();
  const double rate = metrics::misclassification_rate(planted.membership, 2, result.labels);
  EXPECT_LT(rate, 0.05);
}

TEST(Integration, DegreeBiasedActivationVariant) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes = {300, 300};
  spec.degree = 14;
  spec.inter_cluster_swaps = 20;
  util::Rng rng(33);
  const auto planted = graph::almost_regular_clusters(spec, 0.08, rng);
  core::ClusterConfig config;
  config.beta = 0.5;
  config.k_hint = 2;
  config.rounds_multiplier = 2.0;
  config.query_rule = core::QueryRule::kArgmax;
  config.protocol.virtual_degree = planted.graph.max_degree();
  config.protocol.degree_biased_activation = true;  // §4.5 literal variant
  config.seed = 35;
  const auto result = core::Clusterer(planted.graph, config).run();
  const double rate = metrics::misclassification_rate(planted.membership, 2, result.labels);
  EXPECT_LT(rate, 0.05);
}

TEST(Integration, UnclusterableGraphYieldsManyUnclustered) {
  // An expander has no cluster structure: every load converges to the
  // uniform 1/n, which sits below τ = 1/(sqrt(2β)n) = 2/n for β = 1/8,
  // so nodes end up unclustered rather than confidently wrong.
  util::Rng rng(37);
  const auto g = graph::random_regular(600, 12, rng);
  core::ClusterConfig config;
  config.beta = 0.125;
  config.rounds = 200;
  config.seed = 39;
  const auto result = core::Clusterer(g, config).run();
  std::size_t unclustered = 0;
  for (const auto label : result.labels) unclustered += label == metrics::kUnclustered;
  EXPECT_GT(unclustered, 400u);
}

}  // namespace
