// Tests for the linear-algebra substrate: kernels, eigensolvers (cross-
// validated against each other and against closed forms), k-means,
// Hungarian assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "linalg/hungarian.hpp"
#include "linalg/jacobi.hpp"
#include "linalg/kmeans.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/tridiag.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/walk_matrix.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

TEST(VectorOps, DotNormAxpy) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_NEAR(linalg::dot(x, y), 12.0, 1e-12);
  EXPECT_NEAR(linalg::norm(x), std::sqrt(14.0), 1e-12);
  std::vector<double> z = y;
  linalg::axpy(2.0, x, z);
  EXPECT_NEAR(z[0], 6.0, 1e-12);
  EXPECT_NEAR(z[1], -1.0, 1e-12);
  EXPECT_NEAR(z[2], 12.0, 1e-12);
  EXPECT_NEAR(linalg::sum(x), 6.0, 1e-12);
}

TEST(VectorOps, NormalizeReturnsOldNorm) {
  std::vector<double> x{3.0, 4.0};
  EXPECT_NEAR(linalg::normalize(x), 5.0, 1e-12);
  EXPECT_NEAR(linalg::norm(x), 1.0, 1e-12);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_EQ(linalg::normalize(zero), 0.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)linalg::dot(x, y), util::contract_error);
}

TEST(GramSchmidt, ProducesOrthonormalSet) {
  util::Rng rng(3);
  std::vector<std::vector<double>> vectors(4, std::vector<double>(10));
  for (auto& v : vectors) {
    for (auto& x : v) x = rng.next_double() - 0.5;
  }
  ASSERT_EQ(linalg::gram_schmidt(vectors), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(linalg::dot(vectors[i], vectors[j]), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(GramSchmidt, DropsDependentVectors) {
  std::vector<std::vector<double>> vectors{{1.0, 0.0}, {2.0, 0.0}, {0.0, 1.0}};
  EXPECT_EQ(linalg::gram_schmidt(vectors), 2u);
}

TEST(Tridiag, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const auto eig = linalg::tridiagonal_eigen({2.0, 2.0}, {1.0});
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(Tridiag, DiagonalMatrixIsFixed) {
  const auto eig = linalg::tridiagonal_eigen({3.0, 1.0, 2.0}, {0.0, 0.0});
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(Tridiag, PathLaplacianEigenvalues) {
  // Free path Laplacian (second-difference matrix) on n nodes has
  // eigenvalues 2 - 2cos(pi j / n), j = 0..n-1.
  const std::size_t n = 12;
  std::vector<double> diag(n, 2.0);
  diag.front() = 1.0;
  diag.back() = 1.0;
  std::vector<double> off(n - 1, -1.0);
  const auto eig = linalg::tridiagonal_eigen(diag, off);
  for (std::size_t j = 0; j < n; ++j) {
    const double expected =
        2.0 - 2.0 * std::cos(std::numbers::pi * static_cast<double>(j) / n);
    EXPECT_NEAR(eig.values[j], expected, 1e-9) << "j=" << j;
  }
}

TEST(Tridiag, EigenvectorsSatisfyDefinition) {
  util::Rng rng(7);
  const std::size_t n = 20;
  std::vector<double> diag(n);
  std::vector<double> off(n - 1);
  for (auto& d : diag) d = rng.next_double() * 4 - 2;
  for (auto& e : off) e = rng.next_double() * 2 - 1;
  const auto eig = linalg::tridiagonal_eigen(diag, off);
  for (std::size_t j = 0; j < n; ++j) {
    // Check T v = lambda v componentwise.
    for (std::size_t i = 0; i < n; ++i) {
      double tv = diag[i] * eig.vectors[i * n + j];
      if (i > 0) tv += off[i - 1] * eig.vectors[(i - 1) * n + j];
      if (i + 1 < n) tv += off[i] * eig.vectors[(i + 1) * n + j];
      EXPECT_NEAR(tv, eig.values[j] * eig.vectors[i * n + j], 1e-8);
    }
  }
}

TEST(Jacobi, KnownTwoByTwo) {
  const auto eig = linalg::jacobi_eigen({2.0, 1.0, 1.0, 2.0}, 2);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(Jacobi, AgreesWithTridiagOnRandomTridiagonal) {
  util::Rng rng(13);
  const std::size_t n = 15;
  std::vector<double> diag(n);
  std::vector<double> off(n - 1);
  for (auto& d : diag) d = rng.next_double();
  for (auto& e : off) e = rng.next_double();
  std::vector<double> dense(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) dense[i * n + i] = diag[i];
  for (std::size_t i = 0; i + 1 < n; ++i) {
    dense[i * n + i + 1] = off[i];
    dense[(i + 1) * n + i] = off[i];
  }
  const auto a = linalg::tridiagonal_eigen(diag, off);
  const auto b = linalg::jacobi_eigen(dense, n);
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(a.values[j], b.values[j], 1e-9);
}

TEST(WalkOperator, CycleActsAsAveraging) {
  const auto g = graph::cycle(6);
  const linalg::WalkOperator op(g);
  std::vector<double> x{1, 0, 0, 0, 0, 0};
  std::vector<double> out(6);
  op.apply_walk(x, out);
  EXPECT_NEAR(out[1], 0.5, 1e-12);
  EXPECT_NEAR(out[5], 0.5, 1e-12);
  EXPECT_NEAR(out[0], 0.0, 1e-12);
}

TEST(WalkOperator, LazyWalkPreservesSum) {
  util::Rng rng(17);
  const auto g = graph::random_regular(50, 4, rng);
  const linalg::WalkOperator op(g);
  std::vector<double> x(50);
  for (auto& v : x) v = rng.next_double();
  const double before = linalg::sum(x);
  std::vector<double> out(50);
  op.apply_lazy_walk(x, out, 0.3);
  EXPECT_NEAR(linalg::sum(out), before, 1e-9);
}

TEST(WalkOperator, DBarFormula) {
  const auto g = graph::cycle(8);  // 2-regular
  const linalg::WalkOperator op(g);
  EXPECT_NEAR(op.d_bar(), std::pow(1.0 - 0.25, 1.0), 1e-12);
}

TEST(Lanczos, CycleGraphSpectrum) {
  // Walk matrix of the n-cycle has eigenvalues cos(2 pi j / n).
  const std::size_t n = 24;
  const auto g = graph::cycle(static_cast<graph::NodeId>(n));
  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 3;
  options.max_iterations = n;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      n, [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
      options);
  EXPECT_NEAR(pairs.values[0], 1.0, 1e-8);
  EXPECT_NEAR(pairs.values[1], std::cos(2.0 * std::numbers::pi / n), 1e-8);
  EXPECT_NEAR(pairs.values[2], std::cos(2.0 * std::numbers::pi / n), 1e-8);
}

TEST(Lanczos, AgreesWithJacobiOnDenseWalkMatrix) {
  util::Rng rng(21);
  const auto g = graph::random_regular(40, 6, rng);
  const auto dense = linalg::dense_walk_matrix(g);
  const auto truth = linalg::jacobi_eigen(dense, 40);
  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 5;
  options.max_iterations = 40;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      40, [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
      options);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(pairs.values[j], truth.values[39 - j], 1e-7) << "pair " << j;
  }
}

TEST(Lanczos, EigenvectorsHaveUnitNormAndSatisfyResidual) {
  util::Rng rng(23);
  const auto g = graph::random_regular(60, 8, rng);
  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 3;
  options.max_iterations = 60;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      60, [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
      options);
  std::vector<double> out(60);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(linalg::norm(pairs.vectors[j]), 1.0, 1e-9);
    op.apply_walk(pairs.vectors[j], out);
    linalg::axpy(-pairs.values[j], pairs.vectors[j], out);
    EXPECT_LT(linalg::norm(out), 1e-6) << "residual of pair " << j;
  }
}

TEST(Lanczos, TopEigenvectorOfRegularGraphIsConstant) {
  util::Rng rng(29);
  const auto g = graph::random_regular(64, 6, rng);
  const linalg::WalkOperator op(g);
  linalg::LanczosOptions options;
  options.num_eigenpairs = 1;
  const auto pairs = linalg::lanczos_top_eigenpairs(
      64, [&](std::span<const double> in, std::span<double> out) { op.apply_walk(in, out); },
      options);
  const double expected = 1.0 / std::sqrt(64.0);
  for (const double entry : pairs.vectors[0]) {
    EXPECT_NEAR(std::abs(entry), expected, 1e-6);
  }
}

TEST(KMeans, SeparatedClustersAreRecovered) {
  // Three tight blobs on a line.
  std::vector<double> points;
  util::Rng rng(31);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 50; ++i) {
      points.push_back(10.0 * c + rng.next_double());
    }
  }
  linalg::KMeansOptions options;
  options.clusters = 3;
  const auto result = linalg::kmeans(points, 150, 1, options);
  // All points of a blob share a label and blobs get distinct labels.
  for (std::size_t c = 0; c < 3; ++c) {
    const auto label = result.assignment[c * 50];
    for (std::size_t i = 1; i < 50; ++i) EXPECT_EQ(result.assignment[c * 50 + i], label);
  }
  EXPECT_NE(result.assignment[0], result.assignment[50]);
  EXPECT_NE(result.assignment[50], result.assignment[100]);
  EXPECT_LT(result.inertia, 150.0);
}

TEST(KMeans, DeterministicGivenSeed) {
  std::vector<double> points;
  util::Rng rng(37);
  for (int i = 0; i < 60; ++i) points.push_back(rng.next_double());
  linalg::KMeansOptions options;
  options.clusters = 4;
  options.seed = 5;
  const auto a = linalg::kmeans(points, 60, 1, options);
  const auto b = linalg::kmeans(points, 60, 1, options);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMeans, RejectsBadArguments) {
  const std::vector<double> points{1.0, 2.0};
  linalg::KMeansOptions options;
  options.clusters = 3;
  EXPECT_THROW(linalg::kmeans(points, 2, 1, options), util::contract_error);
}

TEST(Hungarian, SolvesKnownInstance) {
  // Classic 3x3: optimum is 5 (1+3+1 -> rows choose cols 1,0,2... check).
  const std::vector<double> cost{4, 1, 3,
                                 2, 0, 5,
                                 3, 2, 2};
  const auto result = linalg::hungarian_min_cost(cost, 3, 3);
  EXPECT_NEAR(result.total_cost, 5.0, 1e-12);  // 1 + 2 + 2
}

TEST(Hungarian, RectangularPicksBestColumns) {
  const std::vector<double> cost{10, 1, 10, 10,
                                 10, 10, 10, 2};
  const auto result = linalg::hungarian_min_cost(cost, 2, 4);
  EXPECT_EQ(result.row_to_col[0], 1u);
  EXPECT_EQ(result.row_to_col[1], 3u);
  EXPECT_NEAR(result.total_cost, 3.0, 1e-12);
}

TEST(Hungarian, MatchesBruteForceOnRandomInstances) {
  util::Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.next_below(4);  // 2..5
    std::vector<double> cost(n * n);
    for (auto& c : cost) c = rng.next_double();
    const auto result = linalg::hungarian_min_cost(cost, n, n);
    // Brute-force over permutations.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e18;
    do {
      double total = 0.0;
      for (std::size_t r = 0; r < n; ++r) total += cost[r * n + perm[r]];
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(result.total_cost, best, 1e-9) << "trial " << trial;
  }
}

TEST(Hungarian, AssignmentIsInjective) {
  util::Rng rng(43);
  std::vector<double> cost(5 * 8);
  for (auto& c : cost) c = rng.next_double();
  const auto result = linalg::hungarian_min_cost(cost, 5, 8);
  std::vector<char> used(8, 0);
  for (const auto col : result.row_to_col) {
    EXPECT_LT(col, 8u);
    EXPECT_FALSE(used[col]);
    used[col] = 1;
  }
}

}  // namespace
