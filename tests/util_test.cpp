// Unit tests for src/util: RNG, statistics, table, CLI, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dgc;

TEST(Rng, DeterministicForEqualSeeds) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1);
  util::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  util::Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  util::Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  util::Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  util::Rng rng(17);
  constexpr int kDraws = 200000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  util::Rng master(19);
  util::Rng child_a = master.fork(0);
  util::Rng child_b = master.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += child_a.next() == child_b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  util::Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  util::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], static_cast<int>(i));
}

TEST(Rng, SplitMixAvalanche) {
  util::SplitMix64 a(1);
  util::SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RunningStats, MatchesDirectComputation) {
  util::RunningStats stats;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  for (const double x : xs) stats.add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
  EXPECT_EQ(stats.count(), xs.size());
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  util::RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.mean(), 5.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(util::median(xs), 3.0, 1e-12);
  EXPECT_NEAR(util::quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(util::quantile(xs, 1.0), 5.0, 1e-12);
}

TEST(Quantile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW((void)util::quantile({}, 0.5), util::contract_error);
  EXPECT_THROW((void)util::quantile({1.0}, 1.5), util::contract_error);
}

TEST(Histogram, BinsAndClamping) {
  util::Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.9);
  h.add(-5.0);  // clamps to first bin
  h.add(5.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_NEAR(h.bin_lo(1), 0.25, 1e-12);
  EXPECT_NEAR(h.bin_hi(1), 0.5, 1e-12);
}

TEST(Table, RendersAlignedRows) {
  util::Table table("demo", {"name", "value"});
  table.row({std::string("x"), 1.5});
  table.row({std::string("longer"), std::int64_t{42}});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth) {
  util::Table table("demo", {"a", "b"});
  EXPECT_THROW(table.row({1.0}), util::contract_error);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--n=100", "--flag", "--rate=0.5", "--name=abc"};
  util::Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_NEAR(cli.get_double("rate", 0.0), 0.5, 1e-12);
  EXPECT_EQ(cli.get("name", ""), "abc");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(util::Cli(2, argv), util::contract_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<int> hits(1000, 0);
  util::ThreadPool::parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; }, 8);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, MemberParallelForReusesWorkersAcrossPhases) {
  // The sharded engine's usage pattern: one pool, many short phases.
  util::ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  for (int phase = 0; phase < 50; ++phase) {
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  }
  for (const int h : hits) EXPECT_EQ(h, 50);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, MemberParallelForHandlesEdgeCounts) {
  util::ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
  // More indices than workers.
  std::vector<int> hits(10, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Barrier, SynchronisesPhasesAcrossThreads) {
  // Each thread increments its phase counter, then waits; after the
  // barrier no thread can be a full phase ahead of any other.
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 25;
  util::Barrier barrier(kThreads);
  std::vector<std::atomic<int>> phase(kThreads);
  for (auto& p : phase) p.store(0);
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int p = 0; p < kPhases; ++p) {
        phase[t].store(p + 1);
        barrier.arrive_and_wait();
        for (std::size_t other = 0; other < kThreads; ++other) {
          if (phase[other].load() < p + 1) ok.store(false);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(barrier.parties(), kThreads);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  util::Barrier barrier(1);
  for (int i = 0; i < 10; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.parties(), 1u);
}

TEST(Require, ThrowsWithContext) {
  try {
    DGC_REQUIRE(false, "custom message");
    FAIL() << "should have thrown";
  } catch (const util::contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message"), std::string::npos);
  }
}

}  // namespace
