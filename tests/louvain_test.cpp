// Tests for the Louvain modularity baseline.
#include <gtest/gtest.h>

#include "baselines/louvain.hpp"
#include "graph/generators.hpp"
#include "metrics/clustering_metrics.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;

TEST(Louvain, RecoversRingOfCliques) {
  const auto planted = graph::ring_of_cliques(6, 8);
  const auto result = baselines::louvain(planted.graph, {});
  EXPECT_EQ(result.num_communities, 6u);
  EXPECT_EQ(metrics::misclassified_nodes(planted.membership, 6, result.labels,
                                         result.num_communities),
            0u);
  EXPECT_GT(result.modularity, 0.6);
}

TEST(Louvain, RecoversPlantedClusters) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(4, 200);
  spec.degree = 14;
  spec.inter_cluster_swaps = 30;
  util::Rng rng(3);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto result = baselines::louvain(planted.graph, {});
  const double rate = metrics::misclassification_rate(
      planted.membership, 4, result.labels, std::max(1u, result.num_communities));
  EXPECT_LT(rate, 0.05);
}

TEST(Louvain, ModularityMatchesMetricsModule) {
  const auto planted = graph::ring_of_cliques(4, 6);
  const auto result = baselines::louvain(planted.graph, {});
  EXPECT_NEAR(result.modularity,
              metrics::modularity(planted.graph, result.labels, result.num_communities),
              1e-12);
}

TEST(Louvain, DisconnectedComponentsGetDistinctCommunities) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 15;
  spec.clusters = 3;
  spec.p_in = 1.0;
  spec.p_out = 0.0;
  util::Rng rng(5);
  const auto planted = graph::stochastic_block_model(spec, rng);
  const auto result = baselines::louvain(planted.graph, {});
  EXPECT_EQ(result.num_communities, 3u);
}

TEST(Louvain, LabelsAreCompact) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(3, 100);
  spec.degree = 10;
  spec.inter_cluster_swaps = 12;
  util::Rng rng(7);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto result = baselines::louvain(planted.graph, {});
  std::vector<char> seen(result.num_communities, 0);
  for (const auto label : result.labels) {
    ASSERT_LT(label, result.num_communities);
    seen[label] = 1;
  }
  for (const char s : seen) EXPECT_TRUE(s);
}

TEST(Louvain, DeterministicGivenSeed) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(3, 80);
  spec.degree = 8;
  spec.inter_cluster_swaps = 10;
  util::Rng rng(9);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto a = baselines::louvain(planted.graph, {});
  const auto b = baselines::louvain(planted.graph, {});
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.modularity, b.modularity);
}

TEST(Louvain, BeatsRandomLabelsOnModularity) {
  graph::ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(4, 150);
  spec.degree = 12;
  spec.inter_cluster_swaps = 25;
  util::Rng rng(11);
  const auto planted = graph::clustered_regular(spec, rng);
  const auto result = baselines::louvain(planted.graph, {});
  util::Rng label_rng(13);
  std::vector<std::uint32_t> random_labels(planted.graph.num_nodes());
  for (auto& l : random_labels) l = static_cast<std::uint32_t>(label_rng.next_below(4));
  EXPECT_GT(result.modularity,
            metrics::modularity(planted.graph, random_labels, 4) + 0.3);
}

TEST(Louvain, AllOnesWeightsMatchUnweighted) {
  const auto planted = graph::ring_of_cliques(5, 7);
  std::vector<graph::WeightedEdge> edges;
  planted.graph.for_each_edge(
      [&](graph::NodeId u, graph::NodeId v) { edges.push_back({u, v, 1.0}); });
  const auto ones =
      graph::Graph::from_weighted_edges(planted.graph.num_nodes(), std::move(edges));
  const auto plain = baselines::louvain(planted.graph, {});
  const auto weighted = baselines::louvain(ones, {});
  EXPECT_EQ(plain.labels, weighted.labels);
  EXPECT_EQ(plain.modularity, weighted.modularity);
}

TEST(Louvain, EdgeWeightsDecideTheCommunities) {
  // A 2k-clique where the weights hide two heavy sub-cliques: the
  // unweighted structure is a single community, the weighted one splits.
  const graph::NodeId n = 12;
  std::vector<graph::WeightedEdge> edges;
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      const bool same = (u < n / 2) == (v < n / 2);
      edges.push_back({u, v, same ? 10.0 : 0.1});
    }
  }
  const auto g = graph::Graph::from_weighted_edges(n, std::move(edges));
  const auto result = baselines::louvain(g, {});
  EXPECT_EQ(result.num_communities, 2u);
  std::vector<std::uint32_t> truth(n);
  for (graph::NodeId v = 0; v < n; ++v) truth[v] = v < n / 2 ? 0 : 1;
  EXPECT_EQ(metrics::misclassified_nodes(truth, 2, result.labels, 2), 0u);
  EXPECT_GT(result.modularity, 0.3);
}

}  // namespace
