// Round-trip and error-path tests for graph IO.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;
using graph::Graph;
using graph::NodeId;

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "node " << v;
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(IoEdgeList, RoundTrip) {
  util::Rng rng(5);
  const Graph g = graph::random_regular(50, 6, rng);
  std::stringstream buffer;
  graph::write_edge_list(buffer, g);
  const Graph back = graph::read_edge_list(buffer);
  expect_same_graph(g, back);
}

TEST(IoEdgeList, HeaderPreservesIsolatedTrailingNodes) {
  // Node 3 is isolated; only the header records n = 4.
  std::stringstream buffer;
  buffer << "# nodes 4\n0 1\n1 2\n";
  const Graph g = graph::read_edge_list(buffer);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(IoEdgeList, WithoutHeaderInfersN) {
  std::stringstream buffer;
  buffer << "0 1\n4 2\n";
  const Graph g = graph::read_edge_list(buffer);
  EXPECT_EQ(g.num_nodes(), 5u);
}

TEST(IoEdgeList, MalformedLineThrows) {
  std::stringstream buffer;
  buffer << "0 not_a_number\n";
  EXPECT_THROW(graph::read_edge_list(buffer), util::contract_error);
}

TEST(IoMetis, RoundTrip) {
  util::Rng rng(9);
  const Graph g = graph::random_regular(40, 4, rng);
  std::stringstream buffer;
  graph::write_metis(buffer, g);
  const Graph back = graph::read_metis(buffer);
  expect_same_graph(g, back);
}

TEST(IoMetis, HeaderMismatchThrows) {
  std::stringstream buffer;
  buffer << "3 5\n2\n1 3\n2\n";  // claims 5 edges, has 2
  EXPECT_THROW(graph::read_metis(buffer), util::contract_error);
}

TEST(IoMetis, TruncatedFileThrows) {
  std::stringstream buffer;
  buffer << "3 2\n2\n";  // missing adjacency lines
  EXPECT_THROW(graph::read_metis(buffer), util::contract_error);
}

TEST(IoMetis, NeighbourOutOfRangeThrows) {
  std::stringstream buffer;
  buffer << "2 1\n9\n1\n";
  EXPECT_THROW(graph::read_metis(buffer), util::contract_error);
}

TEST(IoFiles, SaveAndLoad) {
  util::Rng rng(11);
  const Graph g = graph::random_regular(30, 4, rng);
  const std::string file_path = ::testing::TempDir() + "/dgc_io_test.edges";
  graph::save_edge_list(file_path, g);
  const Graph back = graph::load_edge_list(file_path);
  expect_same_graph(g, back);
}

TEST(IoFiles, MissingFileThrows) {
  EXPECT_THROW(graph::load_edge_list("/nonexistent/path/g.edges"), util::contract_error);
}

}  // namespace
