// Round-trip and error-path tests for graph IO: the three on-disk
// formats (edge list, METIS, binary .dgcg), the from_chars parsers,
// format detection, and the file conveniences.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

#if defined(DGC_TEST_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace {

using namespace dgc;
using graph::Graph;
using graph::GraphFormat;
using graph::NodeId;

void expect_same_graph(const Graph& a, const Graph& b) {
  // Bit-identical CSR, not just isomorphic: the binary format round-trips
  // the raw arrays and the builders promise identical layout.  Weights
  // must round-trip bit for bit too (the text writers render shortest
  // round-trip doubles).
  const auto ao = a.offsets();
  const auto bo = b.offsets();
  ASSERT_EQ(ao.size(), bo.size());
  for (std::size_t i = 0; i < ao.size(); ++i) ASSERT_EQ(ao[i], bo[i]) << "offset " << i;
  const auto aa = a.adjacency();
  const auto ba = b.adjacency();
  ASSERT_EQ(aa.size(), ba.size());
  for (std::size_t i = 0; i < aa.size(); ++i) ASSERT_EQ(aa[i], ba[i]) << "slot " << i;
  const auto aw = a.weights();
  const auto bw = b.weights();
  ASSERT_EQ(aw.size(), bw.size());
  for (std::size_t i = 0; i < aw.size(); ++i) ASSERT_EQ(aw[i], bw[i]) << "weight " << i;
}

/// A weighted fixture with awkward doubles (non-representable decimals,
/// subnormal-adjacent magnitudes, wide ids) for the round-trip matrix.
Graph weighted_fixture() {
  graph::GraphBuilder builder;
  builder.add_edge(0, 1, 0.1);
  builder.add_edge(1, 2, 1.0 / 3.0);
  builder.add_edge(2, 3, 1e-300);
  builder.add_edge(3, 4, 12345678901234.5);
  builder.add_edge(0, 70001, 2.5000000000000004);
  builder.ensure_nodes(70003);  // isolated trailing node
  return builder.build();
}

Graph round_trip(const Graph& g, GraphFormat format) {
  std::stringstream buffer;
  switch (format) {
    case GraphFormat::kEdgeList: graph::write_edge_list(buffer, g); return graph::read_edge_list(buffer);
    case GraphFormat::kMetis: graph::write_metis(buffer, g); return graph::read_metis(buffer);
    case GraphFormat::kBinary: graph::write_binary(buffer, g); return graph::read_binary(buffer);
    case GraphFormat::kAuto: break;
  }
  return {};
}

TEST(IoRoundTrip, AllFormatsOnEdgeCases) {
  util::Rng rng(5);
  std::vector<std::pair<std::string, Graph>> fixtures;
  fixtures.emplace_back("empty", Graph::from_edges(0, {}));
  fixtures.emplace_back("edgeless", Graph::from_edges(3, {}));
  fixtures.emplace_back("isolated", Graph::from_edges(6, {{0, 1}, {1, 4}}));
  fixtures.emplace_back("regular", graph::random_regular(50, 6, rng));
  // n > 2^16 exercises wide node ids in every format.
  {
    graph::GraphBuilder builder;
    builder.add_edge(0, 70000);
    builder.add_edge(65535, 65536);
    builder.add_edge(69999, 70000);
    builder.ensure_nodes(70002);  // one isolated trailing node too
    fixtures.emplace_back("wide", builder.build());
  }
  for (const auto& [name, g] : fixtures) {
    for (const GraphFormat format :
         {GraphFormat::kEdgeList, GraphFormat::kMetis, GraphFormat::kBinary}) {
      SCOPED_TRACE(name + " via " + std::string(graph::to_string(format)));
      expect_same_graph(round_trip(g, format), g);
    }
  }
}

TEST(IoRoundTrip, WeightedAllFormatsBitExact) {
  util::Rng rng(9);
  std::vector<std::pair<std::string, Graph>> fixtures;
  fixtures.emplace_back("awkward_doubles", weighted_fixture());
  fixtures.emplace_back("single_edge",
                        Graph::from_weighted_edges(2, {{0, 1, 3.75}}));
  {
    graph::ClusteredRegularSpec spec;
    spec.cluster_sizes.assign(2, 40);
    spec.degree = 6;
    spec.inter_cluster_swaps = 4;
    spec.weighted = true;
    spec.intra_weight = 3.0;
    spec.inter_weight = 0.5;
    fixtures.emplace_back("clustered", graph::clustered_regular(spec, rng).graph);
  }
  for (const auto& [name, g] : fixtures) {
    for (const GraphFormat format :
         {GraphFormat::kEdgeList, GraphFormat::kMetis, GraphFormat::kBinary}) {
      SCOPED_TRACE(name + " via " + std::string(graph::to_string(format)));
      const Graph loaded = round_trip(g, format);
      EXPECT_TRUE(loaded.is_weighted());
      expect_same_graph(loaded, g);
    }
  }
}

TEST(IoEdgeList, HeaderPreservesIsolatedTrailingNodes) {
  // Node 3 is isolated; only the header records n = 4.
  std::stringstream buffer;
  buffer << "# nodes 4\n0 1\n1 2\n";
  const Graph g = graph::read_edge_list(buffer);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(IoEdgeList, WithoutHeaderInfersN) {
  std::stringstream buffer;
  buffer << "0 1\n4 2\n";
  const Graph g = graph::read_edge_list(buffer);
  EXPECT_EQ(g.num_nodes(), 5u);
}

TEST(IoEdgeList, ToleratesCommentsBlanksAndCrLf) {
  std::stringstream buffer;
  buffer << "# a comment\r\n\r\n  0 1\r\n1 2\t\n";
  const Graph g = graph::read_edge_list(buffer);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoEdgeList, IgnoresTrailingColumns) {
  // `u v weight` / `u v timestamp` dumps are common; extra columns are
  // ignored (as the iostream reader always did).
  std::stringstream buffer("0 1 5\n1 2 0.25 1234567\n");
  const Graph g = graph::read_edge_list(buffer);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoEdgeList, MalformedLineThrows) {
  std::stringstream a("0 not_a_number\n");
  EXPECT_THROW(graph::read_edge_list(a), util::contract_error);
  std::stringstream b("0 1x\n");  // junk fused to the endpoint
  EXPECT_THROW(graph::read_edge_list(b), util::contract_error);
  std::stringstream c("7\n");  // lone endpoint
  EXPECT_THROW(graph::read_edge_list(c), util::contract_error);
}

TEST(IoEdgeList, MalformedNodesHeaderThrows) {
  // A declared count that overflows NodeId must not silently fall back
  // to max-endpoint+1 (isolated trailing nodes would vanish).
  std::stringstream overflow("# nodes 99999999999999999999\n0 1\n");
  EXPECT_THROW(graph::read_edge_list(overflow), util::contract_error);
  std::stringstream junk("# nodes lots\n0 1\n");
  EXPECT_THROW(graph::read_edge_list(junk), util::contract_error);
}

TEST(IoEdgeList, EndpointBeyondDeclaredHeaderThrows) {
  std::stringstream buffer("# nodes 2\n0 5\n");
  EXPECT_THROW(graph::read_edge_list(buffer), util::contract_error);
}

TEST(IoMetis, SkipsCommentLines) {
  // % comments are legal anywhere in a METIS file, including above the
  // header and between adjacency lines (real benchmark files use them).
  std::stringstream buffer;
  buffer << "% a comment\n3 2 \n% another\n2\n1 3\n% mid-adjacency\n2\n";
  const Graph g = graph::read_metis(buffer);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(IoMetis, EmptyLineIsAnIsolatedNode) {
  std::stringstream buffer("3 1\n2\n1\n\n");
  const Graph g = graph::read_metis(buffer);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(IoMetis, AcceptsUnweightedFmtField) {
  std::stringstream buffer("2 1 0\n2\n1\n");
  EXPECT_EQ(graph::read_metis(buffer).num_edges(), 1u);
  std::stringstream buffer2("2 1 000\n2\n1\n");
  EXPECT_EQ(graph::read_metis(buffer2).num_edges(), 1u);
}

TEST(IoEdgeList, WeightedHeaderDrivesAutoMode) {
  const Graph g = graph::parse_edge_list("# nodes 3\n# weighted\n0 1 2.5\n1 2 0.25\n");
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.edge_weight(0, 1), 2.5);
  EXPECT_EQ(g.edge_weight(1, 2), 0.25);
}

TEST(IoEdgeList, WeightModeForcesOrIgnoresTheColumn) {
  // No header: kAuto ignores the column, kYes consumes it, kNo ignores
  // it even when the header is present.
  const std::string text = "0 1 2.5\n1 2 0.25\n";
  EXPECT_FALSE(graph::parse_edge_list(text).is_weighted());
  const Graph forced = graph::parse_edge_list(text, graph::WeightMode::kYes);
  EXPECT_TRUE(forced.is_weighted());
  EXPECT_EQ(forced.edge_weight(0, 1), 2.5);
  EXPECT_FALSE(graph::parse_edge_list("# weighted\n0 1 2.5\n", graph::WeightMode::kNo)
                   .is_weighted());
}

TEST(IoEdgeList, WeightedParseErrors) {
  // Missing weight column.
  EXPECT_THROW((void)graph::parse_edge_list("# weighted\n0 1\n"), util::contract_error);
  EXPECT_THROW((void)graph::parse_edge_list("0 1\n", graph::WeightMode::kYes),
               util::contract_error);
  // Non-positive weights.
  EXPECT_THROW((void)graph::parse_edge_list("# weighted\n0 1 0\n"), util::contract_error);
  EXPECT_THROW((void)graph::parse_edge_list("# weighted\n0 1 -2\n"), util::contract_error);
  EXPECT_THROW((void)graph::parse_edge_list("# weighted\n0 1 inf\n"), util::contract_error);
  // The header must precede the first edge.
  EXPECT_THROW((void)graph::parse_edge_list("0 1\n# weighted\n1 2 2\n"),
               util::contract_error);
}

TEST(IoMetis, ReadsEdgeWeights) {
  // fmt = 1: every neighbour entry is a (node, weight) pair.
  std::stringstream buffer("3 2 1\n2 2.5\n1 2.5 3 0.25\n2 0.25\n");
  const Graph g = graph::read_metis(buffer);
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.edge_weight(0, 1), 2.5);
  EXPECT_EQ(g.edge_weight(1, 2), 0.25);
}

TEST(IoMetis, ReadsAndDiscardsVertexWeights) {
  // fmt = 10 (vertex weights, default ncon = 1): structure-only result.
  std::stringstream fmt10("3 2 10\n7 2\n0 1 3\n9 2\n");
  const Graph a = graph::read_metis(fmt10);
  EXPECT_FALSE(a.is_weighted());
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_TRUE(a.has_edge(1, 2));
  // fmt = 11 with ncon = 2: vertex weights then (node, weight) pairs.
  std::stringstream fmt11("3 2 11 2\n7 1 2 4.5\n0 2 1 4.5 3 1.5\n9 9 2 1.5\n");
  const Graph b = graph::read_metis(fmt11);
  EXPECT_TRUE(b.is_weighted());
  EXPECT_EQ(b.edge_weight(0, 1), 4.5);
  EXPECT_EQ(b.edge_weight(1, 2), 1.5);
}

TEST(IoMetis, WeightedErrorsNameTheLine) {
  const auto message_of = [](const std::string& text) {
    try {
      (void)graph::parse_metis(text);
    } catch (const util::contract_error& e) {
      return std::string(e.what());
    }
    return std::string("no error");
  };
  // Zero / negative edge weight (line 3 lists it).
  EXPECT_NE(message_of("2 1 1\n2 5\n1 0\n").find("line 3"), std::string::npos);
  EXPECT_NE(message_of("2 1 1\n2 -1\n1 -1\n").find("line 2"), std::string::npos);
  // Missing weight.
  EXPECT_NE(message_of("2 1 1\n2\n1 5\n").find("line 2"), std::string::npos);
  // Negative vertex weight.
  EXPECT_NE(message_of("2 1 10\n-3 2\n1 1\n").find("line 2"), std::string::npos);
  // Weight listed differently from the two endpoints.
  EXPECT_NE(message_of("2 1 1\n2 5\n1 6\n").find("line 3"), std::string::npos);
}

TEST(IoMetis, UnsupportedFmtFieldsThrow) {
  // Vertex sizes (fmt 1xx) are not supported.
  std::stringstream sizes("2 1 100\n1 2\n1 1\n");
  EXPECT_THROW(graph::read_metis(sizes), util::contract_error);
  // ncon without vertex weights is malformed.
  std::stringstream ncon("2 1 1 2\n2 5\n1 5\n");
  EXPECT_THROW(graph::read_metis(ncon), util::contract_error);
  std::stringstream junk("2 1 7\n2\n1\n");
  EXPECT_THROW(graph::read_metis(junk), util::contract_error);
}

TEST(IoMetis, DeclaredEdgeCountIsValidatedAgainstEntriesRead) {
  // Claims 5 edges but only lists 2 (4 neighbour entries != 10).
  std::stringstream buffer("3 5\n2\n1 3\n2\n");
  EXPECT_THROW(graph::read_metis(buffer), util::contract_error);
  // One-sided listing: edge {0,1} appears only in node 0's line.
  std::stringstream one_sided("2 1\n2\n\n");
  EXPECT_THROW(graph::read_metis(one_sided), util::contract_error);
}

TEST(IoMetis, TruncatedFileThrows) {
  std::stringstream buffer("3 2\n2\n");  // missing adjacency lines
  EXPECT_THROW(graph::read_metis(buffer), util::contract_error);
}

TEST(IoMetis, NeighbourOutOfRangeThrows) {
  std::stringstream buffer("2 1\n9\n1\n");
  EXPECT_THROW(graph::read_metis(buffer), util::contract_error);
}

TEST(IoMetis, SelfLoopThrows) {
  std::stringstream buffer("2 1\n1\n2\n");
  EXPECT_THROW(graph::read_metis(buffer), util::contract_error);
}

TEST(IoBinary, CorruptedHeaderThrows) {
  util::Rng rng(3);
  const Graph g = graph::random_regular(20, 4, rng);
  std::stringstream buffer;
  graph::write_binary(buffer, g);
  std::string bytes = buffer.str();

  {  // bad magic
    std::string mutated = bytes;
    mutated[0] = 'X';
    std::stringstream in(mutated);
    EXPECT_THROW(graph::read_binary(in), util::contract_error);
  }
  {  // unsupported version
    std::string mutated = bytes;
    mutated[8] = 99;
    std::stringstream in(mutated);
    EXPECT_THROW(graph::read_binary(in), util::contract_error);
  }
  {  // truncated payload
    std::stringstream in(bytes.substr(0, bytes.size() - 4));
    EXPECT_THROW(graph::read_binary(in), util::contract_error);
  }
  {  // payload corruption must fail CSR validation, not crash
    std::string mutated = bytes;
    mutated[mutated.size() - 1] = '\xff';
    std::stringstream in(mutated);
    EXPECT_THROW(graph::read_binary(in), util::contract_error);
  }
}

TEST(IoBinary, Version1FilesStillLoad) {
  // Hand-assemble a v1 file (the pre-weights format: version 1, zeroed
  // reserved field, no weight section) for the path 0-1-2.
  const std::vector<std::uint64_t> offsets{0, 1, 3, 4};
  const std::vector<std::uint32_t> adjacency{1, 0, 2, 1};
  std::string bytes;
  const auto append = [&](const void* p, std::size_t size) {
    bytes.append(static_cast<const char*>(p), size);
  };
  append("DGCG", 4);
  const std::uint32_t endian = 0x01020304u;
  const std::uint32_t version = 1;
  const std::uint32_t reserved = 0;
  const std::uint64_t n = 3;
  const std::uint64_t adjacency_len = 4;
  append(&endian, 4);
  append(&version, 4);
  append(&reserved, 4);
  append(&n, 8);
  append(&adjacency_len, 8);
  append(offsets.data(), offsets.size() * 8);
  append(adjacency.data(), adjacency.size() * 4);

  std::stringstream in(bytes);
  const Graph g = graph::read_binary(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.is_weighted());
  EXPECT_TRUE(g.has_edge(0, 1));

  // The mmap'd load_binary path accepts the same v1 bytes.
  const std::string file_path = ::testing::TempDir() + "/dgc_io_v1.dgcg";
  std::ofstream os(file_path, std::ios::binary);
  os << bytes;
  os.close();
  expect_same_graph(graph::load_binary(file_path), g);
  std::remove(file_path.c_str());
}

TEST(IoBinary, UnweightedFilesStampVersion1) {
  // Unweighted payloads are the v1 layout, so they are written as v1 —
  // pre-weights readers keep working on them.
  const Graph g = Graph::from_edges(2, {{0, 1}});
  std::stringstream buffer;
  graph::write_binary(buffer, g);
  EXPECT_EQ(buffer.str()[8], 1);  // version field
  std::stringstream weighted_buffer;
  graph::write_binary(weighted_buffer, Graph::from_weighted_edges(2, {{0, 1, 2.0}}));
  EXPECT_EQ(weighted_buffer.str()[8], 2);
}

TEST(IoBinary, UnknownFlagBitsThrow) {
  // Only version-2 files interpret the flags field (it is reserved in
  // v1), so mutate a weighted file's flags.
  const Graph g = Graph::from_weighted_edges(2, {{0, 1, 2.0}});
  std::stringstream buffer;
  graph::write_binary(buffer, g);
  std::string bytes = buffer.str();
  bytes[12] = 0x7e;  // flags field: unknown bits
  std::stringstream in(bytes);
  EXPECT_THROW(graph::read_binary(in), util::contract_error);
}

TEST(IoBinary, WeightedRoundTripThroughFileIsBitExact) {
  const Graph g = weighted_fixture();
  const std::string file_path = ::testing::TempDir() + "/dgc_io_weighted.dgcg";
  graph::save_binary(file_path, g);
  // load_binary takes the mmap path; read_binary the stream path.  Both
  // must agree with the source bit for bit.
  expect_same_graph(graph::load_binary(file_path), g);
  std::ifstream is(file_path, std::ios::binary);
  expect_same_graph(graph::read_binary(is), g);
  std::remove(file_path.c_str());
}

TEST(IoBinary, MmapLoadRejectsTruncatedWeightSection) {
  const Graph g = Graph::from_weighted_edges(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  std::stringstream buffer;
  graph::write_binary(buffer, g);
  const std::string bytes = buffer.str();
  const std::string file_path = ::testing::TempDir() + "/dgc_io_trunc.dgcg";
  std::ofstream os(file_path, std::ios::binary);
  os << bytes.substr(0, bytes.size() - 12);  // clip into the weight array
  os.close();
  EXPECT_THROW((void)graph::load_binary(file_path), util::contract_error);
  std::remove(file_path.c_str());
}

TEST(IoBinary, MmapLoadRejectsPayloadCorruption) {
  const Graph g = weighted_fixture();
  const std::string file_path = ::testing::TempDir() + "/dgc_io_corrupt.dgcg";
  graph::save_binary(file_path, g);
  {
    std::fstream f(file_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);  // flip the last weight byte
    f.put('\x7f');
  }
  EXPECT_THROW((void)graph::load_binary(file_path), util::contract_error);
  std::remove(file_path.c_str());
}

TEST(IoFormat, NamesRoundTrip) {
  for (const GraphFormat format :
       {GraphFormat::kAuto, GraphFormat::kEdgeList, GraphFormat::kMetis,
        GraphFormat::kBinary}) {
    EXPECT_EQ(graph::parse_format(graph::to_string(format)), format);
  }
  EXPECT_THROW((void)graph::parse_format("csv"), util::contract_error);
}

TEST(IoFormat, FromPathUsesExtension) {
  EXPECT_EQ(graph::format_from_path("/tmp/a/web.dgcg"), GraphFormat::kBinary);
  EXPECT_EQ(graph::format_from_path("web.graph"), GraphFormat::kMetis);
  EXPECT_EQ(graph::format_from_path("web.metis"), GraphFormat::kMetis);
  EXPECT_EQ(graph::format_from_path("web.edges"), GraphFormat::kEdgeList);
  EXPECT_EQ(graph::format_from_path("web.txt"), GraphFormat::kEdgeList);
  EXPECT_EQ(graph::format_from_path("web.bin"), GraphFormat::kAuto);
  EXPECT_EQ(graph::format_from_path("no_extension"), GraphFormat::kAuto);
}

TEST(IoFiles, SaveAndLoadAllFormats) {
  util::Rng rng(11);
  const Graph g = graph::random_regular(30, 4, rng);
  for (const char* name : {"dgc_io_test.edges", "dgc_io_test.graph", "dgc_io_test.dgcg"}) {
    const std::string file_path = ::testing::TempDir() + "/" + name;
    graph::save_graph(file_path, g);
    expect_same_graph(graph::load_graph(file_path), g);
    std::remove(file_path.c_str());
  }
}

TEST(IoFiles, LoadSniffsUnknownExtension) {
  util::Rng rng(13);
  const Graph g = graph::random_regular(24, 4, rng);
  {  // binary magic wins
    const std::string file_path = ::testing::TempDir() + "/dgc_io_sniff.bin";
    graph::save_binary(file_path, g);
    expect_same_graph(graph::load_graph(file_path), g);
    std::remove(file_path.c_str());
  }
  {  // '%' comment head -> METIS
    const std::string file_path = ::testing::TempDir() + "/dgc_io_sniff.dat";
    std::stringstream text;
    text << "% comment\n";
    graph::write_metis(text, g);
    std::ofstream os(file_path);
    os << text.str();
    os.close();
    expect_same_graph(graph::load_graph(file_path), g);
    std::remove(file_path.c_str());
  }
}

TEST(IoFiles, SaveWithUnknownExtensionThrows) {
  EXPECT_THROW(graph::save_graph("/tmp/dgc_io_test.unknowable", Graph::from_edges(2, {{0, 1}})),
               util::contract_error);
}

TEST(IoFiles, MissingFileThrows) {
  EXPECT_THROW(graph::load_edge_list("/nonexistent/path/g.edges"), util::contract_error);
  EXPECT_THROW(graph::load_graph("/nonexistent/path/g.edges"), util::contract_error);
}

// ---------------------------------------------------------------------------
// Gzip ingestion (.gz suffix): transparent decompression in load_graph.
// Fixtures are written with zlib directly, so these cases are compiled
// only in zlib builds (DGC_TEST_HAVE_ZLIB) and skip themselves when the
// library reports no gzip support.

#if defined(DGC_TEST_HAVE_ZLIB)

/// gzip-compresses `text` to file_path via zlib's gzFile writer.
void write_gz(const std::string& file_path, const std::string& text) {
  gzFile gz = gzopen(file_path.c_str(), "wb");
  ASSERT_NE(gz, nullptr);
  ASSERT_EQ(gzwrite(gz, text.data(), static_cast<unsigned>(text.size())),
            static_cast<int>(text.size()));
  ASSERT_EQ(gzclose(gz), Z_OK);
}

TEST(IoGzip, EdgeListAndMetisDecompressTransparently) {
  if (!graph::gzip_supported()) GTEST_SKIP() << "library built without zlib";
  util::Rng rng(29);
  const Graph g = graph::random_regular(40, 4, rng);
  {
    std::stringstream text;
    graph::write_edge_list(text, g);
    const std::string file_path = ::testing::TempDir() + "/dgc_io_gz.edges.gz";
    write_gz(file_path, text.str());
    // Extension-driven (.edges.gz -> edge list) and explicit-format loads.
    expect_same_graph(graph::load_graph(file_path), g);
    expect_same_graph(graph::load_graph(file_path, GraphFormat::kEdgeList), g);
    std::remove(file_path.c_str());
  }
  {
    std::stringstream text;
    graph::write_metis(text, g);
    const std::string file_path = ::testing::TempDir() + "/dgc_io_gz.metis.gz";
    write_gz(file_path, text.str());
    expect_same_graph(graph::load_graph(file_path), g);
    std::remove(file_path.c_str());
  }
}

TEST(IoGzip, WeightedEdgeListRoundTripsBitExact) {
  if (!graph::gzip_supported()) GTEST_SKIP() << "library built without zlib";
  const Graph g = weighted_fixture();
  std::stringstream text;
  graph::write_edge_list(text, g);
  const std::string file_path = ::testing::TempDir() + "/dgc_io_gz_w.edges.gz";
  write_gz(file_path, text.str());
  expect_same_graph(graph::load_graph(file_path), g);
  std::remove(file_path.c_str());
}

TEST(IoGzip, UnknownInnerExtensionSniffsDecompressedHead) {
  if (!graph::gzip_supported()) GTEST_SKIP() << "library built without zlib";
  util::Rng rng(31);
  const Graph g = graph::random_regular(24, 4, rng);
  std::stringstream text;
  text << "% metis comment\n";
  graph::write_metis(text, g);
  // "name.gz" with no inner extension: the decompressed head ('%') picks
  // the METIS reader.
  const std::string file_path = ::testing::TempDir() + "/dgc_io_gz_sniff.gz";
  write_gz(file_path, text.str());
  expect_same_graph(graph::load_graph(file_path), g);
  std::remove(file_path.c_str());
}

TEST(IoGzip, CompressedBinaryIsRejectedWithAClearError) {
  if (!graph::gzip_supported()) GTEST_SKIP() << "library built without zlib";
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  std::stringstream bytes;
  graph::write_binary(bytes, g);
  const std::string file_path = ::testing::TempDir() + "/dgc_io_gz.dgcg.gz";
  write_gz(file_path, bytes.str());
  EXPECT_THROW((void)graph::load_graph(file_path), util::contract_error);
  std::remove(file_path.c_str());
}

TEST(IoGzip, MisnamedGzipFileNamesTheFix) {
  if (!graph::gzip_supported()) GTEST_SKIP() << "library built without zlib";
  const std::string file_path = ::testing::TempDir() + "/dgc_io_gz_misnamed.edges";
  write_gz(file_path, "# nodes 2\n0 1\n");
  try {
    (void)graph::load_graph(file_path);
    FAIL() << "expected contract_error";
  } catch (const util::contract_error& e) {
    EXPECT_NE(std::string(e.what()).find(".gz"), std::string::npos);
  }
  // The sniffing path (unknown extension) reports the same fix.
  const std::string sniffed = ::testing::TempDir() + "/dgc_io_gz_misnamed.dat";
  write_gz(sniffed, "0 1\n");
  EXPECT_THROW((void)graph::load_graph(sniffed), util::contract_error);
  std::remove(file_path.c_str());
  std::remove(sniffed.c_str());
}

#endif  // DGC_TEST_HAVE_ZLIB

TEST(IoGzip, FormatFromPathStripsGzSuffix) {
  EXPECT_EQ(graph::format_from_path("a/b/web.edges.gz"), GraphFormat::kEdgeList);
  EXPECT_EQ(graph::format_from_path("web.metis.gz"), GraphFormat::kMetis);
  EXPECT_EQ(graph::format_from_path("web.dgcg.gz"), GraphFormat::kBinary);
  EXPECT_EQ(graph::format_from_path("web.gz"), GraphFormat::kAuto);
}

TEST(IoGzip, MissingZlibBuildsRaiseAClearError) {
  if (graph::gzip_supported()) GTEST_SKIP() << "this build has zlib";
  try {
    (void)graph::load_graph("/nonexistent/g.edges.gz");
    FAIL() << "expected contract_error";
  } catch (const util::contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("zlib"), std::string::npos);
  }
}

}  // namespace
